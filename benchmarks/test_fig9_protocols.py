"""Figure 9: latency breakdowns of the distributed fetch and commit
protocols, plus the section-6.4 instantaneous-handshake ablation.

Paper claims reproduced in shape:
* 9a — prediction + tag + fetch pipeline are a seven-cycle constant
  (no prediction at one core); control hand-off and fetch-command
  distribution grow with composition size (distribution dominates at
  16+ cores); dispatch time shrinks as per-core bandwidth aggregates.
* 9b — commit handshake grows with distance; architectural state
  update shrinks with added register/cache bandwidth.
* ablation — making every handshake instantaneous buys little even at
  32 cores (paper: <2%; our kernels are shorter, so protocol warmup
  weighs somewhat more).
"""

from repro.harness import fig9_protocols

from benchmarks.conftest import save_result


PROTOCOL_BENCHES = ["conv", "ct", "bezier", "mcf", "gzip", "mgrid"]


def test_fig9_protocols(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: fig9_protocols(benchmarks=PROTOCOL_BENCHES),
        rounds=1, iterations=1)
    save_result(results_dir, "fig9_protocols", result.render())

    # 9a: the constant front end.
    for n in result.core_counts:
        if n == 1:
            assert result.fetch[n]["prediction"] == 0    # no speculation
        else:
            assert result.fetch[n]["prediction"] == 3
        assert result.fetch[n]["tag"] == 1
        assert result.fetch[n]["pipeline"] == 3

    # 9a: distribution grows; dispatch shrinks.
    assert result.fetch[32]["distribution"] > result.fetch[2]["distribution"]
    assert result.fetch[32]["dispatch"] < result.fetch[1]["dispatch"]
    # Distribution dominates hand-off at large sizes.
    assert result.fetch[32]["distribution"] > result.fetch[32]["handoff"]

    # 9b: handshake grows with cores, state update shrinks.
    assert result.commit[32]["handshake"] > result.commit[2]["handshake"]
    assert result.commit[32]["state_update"] <= result.commit[1]["state_update"]

    # Ablation: distributed handshakes cost little at the largest
    # composition (paper < 2%; shorter kernels here, so allow < 15%).
    assert 0.0 <= result.mean_ablation_impact() < 0.15
