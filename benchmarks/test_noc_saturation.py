"""Operand-network saturation study (router-level model).

The composable design leans on the operand network; this harness
characterizes it directly: uniform-random traffic at increasing offered
load on the 4x8 mesh, measuring delivered throughput and latency — the
classic load/latency curve.  Checks the behaviours any credible mesh
must show: near-zero-load latency at light load, rising latency and
saturating throughput at heavy load, and more bandwidth helping past
saturation (the 1 vs 2 channel comparison mirrors the TRIPS/TFlex
operand-network delta in reservation-model terms).
"""

from repro.harness import format_table
from repro.noc import RouterNetwork, Topology
from repro.workloads.data import Lcg

from benchmarks.conftest import save_result


def drive(offered_load: float, cycles: int = 600, seed: int = 5) -> dict:
    """Uniform-random traffic at ``offered_load`` packets/node/cycle."""
    topology = Topology(4, 8)
    net = RouterNetwork(topology, queue_depth=4)
    rng = Lcg(seed)
    scale = 10_000
    threshold = int(offered_load * scale)
    offered = 0
    for __ in range(cycles):
        for node in range(topology.num_nodes):
            if rng.next() % scale < threshold:
                offered += 1
                net.inject(node, rng.next() % topology.num_nodes)
        net.step()
    net.run_until_drained()
    delivered = net.stats.delivered
    return {
        "offered": offered / (cycles * topology.num_nodes),
        "throughput": delivered / (cycles * topology.num_nodes),
        "latency": net.stats.average_latency,
        "accepted": delivered / max(1, offered),
    }


def test_noc_saturation(benchmark, results_dir):
    loads = (0.02, 0.05, 0.10, 0.20, 0.35, 0.50)
    results = benchmark.pedantic(
        lambda: [drive(load) for load in loads], rounds=1, iterations=1)

    rows = [[load, round(r["throughput"], 3), round(r["latency"], 1),
             f"{r['accepted']:.0%}"]
            for load, r in zip(loads, results)]
    save_result(results_dir, "noc_saturation", format_table(
        ["offered (pkt/node/cyc)", "delivered", "avg latency", "accepted"],
        rows, title="Operand-network saturation (4x8 mesh, router model)"))

    # Light load: latency near the average zero-load distance (~4 hops).
    assert results[0]["latency"] < 12
    # Latency rises monotonically-ish and grows sharply by heavy load.
    assert results[-1]["latency"] > 3 * results[0]["latency"]
    # Throughput saturates: the last doubling of offered load must not
    # double delivered throughput.
    assert results[-1]["throughput"] < results[3]["throughput"] * 2
    # The network never "creates" packets.
    for r in results:
        assert r["throughput"] <= r["offered"] + 1e-9
