"""Figure 10: multiprogrammed throughput (weighted speedup) of TFlex
versus fixed-granularity CMPs and the symmetric VB CMP.

Paper methodology: WS computed from the figure-6 cores->speedup
functions of the hand-optimized suite, with an optimal DP core
allocator for TFlex.  Claims reproduced in shape: the best fixed
granularity shifts with workload size (large processors for few
threads, small for many); TFlex beats every fixed CMP on average
(paper: +26% avg / +47% max over the best fixed CMP) and beats the
symmetric variable-best CMP (paper: +6%); the optimal allocation mixes
granularities even within one workload size.
"""

from repro.harness import fig10_multiprogramming

from benchmarks.conftest import save_result


def test_fig10_multiprogramming(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: fig10_multiprogramming(fig6),
                                rounds=1, iterations=1)
    save_result(results_dir, "fig10_multiprogramming", result.render())

    # TFlex wins at every workload size against every fixed CMP.
    for m in result.sizes:
        for g in result.granularities:
            assert result.ws[m]["TFlex"] >= result.ws[m][f"CMP-{g}"] - 1e-9, (m, g)

    # Average and max gains over the best fixed CMP (paper: +26%/+47%).
    assert result.tflex_gain_over_best_fixed() > 0.05
    assert result.tflex_max_gain() > result.tflex_gain_over_best_fixed()

    # Asymmetric composition beats the symmetric VB CMP (paper: +6%).
    assert result.tflex_gain_over_vb() >= 0.0

    # The best fixed granularity shifts with workload size: few threads
    # prefer bigger processors than many threads.
    def best_g(m):
        return max(result.granularities, key=lambda g: result.ws[m][f"CMP-{g}"])
    assert best_g(min(result.sizes)) >= best_g(max(result.sizes))

    # The optimal allocation uses more than one granularity overall.
    for m in result.sizes:
        if len(result.allocation[m]) > 1:
            break
    else:
        raise AssertionError("optimal allocation never mixed granularities")
