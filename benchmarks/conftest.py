"""Shared fixtures for the per-figure benchmark harness.

The figure-6 sweep (26 benchmarks x 6 TFlex compositions + TRIPS) is
computed once per session and reused by the area (figure 7), power
(figure 8), and multiprogramming (figure 10) analyses — the paper's own
methodology.  Every harness writes its rendered output under
``results/`` so EXPERIMENTS.md can reference the exact series.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import clear_cache, configure_cache, fig6_performance
from repro.sample.trace import configure_ff_trace, reset_ff_trace


RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache():
    """Keep tier-1 runs hermetic: start from an empty in-process cache
    and never read or write a persistent store (results or fast-forward
    traces) left over from earlier CLI invocations."""
    clear_cache()
    configure_cache(enabled=False)
    configure_ff_trace(enabled=False)
    yield
    clear_cache()
    reset_ff_trace()


@pytest.fixture(scope="session")
def fig6():
    return fig6_performance(scale=1)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
