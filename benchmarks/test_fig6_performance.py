"""Figure 6: performance of TFlex compositions (and TRIPS) across the
26-benchmark suite, normalized to a single TFlex core.

Paper claims reproduced in shape:
* speedup grows with composition size, peaks, then communication costs
  win (best configuration varies per application, 1..32);
* the 16-core configuration averages ~3.5x over one core (we land in
  the same band with smaller kernels);
* per-application BEST adds ~13% over the best fixed configuration;
* an 8-core TFlex (TRIPS-equivalent area/issue width) outperforms
  TRIPS (+19% in the paper), and BEST beats TRIPS by ~1.4x.
"""

from benchmarks.conftest import save_result


def test_fig6_performance(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    save_result(results_dir, "fig6_performance", result.render())

    # Speedups grow from 1 to the per-benchmark best.
    for bench in result.benchmarks:
        assert result.best_speedup(bench) >= 1.0

    # Aggregate shape: composition helps substantially, with a peak at
    # an intermediate size.
    mean_by_size = {n: result.mean_speedup(f"tflex-{n}") for n in result.core_counts}
    peak_size = max(mean_by_size, key=mean_by_size.get)
    assert 4 <= peak_size <= 32
    assert mean_by_size[peak_size] >= 2.0, mean_by_size
    assert result.mean_best_speedup() >= 2.5

    # BEST adds a margin over any fixed configuration (paper: +13%).
    assert result.mean_best_speedup() >= mean_by_size[peak_size] * 1.02

    # Versus the fixed-granularity TRIPS baseline.
    trips = result.mean_speedup("trips")
    assert result.mean_speedup("tflex-8") > trips          # paper: +19%
    assert result.mean_best_speedup() > trips * 1.2        # paper: +42%

    # High-ILP codes scale better than low-ILP codes at large sizes.
    from repro.workloads import BENCHMARKS
    high = [b for b in result.benchmarks if BENCHMARKS[b].ilp == "high"]
    low = [b for b in result.benchmarks if BENCHMARKS[b].ilp == "low"]
    from repro.harness import geomean
    assert geomean([result.best_speedup(b) for b in high]) > \
        geomean([result.best_speedup(b) for b in low])
