"""Table 2: component areas and average power breakdown, TRIPS versus
an 8-core TFlex processor.

Shape reproduced: the two processors occupy equal area by construction
(the paper's anchor); the clock tree is the dominant power category on
both (no clock gating in the prototype); leakage sits near 8-10%; and
TRIPS burns more total power at equal issue width — it clocks sixteen
single-issue tiles (sixteen FPUs) against TFlex's eight dual-issue
cores.
"""

from repro.harness import table2_area_power
from repro.power import AreaModel

from benchmarks.conftest import save_result


def test_table2_area_power(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: table2_area_power(fig6),
                                rounds=1, iterations=1)
    save_result(results_dir, "table2_area_power", result.render())

    # Area anchors.
    area = AreaModel()
    assert abs(area.trips_mm2 - area.processor_mm2(8)) < 1e-9
    assert area.processor_mm2(8) + area.l2_mm2(1.5) < 18 * 18

    tflex_total = sum(result.tflex_power.values())
    trips_total = sum(result.trips_power.values())

    # Clock dominates both breakdowns (prototype lacks clock gating).
    assert result.tflex_power["clock"] == max(result.tflex_power.values())
    assert result.trips_power["clock"] == max(result.trips_power.values())

    # Leakage lands near the paper's 8-10% band.
    assert 0.04 < result.tflex_power["leakage"] / tflex_total < 0.2

    # TRIPS burns more power at equal area/issue width (2x FPU clocks).
    assert trips_total > tflex_total
