"""Ablations of the design choices DESIGN.md calls out.

The paper credits TFlex's advantage over TRIPS at equal issue width to
three microarchitectural deltas (section 5): doubled operand-network
bandwidth, dual-issue cores, and fine-grained distribution of the
D-cache/LSQ banks; plus full distribution of the next-block predictor
(section 4.3) as the composability enabler.  Each ablation disables one
delta on an 8-core TFlex and measures the cost across a representative
benchmark mix.
"""

import pytest

from repro.harness import format_table, geomean, run_edge_benchmark

from benchmarks.conftest import save_result


MIX = ["conv", "ct", "bezier", "autocor", "mcf", "gzip", "mgrid", "equake"]
NCORES = 8


def _mean_slowdown(overrides=None, core_overrides=None) -> float:
    """Geomean cycles(ablated)/cycles(default) over the mix."""
    ratios = []
    for name in MIX:
        base = run_edge_benchmark(name, ncores=NCORES)
        ablated = run_edge_benchmark(name, ncores=NCORES, overrides=overrides,
                                     core_overrides=core_overrides)
        ratios.append(ablated.cycles / base.cycles)
    return geomean(ratios)


def _placement_speedup() -> float:
    """Geomean cycles(sequential ids)/cycles(greedy placement) at 8 cores."""
    from repro.compiler import place_program
    from repro.harness import run_edge_benchmark as run
    from repro.tflex import run_program
    from repro.workloads import BENCHMARKS

    ratios = []
    for name in MIX:
        base = run(name, ncores=NCORES).cycles
        program, __, __k = BENCHMARKS[name].edge_program()
        placed = run_program(place_program(program, NCORES), num_cores=NCORES,
                             max_cycles=30_000_000).stats.cycles
        ratios.append(base / placed)
    return geomean(ratios)


def _storeset_speedup() -> float:
    """Geomean cycles(blunt throttle)/cycles(store-set predictor)."""
    ratios = []
    for name in MIX:
        base = run_edge_benchmark(name, ncores=NCORES)
        with_sets = run_edge_benchmark(name, ncores=NCORES,
                                       overrides={"store_sets": True})
        ratios.append(base.cycles / with_sets.cycles)
    return geomean(ratios)


def test_ablations(benchmark, results_dir):
    def run_all():
        return {
            "operand bandwidth 2 -> 1 channels": _mean_slowdown(
                overrides={"opn_channels": 1}),
            "dual issue -> single issue": _mean_slowdown(
                core_overrides={"issue_int": 1, "issue_total": 1}),
            "distributed -> centralized predictor": _mean_slowdown(
                overrides={"centralized_predictor": True}),
            "8 D-cache/LSQ banks -> 2": _mean_slowdown(
                overrides={"dcache_banks": 2}),
            "8 register banks -> 2": _mean_slowdown(
                overrides={"regfile_banks": 2}),
            "greedy placement vs sequential ids": _placement_speedup(),
            "store-set predictor vs blunt throttle": _storeset_speedup(),
        }

    slowdowns = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[k, round(v, 3)] for k, v in slowdowns.items()]
    save_result(results_dir, "ablations", format_table(
        ["ablation (on 8-core TFlex)", "impact (x)"], rows,
        title="Design-choice ablations over " + ", ".join(MIX)))

    # No ablation may *help* beyond noise...
    for name, slowdown in slowdowns.items():
        assert slowdown > 0.97, (name, slowdown)
    # ...and scheduling placement (the paper's toolchain step) pays.
    assert slowdowns["greedy placement vs sequential ids"] > 1.03
    # ...and the communication-side deltas are the big ones: operand
    # bandwidth (the paper's headline TFlex optimization), bank
    # distribution, and predictor distribution.  Issue width barely
    # binds at this composition — execution is operand-latency bound,
    # which is exactly why the paper doubles the operand network.
    assert slowdowns["operand bandwidth 2 -> 1 channels"] > 1.04
    assert slowdowns["8 D-cache/LSQ banks -> 2"] > 1.02
    assert slowdowns["distributed -> centralized predictor"] > 1.01
