"""Scale sensitivity: the figure-6 conclusions must not be artifacts of
the default (small) working-set size.

Runs a representative mix at double the data scale and checks that the
qualitative orderings survive: composition still pays, the peak stays
at an intermediate-to-large size, and window utilization grows with the
longer-running kernels.
"""

from repro.harness import geomean, run_edge_benchmark, format_table

from benchmarks.conftest import save_result


MIX = ["conv", "bezier", "mcf", "mgrid"]


def test_scale_sensitivity(benchmark, results_dir):
    def run_all():
        data = {}
        for name in MIX:
            data[name] = {
                scale: {
                    n: run_edge_benchmark(name, ncores=n, scale=scale).cycles
                    for n in (1, 8, 32)
                }
                for scale in (1, 2)
            }
        return data

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in MIX:
        for scale in (1, 2):
            cycles = data[name][scale]
            rows.append([name, scale, cycles[1], cycles[8], cycles[32],
                         round(cycles[1] / cycles[8], 2),
                         round(cycles[1] / cycles[32], 2)])
    save_result(results_dir, "scale_sensitivity", format_table(
        ["benchmark", "scale", "1-core", "8-core", "32-core",
         "speedup@8", "speedup@32"], rows,
        title="Scale sensitivity: cycles and speedups at 1x and 2x data"))

    for name in MIX:
        for scale in (1, 2):
            cycles = data[name][scale]
            # Composition pays at both scales.
            assert cycles[8] < cycles[1], (name, scale)
        # Bigger data -> more work at every composition.
        assert data[name][2][1] > data[name][1][1], name

    # Larger kernels tend to scale at least as well at 8 cores: the mean
    # 8-core speedup must not collapse at 2x scale.
    s1 = geomean([data[n][1][1] / data[n][1][8] for n in MIX])
    s2 = geomean([data[n][2][1] / data[n][2][8] for n in MIX])
    assert s2 > s1 * 0.8, (s1, s2)
