"""Figure 7: performance per area (1/(cycles x mm²)).

Paper claims reproduced in shape: area efficiency peaks at one or two
cores for most benchmarks (performance grows slower than area beyond
that), and per-application BEST TFlex delivers a large (paper: 3.4x)
area-efficiency advantage over the fixed TRIPS processor.
"""

from collections import Counter

from repro.harness import fig7_area

from benchmarks.conftest import save_result


def test_fig7_area(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: fig7_area(fig6), rounds=1, iterations=1)
    save_result(results_dir, "fig7_area", result.render())

    # Area efficiency peaks at small compositions for most benchmarks.
    peaks = Counter(result.best_label(b) for b in fig6.benchmarks)
    small = peaks["tflex-1"] + peaks["tflex-2"] + peaks["tflex-4"]
    assert small >= len(fig6.benchmarks) * 0.7, peaks

    # Mean normalized perf/area decreases monotonically past 4 cores.
    means = {n: result.mean_normalized(f"tflex-{n}") for n in fig6.core_counts}
    assert means[8] > means[16] > means[32]

    # BEST-config TFlex versus TRIPS (paper: 3.4x).
    trips = result.mean_normalized("trips")
    assert result.mean_best() > 2.0 * trips
