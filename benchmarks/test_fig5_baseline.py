"""Figure 5: TRIPS baseline validation against a conventional 4-wide
out-of-order superscalar (the paper's Intel Core 2 measurements).

Shape reproduced: TRIPS clearly wins on the hand-optimized suite
(paper: 2.7x), is roughly competitive on compiled FP (paper: -3%), and
loses on compiled SPEC INT (paper: -57%) — the compiled/branchy codes
where block formation pays least.
"""

from repro.harness import fig5_baseline

from benchmarks.conftest import save_result


def test_fig5_baseline(benchmark, results_dir):
    result = benchmark.pedantic(lambda: fig5_baseline(scale=1),
                                rounds=1, iterations=1)
    save_result(results_dir, "fig5_baseline", result.render())

    hand = result.category_mean("hand")
    int_mean = result.category_mean("spec_int")
    fp_mean = result.category_mean("spec_fp")

    # TRIPS wins clearly on hand-optimized codes (paper: 2.7x)...
    assert hand > 1.3
    # ...with a much smaller edge on compiled codes, SPEC INT weakest.
    # (The paper measures TRIPS 57% *slower* on real SPEC INT and ~3%
    # slower on SPEC FP; our stand-ins are small and cache-friendly, so
    # the compiled-code deficit shrinks toward parity — the category
    # *ordering* hand > fp > int is what this harness pins.)
    assert int_mean < 1.35
    assert hand > 1.15 * fp_mean
    assert hand > 1.3 * int_mean
    assert fp_mean > int_mean * 0.95
