"""Speculation behaviour report across the suite.

Not a paper figure, but the analysis behind several of its claims: the
distributed next-block predictor must sustain high accuracy on loopy
codes for deep block speculation to pay (section 4.3), and wasted
(squashed) fetch work should stay a modest fraction.  The report prints
per-benchmark prediction accuracy, squash rates, window occupancy, and
violation counts on the 8-core configuration.
"""

from repro.harness import format_table, geomean, run_edge_benchmark
from repro.workloads import BENCHMARKS

from benchmarks.conftest import save_result


def test_speculation_report(benchmark, results_dir):
    names = sorted(BENCHMARKS)

    def run_all():
        return {name: run_edge_benchmark(name, ncores=8) for name in names}

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in names:
        stats = runs[name].stats
        rows.append([
            name,
            f"{stats.prediction_accuracy:.0%}",
            f"{stats.speculation_waste:.0%}",
            round(stats.avg_inflight_blocks, 1),
            stats.mispredictions,
            stats.violations,
            stats.nacks,
        ])
    save_result(results_dir, "speculation_report", format_table(
        ["benchmark", "bpred", "squashed", "avg inflight", "mispredicts",
         "violations", "nacks"], rows,
        title="Speculation behaviour at 8 cores"))

    accuracies = [runs[n].stats.prediction_accuracy for n in names]
    # The distributed predictor sustains useful accuracy suite-wide
    # (short kernels never leave warmup, which caps the mean here —
    # the steady-state loop tests in tests/predictor pin the >90% case).
    assert geomean([a for a in accuracies if a > 0]) > 0.5
    # ...and the loop-dominated kernels (long enough to train) predict
    # well, several of them very well.
    assert sum(1 for a in accuracies if a > 0.7) >= 10
    assert sum(1 for a in accuracies if a > 0.85) >= 5

    # Wasted fetches stay bounded: no benchmark squashes more than 60%
    # of fetched blocks, and the suite mean stays under 30%.
    wastes = [runs[n].stats.speculation_waste for n in names]
    assert max(wastes) < 0.6, max(wastes)
    assert sum(wastes) / len(wastes) < 0.30

    # Deep speculation actually happens: mean window occupancy above
    # half the 8-block frame budget on at least a third of the suite.
    deep = sum(1 for n in names if runs[n].stats.avg_inflight_blocks > 4)
    assert deep >= len(names) // 3, deep
