"""Figure 8: power efficiency (performance²/W), normalized to one core.

Paper claims reproduced in shape: the most power-efficient composition
sits between the area-efficiency peak (1-2 cores) and the performance
peak; choosing the composition per application beats any fixed TFlex
configuration (paper: +22%); and a fixed 8-core TFlex beats the TRIPS
baseline (paper: ~64%, mostly the extra idle FPUs' clock burden).
"""

from repro.harness import fig8_power

from benchmarks.conftest import save_result


def test_fig8_power(benchmark, fig6, results_dir):
    result = benchmark.pedantic(lambda: fig8_power(fig6), rounds=1, iterations=1)
    save_result(results_dir, "fig8_power", result.render())

    # The best fixed configuration is an intermediate size (paper: 8).
    best_fixed = result.best_fixed_label()
    assert best_fixed in ("tflex-2", "tflex-4", "tflex-8", "tflex-16"), best_fixed

    # Per-application choice beats any fixed configuration (paper: +22%).
    assert result.mean_best() > result.mean_normalized(best_fixed) * 1.02

    # 8-core TFlex is more power-efficient than TRIPS (paper: +64%).
    assert result.mean_normalized("tflex-8") > result.mean_normalized("trips") * 1.2
