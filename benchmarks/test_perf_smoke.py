"""Performance smoke tests: catch wall-clock regressions in the
simulator hot path.

The timed jobs:

* the figure-6 driver over the golden benchmark subset at scale=1 (the
  same sweep the golden-result suite replays bit-identically),
* a micro benchmark of the bare event-queue step loop,
* the functional interpreter loop (the sampled-simulation
  fast-forward path) over a golden program,
* the warm worker pool against per-job spawning, and
* the shared fast-forward trace store against per-job fast-forward
  interpretation over a sampled composition sweep.

Each measurement is **appended** to ``BENCH_sim.json`` at the repo root
as part of this session's run record (machine id, git sha, python
version, timings — see :mod:`repro.harness.benchrecord`), so the file
accumulates a trajectory across runs; CI uploads it as an artifact.
Times are compared against the committed baseline in
``benchmarks/BENCH_baseline.json``.  Because absolute wall-clock
differs across machines, the comparison is **calibrated**: a fixed
pure-Python spin loop is timed alongside, and the baseline is scaled by
the observed machine-speed ratio before applying the regression gate
(>25% slower than the scaled baseline fails).
"""

from __future__ import annotations

import json
import pathlib
import time

import repro.harness.runner as runner_mod
from repro.exec import ResultStore, run_specs
from repro.exec.spec import JobSpec
from repro.exec.worker import execute_spec
from repro.harness import (
    clear_cache,
    configure_cache,
    fig6_performance,
    fig6_specs,
)
from repro.harness.benchrecord import record_job
from repro.harness.golden import GOLDEN_BENCHMARKS, GOLDEN_SCALE
from repro.isa.interp import Interpreter
from repro.sample.trace import configure_ff_trace, reset_ff_trace
from repro.tflex.events import EventQueue
from repro.workloads import BENCHMARKS


ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_baseline.json"
OUTPUT_PATH = ROOT / "BENCH_sim.json"

#: Regression gate: fail when a job runs >25% slower than the
#: machine-scaled baseline.
REGRESSION_FACTOR = 1.25
#: Clamp on the calibration ratio, so a pathological calibration sample
#: cannot silently disable (or absurdly tighten) the gate.
CALIBRATION_CLAMP = (0.25, 4.0)
STEP_LOOP_EVENTS = 200_000


def calibrate() -> float:
    """Wall time of a fixed pure-Python spin loop (machine-speed probe)."""
    t0 = time.perf_counter()
    x = 0
    for i in range(2_000_000):
        x ^= i
    return time.perf_counter() - t0


def step_loop(n: int = STEP_LOOP_EVENTS) -> int:
    """Drive the bare event-queue kernel through ``n`` chained events."""
    queue = EventQueue()
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            queue.after(1, tick)

    queue.after(1, tick)
    queue.run(max_cycles=n + 10)
    return queue.events_processed


def fig6_subset_cold() -> object:
    """The golden-subset figure-6 sweep with every cache cold.

    The session-wide in-process cache is stashed and restored so this
    measurement is cold without slowing the other benchmark harnesses.
    """
    saved = dict(runner_mod._CACHE)
    runner_mod._CACHE.clear()
    configure_cache(enabled=False)
    try:
        return fig6_performance(scale=GOLDEN_SCALE,
                                benchmarks=list(GOLDEN_BENCHMARKS))
    finally:
        runner_mod._CACHE.clear()
        runner_mod._CACHE.update(saved)


def interp_loop(iterations: int = 10) -> int:
    """Functionally execute a golden program ``iterations`` times.

    This is the sampled-simulation fast-forward path: prepared blocks
    are compiled once per interpreter and reused across executions."""
    program, __, __k = BENCHMARKS["ammp"].edge_program(1)
    blocks = 0
    for _ in range(iterations):
        interp = Interpreter(program)
        result = interp.run()
        assert not result.truncated
        blocks += result.blocks_executed
    return blocks


def _record(job: str, seconds: float, calibration: float) -> None:
    record_job(OUTPUT_PATH, ROOT, job, seconds, calibration)


def _check_regression(job: str, seconds: float, calibration: float) -> None:
    baseline = json.loads(BASELINE_PATH.read_text())
    if job not in baseline:
        # New job with no committed baseline yet: record only.
        return
    ratio = calibration / baseline["calibration"]
    lo, hi = CALIBRATION_CLAMP
    ratio = min(max(ratio, lo), hi)
    allowed = baseline[job] * ratio * REGRESSION_FACTOR
    assert seconds <= allowed, (
        f"{job}: {seconds:.3f}s exceeds scaled baseline "
        f"{allowed:.3f}s (committed {baseline[job]:.3f}s, "
        f"machine ratio {ratio:.2f}, gate x{REGRESSION_FACTOR})")


def test_fig6_driver_smoke(benchmark):
    calibration = calibrate()
    result = benchmark.pedantic(fig6_subset_cold, rounds=1, iterations=1)
    assert result.mean_best_speedup() > 1.0
    seconds = benchmark.stats.stats.min
    _record("fig6_subset", seconds, calibration)
    _check_regression("fig6_subset", seconds, calibration)


def test_step_loop_smoke(benchmark):
    calibration = calibrate()
    processed = benchmark.pedantic(step_loop, rounds=3, iterations=1)
    assert processed == STEP_LOOP_EVENTS
    seconds = benchmark.stats.stats.min
    _record("step_loop", seconds, calibration)
    _check_regression("step_loop", seconds, calibration)


def _pool_vs_spawn(tmp_root: pathlib.Path) -> tuple:
    """Time the golden fig6 sweep on both executor backends.

    Both arms run under the spawn start method — the full
    process-boot + ``import repro`` per-job lifecycle the pool exists
    to amortise (fork shares the parent's warm modules and would
    understate the per-job cost on both sides).  Returns
    ``(pool_seconds, spawn_seconds, pool_store, spawn_store, specs)``.
    """
    specs = fig6_specs(scale=GOLDEN_SCALE,
                       benchmarks=list(GOLDEN_BENCHMARKS))
    pool_store = ResultStore(tmp_root / "pool")
    spawn_store = ResultStore(tmp_root / "spawn")

    t0 = time.perf_counter()
    pooled = run_specs(specs, jobs=4, store=pool_store,
                       pool=True, mp_context="spawn")
    pool_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    spawned = run_specs(specs, jobs=4, store=spawn_store,
                        pool=False, mp_context="spawn")
    spawn_seconds = time.perf_counter() - t0

    assert all(r.status == "ok" for r in pooled)
    assert all(r.status == "ok" for r in spawned)
    return pool_seconds, spawn_seconds, pool_store, spawn_store, specs


def test_pool_vs_spawn(tmp_path):
    """Acceptance: the warm pool runs the golden fig6 sweep >=1.3x
    faster than per-job spawning, with byte-identical store records."""
    calibration = calibrate()
    pool_s, spawn_s, pool_store, spawn_store, specs = _pool_vs_spawn(tmp_path)

    for spec in specs:
        a = pool_store.path_for(pool_store.key(spec)).read_bytes()
        b = spawn_store.path_for(spawn_store.key(spec)).read_bytes()
        assert a == b, f"records diverge for {spec.label()}"

    _record("fig6_pool_warm", pool_s, calibration)
    _record("fig6_spawn_perjob", spawn_s, calibration)
    _check_regression("fig6_pool_warm", pool_s, calibration)
    assert spawn_s >= 1.3 * pool_s, (
        f"warm pool not fast enough: pool {pool_s:.2f}s vs "
        f"spawn {spawn_s:.2f}s ({spawn_s / pool_s:.2f}x, need >=1.3x)")


#: Per-benchmark data scales sized so every golden benchmark commits
#: roughly 25k blocks (ammp grows quadratically with scale, the others
#: linearly), keeping the sampled sweep's fast-forward region — the
#: work the shared trace amortises — comparable across benchmarks.
SHARED_FF_SCALES = {"a2time": 2048, "ammp": 24, "bzip2": 256,
                    "conv": 192, "dither": 1024, "equake": 384,
                    "gzip": 320}
#: Fast-forward schedule: interval length chosen so each run takes two
#: detailed windows (ammp's larger block count gets a longer interval).
SHARED_FF_BLOCKS = {"ammp": 40_000}
SHARED_FF_DEFAULT_BLOCKS = 16_000
#: Acceptance floor for record-once/replay-many vs per-job
#: fast-forward.  Measured: ~2.6-2.7x on the development machine; the
#: gate is set well below so shared-CI load jitter cannot flake it,
#: while the recorded fig6_shared_ff/fig6_perjob_ff trajectory in
#: BENCH_sim.json carries the real ratio.
SHARED_FF_FLOOR = 1.8


def _shared_ff_specs() -> list:
    """7 compositions x golden subset, sampled: the fig6 core sweep
    (1..32 cores) plus the ideal-handshake ablation arm — every spec of
    one benchmark shares (program, scale, schedule), so one recorded
    trace serves all seven."""
    specs = []
    for name in GOLDEN_BENCHMARKS:
        scale = SHARED_FF_SCALES[name]
        sampling = {
            "ff_blocks": SHARED_FF_BLOCKS.get(name, SHARED_FF_DEFAULT_BLOCKS),
            "window_blocks": 12, "warmup_blocks": 4,
        }
        for n in (1, 2, 4, 8, 16, 32):
            specs.append(JobSpec.edge(name, ncores=n, scale=scale,
                                      sampling=sampling))
        specs.append(JobSpec.edge(name, ncores=32, scale=scale,
                                  ideal_handshake=True, sampling=sampling))
    return specs


def _run_ff_arm(store_root: pathlib.Path, trace_dir) -> tuple:
    """Run the sampled sweep serially in-process with the fast-forward
    trace store pointed at ``trace_dir`` (or disabled when ``None``).

    Serial execution on one worker is the honest-work comparison: the
    per-job arm interprets the fast-forward region for every
    composition, the shared arm records it once per benchmark and
    replays it for the other six.  Each arm starts from a cold program
    cache and a cold store.
    """
    clear_cache()
    configure_cache(enabled=False)
    if trace_dir is None:
        configure_ff_trace(enabled=False)
    else:
        configure_ff_trace(enabled=True, cache_dir=trace_dir)
    store = ResultStore(store_root)
    specs = _shared_ff_specs()
    t0 = time.perf_counter()
    for spec in specs:
        store.store(spec, execute_spec(spec))
    return time.perf_counter() - t0, store, specs


def test_shared_ff_vs_perjob(tmp_path):
    """Acceptance: recording each benchmark's fast-forward trace once
    and replaying it across the other six compositions beats per-job
    fast-forward interpretation by >=1.8x aggregate wall clock, with
    byte-identical result-store records."""
    calibration = calibrate()
    try:
        perjob_s, perjob_store, specs = _run_ff_arm(
            tmp_path / "perjob", None)
        shared_s, shared_store, __ = _run_ff_arm(
            tmp_path / "shared", tmp_path / "traces")
    finally:
        reset_ff_trace()
        clear_cache()
        configure_cache(enabled=False)

    for spec in specs:
        a = shared_store.path_for(shared_store.key(spec)).read_bytes()
        b = perjob_store.path_for(perjob_store.key(spec)).read_bytes()
        assert a == b, f"records diverge for {spec.label()}"

    _record("fig6_shared_ff", shared_s, calibration)
    _record("fig6_perjob_ff", perjob_s, calibration)
    _check_regression("fig6_shared_ff", shared_s, calibration)
    assert perjob_s >= SHARED_FF_FLOOR * shared_s, (
        f"shared fast-forward not fast enough: shared {shared_s:.2f}s vs "
        f"per-job {perjob_s:.2f}s ({perjob_s / shared_s:.2f}x, "
        f"need >={SHARED_FF_FLOOR}x)")


def test_interp_loop_smoke(benchmark):
    calibration = calibrate()
    blocks = benchmark.pedantic(interp_loop, rounds=3, iterations=1)
    assert blocks > 0
    seconds = benchmark.stats.stats.min
    _record("interp_loop", seconds, calibration)
    _check_regression("interp_loop", seconds, calibration)
