"""Performance smoke tests: catch wall-clock regressions in the
simulator hot path.

Two jobs, timed with pytest-benchmark:

* the figure-6 driver over the golden benchmark subset at scale=1 (the
  same sweep the golden-result suite replays bit-identically), and
* a micro benchmark of the bare event-queue step loop.

Measured times are written to ``BENCH_sim.json`` at the repo root (CI
uploads it as an artifact) and compared against the committed baseline
in ``benchmarks/BENCH_baseline.json``.  Because absolute wall-clock
differs across machines, the comparison is **calibrated**: a fixed
pure-Python spin loop is timed alongside, and the baseline is scaled by
the observed machine-speed ratio before applying the regression gate
(>25% slower than the scaled baseline fails).
"""

from __future__ import annotations

import json
import pathlib
import time

import repro.harness.runner as runner_mod
from repro.harness import clear_cache, configure_cache, fig6_performance
from repro.harness.golden import GOLDEN_BENCHMARKS, GOLDEN_SCALE
from repro.tflex.events import EventQueue


ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_baseline.json"
OUTPUT_PATH = ROOT / "BENCH_sim.json"

#: Regression gate: fail when a job runs >25% slower than the
#: machine-scaled baseline.
REGRESSION_FACTOR = 1.25
#: Clamp on the calibration ratio, so a pathological calibration sample
#: cannot silently disable (or absurdly tighten) the gate.
CALIBRATION_CLAMP = (0.25, 4.0)
STEP_LOOP_EVENTS = 200_000


def calibrate() -> float:
    """Wall time of a fixed pure-Python spin loop (machine-speed probe)."""
    t0 = time.perf_counter()
    x = 0
    for i in range(2_000_000):
        x ^= i
    return time.perf_counter() - t0


def step_loop(n: int = STEP_LOOP_EVENTS) -> int:
    """Drive the bare event-queue kernel through ``n`` chained events."""
    queue = EventQueue()
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            queue.after(1, tick)

    queue.after(1, tick)
    queue.run(max_cycles=n + 10)
    return queue.events_processed


def fig6_subset_cold() -> object:
    """The golden-subset figure-6 sweep with every cache cold.

    The session-wide in-process cache is stashed and restored so this
    measurement is cold without slowing the other benchmark harnesses.
    """
    saved = dict(runner_mod._CACHE)
    runner_mod._CACHE.clear()
    configure_cache(enabled=False)
    try:
        return fig6_performance(scale=GOLDEN_SCALE,
                                benchmarks=list(GOLDEN_BENCHMARKS))
    finally:
        runner_mod._CACHE.clear()
        runner_mod._CACHE.update(saved)


def _record(job: str, seconds: float, calibration: float) -> None:
    data = {}
    if OUTPUT_PATH.exists():
        data = json.loads(OUTPUT_PATH.read_text())
    data[job] = round(seconds, 4)
    data[f"{job}_calibration"] = round(calibration, 4)
    OUTPUT_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")


def _check_regression(job: str, seconds: float, calibration: float) -> None:
    baseline = json.loads(BASELINE_PATH.read_text())
    ratio = calibration / baseline["calibration"]
    lo, hi = CALIBRATION_CLAMP
    ratio = min(max(ratio, lo), hi)
    allowed = baseline[job] * ratio * REGRESSION_FACTOR
    assert seconds <= allowed, (
        f"{job}: {seconds:.3f}s exceeds scaled baseline "
        f"{allowed:.3f}s (committed {baseline[job]:.3f}s, "
        f"machine ratio {ratio:.2f}, gate x{REGRESSION_FACTOR})")


def test_fig6_driver_smoke(benchmark):
    calibration = calibrate()
    result = benchmark.pedantic(fig6_subset_cold, rounds=1, iterations=1)
    assert result.mean_best_speedup() > 1.0
    seconds = benchmark.stats.stats.min
    _record("fig6_subset", seconds, calibration)
    _check_regression("fig6_subset", seconds, calibration)


def test_step_loop_smoke(benchmark):
    calibration = calibrate()
    processed = benchmark.pedantic(step_loop, rounds=3, iterations=1)
    assert processed == STEP_LOOP_EVENTS
    seconds = benchmark.stats.stats.min
    _record("step_loop", seconds, calibration)
    _check_regression("step_loop", seconds, calibration)
