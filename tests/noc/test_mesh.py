"""Unit tests for the 2D mesh topology and link-reservation network."""

import pytest
from hypothesis import given, strategies as st

from repro.noc import Network, Topology


class TestTopology:
    def test_coord_roundtrip(self):
        topo = Topology(4, 8)
        for node in range(topo.num_nodes):
            x, y = topo.coord(node)
            assert topo.node(x, y) == node

    def test_bad_node_rejected(self):
        topo = Topology(4, 8)
        with pytest.raises(ValueError):
            topo.coord(32)
        with pytest.raises(ValueError):
            topo.node(4, 0)

    def test_distance_examples(self):
        topo = Topology(4, 8)
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 3) == 3          # same row
        assert topo.distance(0, 4) == 1          # one row down
        assert topo.distance(0, 31) == 3 + 7     # opposite corner

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_distance_symmetric(self, a, b):
        topo = Topology(4, 8)
        assert topo.distance(a, b) == topo.distance(b, a)

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
    def test_triangle_inequality(self, a, b, c):
        topo = Topology(4, 8)
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_route_length_is_distance(self, a, b):
        topo = Topology(4, 8)
        links = topo.route(a, b)
        assert len(links) == topo.distance(a, b)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_route_is_connected(self, a, b):
        topo = Topology(4, 8)
        node = a
        for src, dst in topo.route(a, b):
            assert src == node
            assert topo.distance(src, dst) == 1
            node = dst
        assert node == b


class TestNetwork:
    def test_zero_load_latency(self):
        net = Network(Topology(4, 8), channels=1)
        assert net.delay(0, 1, now=100) == 101
        assert net.delay(0, 5, now=200) == 202   # 2 hops

    def test_local_delivery_free(self):
        net = Network(Topology(4, 8))
        assert net.delay(3, 3, now=50) == 50
        assert net.stats.local_deliveries == 1
        assert net.stats.messages == 0

    def test_contention_serializes(self):
        net = Network(Topology(4, 1), channels=1)
        # Two messages over the same link in the same cycle: the second
        # waits one cycle for the channel.
        first = net.delay(0, 1, now=10)
        second = net.delay(0, 1, now=10)
        assert first == 11
        assert second == 12
        assert net.stats.contention_cycles == 1

    def test_two_channels_avoid_contention(self):
        net = Network(Topology(4, 1), channels=2)
        assert net.delay(0, 1, now=10) == 11
        assert net.delay(0, 1, now=10) == 11
        assert net.stats.contention_cycles == 0
        # A third message in the same cycle must wait.
        assert net.delay(0, 1, now=10) == 12

    def test_disjoint_paths_no_interference(self):
        net = Network(Topology(4, 4), channels=1)
        a = net.delay(0, 1, now=5)
        b = net.delay(8, 9, now=5)
        assert a == 6 and b == 6

    def test_hop_latency_scales(self):
        net = Network(Topology(4, 8), hop_latency=2)
        assert net.delay(0, 3, now=0) == 6

    def test_hop_latency_occupies_link(self):
        """A multi-cycle hop holds its channel for the full traversal:
        two messages over one link with hop_latency=2 serialize by two
        cycles, not one (regression: the reservation used to be a single
        cycle, overstating bandwidth)."""
        net = Network(Topology(4, 1), channels=1, hop_latency=2)
        assert net.delay(0, 1, now=10) == 12     # link busy cycles 10-11
        assert net.delay(0, 1, now=10) == 14     # waits for cycle 12
        assert net.stats.contention_cycles == 2

    def test_hop_latency_occupancy_downstream(self):
        """Occupancy applies on every hop of a longer path."""
        net = Network(Topology(4, 1), channels=1, hop_latency=3)
        assert net.delay(0, 2, now=0) == 6       # 2 hops x 3 cycles
        # Second message: first link free at 3, second link free at 6.
        assert net.delay(0, 2, now=0) == 9

    def test_stats_accumulate(self):
        net = Network(Topology(4, 8))
        net.delay(0, 3, now=0)
        net.delay(3, 0, now=10)
        assert net.stats.messages == 2
        assert net.stats.hops == 6
        assert net.average_latency == 3.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Network(Topology(2, 2), channels=0)

    @given(st.integers(0, 31), st.integers(0, 31),
           st.integers(min_value=0, max_value=1000))
    def test_delay_never_beats_zero_load(self, src, dst, now):
        net = Network(Topology(4, 8), channels=2)
        arrival = net.delay(src, dst, now)
        assert arrival >= now + net.zero_load_delay(src, dst)
