"""Router-level mesh tests, including cross-validation against the
link-reservation timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import Network, Topology
from repro.noc.router import RouterNetwork


def make(width=4, height=4, depth=4):
    return RouterNetwork(Topology(width, height), queue_depth=depth)


class TestBasics:
    def test_single_packet_zero_load(self):
        net = make()
        assert net.inject(0, 3)
        cycles = net.run_until_drained()
        # 3 hops + ejection arbitration overhead.
        assert 3 <= cycles <= 6
        assert net.stats.delivered == 1
        assert net.stats.total_hops == 3

    def test_local_delivery(self):
        net = make()
        net.inject(5, 5, payload="x")
        delivered = []
        while not delivered:
            delivered = net.step()
        assert delivered[0].payload == "x"
        assert delivered[0].hops == 0

    def test_payload_carried(self):
        seen = []
        net = RouterNetwork(Topology(2, 2),
                            on_deliver=lambda p, t: seen.append((p.payload, t)))
        net.inject(0, 3, payload=42)
        net.run_until_drained()
        assert seen[0][0] == 42

    def test_injection_backpressure(self):
        net = make(depth=1)
        assert net.inject(0, 15)
        assert not net.inject(0, 15)   # local queue full
        net.step()
        assert net.inject(0, 15)

    def test_many_packets_all_delivered(self):
        net = make()
        count = 0
        for src in range(16):
            for dst in range(16):
                if net.inject(src, dst):
                    count += 1
        net.run_until_drained()
        assert net.stats.delivered == count

    def test_contention_detected(self):
        """Many senders to one hotspot must serialize at its ejection."""
        net = make()
        for src in range(16):
            if src != 5:
                net.inject(src, 5)
        cycles = net.run_until_drained()
        assert cycles >= 15          # one ejection per cycle at the hotspot
        assert net.stats.stalls > 0

    def test_dimension_order_no_deadlock_under_load(self):
        net = make(width=4, height=8, depth=2)
        injected = 0
        for round_no in range(40):
            for node in range(32):
                if net.inject(node, (node * 7 + round_no) % 32):
                    injected += 1
            net.step()
        net.run_until_drained()
        assert net.stats.delivered == injected


class TestAgainstReservationModel:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    min_size=1, max_size=24))
    def test_latency_models_agree_roughly(self, flows):
        """Average latencies of the two models stay within a small
        factor for random traffic injected in one burst."""
        topo = Topology(4, 4)
        reservation = Network(topo, channels=1)
        arrivals = [reservation.delay(s, d, 0) for s, d in flows if s != d]
        if not arrivals:
            return
        reservation_mean = sum(arrivals) / len(arrivals)

        detailed = RouterNetwork(topo, queue_depth=64)
        pending = [f for f in flows if f[0] != f[1]]
        for s, d in pending:
            assert detailed.inject(s, d)
        detailed.run_until_drained()
        detailed_mean = detailed.stats.average_latency

        assert detailed_mean <= reservation_mean * 3 + 4
        assert reservation_mean <= detailed_mean * 3 + 4

    def test_zero_load_agreement(self):
        topo = Topology(4, 8)
        reservation = Network(topo, channels=1)
        for src, dst in ((0, 31), (3, 28), (0, 3), (12, 15)):
            expected = reservation.zero_load_delay(src, dst)
            detailed = RouterNetwork(topo)
            detailed.inject(src, dst)
            cycles = detailed.run_until_drained()
            # Detailed model adds ejection/arbitration cycles only.
            assert expected <= cycles <= expected + 3
