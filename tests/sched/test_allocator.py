"""Tests for weighted speedup and the core allocators, including a
brute-force optimality check of the DP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import (
    SpeedupTable,
    brute_force_assignment,
    fixed_cmp_assignment,
    optimal_assignment,
    symmetric_best_assignment,
    weighted_speedup,
)


def table_from(curves: dict[str, dict[int, float]]) -> SpeedupTable:
    return SpeedupTable(perf=curves)


def saturating(peak_at: int, height: float = 4.0) -> dict[int, float]:
    """A cores->perf curve rising to a peak then declining."""
    curve = {}
    for k in (1, 2, 4, 8, 16, 32):
        if k <= peak_at:
            curve[k] = height * k / peak_at
        else:
            curve[k] = height * peak_at / k * 1.5
    curve[peak_at] = height
    return curve


class TestSpeedupTable:
    def test_alone_and_best_size(self):
        table = table_from({"a": saturating(8)})
        assert table.alone("a") == 4.0
        assert table.best_size("a") == 8

    def test_missing_measurement(self):
        table = table_from({"a": {1: 1.0}})
        with pytest.raises(KeyError):
            table.performance("a", 2)


class TestWeightedSpeedup:
    def test_alone_run_scores_one(self):
        table = table_from({"a": saturating(8)})
        assert weighted_speedup(["a"], [8], table) == pytest.approx(1.0)

    def test_additive(self):
        table = table_from({"a": saturating(8), "b": saturating(4)})
        ws = weighted_speedup(["a", "b"], [8, 4], table)
        assert ws == pytest.approx(2.0)

    def test_degraded_share(self):
        table = table_from({"a": saturating(8)})
        assert weighted_speedup(["a"], [2], table) < 1.0

    def test_arity_check(self):
        table = table_from({"a": saturating(8)})
        with pytest.raises(ValueError):
            weighted_speedup(["a"], [1, 2], table)


class TestOptimalAssignment:
    def test_single_app_gets_best_size(self):
        table = table_from({"a": saturating(8)})
        ws, sizes = optimal_assignment(["a"], table)
        assert sizes == [8]
        assert ws == pytest.approx(1.0)

    def test_two_identical_apps_split(self):
        table = table_from({"a": saturating(16)})
        ws, sizes = optimal_assignment(["a", "a"], table)
        assert sum(sizes) <= 32
        assert ws > weighted_speedup(["a", "a"], [8, 8], table) - 1e-9

    def test_asymmetric_split_beats_symmetric(self):
        """An ILP-hungry and an ILP-poor app should get different sizes."""
        table = table_from({"hungry": saturating(32), "poor": saturating(2)})
        ws, sizes = optimal_assignment(["hungry", "poor"], table)
        assert sizes[0] > sizes[1]
        sym_ws, __ = symmetric_best_assignment(["hungry", "poor"], table)
        assert ws >= sym_ws - 1e-12

    def test_budget_respected(self):
        table = table_from({"a": saturating(32)})
        __, sizes = optimal_assignment(["a"] * 8, table)
        assert sum(sizes) <= 32

    def test_infeasible_rejected(self):
        table = table_from({"a": saturating(4)})
        with pytest.raises(ValueError):
            optimal_assignment(["a"] * 40, table)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4),
           st.integers(2, 12))
    def test_dp_matches_brute_force(self, apps, seed):
        import random
        rng = random.Random(seed)
        curves = {}
        for name in "abc":
            curves[name] = {k: rng.uniform(0.1, 5.0) for k in (1, 2, 4, 8, 16, 32)}
        table = table_from(curves)
        ws_dp, __ = optimal_assignment(apps, table, total_cores=16,
                                       allowed=(1, 2, 4, 8))
        ws_bf, __ = brute_force_assignment(apps, table, total_cores=16,
                                           allowed=(1, 2, 4, 8))
        assert ws_dp == pytest.approx(ws_bf)


class TestFixedCmp:
    def test_undersubscribed(self):
        table = table_from({"a": saturating(8), "b": saturating(8)})
        ws, sizes = fixed_cmp_assignment(["a", "b"], table, granularity=4)
        assert sizes == [4, 4]

    def test_oversubscribed_constant(self):
        """Paper: WS stays constant past the processor count."""
        table = table_from({"a": saturating(8)})
        ws2, __ = fixed_cmp_assignment(["a"] * 2, table, granularity=16)
        ws5, __ = fixed_cmp_assignment(["a"] * 5, table, granularity=16)
        assert ws2 == pytest.approx(ws5)

    def test_bad_granularity(self):
        table = table_from({"a": saturating(8)})
        with pytest.raises(ValueError):
            fixed_cmp_assignment(["a"], table, granularity=64)


class TestHierarchy:
    """Every *feasible* symmetric assignment (enough processors for all
    threads) lies inside the DP's search space, so the optimal
    asymmetric allocation dominates it.  Oversubscribed fixed CMPs use
    the paper's constant-WS convention and are excluded here."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8),
           st.integers(0, 100))
    def test_dominates_feasible_symmetric(self, apps, seed):
        import random
        rng = random.Random(seed)
        curves = {
            name: {k: rng.uniform(0.1, 5.0) for k in (1, 2, 4, 8, 16, 32)}
            for name in "abcd"
        }
        table = table_from(curves)
        ws_opt, __ = optimal_assignment(apps, table)
        feasible = [g for g in (1, 2, 4, 8, 16, 32) if 32 // g >= len(apps)]
        for granularity in feasible:
            ws_fixed, __ = fixed_cmp_assignment(apps, table, granularity)
            assert ws_opt >= ws_fixed - 1e-12

    def test_vb_cmp_at_least_best_fixed(self):
        table = table_from({"a": saturating(8), "b": saturating(2)})
        apps = ["a", "b", "a"]
        ws_vb, __ = symmetric_best_assignment(apps, table)
        for granularity in (1, 2, 4, 8, 16, 32):
            ws_fixed, __ = fixed_cmp_assignment(apps, table, granularity)
            assert ws_vb >= ws_fixed - 1e-12
