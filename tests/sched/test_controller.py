"""Tests for the dynamic reallocation controller (paper section 8)."""

import pytest

from repro.sched import Job, ReallocationController, SpeedupTable


def table_with(curves):
    return SpeedupTable(perf=curves)


def saturating(peak_at, height=4.0):
    curve = {}
    for k in (1, 2, 4, 8, 16, 32):
        curve[k] = height * min(k, peak_at) / peak_at * (
            1.0 if k <= peak_at else peak_at / k * 1.2)
    curve[peak_at] = height
    return curve


@pytest.fixture
def table():
    return table_with({
        "wide": saturating(16),    # ILP-hungry
        "narrow": saturating(2),   # saturates early
    })


def jobs_batch(table, count=4, work=1.0):
    names = ["wide", "narrow"]
    return [Job(name=f"j{i}", bench=names[i % 2], arrival=0.0, work=work)
            for i in range(count)]


class TestSingleJob:
    def test_runs_at_full_speed(self, table):
        controller = ReallocationController(table)
        result = controller.run([Job("a", "wide", arrival=0.0, work=2.0)])
        job = result.jobs[0]
        assert job.finish == pytest.approx(2.0)
        assert job.slowdown == pytest.approx(1.0)
        # Granted its best size.
        assert result.trace[0].running["a"] == 16

    def test_late_arrival(self, table):
        controller = ReallocationController(table)
        result = controller.run([Job("a", "narrow", arrival=5.0, work=1.0)])
        assert result.jobs[0].start == pytest.approx(5.0)
        assert result.makespan == pytest.approx(6.0)


class TestPolicies:
    def test_composable_beats_fixed_makespan(self, table):
        jobs = jobs_batch(table, count=4)
        composable = ReallocationController(table, policy="composable").run(
            [Job(j.name, j.bench, j.arrival, j.work) for j in jobs])
        fixed = ReallocationController(table, policy="fixed", granularity=4).run(
            [Job(j.name, j.bench, j.arrival, j.work) for j in jobs])
        assert composable.makespan <= fixed.makespan + 1e-9

    def test_composable_at_least_symmetric(self, table):
        jobs = jobs_batch(table, count=6)
        composable = ReallocationController(table, policy="composable").run(
            [Job(j.name, j.bench, j.arrival, j.work) for j in jobs])
        symmetric = ReallocationController(table, policy="symmetric").run(
            [Job(j.name, j.bench, j.arrival, j.work) for j in jobs])
        assert composable.mean_turnaround <= symmetric.mean_turnaround + 1e-9

    def test_fixed_queues_excess_jobs(self, table):
        controller = ReallocationController(table, policy="fixed", granularity=16)
        jobs = [Job(f"j{i}", "narrow", 0.0, 1.0) for i in range(4)]
        result = controller.run(jobs)
        first_event = result.trace[0]
        assert len(first_event.running) == 2       # 32/16 processors
        assert len(first_event.waiting) == 2
        # Queued jobs eventually finish.
        assert all(j.finish is not None for j in result.jobs)

    def test_unknown_policy_rejected(self, table):
        with pytest.raises(ValueError):
            ReallocationController(table, policy="magic")


class TestReallocation:
    def test_departure_grows_survivor(self, table):
        """When a co-runner finishes, the survivor's allocation grows."""
        controller = ReallocationController(table, policy="composable")
        jobs = [Job("short", "narrow", 0.0, 0.2),
                Job("long", "wide", 0.0, 2.0)]
        result = controller.run(jobs)
        grants = [e.running.get("long") for e in result.trace
                  if "long" in e.running]
        assert grants[-1] >= grants[0]
        assert max(grants) == 16        # eventually gets its best size

    def test_arrival_shrinks_incumbent(self, table):
        controller = ReallocationController(table, policy="composable")
        jobs = [Job("incumbent", "wide", 0.0, 3.0)] + [
            Job(f"newcomer{i}", "wide", 1.0, 1.0) for i in range(3)]
        result = controller.run(jobs)
        before = next(e.running["incumbent"] for e in result.trace
                      if e.time == 0.0)
        after = next(e.running["incumbent"] for e in result.trace
                     if e.time >= 1.0 and "incumbent" in e.running)
        assert after <= before

    def test_trace_utilization_bounded(self, table):
        controller = ReallocationController(table)
        result = controller.run(jobs_batch(table, count=8))
        utilization = result.utilization(32)
        assert 0.0 < utilization <= 1.0

    def test_work_conserved(self, table):
        """Total granted core-time implies all work completed."""
        controller = ReallocationController(table)
        jobs = jobs_batch(table, count=5, work=0.7)
        result = controller.run(jobs)
        for job in result.jobs:
            assert job.remaining == pytest.approx(0.0, abs=1e-6)
            assert job.finish >= job.arrival + job.work - 1e-9
