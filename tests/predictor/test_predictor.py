"""Unit tests for exit prediction, target prediction, and the distributed RAS."""

import pytest

from repro.isa.program import BLOCK_STRIDE
from repro.predictor import (
    BranchKind,
    DistributedRas,
    PredictorBank,
    ExitPredictor,
    TargetPredictor,
)
from repro.predictor.exits import push_history, LOCAL_HISTORY_EXITS


BASE = 0x1_0000


class TestPushHistory:
    def test_shifts_in_exit(self):
        h = push_history(0, 5, 4)
        assert h == 5
        h = push_history(h, 2, 4)
        assert h == (5 << 3) | 2

    def test_bounded(self):
        h = 0
        for __ in range(100):
            h = push_history(h, 7, LOCAL_HISTORY_EXITS)
        assert h < (1 << (3 * LOCAL_HISTORY_EXITS))


class TestExitPredictor:
    def test_learns_constant_exit(self):
        pred = ExitPredictor()
        ghist = 0
        for __ in range(8):
            p = pred.predict(3, ghist)
            pred.update(3, p, actual_exit=4)
            ghist = push_history(ghist, 4, 4)
        p = pred.predict(3, ghist)
        assert p.exit_id == 4

    def test_learns_alternating_pattern(self):
        """Exit alternates 1,2,1,2... — local history should catch it."""
        pred = ExitPredictor()
        ghist = 0
        correct = 0
        seq = [1, 2] * 40
        for actual in seq:
            p = pred.predict(7, ghist)
            if p.exit_id == actual:
                correct += 1
            pred.update(7, p, actual)
            # Repair the speculative history to the true outcome, as the
            # processor does on a misprediction.
            if p.exit_id != actual:
                pred.repair(p, actual_exit=actual)
            ghist = push_history(ghist, actual, 4)
        # After warmup the pattern must be predicted nearly always.
        assert correct > len(seq) * 0.7

    def test_repair_restores_history(self):
        pred = ExitPredictor()
        before = pred._local_hist[3 % 64]
        p = pred.predict(3, 0)
        assert pred._local_hist[3 % 64] != before or p.exit_id == 0
        pred.repair(p)
        assert pred._local_hist[3 % 64] == before

    def test_accuracy_property(self):
        pred = ExitPredictor()
        assert pred.accuracy == 0.0
        p = pred.predict(1, 0)
        pred.update(1, p, p.exit_id)
        assert pred.accuracy == 1.0


class TestTargetPredictor:
    def test_default_is_sequential(self):
        pred = TargetPredictor()
        kind, target = pred.predict(BASE, 0)
        assert kind is BranchKind.SEQ
        assert target == BASE + BLOCK_STRIDE

    def test_learns_branch_target(self):
        pred = TargetPredictor()
        taken = BASE + 5 * BLOCK_STRIDE
        pred.update(BASE, 1, BranchKind.BRANCH, taken)
        kind, target = pred.predict(BASE, 1)
        assert kind is BranchKind.BRANCH
        assert target == taken

    def test_sequential_branch_trains_as_seq(self):
        pred = TargetPredictor()
        pred.update(BASE, 0, BranchKind.BRANCH, BASE + BLOCK_STRIDE)
        kind, target = pred.predict(BASE, 0)
        assert kind is BranchKind.SEQ
        assert target == BASE + BLOCK_STRIDE

    def test_learns_call_target(self):
        pred = TargetPredictor()
        callee = BASE + 9 * BLOCK_STRIDE
        pred.update(BASE, 2, BranchKind.CALL, callee)
        kind, target = pred.predict(BASE, 2)
        assert kind is BranchKind.CALL
        assert target == callee

    def test_return_predicted_without_target(self):
        pred = TargetPredictor()
        pred.update(BASE, 0, BranchKind.RETURN, BASE + 3 * BLOCK_STRIDE)
        kind, target = pred.predict(BASE, 0)
        assert kind is BranchKind.RETURN
        assert target is None

    def test_different_exits_have_separate_targets(self):
        pred = TargetPredictor()
        t1 = BASE + 3 * BLOCK_STRIDE
        t2 = BASE + 7 * BLOCK_STRIDE
        pred.update(BASE, 0, BranchKind.BRANCH, t1)
        pred.update(BASE, 1, BranchKind.BRANCH, t2)
        assert pred.predict(BASE, 0)[1] == t1
        assert pred.predict(BASE, 1)[1] == t2

    def test_branchkind_of_opcode(self):
        assert BranchKind.of_opcode("CALLO") is BranchKind.CALL
        assert BranchKind.of_opcode("RET") is BranchKind.RETURN
        assert BranchKind.of_opcode("BRO") is BranchKind.BRANCH


class TestDistributedRas:
    def test_push_pop(self):
        ras = DistributedRas(num_cores=2, entries_per_core=16)
        ras.push(100)
        ras.push(200)
        value, __ = ras.pop()
        assert value == 200
        value, __ = ras.pop()
        assert value == 100

    def test_sequential_partitioning(self):
        """Paper: a 32-entry stack over 2 cores keeps entries 0..15 on
        core 0 and 16..31 on core 1."""
        ras = DistributedRas(num_cores=2, entries_per_core=16)
        assert ras.core_of_slot(0) == 0
        assert ras.core_of_slot(15) == 0
        assert ras.core_of_slot(16) == 1
        assert ras.core_of_slot(31) == 1

    def test_top_core_moves_with_depth(self):
        ras = DistributedRas(num_cores=2, entries_per_core=2)
        assert ras.top_core == 0
        ras.push(1)
        ras.push(2)
        assert ras.top_core == 0
        ras.push(3)
        assert ras.top_core == 1

    def test_underflow_returns_zero(self):
        ras = DistributedRas(num_cores=1)
        value, __ = ras.pop()
        assert value == 0
        assert ras.stats.underflows == 1
        assert ras.depth == 0

    def test_overflow_wraps(self):
        ras = DistributedRas(num_cores=1, entries_per_core=2)
        for i in range(3):
            ras.push(i)
        assert ras.stats.overflow_wraps == 1
        assert ras.pop()[0] == 2

    def test_restore_undoes_push(self):
        ras = DistributedRas(num_cores=1, entries_per_core=4)
        ras.push(10)
        cp = ras.push(20)
        ras.restore(cp)
        assert ras.depth == 1
        assert ras.pop()[0] == 10

    def test_restore_undoes_pop(self):
        ras = DistributedRas(num_cores=1, entries_per_core=4)
        ras.push(10)
        __, cp = ras.pop()
        ras.restore(cp)
        assert ras.depth == 1
        assert ras.pop()[0] == 10

    def test_restore_recovers_wrapped_entry(self):
        ras = DistributedRas(num_cores=1, entries_per_core=2)
        ras.push(1)
        ras.push(2)
        cp = ras.push(3)          # overwrites slot of value 1
        ras.restore(cp)
        ras.pop()
        value, __ = ras.pop()
        assert value == 1


class TestPredictorBank:
    def test_call_pushes_return_address(self):
        bank = PredictorBank()
        ras = DistributedRas(num_cores=4)
        callee = BASE + 8 * BLOCK_STRIDE
        bank.targets.update(BASE, 0, BranchKind.CALL, callee)
        prediction = bank.predict(BASE, 0, ras)
        assert prediction.kind is BranchKind.CALL
        assert prediction.next_addr == callee
        assert ras.depth == 1
        value, __ = ras.pop()
        assert value == BASE + BLOCK_STRIDE

    def test_return_pops(self):
        bank = PredictorBank()
        ras = DistributedRas(num_cores=4)
        ras.push(BASE + 2 * BLOCK_STRIDE)
        bank.targets.update(BASE, 0, BranchKind.RETURN, 0)
        prediction = bank.predict(BASE, 0, ras)
        assert prediction.kind is BranchKind.RETURN
        assert prediction.next_addr == BASE + 2 * BLOCK_STRIDE
        assert ras.depth == 0

    def test_repair_restores_ras_and_history(self):
        bank = PredictorBank()
        ras = DistributedRas(num_cores=4)
        bank.targets.update(BASE, 0, BranchKind.CALL, BASE + 8 * BLOCK_STRIDE)
        prediction = bank.predict(BASE, 0, ras)
        assert ras.depth == 1
        bank.repair(prediction, ras)
        assert ras.depth == 0

    def test_global_history_advances(self):
        bank = PredictorBank()
        ras = DistributedRas(num_cores=1)
        prediction = bank.predict(BASE, 0, ras)
        expected = push_history(0, prediction.exit_id, 4)
        assert prediction.next_global_history == expected

    def test_end_to_end_loop_training(self):
        """A 10-iteration loop block: after training, the bank predicts
        the back edge until the exit."""
        bank = PredictorBank()
        ras = DistributedRas(num_cores=1)
        loop = BASE + BLOCK_STRIDE
        ghist = 0
        correct = 0
        total = 0
        for __trip in range(30):
            for i in range(10):
                actual_exit = 0 if i < 9 else 1
                actual_target = loop if i < 9 else BASE + 2 * BLOCK_STRIDE
                prediction = bank.predict(loop, ghist, ras)
                total += 1
                if (prediction.exit_id == actual_exit
                        and prediction.next_addr == actual_target):
                    correct += 1
                else:
                    bank.repair(prediction, ras, actual_exit=actual_exit)
                bank.update(prediction, actual_exit, BranchKind.BRANCH, actual_target)
                ghist = push_history(ghist, actual_exit, 4)
        assert correct / total > 0.6


class TestSwapState:
    """O(1) state exchange: observably identical to a
    state_dict/load_state round trip in both directions (the sampled
    engine's injection/absorption path)."""

    def _trained_bank(self, seed_exit):
        bank = PredictorBank()
        ras = DistributedRas(num_cores=1)
        ghist = 0
        for i in range(40):
            addr = BASE + (i % 5) * BLOCK_STRIDE
            actual = (i + seed_exit) % 3
            prediction = bank.predict(addr, ghist, ras)
            bank.repair(prediction, ras, actual_exit=actual)
            bank.update(prediction, actual, BranchKind.BRANCH,
                        addr + BLOCK_STRIDE)
            ghist = push_history(ghist, actual, 4)
        return bank

    def test_bank_swap_exchanges_tables(self):
        a = self._trained_bank(0)
        b = self._trained_bank(1)
        state_a = a.state_dict()
        state_b = b.state_dict()
        assert state_a != state_b
        a.swap_state(b)
        assert a.state_dict() == state_b
        assert b.state_dict() == state_a
        # And back: a second swap restores the original assignment.
        a.swap_state(b)
        assert a.state_dict() == state_a

    def test_bank_swap_leaves_stats_with_owner(self):
        a = self._trained_bank(0)
        b = PredictorBank()
        exit_stats = a.exits.stats
        a.swap_state(b)
        assert a.exits.stats is exit_stats
        assert b.exits.stats.predictions == 0

    def test_exit_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExitPredictor().swap_state(ExitPredictor(local_l1=32))

    def test_target_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TargetPredictor().swap_state(TargetPredictor(btb_entries=64))

    def test_ras_swap_exchanges_stack(self):
        a = DistributedRas(num_cores=2)
        b = DistributedRas(num_cores=2)
        for value in (0x100, 0x200, 0x300):
            a.push(value)
        state_a = a.state_dict()
        state_b = b.state_dict()
        a.swap_state(b)
        assert a.state_dict() == state_b
        assert b.state_dict() == state_a
        assert b.depth == 3
        value, __ = b.pop()
        assert value == 0x300

    def test_ras_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistributedRas(num_cores=2).swap_state(
                DistributedRas(num_cores=4))
