"""Fixture: determinism pass (REP201-REP204) violations and safe idioms.

Nothing here executes — the linter only parses it.
"""

import time


def wall_clock_read():
    return time.time()                       # REP201


def entropy_read():
    import os

    return os.urandom(8)                     # REP202


def process_hash(value):
    return hash(value)                       # REP203


def identity_order(items):
    return id(items)                         # REP203


def set_for_statement(cores: set):
    total = 0
    for core in cores:                       # REP204 (for over a set)
        total += core * total
    return total


def set_comprehension():
    live = {1, 2, 3}
    return [c * 2 for c in live]             # REP204 (ordered output)


def set_into_tuple(store_ids: frozenset, limit):
    return tuple(s for s in store_ids if s < limit)   # REP204


def inferred_set_local(a, b):
    shared = set(a) | set(b)
    out = []
    for item in shared:                      # REP204 (inferred set type)
        out.append(item)
    return out


def sorted_iteration_is_fine(cores: set):
    return [c for c in sorted(cores)]        # ok: sorted imposes order


def reducers_are_fine(cores: set):
    return sum(c for c in cores), any(c > 2 for c in cores), len(cores)


def membership_is_fine(cores: set, core):
    return core in cores and not (set(cores) & {core})


def suppressed_iteration(cores: set):
    out = 0
    for core in cores:  # lint: ok(REP204) commutative accumulation
        out += core
    return out
