"""Fixture: content-hash axis pass (REP301/REP302).

Nothing here executes — the linter only parses it.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CoveredSpec:
    """Every field reaches the canonical form."""

    bench: str
    ncores: int
    verify: bool = True

    def canonical(self):
        return {"bench": self.bench, "ncores": self.ncores,
                "verify": self.verify}


@dataclass(frozen=True)
class LeakySpec:
    """``timeout`` never reaches the hash -> REP301."""

    bench: str
    ncores: int
    timeout: float = 0.0

    def canonical(self):
        return {"bench": self.bench, "ncores": self.ncores}


@dataclass(frozen=True)
class SurfacelessSpec:
    """Configured to have a ``canonical`` it does not define -> REP302."""

    bench: str
