"""Fixture: obs schema pass (REP401/REP402).

Nothing here executes — the linter only parses it.
"""


class Emitter:
    def __init__(self, obs):
        self.obs = obs

    def run(self, program):
        if self.obs.active:
            self.obs.emit("known.event", blocks=1)
            self.obs.emit("unknown.event", blocks=2)        # REP401
            self.obs.metrics.inc("known.metric")
            self.obs.metrics.inc("unknown.metric", 3)       # REP402
            self.obs.metrics.set_gauge("unknown.gauge", 1)  # REP402
            kind = "computed." + program
            self.obs.emit(kind)          # non-literal: skipped
            self.obs.emit(f"dyn.{kind}")  # f-string: skipped (runtime test)
        # Not an obs receiver — instruction emission, never flagged:
        self.program.emit("add r1, r2")
