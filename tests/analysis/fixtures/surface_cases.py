"""Fixture: transfer-surface pass (REP101) good/bad classes.

Nothing here executes — the linter only parses it.
"""


class GoodBank:
    """Every mutable attribute is read by the surface."""

    def __init__(self, entries):
        self.entries = entries            # config scalar: not state
        self._table = [0] * entries       # mutable, covered below
        self._hist = {}                   # mutable, covered below

    def train(self, key, value):
        self._table[key % self.entries] = value
        self._hist[key] = value

    def state_dict(self):
        return {"table": list(self._table), "hist": dict(self._hist)}

    def load_state(self, state):
        self._table = list(state["table"])
        self._hist = dict(state["hist"])


class BadBank:
    """``history`` is warm state the surface never reads -> REP101."""

    def __init__(self, entries):
        self.entries = entries
        self._table = [0] * entries
        self.history = []                 # mutable, never in state_dict

    def train(self, key, value):
        self._table[key % self.entries] = value
        self.history.append(key)

    def state_dict(self):
        return {"table": list(self._table)}


class LateBinder:
    """``_cursor`` is assigned outside __init__ -> state -> REP101."""

    def __init__(self):
        self._stack = []

    def push(self, value):
        self._stack.append(value)
        self._cursor = len(self._stack)

    def swap_state(self, other):
        self._stack, other._stack = other._stack, self._stack


class AllowedBank:
    """Same shape as BadBank but explicitly allow-listed."""

    def __init__(self, entries):
        self._table = [0] * entries
        self.trace = []  # lint: ok(REP101) debug trace, not warm state

    def train(self, key, value):
        self._table[key % len(self._table)] = value
        self.trace.append(key)

    def state_dict(self):
        return {"table": list(self._table)}


class NoSurface:
    """No surface methods -> the pass ignores it entirely."""

    def __init__(self):
        self.anything = []

    def poke(self):
        self.anything.append(1)
