"""REP401-REP403 — obs schema pass on the fixture emitter."""

from repro.analysis.engine import LintContext
from repro.analysis.obsnames import check_obs_names

from tests.analysis.conftest import module_named


def _ctx(doc_text=None):
    return LintContext(events=frozenset({"known.event"}),
                       metrics=frozenset({"known.metric"}),
                       doc_text=doc_text)


def _findings(fixture_modules, doc_text=None):
    mod = module_named(fixture_modules, "obs_cases")
    return check_obs_names([mod], _ctx(doc_text))


class TestObsNamesPass:
    def test_unknown_event_flagged(self, fixture_modules):
        findings = _findings(fixture_modules)
        assert any(f.rule == "REP401" and "unknown.event" in f.message
                   for f in findings)

    def test_unknown_metric_flagged_for_inc_and_gauge(self, fixture_modules):
        names = sorted(f.message.split("'")[1] for f in
                       _findings(fixture_modules) if f.rule == "REP402")
        assert names == ["unknown.gauge", "unknown.metric"]

    def test_known_names_and_non_obs_receivers_clean(self, fixture_modules):
        messages = " ".join(f.message for f in _findings(fixture_modules))
        assert "'known.event'" not in messages
        assert "'known.metric'" not in messages
        assert "add r1" not in messages          # program.emit is not obs
        assert "computed." not in messages       # non-literal skipped
        assert "dyn." not in messages            # f-string skipped

    def test_doc_cross_check(self, fixture_modules):
        findings = _findings(fixture_modules,
                             doc_text="only known.event is documented")
        undocumented = [f for f in findings if f.rule == "REP403"]
        (finding,) = undocumented
        assert "known.metric" in finding.message
        assert finding.severity == "P2"

    def test_doc_cross_check_clean_when_documented(self, fixture_modules):
        findings = _findings(
            fixture_modules, doc_text="known.event and known.metric")
        assert not [f for f in findings if f.rule == "REP403"]
