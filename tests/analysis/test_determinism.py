"""REP201-REP204 — determinism pass on the fixture functions."""

from repro.analysis.determinism import check_determinism
from repro.analysis.engine import LintContext

from tests.analysis.conftest import module_named


def _findings(fixture_modules):
    mod = module_named(fixture_modules, "determinism_cases")
    ctx = LintContext(sim_paths=("",), events=frozenset(),
                      metrics=frozenset())
    return check_determinism([mod], ctx)


def _rules_by_line(findings, mod):
    src = mod.path.read_text(encoding="utf-8").splitlines()
    return {(f.rule, src[f.line - 1].strip()) for f in findings}


class TestDeterminismPass:
    def test_wall_clock_flagged(self, fixture_modules):
        findings = _findings(fixture_modules)
        assert any(f.rule == "REP201" and "time.time" in f.message
                   for f in findings)

    def test_entropy_flagged(self, fixture_modules):
        findings = _findings(fixture_modules)
        assert any(f.rule == "REP202" and "os.urandom" in f.message
                   for f in findings)

    def test_builtin_hash_and_id_flagged(self, fixture_modules):
        findings = [f for f in _findings(fixture_modules)
                    if f.rule == "REP203"]
        assert len(findings) == 2
        assert all(f.severity == "P2" for f in findings)

    def test_set_iteration_flagged(self, fixture_modules):
        mod = module_named(fixture_modules, "determinism_cases")
        lines = {f.line for f in _findings(fixture_modules)
                 if f.rule == "REP204"}
        src = mod.lines
        flagged = {src[line - 1].strip() for line in lines}
        assert any("for core in cores" in text for text in flagged)
        assert any("for c in live" in text for text in flagged)
        assert any("for s in store_ids" in text for text in flagged)
        assert any("for item in shared" in text for text in flagged)

    def test_safe_idioms_not_flagged(self, fixture_modules):
        mod = module_named(fixture_modules, "determinism_cases")
        src = mod.lines
        flagged = {src[f.line - 1] for f in _findings(fixture_modules)}
        for text in flagged:
            assert "sorted(cores)" not in text
            assert "sum(c for c" not in text
            assert "return core in cores" not in text
            assert "lint: ok(REP204)" not in text

    def test_out_of_scope_module_skips_strict_rules(self, fixture_modules):
        mod = module_named(fixture_modules, "determinism_cases")
        ctx = LintContext(sim_paths=("nowhere/",), events=frozenset(),
                          metrics=frozenset())
        findings = check_determinism([mod], ctx)
        # REP201-203 are scoped out; REP204 still applies everywhere.
        assert all(f.rule == "REP204" for f in findings)
        assert findings
