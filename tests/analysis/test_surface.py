"""REP101 — transfer-surface completeness on the fixture classes."""

from repro.analysis.surface import check_surfaces

from tests.analysis.conftest import module_named


def _findings(fixture_modules):
    mod = module_named(fixture_modules, "surface_cases")
    return check_surfaces([mod])


def _by_class(findings):
    out = {}
    for f in findings:
        cls = f.message.split(".", 1)[0]
        out.setdefault(cls, []).append(f)
    return out


class TestSurfacePass:
    def test_bad_bank_history_is_flagged(self, fixture_modules):
        by_class = _by_class(_findings(fixture_modules))
        assert "BadBank" in by_class
        (finding,) = by_class["BadBank"]
        assert "history" in finding.message
        assert finding.rule == "REP101"
        assert finding.severity == "P1"
        assert finding.file.endswith("surface_cases.py")
        assert finding.line > 0

    def test_late_assignment_is_state(self, fixture_modules):
        by_class = _by_class(_findings(fixture_modules))
        (finding,) = by_class["LateBinder"]
        assert "_cursor" in finding.message

    def test_covered_class_is_clean(self, fixture_modules):
        assert "GoodBank" not in _by_class(_findings(fixture_modules))

    def test_inline_marker_suppresses(self, fixture_modules):
        assert "AllowedBank" not in _by_class(_findings(fixture_modules))

    def test_class_without_surface_is_ignored(self, fixture_modules):
        assert "NoSurface" not in _by_class(_findings(fixture_modules))

    def test_exactly_the_seeded_violations(self, fixture_modules):
        classes = sorted(_by_class(_findings(fixture_modules)))
        assert classes == ["BadBank", "LateBinder"]
