"""Engine-level behavior: baseline round trip, exit codes, CLI, JSON."""

import json

import pytest

from repro.analysis import (
    LintContext,
    LintError,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.cli import main

from tests.analysis.conftest import FIXTURES


def _fixture_ctx():
    return LintContext(
        sim_paths=("",),
        hash_surfaces={("fixtures/hash_cases.py", "LeakySpec"):
                       ("canonical",)},
        events=frozenset({"known.event"}),
        metrics=frozenset({"known.metric"}))


class TestBaseline:
    def test_round_trip_silences_everything(self, tmp_path):
        report = run_lint(FIXTURES, ctx=_fixture_ctx())
        assert report.findings and report.exit_code == 1

        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, report.findings)
        entries = load_baseline(baseline)
        # Keys are line-insensitive, so findings sharing rule+file+message
        # (e.g. two identical REP204s in one file) share one entry.
        assert len(entries) == len({f.key() for f in report.findings})

        again = run_lint(FIXTURES, ctx=_fixture_ctx(),
                         baseline_path=baseline)
        assert again.findings == []
        assert again.exit_code == 0
        assert len(again.grandfathered) == len(report.findings)
        assert again.stale_baseline == []

    def test_stale_entries_are_reported_not_fatal(self, tmp_path):
        report = run_lint(FIXTURES, ctx=_fixture_ctx())
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, report.findings)
        data = json.loads(baseline.read_text())
        data["findings"].append({"rule": "REP999", "file": "gone.py",
                                 "message": "long since fixed",
                                 "reason": "obsolete"})
        baseline.write_text(json.dumps(data))

        again = run_lint(FIXTURES, ctx=_fixture_ctx(),
                         baseline_path=baseline)
        assert again.exit_code == 0
        assert len(again.stale_baseline) == 1
        assert "stale" in again.render_text()

    def test_malformed_baseline_raises_lint_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(LintError):
            run_lint(FIXTURES, ctx=_fixture_ctx(), baseline_path=bad)

    def test_missing_entry_fields_raise(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps(
            {"version": 1, "findings": [{"rule": "REP101"}]}))
        with pytest.raises(LintError):
            run_lint(FIXTURES, ctx=_fixture_ctx(), baseline_path=bad)


class TestReportShapes:
    def test_json_report_is_valid_and_sorted(self):
        report = run_lint(FIXTURES, ctx=_fixture_ctx())
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["summary"]["total"] == len(report.findings)
        files = [f["file"] for f in payload["findings"]]
        severities = [f["severity"] for f in payload["findings"]]
        assert severities == sorted(severities)  # P1 before P2 before P3
        for entry in payload["findings"]:
            assert set(entry) == {"rule", "severity", "file", "line",
                                  "message", "hint"}
            assert entry["line"] >= 1
        assert all(f.startswith("fixtures/") for f in files)

    def test_rule_filter_restricts_passes(self):
        report = run_lint(FIXTURES, ctx=_fixture_ctx(), rules=("REP2",))
        assert report.findings
        assert all(f.rule.startswith("REP2") for f in report.findings)
        report = run_lint(FIXTURES, ctx=_fixture_ctx(), rules=("REP204",))
        assert report.findings
        assert all(f.rule == "REP204" for f in report.findings)


class TestCliContract:
    def test_findings_exit_one(self, capsys):
        # The fixture tree scanned with the *default* repo configuration
        # still has findings (its seeded violations), so exit is 1.
        code = main(["lint", "--root", str(FIXTURES), "--baseline", "none"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP" in out and "finding(s)" in out

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "mod.py").write_text("X = 1\n")
        code = main(["lint", "--root", str(clean), "--baseline", "none",
                     "--rules", "REP1,REP2,REP4"])
        assert code == 0

    def test_internal_error_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code = main(["lint", "--root", str(FIXTURES),
                     "--baseline", str(bad)])
        assert code == 3
        assert "internal error" in capsys.readouterr().err

    def test_json_out_file(self, tmp_path, capsys):
        out = tmp_path / "lint_findings.json"
        code = main(["lint", "--root", str(FIXTURES), "--baseline", "none",
                     "--format", "json", "--out", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["findings"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main(["lint", "--root", str(FIXTURES),
                     "--baseline", str(baseline), "--write-baseline"])
        assert code == 0
        assert baseline.is_file()
        code = main(["lint", "--root", str(FIXTURES),
                     "--baseline", str(baseline)])
        assert code == 0

    def test_bad_rules_flag_is_argparse_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--rules", "BOGUS1"])
        assert exc.value.code == 2
