"""Shared helpers: parse the fixture tree once per session."""

from pathlib import Path

import pytest

from repro.analysis import iter_modules

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def fixture_modules():
    return iter_modules(FIXTURES)


def module_named(modules, stem):
    for mod in modules:
        if mod.path.stem == stem:
            return mod
    raise AssertionError(f"no fixture module named {stem}")
