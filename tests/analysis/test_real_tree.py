"""The shipped tree must lint clean — this is the acceptance gate CI
enforces (``repro lint`` over ``src/repro`` with the repo baseline)."""

from pathlib import Path

import repro
from repro.analysis import run_lint

REPO_ROOT = Path(repro.__file__).resolve().parent.parent.parent


class TestRealTreeIsClean:
    def test_src_repro_lints_clean(self):
        report = run_lint(Path(repro.__file__).parent)
        rendered = report.render_text()
        assert report.findings == [], f"repro lint regressed:\n{rendered}"

    def test_repo_baseline_is_empty_or_justified(self):
        """The committed baseline must stay honest: every entry carries
        a real reason (no TODO stubs)."""
        import json

        baseline = REPO_ROOT / "analysis" / "baseline.json"
        if not baseline.is_file():  # pragma: no cover - layout change
            return
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["findings"]:
            assert entry.get("reason"), f"baseline entry without reason: {entry}"
            assert "TODO" not in entry["reason"], (
                f"unjustified baseline entry: {entry}")
