"""REP301/REP302 — content-hash axis coverage on the fixture specs."""

from repro.analysis.engine import LintContext
from repro.analysis.hashaxes import check_hash_axes

from tests.analysis.conftest import module_named

_REL = "fixtures/hash_cases.py"


def _ctx(surfaces):
    return LintContext(hash_surfaces=surfaces, events=frozenset(),
                       metrics=frozenset())


class TestHashAxesPass:
    def test_uncovered_field_is_flagged(self, fixture_modules):
        ctx = _ctx({(_REL, "LeakySpec"): ("canonical",)})
        findings = check_hash_axes(fixture_modules, ctx)
        (finding,) = findings
        assert finding.rule == "REP301"
        assert finding.severity == "P1"
        assert "LeakySpec.timeout" in finding.message
        assert "collide" in finding.message

    def test_covered_spec_is_clean(self, fixture_modules):
        ctx = _ctx({(_REL, "CoveredSpec"): ("canonical",)})
        assert check_hash_axes(fixture_modules, ctx) == []

    def test_missing_method_is_flagged(self, fixture_modules):
        ctx = _ctx({(_REL, "SurfacelessSpec"): ("canonical",)})
        findings = check_hash_axes(fixture_modules, ctx)
        (finding,) = findings
        assert finding.rule == "REP302"
        assert "SurfacelessSpec.canonical" in finding.message

    def test_missing_class_is_flagged(self, fixture_modules):
        ctx = _ctx({(_REL, "RenamedAway"): ("canonical",)})
        findings = check_hash_axes(fixture_modules, ctx)
        (finding,) = findings
        assert finding.rule == "REP302"
        assert "RenamedAway" in finding.message

    def test_missing_module_is_flagged(self, fixture_modules):
        ctx = _ctx({("fixtures/gone.py", "Anything"): ("canonical",)})
        findings = check_hash_axes(fixture_modules, ctx)
        (finding,) = findings
        assert finding.rule == "REP302"

    def test_real_jobspec_axes_are_covered(self):
        """The shipped configuration holds on the real tree: every
        JobSpec/SamplingConfig/FaultSchedule field reaches the hash."""
        from pathlib import Path

        import repro
        from repro.analysis import iter_modules

        modules = iter_modules(Path(repro.__file__).parent)
        findings = check_hash_axes(modules, LintContext())
        assert findings == []
