"""Meta-test: the checker must catch a deliberately broken real surface.

We take the real ``PredictorBank`` source, sever every transfer-surface
read of ``targets`` (state_dict/load_state/swap_state), and assert the
surface pass flags exactly that attribute — i.e. deleting one attribute
read from a real ``state_dict`` cannot slip through.
"""

from pathlib import Path

import repro
from repro.analysis import iter_modules
from repro.analysis.surface import check_surfaces

BANK = Path(repro.__file__).parent / "predictor" / "bank.py"

_SURFACE_READS = (
    ('                "targets": self.targets.state_dict()}',
     "                }"),
    ('        self.targets.load_state(state["targets"])',
     "        pass"),
    ("        self.targets.swap_state(other.targets)",
     "        pass"),
)


def _scan(tmp_path, source):
    (tmp_path / "bank_copy.py").write_text(source, encoding="utf-8")
    return check_surfaces(iter_modules(tmp_path))


class TestBrokenStateDictIsCaught:
    def test_pristine_bank_is_clean(self, tmp_path):
        assert _scan(tmp_path, BANK.read_text(encoding="utf-8")) == []

    def test_severed_targets_read_is_flagged(self, tmp_path):
        source = BANK.read_text(encoding="utf-8")
        for needle, replacement in _SURFACE_READS:
            assert needle in source, (
                "PredictorBank changed shape; update _SURFACE_READS")
            source = source.replace(needle, replacement)
        findings = _scan(tmp_path, source)
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "REP101"
        assert "PredictorBank.targets" in finding.message

    def test_partial_severing_is_still_covered(self, tmp_path):
        """Removing only the state_dict read keeps load_state/swap
        coverage — the pass should stay quiet (reads in *any* surface
        method count)."""
        needle, replacement = _SURFACE_READS[0]
        source = BANK.read_text(encoding="utf-8").replace(
            needle, replacement)
        assert _scan(tmp_path, source) == []
