"""Cache-directory hermeticity: test runs must never leak a
``.repro-cache/`` store into the working tree.

``resolve_cache_dir`` routes the default store to a per-process temp
path whenever pytest is driving (``PYTEST_CURRENT_TEST`` is set); an
explicit ``$REPRO_CACHE_DIR`` still wins, and outside pytest the
default remains ``.repro-cache`` in the working directory.
"""

import pathlib

from repro.harness import configure_cache, resolve_cache_dir
from repro.harness.runner import CACHE_DIR_ENV, DEFAULT_CACHE_DIR


REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_default_is_hermetic_under_pytest(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    resolved = resolve_cache_dir()
    assert resolved.name != DEFAULT_CACHE_DIR
    # Never inside the (tmp) working directory or the repository tree.
    assert tmp_path not in resolved.parents
    assert REPO_ROOT not in resolved.resolve().parents


def test_env_override_wins(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "explicit"))
    assert resolve_cache_dir() == tmp_path / "explicit"


def test_default_outside_pytest_is_cwd_store(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
    assert resolve_cache_dir() == pathlib.Path(DEFAULT_CACHE_DIR)


def test_default_enabled_store_avoids_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    try:
        store = configure_cache()  # default-enabled, no explicit dir
        assert store is not None
        root = pathlib.Path(store.root)
        assert tmp_path not in root.parents and root != tmp_path
        assert not (tmp_path / DEFAULT_CACHE_DIR).exists()
    finally:
        configure_cache(enabled=False)


def test_explicit_dir_still_honoured(tmp_path):
    try:
        store = configure_cache(cache_dir=tmp_path / "mystore")
        assert pathlib.Path(store.root) == tmp_path / "mystore"
    finally:
        configure_cache(enabled=False)
