"""Store-backed runner: warm-replay acceptance, parallel determinism,
result serialisation."""

from collections import Counter

import pytest

from repro.exec import spec_hash
from repro.harness import (
    RiscResult,
    RunResult,
    clear_cache,
    configure_cache,
    fig6_performance,
    fig6_specs,
    run_edge_benchmark,
    simulation_count,
)
from repro.power.energy import PowerBreakdown
from repro.tflex.stats import ProcStats


SUBSET = dict(core_counts=(1, 2), benchmarks=["dither"],
              include_trips=False)


@pytest.fixture
def isolated_cache(tmp_path):
    """A fresh in-process cache and a tmp-rooted store; restores the
    session's store-off default afterwards."""
    clear_cache()
    yield tmp_path
    clear_cache()
    configure_cache(enabled=False)


class TestWarmReplay:
    def test_fig6_second_run_is_pure_store_hits(self, isolated_cache):
        """Acceptance: a figure-6 sweep run twice 'in a fresh process'
        (simulated by dropping the in-process cache) re-simulates
        nothing — every point is a disk-store hit."""
        store = configure_cache(isolated_cache / "store")
        fig6_performance(**SUBSET)
        sims_after_cold = simulation_count()
        assert store.writes == 2                    # 2 points persisted
        assert store.hits == 0

        clear_cache()                               # "fresh process"
        result = fig6_performance(**SUBSET)
        assert simulation_count() == sims_after_cold   # zero re-simulation
        assert store.hits == 2
        assert result.cycles("dither", "tflex-2") > 0

    def test_store_results_equal_simulated_results(self, isolated_cache):
        store = configure_cache(isolated_cache / "store")
        cold = run_edge_benchmark("dither", ncores=2)
        clear_cache()
        warm = run_edge_benchmark("dither", ncores=2)
        assert store.hits == 1
        assert warm is not cold                     # materialised from disk
        assert warm.to_dict() == cold.to_dict()
        assert warm.stats.ipc == cold.stats.ipc
        assert warm.power.total == cold.power.total

    def test_no_cache_mode_skips_store(self, isolated_cache, monkeypatch):
        monkeypatch.chdir(isolated_cache)
        configure_cache(enabled=False)
        run_edge_benchmark("dither", ncores=1)
        assert list(isolated_cache.rglob("*.json")) == []


class TestParallelDeterminism:
    def test_jobs2_byte_identical_to_jobs1(self, isolated_cache):
        """Acceptance: --jobs 2 produces byte-identical stored records
        (and equal in-memory series) to --jobs 1."""
        specs = fig6_specs(**SUBSET)

        parallel_store = configure_cache(isolated_cache / "parallel")
        par = fig6_performance(**SUBSET, jobs=2)

        clear_cache()
        serial_store = configure_cache(isolated_cache / "serial")
        ser = fig6_performance(**SUBSET, jobs=1)

        for spec in specs:
            a = parallel_store.path_for(parallel_store.key(spec))
            b = serial_store.path_for(serial_store.key(spec))
            assert a.read_bytes() == b.read_bytes()
        for label in ("tflex-1", "tflex-2"):
            assert par.cycles("dither", label) == ser.cycles("dither", label)

    def test_parallel_results_keyed_correctly(self, isolated_cache):
        configure_cache(isolated_cache / "store")
        fig6_performance(**SUBSET, jobs=2)
        # The fan-out populated the in-process cache under the same
        # hashes the serial path uses.
        sims = simulation_count()
        run_edge_benchmark("dither", ncores=1)
        run_edge_benchmark("dither", ncores=2)
        assert simulation_count() == sims


class TestResultSerialisation:
    def _run_result(self, cycles=0):
        return RunResult(
            bench="x", label="tflex-1", num_cores=1, cycles=cycles,
            insts_committed=0, stats=ProcStats(),
            power=PowerBreakdown(watts={}, cycles=cycles, num_cores=1),
            dram_requests=0)

    def test_performance_guards_zero_cycles(self):
        assert self._run_result(cycles=0).performance == 0.0
        assert self._run_result(cycles=4).performance == 0.25

    def test_run_result_round_trip(self):
        stats = ProcStats(cycles=100, insts_committed=250, blocks_fetched=7)
        stats.fetch_latency.record(prediction=3, handoff=1)
        stats.commit_latency.record(state_update=2)
        stats.energy_events = Counter({"alu_op": 42})
        original = RunResult(
            bench="conv", label="tflex-4", num_cores=4, cycles=100,
            insts_committed=250, stats=stats,
            power=PowerBreakdown(watts={"clock": 0.5, "l2": 0.1},
                                 cycles=100, num_cores=4),
            dram_requests=9)
        restored = RunResult.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.stats.fetch_latency.mean("prediction") == 3.0
        assert restored.stats.energy_events["alu_op"] == 42
        assert restored.power.total == pytest.approx(0.6)
        assert restored.performance == original.performance

    def test_risc_result_round_trip(self):
        original = RiscResult(bench="mcf", cycles=10, insts=20,
                              mispredictions=3)
        assert RiscResult.from_dict(original.to_dict()) == original


class TestSpecKeyedCache:
    def test_typed_overrides_cached_separately(self, isolated_cache):
        """The old label-keyed cache collided int 1 with str "1"; the
        spec-keyed cache must not (satellite fix)."""
        from repro.exec import JobSpec

        a = JobSpec.edge("dither", overrides={"x": 1})
        b = JobSpec.edge("dither", overrides={"x": "1"})
        assert a.label() == b.label()
        assert spec_hash(a) != spec_hash(b)

    def test_verify_flag_part_of_key(self):
        from repro.exec import JobSpec

        assert spec_hash(JobSpec.edge("conv")) != \
            spec_hash(JobSpec.edge("conv", verify=False))
