"""Golden-result regression suite: the gate for hot-path optimizations.

Every figure driver is re-run at ``scale=1`` over the golden benchmark
subset and its summary payload is compared for *exact* equality against
the fixtures committed under ``tests/golden/`` (generated on ``main``
before the simulator fast paths landed).  Cycle counts, speedups, stat
breakdowns, energy-event counters, and power totals may not move by one
unit — any drift means an optimization changed simulation semantics,
not just wall-clock.

To bless an intentional semantic change, regenerate the fixtures::

    PYTHONPATH=src python -m repro.harness.golden tests/golden
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.golden import (
    FIXTURE_NAMES,
    collect_fixtures,
    load_fixture,
)

pytestmark = pytest.mark.slow

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"


def _normalize(payload: dict) -> dict:
    """Round-trip through JSON so live payloads compare under the same
    representation as the committed fixtures (tuples become lists, int
    dict keys become strings; floats round-trip exactly)."""
    return json.loads(json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def live_fixtures():
    """One shared driver sweep for every golden test (the in-process
    result cache makes each simulation point run exactly once)."""
    return collect_fixtures()


def test_fixture_files_present():
    missing = [n for n in FIXTURE_NAMES
               if not (GOLDEN_DIR / f"{n}.json").is_file()]
    assert not missing, f"missing golden fixtures: {missing}"


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_driver_matches_golden(live_fixtures, name):
    golden = load_fixture(GOLDEN_DIR, name)
    live = _normalize(live_fixtures[name])
    assert live.keys() == golden.keys()
    for key in golden:
        assert live[key] == golden[key], (
            f"{name}.json:{key} drifted from the golden fixture — "
            f"a simulator change altered cycle-accurate semantics")


def test_fig6_stats_cover_all_points(live_fixtures):
    """The fixture pins full stat breakdowns (not just cycles) for every
    benchmark x configuration point."""
    fig6 = _normalize(live_fixtures["fig6"])
    labels = [f"tflex-{n}" for n in fig6["core_counts"]] + ["trips"]
    for bench in fig6["benchmarks"]:
        assert sorted(fig6["stats"][bench]) == sorted(labels)
        for label in labels:
            stats = fig6["stats"][bench][label]
            assert stats["cycles"] == fig6["cycles"][bench][label]
            assert stats["energy_events"], (bench, label)
