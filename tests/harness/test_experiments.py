"""Harness tests on a small benchmark subset (full sweeps live in
benchmarks/)."""

import pytest

from repro.harness import (
    clear_cache,
    fig5_baseline,
    fig6_performance,
    fig7_area,
    fig8_power,
    fig9_protocols,
    fig10_multiprogramming,
    format_table,
    geomean,
    run_edge_benchmark,
    run_risc_benchmark,
    table2_area_power,
)


SUBSET = ["conv", "dither", "mcf"]
SMALL_CORES = (1, 2, 4)


@pytest.fixture(scope="module")
def fig6_small():
    return fig6_performance(core_counts=SMALL_CORES, benchmarks=SUBSET)


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        assert "T" in text
        assert "bb" in text
        assert "2.5" in text


class TestRunner:
    def test_caching(self):
        clear_cache()
        first = run_edge_benchmark("dither", ncores=2)
        second = run_edge_benchmark("dither", ncores=2)
        assert first is second

    def test_labels(self):
        assert run_edge_benchmark("dither", ncores=2).label == "tflex-2"
        assert run_edge_benchmark("dither", trips=True).label == "trips"
        ideal = run_edge_benchmark("dither", ncores=2, ideal_handshake=True)
        assert ideal.label == "tflex-2-ideal"

    def test_power_attached(self):
        run = run_edge_benchmark("dither", ncores=2)
        assert run.power.total > 0
        assert run.performance == pytest.approx(1.0 / run.cycles)

    def test_risc_runner(self):
        result = run_risc_benchmark("dither")
        assert result.cycles > 0
        assert result.insts > 0


class TestFig6:
    def test_structure(self, fig6_small):
        assert fig6_small.benchmarks == SUBSET
        for bench in SUBSET:
            assert fig6_small.speedup(bench, "tflex-1") == pytest.approx(1.0)
            assert fig6_small.best_speedup(bench) >= 1.0
        assert "Figure 6" in fig6_small.render()

    def test_speedup_table_for_sched(self, fig6_small):
        table = fig6_small.speedup_table()
        for bench in SUBSET:
            assert table.alone(bench) > 0
            assert set(table.perf[bench]) == set(SMALL_CORES)


class TestDownstreamFigures:
    def test_fig7(self, fig6_small):
        result = fig7_area(fig6_small)
        # Normalized to one core by definition.
        for bench in SUBSET:
            assert result.normalized(bench, "tflex-1") == pytest.approx(1.0)
        # Doubling cores at sub-2x speedup lowers perf/area.
        assert result.mean_normalized("tflex-4") < 2.0
        assert "Figure 7" in result.render()

    def test_fig8(self, fig6_small):
        result = fig8_power(fig6_small)
        for bench in SUBSET:
            assert result.normalized(bench, "tflex-1") == pytest.approx(1.0)
        assert result.best_fixed_label() in [f"tflex-{n}" for n in SMALL_CORES]
        assert "Figure 8" in result.render()

    def test_fig10(self, fig6_small):
        result = fig10_multiprogramming(
            fig6_small, sizes=(2, 4), granularities=(1, 2, 4),
            workloads_per_size=3)
        for m in (2, 4):
            assert result.ws[m]["TFlex"] >= result.ws[m]["VB-CMP"] - 1e-9
            for g in (1, 2, 4):
                assert result.ws[m]["TFlex"] >= result.ws[m][f"CMP-{g}"] - 1e-9
        assert 0 < result.ws[2]["TFlex"] <= 2.0 + 1e-9
        assert "Figure 10" in result.render()

    def test_table2(self, fig6_small):
        fig6_with_8 = fig6_performance(core_counts=(1, 8), benchmarks=["dither"])
        result = table2_area_power(fig6_with_8)
        assert sum(result.trips_power.values()) > 0
        assert "Table 2" in result.render()


class TestFig5AndFig9Small:
    def test_fig5_subset(self):
        result = fig5_baseline(benchmarks=["conv", "dither"])
        assert set(result.ratios) == {"conv", "dither"}
        assert all(r > 0 for r in result.ratios.values())
        assert "Figure 5" in result.render()

    def test_fig9_subset(self):
        result = fig9_protocols(core_counts=(1, 4), benchmarks=["dither"])
        assert result.fetch[1]["prediction"] == 0
        assert result.fetch[4]["prediction"] == 3
        assert result.commit[4]["handshake"] > 0
        # Ideal handshakes usually help; small negative values are
        # legitimate second-order speculation-timing effects.
        assert -0.15 <= result.mean_ablation_impact() < 0.6
        assert "Figure 9a" in result.render()
