"""Unit and integration tests for the store-set dependence predictor."""

import pytest
from dataclasses import replace

from repro.isa import Interpreter
from repro.lsq.storeset import StoreSetPredictor
from repro.tflex import run_program, tflex_config
from repro.workloads import BENCHMARKS, verify_edge_run


class _FakeInstance:
    def __init__(self, gseq, label, store_ids, resolved, squashed=False):
        self.gseq = gseq
        self.squashed = squashed
        self.resolved_store_slots = set(resolved)

        class _B:
            pass
        self.block = _B()
        self.block.label = label
        self.block.store_ids = frozenset(store_ids)


class TestPredictorUnit:
    def test_untracked_load_never_waits(self):
        pred = StoreSetPredictor()
        assert not pred.must_wait(("L", 0), 5, 0, [])
        assert not pred.tracked(("L", 0))

    def test_waits_for_unresolved_predicted_store(self):
        pred = StoreSetPredictor()
        pred.record_violation(("load_blk", 2), ("store_blk", 1))
        older = _FakeInstance(3, "store_blk", store_ids={1}, resolved=set())
        assert pred.must_wait(("load_blk", 2), 7, 2, [older])
        older.resolved_store_slots.add(1)
        assert not pred.must_wait(("load_blk", 2), 7, 2, [older])

    def test_ignores_younger_instances(self):
        pred = StoreSetPredictor()
        pred.record_violation(("load_blk", 2), ("store_blk", 1))
        younger = _FakeInstance(9, "store_blk", store_ids={1}, resolved=set())
        assert not pred.must_wait(("load_blk", 2), 7, 2, [younger])

    def test_same_block_program_order(self):
        pred = StoreSetPredictor()
        pred.record_violation(("blk", 5), ("blk", 2))
        same = _FakeInstance(7, "blk", store_ids={2}, resolved=set())
        # Store lsq 2 is older than load lsq 5 within the same block.
        assert pred.must_wait(("blk", 5), 7, 5, [same])
        # But a predicted store *after* the load never blocks it.
        pred2 = StoreSetPredictor()
        pred2.record_violation(("blk", 1), ("blk", 6))
        assert not pred2.must_wait(("blk", 1), 7, 1, [same])

    def test_ignores_unrelated_stores(self):
        pred = StoreSetPredictor()
        pred.record_violation(("load_blk", 2), ("store_blk", 1))
        other = _FakeInstance(3, "other_blk", store_ids={1}, resolved=set())
        assert not pred.must_wait(("load_blk", 2), 7, 2, [other])

    def test_set_size_bounded(self):
        pred = StoreSetPredictor(max_set=2)
        for lsq in range(5):
            pred.record_violation(("L", 0), ("S", lsq))
        assert len(pred.store_set(("L", 0))) <= 2

    def test_lru_eviction(self):
        pred = StoreSetPredictor(max_loads=2)
        pred.record_violation(("a", 0), ("s", 0))
        pred.record_violation(("b", 0), ("s", 0))
        pred.record_violation(("c", 0), ("s", 0))
        assert not pred.tracked(("a", 0))
        assert pred.tracked(("b", 0)) and pred.tracked(("c", 0))
        assert pred.stats.evictions == 1


class TestIntegration:
    @pytest.mark.parametrize("name", ["histogram_like", "parser", "twolf"])
    def test_correct_with_store_sets(self, name):
        """Benchmarks with read-modify-write traffic stay correct under
        store-set throttling."""
        bench = "gcc" if name == "histogram_like" else name
        program, expected, kernel = BENCHMARKS[bench].edge_program()
        cfg = replace(tflex_config(8), store_sets=True)
        proc = run_program(program, num_cores=8, cfg=cfg, max_cycles=3_000_000)
        verify_edge_run(kernel, proc.memory, expected)

    def test_store_sets_not_slower_overall(self):
        """On violation-prone workloads the selective throttle should be
        at worst mildly slower and often faster than the blunt rule."""
        ratios = []
        for name in ("gcc", "parser", "mcf", "dither"):
            program, __, __k = BENCHMARKS[name].edge_program()
            base = run_program(program, num_cores=8,
                               max_cycles=3_000_000).stats.cycles
            program2, __e, __k2 = BENCHMARKS[name].edge_program()
            cfg = replace(tflex_config(8), store_sets=True)
            with_sets = run_program(program2, num_cores=8, cfg=cfg,
                                    max_cycles=3_000_000).stats.cycles
            ratios.append(with_sets / base)
        assert sum(ratios) / len(ratios) < 1.1, ratios
