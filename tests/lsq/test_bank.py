"""Unit tests for the LSQ bank: forwarding, violations, NACK overflow."""

import pytest
from hypothesis import given, strategies as st

from repro.lsq import LsqBank, LsqResult


def make(capacity=8):
    return LsqBank(capacity=capacity, name="t")


class TestBasics:
    def test_load_with_no_stores(self):
        bank = make()
        outcome = bank.load(gseq=1, lsq_id=0, addr=0x100, size=8)
        assert outcome.result is LsqResult.OK
        assert bank.occupancy == 1

    def test_store_then_load_forwards(self):
        bank = make()
        bank.store(gseq=1, lsq_id=0, addr=0x100, size=8, value=42)
        outcome = bank.load(gseq=1, lsq_id=1, addr=0x100, size=8)
        assert outcome.result is LsqResult.FORWARD
        assert outcome.value == 42

    def test_forward_youngest_older_store(self):
        bank = make()
        bank.store(gseq=1, lsq_id=0, addr=0x100, size=8, value=1)
        bank.store(gseq=2, lsq_id=0, addr=0x100, size=8, value=2)
        outcome = bank.load(gseq=3, lsq_id=0, addr=0x100, size=8)
        assert outcome.result is LsqResult.FORWARD
        assert outcome.value == 2

    def test_younger_store_not_forwarded(self):
        bank = make()
        bank.store(gseq=5, lsq_id=0, addr=0x100, size=8, value=9)
        outcome = bank.load(gseq=3, lsq_id=0, addr=0x100, size=8)
        assert outcome.result is LsqResult.OK

    def test_same_block_order_respected(self):
        bank = make()
        bank.store(gseq=1, lsq_id=5, addr=0x100, size=8, value=7)
        # Load earlier in program order than the store: no forwarding.
        outcome = bank.load(gseq=1, lsq_id=2, addr=0x100, size=8)
        assert outcome.result is LsqResult.OK

    def test_different_address_not_forwarded(self):
        bank = make()
        bank.store(gseq=1, lsq_id=0, addr=0x100, size=8, value=7)
        outcome = bank.load(gseq=1, lsq_id=1, addr=0x180, size=8)
        assert outcome.result is LsqResult.OK


class TestViolations:
    def test_store_after_younger_load_violates(self):
        bank = make()
        bank.load(gseq=4, lsq_id=0, addr=0x100, size=8)
        outcome = bank.store(gseq=2, lsq_id=0, addr=0x100, size=8, value=1)
        assert outcome.result is LsqResult.CONFLICT
        assert outcome.violation_gseq == 4
        assert bank.stats.violations == 1

    def test_oldest_violator_reported(self):
        bank = make()
        bank.load(gseq=6, lsq_id=0, addr=0x100, size=8)
        bank.load(gseq=4, lsq_id=1, addr=0x100, size=8)
        outcome = bank.store(gseq=2, lsq_id=0, addr=0x100, size=8, value=1)
        assert outcome.violation_gseq == 4

    def test_same_block_violation(self):
        bank = make()
        bank.load(gseq=3, lsq_id=7, addr=0x100, size=8)
        outcome = bank.store(gseq=3, lsq_id=2, addr=0x100, size=8, value=1)
        assert outcome.result is LsqResult.CONFLICT
        assert outcome.violation_gseq == 3

    def test_no_violation_for_older_load(self):
        bank = make()
        bank.load(gseq=1, lsq_id=0, addr=0x100, size=8)
        outcome = bank.store(gseq=2, lsq_id=0, addr=0x100, size=8, value=1)
        assert outcome.result is LsqResult.OK

    def test_partial_overlap_conflict_on_load(self):
        bank = make()
        bank.store(gseq=1, lsq_id=0, addr=0x100, size=8, value=1)
        outcome = bank.load(gseq=1, lsq_id=1, addr=0x104, size=4)
        assert outcome.result is LsqResult.CONFLICT

    def test_int_fp_type_change_conflicts(self):
        bank = make()
        bank.store(gseq=1, lsq_id=0, addr=0x100, size=8, value=1.5, fp=True)
        outcome = bank.load(gseq=1, lsq_id=1, addr=0x100, size=8, fp=False)
        assert outcome.result is LsqResult.CONFLICT


class TestOverflow:
    def test_nack_when_full(self):
        bank = make(capacity=2)
        assert bank.load(1, 0, 0x100, 8).result is LsqResult.OK
        assert bank.load(1, 1, 0x108, 8).result is LsqResult.OK
        assert bank.load(1, 2, 0x110, 8).result is LsqResult.NACK
        assert bank.store(1, 3, 0x118, 8, 0).result is LsqResult.NACK
        assert bank.stats.nacks == 2
        assert bank.occupancy == 2

    def test_retry_after_release_succeeds(self):
        bank = make(capacity=1)
        bank.load(1, 0, 0x100, 8)
        assert bank.load(2, 0, 0x108, 8).result is LsqResult.NACK
        bank.release_block(1)
        assert bank.load(2, 0, 0x108, 8).result is LsqResult.OK


class TestLifecycle:
    def test_release_block_removes_entries(self):
        bank = make()
        bank.load(1, 0, 0x100, 8)
        bank.store(1, 1, 0x108, 8, 5)
        bank.load(2, 0, 0x110, 8)
        assert bank.release_block(1) == 2
        assert bank.occupancy == 1

    def test_squash_from_removes_younger(self):
        bank = make()
        bank.load(1, 0, 0x100, 8)
        bank.load(2, 0, 0x108, 8)
        bank.load(3, 0, 0x110, 8)
        assert bank.squash_from(2) == 2
        assert bank.occupancy == 1
        assert bank.entries_snapshot()[0].gseq == 1

    def test_stores_of_block_in_lsq_order(self):
        bank = make()
        bank.store(1, 5, 0x100, 8, "b")
        bank.store(1, 2, 0x108, 8, "a")
        bank.store(2, 0, 0x110, 8, "x")
        drain = bank.stores_of_block(1)
        assert [e.lsq_id for e in drain] == [2, 5]

    @given(st.lists(st.tuples(st.integers(1, 5), st.integers(0, 31),
                              st.booleans()), max_size=40))
    def test_occupancy_never_exceeds_capacity(self, ops):
        bank = make(capacity=10)
        for gseq, lsq_id, is_store in ops:
            if is_store:
                bank.store(gseq, lsq_id, 0x100 + 8 * lsq_id, 8, 0)
            else:
                bank.load(gseq, lsq_id, 0x100 + 8 * lsq_id, 8)
        assert bank.occupancy <= 10
        assert bank.stats.peak_occupancy <= 10
