"""Unit tests for the generic cache bank and the NUCA L2 + directory."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import CacheBank, LineState
from repro.mem.dram import Dram
from repro.mem.l2 import L2System
from repro.noc import Topology


class TestCacheBank:
    def make(self, size=1024, assoc=2, line=64):
        return CacheBank(size, assoc, line, name="t")

    def test_geometry(self):
        bank = self.make()
        assert bank.num_sets == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheBank(100, 2, 64)
        with pytest.raises(ValueError):
            CacheBank(1024, 2, 48)     # non power-of-two line

    def test_miss_then_hit(self):
        bank = self.make()
        assert not bank.access(0, 0x1000)
        bank.fill(0, 0x1000)
        assert bank.access(0, 0x1000)
        assert bank.access(0, 0x103F)      # same line
        assert not bank.access(0, 0x1040)  # next line
        assert bank.stats.reads == 4
        assert bank.stats.read_misses == 2

    def test_contexts_do_not_alias(self):
        bank = self.make()
        bank.fill(0, 0x1000)
        assert bank.probe(1, 0x1000) is None
        assert not bank.access(1, 0x1000)

    def test_lru_eviction(self):
        bank = self.make(size=256, assoc=2, line=64)  # 2 sets
        # Set 0 holds lines 0x000, 0x080, 0x100... (stride 2*64)
        bank.fill(0, 0x000)
        bank.fill(0, 0x080)
        bank.access(0, 0x000)              # make 0x080 the LRU
        victim = bank.fill(0, 0x100)
        assert victim is not None
        assert victim.line_addr == 0x080
        assert bank.probe(0, 0x000) is not None

    def test_dirty_eviction_counts_writeback(self):
        bank = self.make(size=128, assoc=1, line=64)
        bank.fill(0, 0x000, state=LineState.MODIFIED)
        victim = bank.fill(0, 0x080)       # same set, evicts dirty line
        assert victim.state is LineState.MODIFIED
        assert bank.stats.writebacks == 1

    def test_upgrade_and_invalidate(self):
        bank = self.make()
        bank.fill(0, 0x2000)
        bank.upgrade(0, 0x2000)
        assert bank.probe(0, 0x2000).state is LineState.MODIFIED
        line = bank.invalidate(0, 0x2000)
        assert line is not None
        assert bank.probe(0, 0x2000) is None
        assert bank.invalidate(0, 0x2000) is None

    def test_upgrade_absent_raises(self):
        bank = self.make()
        with pytest.raises(KeyError):
            bank.upgrade(0, 0x3000)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_occupancy_bounded(self, line_numbers):
        bank = self.make(size=512, assoc=2, line=64)
        for n in line_numbers:
            if not bank.access(0, n * 64):
                bank.fill(0, n * 64)
        assert bank.resident_lines() <= 8


class TestDram:
    def test_unloaded_latency(self):
        dram = Dram(latency=150, issue_gap=4)
        assert dram.request(1000) == 1150

    def test_bandwidth_gate(self):
        dram = Dram(latency=150, issue_gap=4)
        assert dram.request(0) == 150
        assert dram.request(0) == 154
        assert dram.request(0) == 158
        assert dram.stats.queue_cycles == 4 + 8

    def test_idle_gap_not_charged(self):
        dram = Dram(latency=100, issue_gap=4)
        dram.request(0)
        assert dram.request(50) == 150
        assert dram.stats.queue_cycles == 0


class TestL2System:
    def make(self):
        topo = Topology(4, 8)
        l1s = {core: CacheBank(8 * 1024, 2, 64, name=f"l1d{core}") for core in range(32)}
        l2 = L2System(topo, l1_banks=lambda c: l1s[c], dram=Dram(latency=150))
        return l2, l1s

    def test_unloaded_latency_range(self):
        l2, __ = self.make()
        lats = [l2.unloaded_latency(core, addr)
                for core in range(32) for addr in range(0, 32 * 64, 64)]
        assert min(lats) == 5
        # Paper: L2 hit latency varies from 5 to 27 cycles.
        assert 23 <= max(lats) <= 31

    def test_read_miss_goes_to_dram(self):
        l2, __ = self.make()
        done, state = l2.read(ctx=0, addr=0x4000, core=0, now=0)
        assert state is LineState.SHARED
        assert done >= 150
        assert l2.stats.misses == 1

    def test_second_read_hits(self):
        l2, __ = self.make()
        first, __s = l2.read(0, 0x4000, core=0, now=0)
        second, __s = l2.read(0, 0x4000, core=1, now=first)
        assert second - first == l2.unloaded_latency(1, 0x4000)
        assert l2.stats.hits == 1

    def test_write_invalidates_sharers(self):
        l2, l1s = self.make()
        done, state = l2.read(0, 0x8000, core=0, now=0)
        l1s[0].fill(0, 0x8000, state)
        l2.read(0, 0x8000, core=1, now=done)
        l1s[1].fill(0, 0x8000, LineState.SHARED)

        __, wstate = l2.write(0, 0x8000, core=2, now=2 * done)
        assert wstate is LineState.MODIFIED
        assert l1s[0].probe(0, 0x8000) is None
        assert l1s[1].probe(0, 0x8000) is None
        assert l2.stats.invalidation_msgs == 2

    def test_dirty_forward_on_read(self):
        l2, l1s = self.make()
        done, state = l2.write(0, 0xC000, core=3, now=0)
        l1s[3].fill(0, 0xC000, state)

        done2, state2 = l2.read(0, 0xC000, core=7, now=done)
        assert state2 is LineState.SHARED
        assert l2.stats.forwards == 1
        # Previous owner downgraded to SHARED, both are sharers now.
        assert l1s[3].probe(0, 0xC000).state is LineState.SHARED
        entry = l2.directory[(0, 0xC000)]
        assert entry.owner is None
        assert entry.sharers == {3, 7}

    def test_l1_eviction_clears_directory(self):
        l2, l1s = self.make()
        l2.read(0, 0x4000, core=0, now=0)
        l2.l1_evicted(0, 0x4000, core=0)
        assert (0, 0x4000) not in l2.directory

    def test_bank_interleaving_covers_all_banks(self):
        l2, __ = self.make()
        banks = {l2.bank_of(addr) for addr in range(0, 64 * 64, 64)}
        assert banks == set(range(32))

    def test_contexts_isolated(self):
        l2, __ = self.make()
        l2.read(0, 0x4000, core=0, now=0)
        __, state = l2.read(1, 0x4000, core=0, now=0)
        assert l2.stats.misses == 2   # different context: own line

    def test_l2_eviction_recalls_l1_lines(self):
        """When the L2 evicts a line, any L1 copies are recalled —
        inclusion is maintained so directory state stays precise."""
        topo = Topology(4, 8)
        l1s = {c: CacheBank(8 * 1024, 2, 64, name=f"l1d{c}") for c in range(32)}
        # A tiny L2 so one set overflows quickly: 8 lines, 2-way.
        l2 = L2System(topo, num_banks=1, bank_bytes=8 * 64, assoc=2,
                      l1_banks=lambda c: l1s[c], dram=Dram(latency=10))
        victim_addr = 0x0
        done, state = l2.read(0, victim_addr, core=0, now=0)
        l1s[0].fill(0, victim_addr, state)
        assert l1s[0].probe(0, victim_addr) is not None
        # Two more lines mapping to the same L2 set (set stride = 4 lines).
        l2.read(0, 4 * 64, core=1, now=done)
        l2.read(0, 8 * 64, core=1, now=done)
        assert l1s[0].probe(0, victim_addr) is None
        assert l2.stats.recalls == 1
        assert (0, victim_addr) not in l2.directory


class TestSwapLines:
    """O(1) warm-state exchange: observably identical to an
    export_lines/import_lines round trip in each direction."""

    def make(self, size=1024, assoc=2, line=64):
        return CacheBank(size, assoc, line, name="t")

    def _filled(self, stride):
        bank = self.make()
        for i in range(6):
            bank.fill(0, stride * (i + 1))
            bank.access(0, stride * (i + 1))
        return bank

    def test_swap_exchanges_lines(self):
        a = self._filled(0x40)
        b = self._filled(0x1000)
        lines_a = a.export_lines()
        lines_b = b.export_lines()
        assert lines_a != lines_b
        a.swap_lines(b)
        assert a.export_lines() == lines_b
        assert b.export_lines() == lines_a
        a.swap_lines(b)
        assert a.export_lines() == lines_a

    def test_swap_matches_import_roundtrip(self):
        """The swap and the snapshot round trip land on identical
        observable state — including LRU order (the eviction victim)."""
        a = self._filled(0x40)
        b = self.make()
        via_swap = self.make()
        via_swap.import_lines(a.export_lines())
        reference = self.make()
        reference.import_lines(a.export_lines())

        a.swap_lines(b)
        assert b.export_lines() == reference.export_lines()
        assert a.export_lines() == self.make().export_lines()
        # Same victim under pressure on both copies.
        set0 = next(sets for sets in b.export_lines() if sets)
        assert set0 == next(s for s in reference.export_lines() if s)

    def test_swap_leaves_stats_with_owner(self):
        a = self._filled(0x40)
        b = self.make()
        reads = a.stats.reads
        a.swap_lines(b)
        assert a.stats.reads == reads
        assert b.stats.reads == 0

    def test_swap_geometry_mismatch_rejected(self):
        for other in (self.make(size=512),
                      self.make(assoc=4),
                      self.make(line=32)):
            with pytest.raises(ValueError):
                self.make().swap_lines(other)
