"""Unit tests for the flat paged memory."""

import struct

from hypothesis import given, strategies as st

from repro.isa.opcodes import INT_MAX, INT_MIN
from repro.mem import FlatMemory


class TestRawAccess:
    def test_zero_initialized(self):
        mem = FlatMemory()
        assert mem.read_bytes(0x1234, 8) == b"\x00" * 8

    def test_write_read_roundtrip(self):
        mem = FlatMemory()
        mem.write_bytes(0x100, b"hello world")
        assert mem.read_bytes(0x100, 11) == b"hello world"

    def test_cross_page_access(self):
        mem = FlatMemory()
        addr = 4096 - 3
        mem.write_bytes(addr, b"abcdef")
        assert mem.read_bytes(addr, 6) == b"abcdef"
        assert mem.footprint_pages() == 2

    @given(st.integers(0, 1 << 20), st.binary(min_size=1, max_size=64))
    def test_roundtrip_property(self, addr, raw):
        mem = FlatMemory()
        mem.write_bytes(addr, raw)
        assert mem.read_bytes(addr, len(raw)) == raw


class TestTypedAccess:
    @given(st.integers(INT_MIN, INT_MAX))
    def test_int64_roundtrip(self, value):
        mem = FlatMemory()
        mem.store(0x200, 8, value)
        assert mem.load(0x200, 8) == value

    def test_small_sizes_zero_extend(self):
        mem = FlatMemory()
        mem.store(0x300, 1, -1)        # 0xFF
        assert mem.load(0x300, 1) == 0xFF
        mem.store(0x310, 4, -1)
        assert mem.load(0x310, 4) == 0xFFFFFFFF

    def test_truncation(self):
        mem = FlatMemory()
        mem.store(0x400, 1, 0x1FF)
        assert mem.load(0x400, 1) == 0xFF

    @given(st.floats(allow_nan=False))
    def test_double_roundtrip(self, value):
        mem = FlatMemory()
        mem.store(0x500, 8, value, fp=True)
        assert mem.load(0x500, 8, fp=True) == value

    def test_int_float_bitcast(self):
        mem = FlatMemory()
        mem.store(0x600, 8, 1.5, fp=True)
        bits = mem.load(0x600, 8)
        expected = struct.unpack("<q", struct.pack("<d", 1.5))[0]
        assert bits == expected

    def test_load_image_and_read_words(self):
        mem = FlatMemory()
        raw = struct.pack("<3q", 10, -20, 30)
        mem.load_image({0x700: raw})
        assert mem.read_words(0x700, 3) == [10, -20, 30]
