"""CLI smoke tests (fast paths only; full figures live in benchmarks/)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["run", "conv"], ["sweep", "conv"],
                     ["disasm", "conv"], ["fig5"], ["fig6"], ["fig10"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "conv"])
        assert args.cores == 8
        assert args.machine == "tflex"
        assert args.scale == 1

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "conv" in out
        assert "spec_fp" in out

    def test_run_tflex(self, capsys):
        assert main(["run", "dither", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "tflex-2" in out
        assert "cycles" in out

    def test_run_ooo(self, capsys):
        assert main(["run", "dither", "--machine", "ooo"]) == 0
        assert "OoO baseline" in capsys.readouterr().out

    def test_run_trips(self, capsys):
        assert main(["run", "dither", "--machine", "trips"]) == 0
        assert "trips" in capsys.readouterr().out

    def test_disasm(self, capsys):
        assert main(["disasm", "tblook"]) == 0
        out = capsys.readouterr().out
        assert "block main_0" in out
        assert "LDD" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "dither", "--cores", "4", "--blocks", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "blocks committed" in out
