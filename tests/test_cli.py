"""CLI smoke tests (fast paths only; full figures live in benchmarks/)."""

import pytest

from repro.cli import build_parser, main
from repro.harness import clear_cache, configure_cache, resolve_cache_dir


@pytest.fixture(autouse=True)
def _store_off_after(tmp_path, monkeypatch):
    """main() applies --cache-dir/--no-cache globally; keep any store a
    command enables inside tmp_path, start from a cold in-process cache
    (so store behaviour is deterministic), and restore the hermetic
    default afterwards."""
    monkeypatch.chdir(tmp_path)
    clear_cache()
    yield
    clear_cache()
    configure_cache(enabled=False)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["run", "conv"], ["sweep", "conv"],
                     ["disasm", "conv"], ["fig5"], ["fig6"], ["fig10"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "conv"])
        assert args.cores == 8
        assert args.machine == "tflex"
        assert args.scale == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_exec_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True
        args = build_parser().parse_args(["sweep", "conv", "--jobs", "2"])
        assert args.jobs == 2

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "conv" in out
        assert "spec_fp" in out

    def test_run_tflex(self, capsys, tmp_path):
        assert main(["run", "dither", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "tflex-2" in out
        assert "cycles" in out
        # The default store landed in the hermetic pytest location, not
        # the working directory.
        assert list(resolve_cache_dir().rglob("*.json"))
        assert not (tmp_path / ".repro-cache").exists()

    def test_run_no_cache(self, capsys, tmp_path):
        assert main(["run", "dither", "--cores", "2", "--no-cache"]) == 0
        assert "tflex-2" in capsys.readouterr().out
        assert not (tmp_path / ".repro-cache").exists()

    def test_cache_dir_collides_with_file(self, capsys, tmp_path):
        (tmp_path / "notadir").write_text("")
        assert main(["run", "dither", "--cache-dir", "notadir"]) == 2
        err = capsys.readouterr().err
        assert "not a directory" in err
        assert "Traceback" not in err

    def test_run_ooo(self, capsys):
        assert main(["run", "dither", "--machine", "ooo"]) == 0
        assert "OoO baseline" in capsys.readouterr().out

    def test_run_trips(self, capsys):
        assert main(["run", "dither", "--machine", "trips"]) == 0
        assert "trips" in capsys.readouterr().out

    def test_disasm(self, capsys):
        assert main(["disasm", "tblook"]) == 0
        out = capsys.readouterr().out
        assert "block main_0" in out
        assert "LDD" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "dither", "--cores", "4", "--blocks", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "blocks committed" in out
