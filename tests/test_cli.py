"""CLI smoke tests (fast paths only; full figures live in benchmarks/)."""

import pytest

from repro.cli import build_parser, main
from repro.harness import clear_cache, configure_cache, resolve_cache_dir


@pytest.fixture(autouse=True)
def _store_off_after(tmp_path, monkeypatch):
    """main() applies --cache-dir/--no-cache globally; keep any store a
    command enables inside tmp_path, start from a cold in-process cache
    (so store behaviour is deterministic), and restore the hermetic
    default afterwards."""
    monkeypatch.chdir(tmp_path)
    clear_cache()
    yield
    clear_cache()
    configure_cache(enabled=False)


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (["list"], ["run", "conv"], ["sweep", "conv"],
                     ["disasm", "conv"], ["fig5"], ["fig6"], ["fig10"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "conv"])
        assert args.cores == 8
        assert args.machine == "tflex"
        assert args.scale == 1
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_exec_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True
        args = build_parser().parse_args(["sweep", "conv", "--jobs", "2"])
        assert args.jobs == 2

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "conv" in out
        assert "spec_fp" in out

    def test_run_tflex(self, capsys, tmp_path):
        assert main(["run", "dither", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "tflex-2" in out
        assert "cycles" in out
        # The default store landed in the hermetic pytest location, not
        # the working directory.
        assert list(resolve_cache_dir().rglob("*.json"))
        assert not (tmp_path / ".repro-cache").exists()

    def test_run_no_cache(self, capsys, tmp_path):
        assert main(["run", "dither", "--cores", "2", "--no-cache"]) == 0
        assert "tflex-2" in capsys.readouterr().out
        assert not (tmp_path / ".repro-cache").exists()

    def test_cache_dir_collides_with_file(self, capsys, tmp_path):
        (tmp_path / "notadir").write_text("")
        assert main(["run", "dither", "--cache-dir", "notadir"]) == 2
        err = capsys.readouterr().err
        assert "not a directory" in err
        assert "Traceback" not in err

    def test_run_ooo(self, capsys):
        assert main(["run", "dither", "--machine", "ooo"]) == 0
        assert "OoO baseline" in capsys.readouterr().out

    def test_run_trips(self, capsys):
        assert main(["run", "dither", "--machine", "trips"]) == 0
        assert "trips" in capsys.readouterr().out

    def test_disasm(self, capsys):
        assert main(["disasm", "tblook"]) == 0
        out = capsys.readouterr().out
        assert "block main_0" in out
        assert "LDD" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "dither", "--cores", "4", "--blocks", "6"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "blocks committed" in out


class TestUpFrontValidation:
    """Bad flag combinations die in argparse with an actionable
    message, before any simulation starts."""

    def _error(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        return capsys.readouterr().err

    def test_sample_knobs_require_sample(self, capsys):
        err = self._error(capsys, ["run", "conv", "--sample-ff", "100"])
        assert "no effect without --sample" in err

    def test_sample_ff_bounds(self, capsys):
        err = self._error(capsys, ["run", "conv", "--sample",
                                   "--sample-ff", "0"])
        assert "--sample-ff must be >= 1" in err

    def test_sample_warmup_vs_window(self, capsys):
        err = self._error(capsys, ["run", "conv", "--sample",
                                   "--sample-warmup", "50"])
        assert "smaller than --sample-window" in err

    def test_inject_bad_grammar(self, capsys):
        err = self._error(capsys, ["run", "conv", "--inject", "bogus"])
        assert "not a fault spec" in err

    def test_inject_kill_missing_cycle(self, capsys):
        err = self._error(capsys, ["run", "conv", "--inject", "kill:2"])
        assert "missing '@CYCLE'" in err

    def test_inject_requires_tflex(self, capsys):
        err = self._error(capsys, ["run", "conv", "--machine", "trips",
                                   "--inject", "dead:0"])
        assert "--machine trips" in err

    def test_inject_conflicts_with_sample(self, capsys):
        err = self._error(capsys, ["run", "conv", "--sample",
                                   "--inject", "dead:0"])
        assert "cannot combine with --sample" in err

    def test_inject_core_out_of_range(self, capsys):
        err = self._error(capsys, ["run", "conv", "--cores", "2",
                                   "--inject", "dead:7"])
        assert "cores 0..1" in err

    def test_inject_leaving_no_survivor(self, capsys):
        err = self._error(capsys, ["run", "conv", "--cores", "2",
                                   "--inject", "dead:0",
                                   "--inject", "dead:1"])
        assert "no survivor" in err

    def test_resil_cores_must_be_power_of_two(self, capsys):
        err = self._error(capsys, ["resil", "--cores", "5"])
        assert "power of two" in err

    def test_resil_max_dead_bounds(self, capsys):
        err = self._error(capsys, ["resil", "--max-dead", "0"])
        assert "--max-dead" in err
        err = self._error(capsys, ["resil", "--cores", "4",
                                   "--max-dead", "4"])
        assert "--max-dead" in err


class TestResilCommands:
    def test_run_with_boot_fault(self, capsys):
        assert main(["run", "dither", "--cores", "4",
                     "--inject", "dead:0", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "faults: 1 injected, 0 recoveries, 1 segments" in out

    def test_run_with_kill_reports_recovery(self, capsys):
        assert main(["run", "conv", "--cores", "4",
                     "--inject", "kill:0@1500", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "faults: 1 injected, 1 recoveries, 2 segments" in out
        assert "core 0 died" in out

    def test_resil_writes_curve_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "figR.json"
        assert main(["resil", "--cores", "4", "--max-dead", "1",
                     "--bench", "dither", "--out", str(out_path),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Figure R" in out
        payload = json.loads(out_path.read_text())
        assert payload["dead_counts"] == [0, 1]
        assert len(payload["curve"]) == 2
        assert payload["curve"][0]["mean_relative"] == 1.0


def _registered_subcommands():
    """Every subcommand the parser knows, straight from argparse."""
    import argparse

    parser = build_parser()
    action = next(a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction))
    return sorted(action.choices)


class TestHelpSmoke:
    """``repro <cmd> --help`` must exit 0 for every registered
    subcommand — the cheapest whole-surface regression net (a typo'd
    flag definition or import error in any command kills its help)."""

    def test_sweep_covers_search(self):
        commands = _registered_subcommands()
        assert "search" in commands
        assert "lint" in commands
        assert len(commands) >= 10

    @pytest.mark.parametrize("command", _registered_subcommands())
    def test_subcommand_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "usage" in out.lower()
        assert command in out

    def test_top_level_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()


class TestFFTraceFlags:
    def test_flags_parse_and_conflict(self):
        parser = build_parser()
        assert parser.parse_args(["run", "conv"]).ff_trace is None
        assert parser.parse_args(
            ["run", "conv", "--ff-trace"]).ff_trace is True
        assert parser.parse_args(
            ["run", "conv", "--no-ff-trace"]).ff_trace is False
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "conv", "--ff-trace", "--no-ff-trace"])

    def test_no_cache_disables_traces_unless_asked(self, monkeypatch,
                                                   tmp_path, capsys):
        """--no-cache keeps the invocation off disk, --ff-trace opts the
        trace store back in, and the environment mirror is restored
        either way."""
        import os

        from repro.sample.trace import (TRACE_DIR_ENV, TRACE_ENABLED_ENV,
                                        trace_enabled)

        monkeypatch.setenv(TRACE_ENABLED_ENV, "0")
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)

        assert main(["run", "dither", "--cores", "2", "--no-cache",
                     "--sample", "--sample-ff", "64", "--sample-window",
                     "16", "--sample-warmup", "4"]) == 0
        assert os.environ[TRACE_ENABLED_ENV] == "0"
        assert TRACE_DIR_ENV not in os.environ

        clear_cache()     # else the second run replays from memory
        trace_dir = tmp_path / "store"
        assert main(["run", "dither", "--cores", "2", "--no-cache",
                     "--ff-trace", "--cache-dir", str(trace_dir),
                     "--sample", "--sample-ff", "64", "--sample-window",
                     "16", "--sample-warmup", "4"]) == 0
        # The run recorded a trace even though results stayed off disk.
        assert list((trace_dir / "traces").rglob("*.json.gz"))
        assert not list(trace_dir.rglob("*.json"))
        # Restored after exit: workers of later in-process invocations
        # see the pre-CLI environment, not this run's mirror.
        assert os.environ[TRACE_ENABLED_ENV] == "0"
        assert TRACE_DIR_ENV not in os.environ
        capsys.readouterr()


class TestCacheGc:
    def _populate(self, root):
        import gzip
        import json
        import os

        records = []
        for i, (sub, name) in enumerate((("ab", "ab1.json"),
                                         ("cd", "cd2.json"))):
            path = root / sub / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps({"payload": i}))
            records.append(path)
        trace = root / "traces" / "ef" / "ef3.json.gz"
        trace.parent.mkdir(parents=True, exist_ok=True)
        trace.write_bytes(gzip.compress(b"{}"))
        records.append(trace)
        # Ages: 10 days, 5 days, fresh.
        import time

        now = time.time()
        for age_days, path in zip((10, 5, 0), records):
            stamp = now - age_days * 86400
            os.utime(path, (stamp, stamp))
        return records

    def test_gc_by_age(self, tmp_path, capsys):
        root = tmp_path / "cache"
        records = self._populate(root)
        assert main(["cache", "gc", "--cache-dir", str(root),
                     "--max-age-days", "7"]) == 0
        out = capsys.readouterr().out
        assert "scanned 3 entries" in out
        assert "removed 1 entries" in out
        assert not records[0].exists()
        assert records[1].exists() and records[2].exists()

    def test_gc_dry_run_deletes_nothing(self, tmp_path, capsys):
        root = tmp_path / "cache"
        records = self._populate(root)
        assert main(["cache", "gc", "--cache-dir", str(root),
                     "--max-age-days", "0", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove 3 entries" in out
        # Dry run lists its victims and touches none of them.
        for path in records:
            assert str(path) in out
            assert path.exists()

    def test_gc_size_budget_keeps_newest(self, tmp_path, capsys):
        root = tmp_path / "cache"
        records = self._populate(root)
        sizes = [p.stat().st_size for p in records]
        budget = sizes[1] + sizes[2]          # newest two fit exactly
        assert main(["cache", "gc", "--cache-dir", str(root),
                     "--max-bytes", str(budget)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert not records[0].exists()
        assert records[1].exists() and records[2].exists()

    def test_gc_bad_size_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "gc", "--max-bytes", "lots"])
        assert excinfo.value.code == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_negative_age_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "gc", "--max-age-days", "-1"])
        assert excinfo.value.code == 2
        assert "--max-age-days" in capsys.readouterr().err
