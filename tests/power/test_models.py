"""Tests for the area and energy models."""

from collections import Counter

import pytest

from repro.power import AreaModel, EnergyModel, EnergyParams
from repro.tflex import run_program
from repro.workloads import BENCHMARKS


class TestAreaModel:
    def test_processor_scales_linearly(self):
        model = AreaModel()
        assert model.processor_mm2(8) == pytest.approx(8 * model.core_mm2)
        assert model.processor_mm2(32) == pytest.approx(32 * model.core_mm2)

    def test_trips_equals_8_core_tflex(self):
        """Paper section 6.1: an 8-core TFlex processor has the same
        area (and issue width) as the TRIPS processor."""
        model = AreaModel()
        assert model.trips_mm2 == pytest.approx(model.processor_mm2(8))

    def test_die_anchor(self):
        """8 cores + 1.5MB L2 fit an 18x18 die (paper section 6.2)."""
        model = AreaModel()
        assert model.processor_mm2(8) + model.l2_mm2(1.5) < 18 * 18

    def test_45nm_chip_plausible(self):
        """A 32-core chip + 4MB L2 at 130nm, scaled by the classic ~4x
        per two nodes, lands near the paper's 12x12 at 45nm."""
        model = AreaModel()
        mm2_45nm = model.chip_mm2(32, 4.0) / 8.0   # 130 -> 90 -> 65 -> 45
        assert mm2_45nm < 160

    def test_perf_per_area_metric(self):
        model = AreaModel()
        small = model.perf_per_area(cycles=1000, num_cores=2)
        large = model.perf_per_area(cycles=900, num_cores=16)
        # 10% faster on 8x the area is far less area-efficient.
        assert small > large

    def test_component_table_renders(self):
        text = AreaModel().table()
        assert "floating-point" in text
        assert "TRIPS" in text


class TestEnergyModel:
    def test_breakdown_categories(self):
        model = EnergyModel()
        events = Counter(alu_op=1000, fpu_op=10, dcache_read=100,
                         opn_hop=50, l2_access=5, icache_access=80)
        breakdown = model.breakdown(events, cycles=1000, num_cores=4,
                                    dram_requests=2)
        for category in ("fetch", "execution", "dcache", "routers", "l2",
                         "dram/io", "clock", "leakage"):
            assert category in breakdown.watts
        assert breakdown.total > 0
        assert "total" in breakdown.table()

    def test_clock_scales_with_cores(self):
        model = EnergyModel()
        events = Counter()
        p4 = model.breakdown(events, cycles=1000, num_cores=4)
        p8 = model.breakdown(events, cycles=1000, num_cores=8)
        assert p8.watts["clock"] == pytest.approx(2 * p4.watts["clock"])
        assert p8.watts["leakage"] == pytest.approx(2 * p4.watts["leakage"])

    def test_leakage_fraction_plausible(self):
        """Paper: leakage lands at 8-10% of total for typical runs."""
        program, __, __k = BENCHMARKS["conv"].edge_program()
        proc = run_program(program, num_cores=8)
        system_dram = 0   # negligible for this small kernel
        breakdown = EnergyModel().breakdown(
            proc.stats.energy_events, proc.stats.cycles, proc.ncores,
            dram_requests=system_dram)
        fraction = breakdown.watts["leakage"] / breakdown.total
        assert 0.03 < fraction < 0.25

    def test_clock_is_major_component(self):
        """Without clock gating, the clock tree dominates (Table 2)."""
        program, __, __k = BENCHMARKS["conv"].edge_program()
        proc = run_program(program, num_cores=8)
        breakdown = EnergyModel().breakdown(
            proc.stats.energy_events, proc.stats.cycles, proc.ncores)
        assert breakdown.watts["clock"] == max(
            v for k, v in breakdown.watts.items())

    def test_trips_params_raise_clock_at_equal_area(self):
        """16 TRIPS tiles vs 8 TFlex cores at equal area: more total
        clock power (the 2x-FPU effect, paper section 6.3)."""
        events = Counter()
        tflex = EnergyModel().breakdown(events, cycles=1000, num_cores=8)
        trips = EnergyModel(EnergyParams.trips()).breakdown(
            events, cycles=1000, num_cores=16)
        assert trips.watts["clock"] > tflex.watts["clock"]

    def test_perf2_per_watt(self):
        assert EnergyModel.perf2_per_watt(1000, 2.0) == pytest.approx(
            (1e-3) ** 2 / 2.0)
