"""Unit tests for the RISC ISA, interpreter, and OoO timing model."""

import pytest

from repro.risc import OoOCore, OoOConfig, RiscInterpreter, RiscProgram, RiscError
from repro.risc.isa import RInst, evaluate_alu


def program_sum_loop(n=10) -> RiscProgram:
    """r1 = sum(1..n) with a simple counted loop."""
    p = RiscProgram(name="sumloop")
    p.label("main")
    p.emit(RInst("LI", rd=1, imm=0))        # total
    p.emit(RInst("LI", rd=2, imm=1))        # i
    p.label("loop")
    p.emit(RInst("ADD", rd=1, rs1=1, rs2=2))
    p.emit(RInst("ADD", rd=2, rs1=2, imm=1))
    p.emit(RInst("SLE", rd=3, rs1=2, imm=n))
    p.emit(RInst("BNEZ", rs1=3, target="loop"))
    p.emit(RInst("HALT"))
    return p


class TestIsa:
    def test_evaluate_alu_basics(self):
        assert evaluate_alu(RInst("ADD", rs1=1, rs2=2), 2, 3) == 5
        assert evaluate_alu(RInst("ADD", rs1=1, imm=10), 2, None) == 12
        assert evaluate_alu(RInst("SLT", rs1=1, rs2=2), 1, 2) == 1
        assert evaluate_alu(RInst("FMUL", rs1=1, rs2=2), 1.5, 2.0) == 3.0
        assert evaluate_alu(RInst("LI", imm=-3), None, None) == -3

    def test_sources_and_destination(self):
        st = RInst("ST", rs1=1, rs2=2, imm=0)
        assert st.sources() == [1, 2]
        assert st.destination() is None
        addi = RInst("ADD", rd=3, rs1=1, imm=4)
        assert addi.sources() == [1]
        assert addi.destination() == 3

    def test_validate_rejects_dangling_label(self):
        p = RiscProgram()
        p.label("main")
        p.emit(RInst("B", target="nowhere"))
        with pytest.raises(RiscError):
            p.validate()

    def test_validate_requires_main(self):
        p = RiscProgram()
        p.label("start")
        p.emit(RInst("HALT"))
        with pytest.raises(RiscError):
            p.validate()

    def test_duplicate_label_rejected(self):
        p = RiscProgram()
        p.label("main")
        with pytest.raises(RiscError):
            p.label("main")


class TestInterpreter:
    def test_sum_loop(self):
        interp = RiscInterpreter(program_sum_loop(10))
        result = interp.run()
        assert result.halted
        assert interp.regs[1] == 55

    def test_r0_stays_zero(self):
        p = RiscProgram()
        p.label("main")
        p.emit(RInst("LI", rd=0, imm=42))
        p.emit(RInst("HALT"))
        interp = RiscInterpreter(p)
        interp.run()
        assert interp.regs[0] == 0

    def test_memory_ops(self):
        p = RiscProgram()
        base = p.add_blob((123).to_bytes(8, "little"))
        p.label("main")
        p.emit(RInst("LI", rd=1, imm=base))
        p.emit(RInst("LD", rd=2, rs1=1, imm=0))
        p.emit(RInst("ADD", rd=3, rs1=2, imm=1))
        p.emit(RInst("ST", rs1=1, rs2=3, imm=8))
        p.emit(RInst("HALT"))
        interp = RiscInterpreter(p)
        interp.run()
        assert interp.regs[2] == 123
        assert interp.mem.load(base + 8, 8) == 124

    def test_call_return(self):
        p = RiscProgram()
        p.label("main")
        p.emit(RInst("LI", rd=1, imm=7))
        p.emit(RInst("JAL", rd=10, target="double"))
        p.emit(RInst("HALT"))
        p.label("double")
        p.emit(RInst("ADD", rd=2, rs1=1, rs2=1))
        p.emit(RInst("JR", rs1=10))
        interp = RiscInterpreter(p)
        interp.run()
        assert interp.regs[2] == 14

    def test_trace_recording(self):
        interp = RiscInterpreter(program_sum_loop(3))
        result = interp.run(record_trace=True)
        assert len(result.trace) == result.insts_executed
        branches = [e for e in result.trace if e.inst.op == "BNEZ"]
        assert [e.taken for e in branches] == [True, True, False]

    def test_budget_enforced(self):
        p = RiscProgram()
        p.label("main")
        p.label("spin")
        p.emit(RInst("B", target="spin"))
        with pytest.raises(RiscError):
            RiscInterpreter(p).run(max_insts=100)


class TestOoOCore:
    def test_timing_reasonable(self):
        stats, interp = OoOCore().run(program_sum_loop(100))
        assert interp.regs[1] == 5050
        assert stats.insts == 100 * 4 + 3
        # The loop is dependence-limited: at least ~1 cycle per iteration,
        # far less than in-order single-issue time.
        assert 100 <= stats.cycles <= stats.insts

    def test_branch_predictor_learns_loop(self):
        stats, __ = OoOCore().run(program_sum_loop(200))
        assert stats.branches == 200
        assert stats.mispredictions <= 10

    def test_ilp_exploited(self):
        """Independent chains should run faster than one serial chain."""
        def chain_program(chains):
            p = RiscProgram(name="chains")
            p.label("main")
            for c in range(chains):
                p.emit(RInst("LI", rd=1 + c, imm=c))
            for __ in range(200):
                for c in range(chains):
                    p.emit(RInst("ADD", rd=1 + c, rs1=1 + c, imm=1))
            p.emit(RInst("HALT"))
            return p

        serial, __ = OoOCore().run(chain_program(1))
        parallel, __ = OoOCore().run(chain_program(3))
        # 3x the instructions in similar time = ILP extracted.
        assert parallel.cycles < serial.cycles * 2

    def test_cache_misses_counted(self):
        p = RiscProgram(name="strider")
        base = p.alloc_data(64 * 1024)
        p.label("main")
        p.emit(RInst("LI", rd=1, imm=base))
        p.emit(RInst("LI", rd=2, imm=0))
        p.label("loop")
        p.emit(RInst("LD", rd=3, rs1=1, imm=0))
        p.emit(RInst("ADD", rd=1, rs1=1, imm=512))
        p.emit(RInst("ADD", rd=2, rs1=2, imm=1))
        p.emit(RInst("SLT", rd=4, rs1=2, imm=100))
        p.emit(RInst("BNEZ", rs1=4, target="loop"))
        p.emit(RInst("HALT"))
        stats, __ = OoOCore().run(p)
        assert stats.l1_misses >= 90

    def test_mispredict_penalty_visible(self):
        """A data-dependent unpredictable branch pattern slows execution."""
        def branchy(pattern_fn):
            p = RiscProgram(name="branchy")
            data = b"".join(int(pattern_fn(i)).to_bytes(8, "little")
                            for i in range(256))
            base = p.add_blob(data)
            p.label("main")
            p.emit(RInst("LI", rd=1, imm=base))
            p.emit(RInst("LI", rd=2, imm=0))     # i
            p.emit(RInst("LI", rd=5, imm=0))     # acc
            p.label("loop")
            p.emit(RInst("LD", rd=3, rs1=1, imm=0))
            p.emit(RInst("BEQZ", rs1=3, target="skip"))
            p.emit(RInst("ADD", rd=5, rs1=5, imm=1))
            p.label("skip")
            p.emit(RInst("ADD", rd=1, rs1=1, imm=8))
            p.emit(RInst("ADD", rd=2, rs1=2, imm=1))
            p.emit(RInst("SLT", rd=4, rs1=2, imm=256))
            p.emit(RInst("BNEZ", rs1=4, target="loop"))
            p.emit(RInst("HALT"))
            return p

        predictable, __ = OoOCore().run(branchy(lambda i: 1))
        import random
        rng = random.Random(7)
        chaotic, __ = OoOCore().run(branchy(lambda i: rng.randint(0, 1)))
        assert chaotic.mispredictions > predictable.mispredictions
        assert chaotic.cycles > predictable.cycles

    def test_custom_config(self):
        narrow = OoOConfig(fetch_width=1, issue_width=1, commit_width=1)
        wide_stats, __ = OoOCore().run(program_sum_loop(100))
        narrow_stats, __ = OoOCore(narrow).run(program_sum_loop(100))
        assert narrow_stats.cycles >= wide_stats.cycles

    def test_rob_size_gates_memory_parallelism(self):
        """Independent long-latency loads overlap only within the ROB:
        a tiny ROB must be slower on an MLP-rich stream."""
        def stream_program():
            p = RiscProgram(name="mlp")
            base = p.alloc_data(256 * 1024)
            p.label("main")
            p.emit(RInst("LI", rd=1, imm=base))
            p.emit(RInst("LI", rd=2, imm=0))
            p.label("loop")
            for k in range(4):
                p.emit(RInst("LD", rd=3 + k, rs1=1, imm=4096 * k))
            p.emit(RInst("ADD", rd=1, rs1=1, imm=64))
            p.emit(RInst("ADD", rd=2, rs1=2, imm=1))
            p.emit(RInst("SLT", rd=10, rs1=2, imm=60))
            p.emit(RInst("BNEZ", rs1=10, target="loop"))
            p.emit(RInst("HALT"))
            return p

        big, __ = OoOCore(OoOConfig(rob_entries=96)).run(stream_program())
        small, __ = OoOCore(OoOConfig(rob_entries=8)).run(stream_program())
        assert small.cycles > big.cycles * 1.3
