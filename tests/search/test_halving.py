"""The halving engine, isolated from the simulator.

``search_best`` resolves every evaluation through
``repro.harness.runner.run_spec``; these tests monkeypatch that seam
with a synthetic score table, so rung mechanics (promotion fractions,
fidelity routing, tie-breaks, observability) are checked in
milliseconds.  The end-to-end argmax/work-reduction acceptance runs in
``test_fig_best.py``.
"""

from types import SimpleNamespace

import pytest

import repro.obs
from repro.search import (
    FidelityTier,
    HalvingConfig,
    SearchResult,
    default_space,
    search_best,
)

#: A three-tier ladder whose sampling parameters are easy to key on.
LADDER = (FidelityTier.make("coarse", {"ff_blocks": 64}),
          FidelityTier.make("fine", {"ff_blocks": 16}),
          FidelityTier.make("detail"))


def install_scores(monkeypatch, table):
    """Route run_spec through ``table[(bench, ncores, ff)]`` cycles,
    where ``ff`` is the sampled fast-forward length (None = detail).
    Returns the list of (bench, ncores, ff) evaluations performed."""
    calls = []

    def fake_run_spec(spec):
        ff = spec.sampling_dict().get("ff_blocks") if spec.sampling else None
        calls.append((spec.bench, spec.ncores, ff))
        cycles = table[(spec.bench, spec.ncores, ff)]
        return SimpleNamespace(
            cycles=cycles, num_cores=spec.ncores,
            performance=1.0 / cycles,
            power=SimpleNamespace(total=1.0))

    monkeypatch.setattr("repro.harness.runner.run_spec", fake_run_spec)
    return calls


def uniform_table(space, by_ncores, coarse_by_ncores=None,
                  fine_by_ncores=None):
    """Cycle table applying one cores->cycles map per fidelity to every
    benchmark (coarse/fine default to the detailed map)."""
    table = {}
    for bench in space.benchmarks:
        for cand in space.candidates:
            n = cand.ncores
            table[(bench, n, None)] = by_ncores[n]
            table[(bench, n, 64)] = (coarse_by_ncores or by_ncores)[n]
            table[(bench, n, 16)] = (fine_by_ncores or by_ncores)[n]
    return table


class TestRungMechanics:
    def test_halving_schedule_6_3_2(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        calls = install_scores(monkeypatch,
                               uniform_table(space, cycles))
        result = search_best(space, "speedup",
                             HalvingConfig(ladder=LADDER))
        trail = result.per_bench["conv"]
        assert [len(r.entered) for r in trail.rungs] == [6, 3, 2]
        assert [r.tier for r in trail.rungs] == ["coarse", "fine", "detail"]
        assert trail.detailed_jobs() == 2
        assert result.detail_reduction() == 3.0
        # Rung fidelities actually reached the runner.
        assert {ff for __, __n, ff in calls} == {64, 16, None}
        assert trail.best.ncores == 32

    def test_best_survives_coarse_misranking(self, monkeypatch):
        """The sampled tiers only need to keep BEST alive, not rank it
        first: a coarse tier that puts the true best second must still
        yield the detailed argmax."""
        space = default_space(["conv"])
        detail = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        coarse = {1: 600, 2: 500, 4: 400, 8: 300, 16: 90, 32: 100}
        install_scores(monkeypatch,
                       uniform_table(space, detail, coarse_by_ncores=coarse))
        result = search_best(space, "speedup", HalvingConfig(ladder=LADDER))
        assert result.per_bench["conv"].best.ncores == 32

    def test_elimination_loses_candidates_for_good(self, monkeypatch):
        """A candidate dropped at rung 0 never reaches later tiers, even
        if it would have won in detail — the fidelity contract."""
        space = default_space(["conv"])
        detail = {1: 50, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        coarse = {1: 999, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        calls = install_scores(monkeypatch,
                               uniform_table(space, detail,
                                             coarse_by_ncores=coarse))
        result = search_best(space, "speedup", HalvingConfig(ladder=LADDER))
        assert result.per_bench["conv"].best.ncores != 1
        assert (("conv", 1, 16) not in calls
                and ("conv", 1, None) not in calls)

    def test_ties_resolve_to_earliest_candidate(self, monkeypatch):
        """Equal detailed scores pick the smallest composition — the
        same tie-break as ``max`` over the exhaustive sweep's ascending
        labels."""
        space = default_space(["conv"])
        cycles = {1: 100, 2: 100, 4: 100, 8: 100, 16: 100, 32: 100}
        install_scores(monkeypatch, uniform_table(space, cycles))
        result = search_best(space, "speedup", HalvingConfig(ladder=LADDER))
        assert result.per_bench["conv"].best.ncores == 1

    def test_eta_3_schedule(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        install_scores(monkeypatch, uniform_table(space, cycles))
        result = search_best(space, "speedup",
                             HalvingConfig(ladder=LADDER, eta=3))
        assert [len(r.entered)
                for r in result.per_bench["conv"].rungs] == [6, 2, 1]

    def test_single_tier_ladder_is_exhaustive_detail(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 150}
        calls = install_scores(monkeypatch, uniform_table(space, cycles))
        result = search_best(
            space, "speedup",
            HalvingConfig(ladder=(FidelityTier.make("detail"),)))
        assert result.per_bench["conv"].detailed_jobs() == 6
        assert result.detail_reduction() == 1.0
        assert all(ff is None for __, __n, ff in calls)

    def test_benchmarks_promoted_independently(self, monkeypatch):
        space = default_space(["a", "b"])
        table = {}
        for n, cyc in ((1, 600), (2, 500), (4, 400), (8, 300),
                       (16, 200), (32, 100)):
            for ff in (64, 16, None):
                table[("a", n, ff)] = cyc          # "a" peaks at 32
                table[("b", n, ff)] = 700 - cyc    # "b" peaks at 1
        install_scores(monkeypatch, table)
        result = search_best(space, "speedup", HalvingConfig(ladder=LADDER))
        assert result.per_bench["a"].best.ncores == 32
        assert result.per_bench["b"].best.ncores == 1

    def test_max_candidates_subsamples_deterministically(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        install_scores(monkeypatch, uniform_table(space, cycles))
        cfg = HalvingConfig(ladder=LADDER, max_candidates=4, seed=7)
        first = search_best(space, "speedup", cfg)
        again = search_best(space, "speedup", cfg)
        assert len(first.per_bench["conv"].rungs[0].entered) == 4
        assert (first.per_bench["conv"].rungs[0].entered
                == again.per_bench["conv"].rungs[0].entered)


class TestConfigValidation:
    def test_final_tier_must_be_detail(self):
        cfg = HalvingConfig(ladder=(FidelityTier.make(
            "coarse", {"ff_blocks": 64}),))
        with pytest.raises(ValueError, match="full detail"):
            search_best(default_space(["conv"]), "speedup", cfg)

    def test_eta_below_2_rejected(self):
        with pytest.raises(ValueError, match="eta"):
            search_best(default_space(["conv"]), "speedup",
                        HalvingConfig(eta=1))

    def test_duplicate_tier_names_rejected(self):
        cfg = HalvingConfig(ladder=(FidelityTier.make("x", {"ff_blocks": 9}),
                                    FidelityTier.make("x")))
        with pytest.raises(ValueError, match="duplicate"):
            search_best(default_space(["conv"]), "speedup", cfg)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one tier"):
            HalvingConfig(ladder=()).validate()

    def test_unknown_objective_rejected(self, monkeypatch):
        install_scores(monkeypatch, {})
        with pytest.raises(ValueError, match="bogus"):
            search_best(default_space(["conv"]), "bogus")


class TestObservability:
    def test_events_and_metrics(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        install_scores(monkeypatch, uniform_table(space, cycles))
        obs = repro.obs.configure(metrics=True)
        events = []
        obs.bus.attach(repro.obs.CallbackSink(events.append))
        try:
            search_best(space, "speedup", HalvingConfig(ladder=LADDER))
            kinds = [e["kind"] for e in events]
            assert kinds[0] == "search.start"
            assert kinds.count("search.rung") == 3
            assert kinds[-1] == "search.best"
            rung0 = next(e for e in events if e["kind"] == "search.rung")
            assert rung0["alive"] == 6
            assert rung0["eliminated"] == 3
            assert rung0["fidelity"] == "sampled"
            best = events[-1]
            assert best["best"] == "tflex-32"
            assert best["detailed_jobs"] == 2
            metrics = obs.metrics
            assert metrics.counter("search.evals", fidelity="coarse",
                                   objective="speedup") == 6
            assert metrics.counter("search.evals", fidelity="detail",
                                   objective="speedup") == 2
            assert metrics.counter("search.detailed_jobs",
                                   objective="speedup") == 2
            assert metrics.counter("search.eliminations",
                                   objective="speedup", tier="coarse") == 3
        finally:
            repro.obs.reset()


class TestRendering:
    def test_render_mentions_reduction(self, monkeypatch):
        space = default_space(["conv"])
        cycles = {1: 600, 2: 500, 4: 400, 8: 300, 16: 200, 32: 100}
        install_scores(monkeypatch, uniform_table(space, cycles))
        result = search_best(space, "speedup", HalvingConfig(ladder=LADDER))
        text = result.render()
        assert "tflex-32" in text
        assert "3.0x fewer" in text
        assert isinstance(result, SearchResult)
