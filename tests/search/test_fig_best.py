"""The search acceptance gates (ISSUE 8 / acceptance criteria).

On the golden figure-6 subset, the halving search must return the SAME
per-benchmark BEST composition as the exhaustive detailed sweep for
all three objectives, while scheduling at least 3x fewer detailed-
simulation jobs; the comparison is recorded as ``search_fig6*`` jobs
in ``BENCH_sim.json``.  Search is deterministic for a fixed seed, and
a re-run against a warm result store is pure cache replay (zero new
simulations).
"""

import pathlib

import pytest

import repro.harness.runner as runner_mod
from repro.harness import (
    clear_cache,
    configure_cache,
    fig6_performance,
    fig7_area,
    fig8_power,
    fig_best,
    simulation_count,
)
from repro.harness.benchrecord import record_job
from repro.harness.golden import GOLDEN_BENCHMARKS, GOLDEN_SCALE
from repro.search import OBJECTIVE_NAMES

ROOT = pathlib.Path(__file__).resolve().parents[2]
OUTPUT_PATH = ROOT / "BENCH_sim.json"

REDUCTION_GATE = 3.0


def _calibrate() -> float:
    """Machine-speed probe matching ``benchmarks/test_perf_smoke.py``."""
    import time

    t0 = time.perf_counter()
    x = 0
    for i in range(2_000_000):
        x ^= i
    return time.perf_counter() - t0


@pytest.mark.slow
def test_search_matches_exhaustive_argmax_with_3x_less_detail():
    """Identical BEST per benchmark for speedup, perf/area and
    perf^2/W, at >=3x fewer detailed jobs than the exhaustive sweep."""
    fig6 = fig6_performance(scale=GOLDEN_SCALE,
                            benchmarks=GOLDEN_BENCHMARKS,
                            include_trips=False)
    exhaustive = {
        "speedup": {b: fig6.best_label(b) for b in fig6.benchmarks},
        "perf_per_area": {b: fig7_area(fig6).best_label(b)
                          for b in fig6.benchmarks},
        "perf2_per_watt": {b: fig8_power(fig6).best_label(b)
                           for b in fig6.benchmarks},
    }

    result = fig_best(benchmarks=GOLDEN_BENCHMARKS, scale=GOLDEN_SCALE)
    assert result.objectives() == list(OBJECTIVE_NAMES)

    calibration = _calibrate()
    for objective in OBJECTIVE_NAMES:
        assert result.best_labels(objective) == exhaustive[objective], (
            f"search BEST diverged from the exhaustive sweep "
            f"for objective {objective}")
        reduction = result.detail_reduction(objective)
        assert reduction >= REDUCTION_GATE, (
            f"{objective}: only {reduction:.2f}x fewer detailed jobs "
            f"({result.detailed_jobs(objective)} vs "
            f"{result.exhaustive_detailed_jobs()} exhaustive)")
        record_job(OUTPUT_PATH, ROOT,
                   f"search_fig6_{objective}_reduction_x", reduction,
                   calibration)
    # Totals across all three objectives, so the two entries compare
    # like for like (the per-objective exhaustive count is 1/3 of this).
    record_job(OUTPUT_PATH, ROOT, "search_fig6_detailed_jobs",
               result.detailed_jobs(), calibration)
    record_job(OUTPUT_PATH, ROOT, "search_fig6_exhaustive_jobs",
               result.exhaustive_detailed_jobs() * len(OBJECTIVE_NAMES),
               calibration)


@pytest.mark.slow
def test_search_deterministic_for_fixed_seed():
    """Same seed, same space -> byte-identical payload (rung trails,
    scores, bests)."""
    first = fig_best(benchmarks=("dither",), objectives=("speedup",))
    again = fig_best(benchmarks=("dither",), objectives=("speedup",))
    assert first.payload() == again.payload()
    trail_a = first.searches["speedup"].per_bench["dither"]
    trail_b = again.searches["speedup"].per_bench["dither"]
    assert [r.scores for r in trail_a.rungs] == [r.scores
                                                 for r in trail_b.rungs]


@pytest.mark.slow
def test_rerun_is_pure_cache_replay(tmp_path):
    """With a persistent store, a second search (fresh in-process
    cache) satisfies every rung — sampled and detailed — from the
    store: zero new simulations."""
    saved = dict(runner_mod._CACHE)
    runner_mod._CACHE.clear()
    configure_cache(cache_dir=tmp_path)
    try:
        before = simulation_count()
        first = fig_best(benchmarks=("dither",), objectives=("speedup",))
        executed = simulation_count()
        # Cold store: every rung evaluation simulated (6 coarse + 3
        # fine + 2 detail distinct specs).
        assert executed - before == 11

        runner_mod._CACHE.clear()
        again = fig_best(benchmarks=("dither",), objectives=("speedup",))
        assert simulation_count() == executed, (
            "re-run simulated instead of replaying the result store")
        assert first.payload() == again.payload()
    finally:
        configure_cache(enabled=False)
        runner_mod._CACHE.clear()
        runner_mod._CACHE.update(saved)
