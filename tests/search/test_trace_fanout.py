"""Honest-work accounting for shared fast-forward traces.

A search rung (and every figure sweep) evaluates N compositions of each
benchmark under one sampling schedule.  With the trace store on, the
fan-out must interpret each (benchmark, schedule) fast-forward
trajectory exactly once — the recorder — and replay it N-1 times.  The
``sample.ff`` / ``sample.ff_replayed`` metrics are the ledger; this
suite asserts it balances.
"""

import collections

import pytest

import repro.obs as obs_lib
from repro.exec.spec import JobSpec
from repro.harness import clear_cache, configure_cache
from repro.harness.runner import prewarm_specs, run_spec
from repro.obs import RingBufferSink
from repro.sample.trace import (
    FFTraceStore,
    TRACE_DIR_ENV,
    TRACE_ENABLED_ENV,
    configure_ff_trace,
    prewarm_partition,
    reset_ff_trace,
    schedule_tag,
)


RUNG = {"ff_blocks": 160, "window_blocks": 24, "warmup_blocks": 8}
BENCHES = ("conv", "gzip")
NCORES = (2, 4, 8)


@pytest.fixture(autouse=True)
def _isolated(tmp_path):
    clear_cache()
    configure_cache(enabled=False)
    reset_ff_trace()
    configure_ff_trace(enabled=True, cache_dir=tmp_path / "traces")
    yield
    reset_ff_trace()
    clear_cache()
    configure_cache(enabled=False)
    obs_lib.reset()


def _rung_specs(sampling, benches=BENCHES, ncores=NCORES):
    # Composition-major order, the shape a halving rung produces: the
    # group members are interleaved, not adjacent.
    return [JobSpec.edge(bench, n, scale=2, sampling=sampling)
            for n in ncores for bench in benches]


def test_rung_interprets_each_group_exactly_once():
    """The acceptance ledger: per (benchmark, schedule) group, one
    ``sample.ff`` interpretation pass and N-1 replay passes."""
    obs = obs_lib.configure(metrics=True)
    ring = obs.bus.attach(RingBufferSink(
        kinds=("trace.record", "trace.replay", "trace.mismatch",
               "sample.ff", "sample.ff_replayed")))

    specs = _rung_specs(RUNG)
    recorders, rest = prewarm_partition(specs)
    assert sorted(s.bench for s in recorders) == sorted(BENCHES)
    assert len(rest) == len(specs) - len(BENCHES)
    for spec in recorders + rest:        # the executor's serial order
        run_spec(spec)

    tag = schedule_tag(RUNG)
    records = {e["bench"]: e for e in ring.of_kind("trace.record")}
    lives = collections.Counter(e["bench"] for e in ring.of_kind("sample.ff"))
    replayed = collections.Counter(
        e["bench"] for e in ring.of_kind("sample.ff_replayed"))

    assert not ring.of_kind("trace.mismatch")
    assert sorted(records) == sorted(BENCHES)
    for bench in BENCHES:
        intervals = records[bench]["intervals"]
        assert intervals >= 1
        # One interpretation pass...
        assert obs.metrics.counter("sample.trace_records",
                                   bench=bench, schedule=tag) == 1
        assert lives[bench] == intervals
        # ...and N-1 replay passes covering every interval.
        assert obs.metrics.counter("sample.trace_replays",
                                   bench=bench, schedule=tag) \
            == len(NCORES) - 1
        assert replayed[bench] == (len(NCORES) - 1) * intervals
        assert obs.metrics.counter("sample.trace_mismatches",
                                   bench=bench) == 0


def test_new_rung_schedule_records_again():
    """A finer rung is a different trajectory: its group records once
    even though the coarser rung's trace is already on disk."""
    obs = obs_lib.configure(metrics=True)
    coarse = _rung_specs(RUNG, benches=("conv",), ncores=(2, 4))
    recorders, rest = prewarm_partition(coarse)
    for spec in recorders + rest:
        run_spec(spec)

    fine = dict(RUNG, ff_blocks=96)
    specs = _rung_specs(fine, benches=("conv",), ncores=(2, 4))
    recorders, rest = prewarm_partition(specs)
    assert [s.sampling_dict()["ff_blocks"] for s in recorders] == [96]
    for spec in recorders + rest:
        run_spec(spec)

    for sampling in (RUNG, fine):
        assert obs.metrics.counter("sample.trace_records", bench="conv",
                                   schedule=schedule_tag(sampling)) == 1
    assert obs.metrics.counter("sample.trace_mismatches", bench="conv") == 0
    assert len(FFTraceStore()) == 2


@pytest.mark.slow
def test_prewarm_specs_fans_out_with_shared_traces(tmp_path, monkeypatch):
    """End to end through the parallel executor: worker processes
    resolve the store from the environment, recorders run before the
    fan-out, and exactly one trace per group lands on disk."""
    monkeypatch.setenv(TRACE_ENABLED_ENV, "1")
    monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "traces"))
    configure_ff_trace(enabled=True, cache_dir=tmp_path / "traces")

    specs = _rung_specs(RUNG, ncores=(2, 4))
    outcomes = prewarm_specs(specs, jobs=2)
    assert len(outcomes) == len(specs)
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    # Recorders (one per benchmark group) were dispatched first.
    assert sorted(o.spec.bench for o in outcomes[:len(BENCHES)]) \
        == sorted(BENCHES)
    assert len(FFTraceStore(tmp_path / "traces")) == len(BENCHES)
