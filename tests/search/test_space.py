"""Search spaces: candidate sets, spec resolution, subsampling."""

import pytest

from repro.exec import JobSpec, spec_hash
from repro.search import Candidate, SearchSpace, default_space
from repro.search.space import DEFAULT_CORE_COUNTS


class TestCandidate:
    def test_label_matches_sweep_label(self):
        assert Candidate.make(8).label() == "tflex-8"
        spec = JobSpec.edge("conv", ncores=8)
        assert Candidate.make(8).label() == spec.label()

    def test_label_carries_overrides(self):
        cand = Candidate.make(4, overrides={"l2_hit_cycles": 9})
        assert cand.label() == "tflex-4+l2_hit_cycles=9"

    def test_overrides_frozen_sorted(self):
        a = Candidate.make(4, overrides={"b": 2, "a": 1})
        b = Candidate.make(4, overrides={"a": 1, "b": 2})
        assert a == b


class TestSearchSpace:
    def test_default_space_is_the_fig6_sweep(self):
        space = default_space(["conv", "gzip"])
        assert space.benchmarks == ("conv", "gzip")
        assert tuple(c.ncores for c in space.candidates) == DEFAULT_CORE_COUNTS
        assert len(space) == 6

    def test_spec_for_resolves_to_sweep_point(self):
        """A candidate at full detail hashes identically to the
        exhaustive sweep's spec — search results share its cache."""
        space = default_space(["conv"], scale=2)
        spec = space.spec_for("conv", Candidate.make(8))
        assert spec_hash(spec) == spec_hash(JobSpec.edge("conv", ncores=8,
                                                         scale=2))

    def test_spec_for_carries_sampling_and_overrides(self):
        space = default_space(["conv"])
        cand = Candidate.make(4, overrides={"l2_hit_cycles": 9})
        spec = space.spec_for("conv", cand,
                              sampling={"ff_blocks": 64})
        assert spec.ncores == 4
        assert spec.sampling_dict() == {"ff_blocks": 64}
        assert spec.overrides_dict() == {"l2_hit_cycles": 9}

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="benchmark"):
            SearchSpace(benchmarks=(), candidates=(Candidate.make(1),))
        with pytest.raises(ValueError, match="candidate"):
            SearchSpace(benchmarks=("conv",), candidates=())

    def test_rejects_duplicate_candidates(self):
        with pytest.raises(ValueError, match="unique"):
            SearchSpace(benchmarks=("conv",),
                        candidates=(Candidate.make(4), Candidate.make(4)))


class TestSubsample:
    def test_identity_when_budget_covers_space(self):
        space = default_space(["conv"])
        assert space.subsample(6, seed=1) is space
        assert space.subsample(99, seed=1) is space

    def test_deterministic_and_order_preserving(self):
        space = default_space(["conv"])
        a = space.subsample(3, seed=42)
        b = space.subsample(3, seed=42)
        assert a.candidates == b.candidates
        assert len(a) == 3
        # Original (ascending-cores) order survives the draw.
        sizes = [c.ncores for c in a.candidates]
        assert sizes == sorted(sizes)

    def test_seed_changes_draw(self):
        space = default_space(["conv"])
        draws = {space.subsample(3, seed=s).candidates for s in range(8)}
        assert len(draws) > 1

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError, match="max_candidates"):
            default_space(["conv"]).subsample(0, seed=1)
