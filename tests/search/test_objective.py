"""Objectives: score formulas agree with the figure drivers' models."""

from types import SimpleNamespace

import pytest

from repro.power import AreaModel, EnergyModel
from repro.search import OBJECTIVE_NAMES, OBJECTIVES, get_objective


def fake_run(cycles: int, num_cores: int = 8, watts: float = 2.0):
    """The duck-typed slice of RunResult the objectives read."""
    return SimpleNamespace(
        cycles=cycles, num_cores=num_cores,
        performance=(1.0 / cycles if cycles else 0.0),
        power=SimpleNamespace(total=watts))


class TestRegistry:
    def test_names_cover_figures(self):
        assert OBJECTIVE_NAMES == ("speedup", "perf_per_area",
                                   "perf2_per_watt")
        assert set(OBJECTIVES) == set(OBJECTIVE_NAMES)
        figures = {OBJECTIVES[n].figure for n in OBJECTIVE_NAMES}
        assert figures == {"fig6", "fig7", "fig8"}

    def test_get_objective_unknown_is_actionable(self):
        with pytest.raises(ValueError, match="speedup"):
            get_objective("bogus")


class TestScores:
    def test_speedup_is_performance(self):
        assert get_objective("speedup")(fake_run(1000)) == 1.0 / 1000

    def test_perf_per_area_matches_area_model(self):
        run = fake_run(1000, num_cores=16)
        expected = 1.0 / (1000 * AreaModel().processor_mm2(16))
        assert get_objective("perf_per_area")(run) == pytest.approx(expected)

    def test_perf_per_area_penalizes_size(self):
        """Same cycles on a bigger composition must score lower —
        that is what makes figure 7's BEST land small."""
        obj = get_objective("perf_per_area")
        assert obj(fake_run(1000, num_cores=1)) > obj(fake_run(1000,
                                                              num_cores=32))

    def test_perf2_per_watt_matches_energy_model(self):
        run = fake_run(1000, watts=3.5)
        assert (get_objective("perf2_per_watt")(run)
                == EnergyModel.perf2_per_watt(1000, 3.5))

    def test_zero_cycle_runs_score_zero(self):
        for name in OBJECTIVE_NAMES:
            assert get_objective(name)(fake_run(0)) == 0.0
