"""Shared fixtures for the unit/integration suite."""

from __future__ import annotations

import shutil

import pytest

from repro.harness import clear_cache, configure_cache, resolve_cache_dir


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache():
    """Hermetic tier-1 runs: empty in-process cache, persistent store
    disabled (tests that exercise the store enable it on a tmp_path and
    restore this state afterwards).  Any store a test enables at the
    default location lands in the pytest-scoped temp path resolved by
    ``resolve_cache_dir``; that path is removed when the session ends so
    repeated runs start cold and nothing leaks into the working tree."""
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()
    configure_cache(enabled=False)
    hermetic = resolve_cache_dir()
    if hermetic.name != ".repro-cache":
        shutil.rmtree(hermetic, ignore_errors=True)
