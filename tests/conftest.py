"""Shared fixtures for the unit/integration suite."""

from __future__ import annotations

import pytest

from repro.harness import clear_cache, configure_cache


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache():
    """Hermetic tier-1 runs: empty in-process cache, persistent store
    disabled (tests that exercise the store enable it on a tmp_path and
    restore this state afterwards)."""
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()
