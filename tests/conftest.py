"""Shared fixtures for the unit/integration suite."""

from __future__ import annotations

import os
import shutil

import pytest

from repro.harness import clear_cache, configure_cache, resolve_cache_dir
from repro.sample.trace import (TRACE_ENABLED_ENV, configure_ff_trace,
                                reset_ff_trace)


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache():
    """Hermetic tier-1 runs: empty in-process cache, persistent store
    and fast-forward trace store disabled (tests that exercise either
    enable it on a tmp_path and restore this state afterwards).  Any
    store a test enables at the default location lands in the
    pytest-scoped temp path resolved by ``resolve_cache_dir``; that
    path is removed when the session ends so repeated runs start cold
    and nothing leaks into the working tree."""
    clear_cache()
    configure_cache(enabled=False)
    configure_ff_trace(enabled=False)
    # Pool workers resolve the trace store from the environment, not
    # this process's configuration — pin the choice for them too.
    saved = os.environ.get(TRACE_ENABLED_ENV)
    os.environ[TRACE_ENABLED_ENV] = "0"
    yield
    clear_cache()
    configure_cache(enabled=False)
    reset_ff_trace()
    if saved is None:
        os.environ.pop(TRACE_ENABLED_ENV, None)
    else:
        os.environ[TRACE_ENABLED_ENV] = saved
    hermetic = resolve_cache_dir()
    if hermetic.name != ".repro-cache":
        shutil.rmtree(hermetic, ignore_errors=True)
