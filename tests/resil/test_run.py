"""Fault-injected run tests: the empty-schedule equivalence gate, boot
faults, mid-run kill recovery (differentially verified), cascading
failures, link degradation, and the harness/obs integration."""

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs
from repro.exec import JobSpec
from repro.harness import run_edge_benchmark
from repro.harness.runner import _simulate_edge
from repro.resil import (
    CompositionLost,
    FaultSchedule,
    ResilientRun,
    run_resilient,
)
from repro.resil.faults import FaultEvent


def edge(bench, ncores, **kwargs):
    return JobSpec.edge(bench, ncores=ncores, **kwargs)


class TestEmptyScheduleEquivalence:
    """The checkpoint/recompose machinery must be invisible when no
    fault fires: result-identical to the uninterrupted simulator."""

    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(["dither", "conv"]), st.sampled_from([2, 4]))
    def test_result_identical(self, bench, ncores):
        spec = edge(bench, ncores)
        plain = _simulate_edge(spec)
        resil = run_resilient(spec, FaultSchedule())
        assert resil.to_dict() == plain.to_dict()

    def test_no_resil_payload_without_faults(self):
        result = run_resilient(edge("dither", 2), FaultSchedule())
        assert result.resil is None
        assert "resil" not in result.to_dict()


class TestSpecRouting:
    def test_harness_routes_fault_specs(self):
        schedule = FaultSchedule((FaultEvent("core_dead", core=0),))
        result = _simulate_edge(edge("dither", 2,
                                     faults=schedule.spec_items()))
        assert result.resil is not None
        assert result.resil["boot_faulty"] == [0]

    def test_run_edge_benchmark_faults_kwarg(self):
        schedule = FaultSchedule((FaultEvent("core_dead", core=0),))
        result = run_edge_benchmark("dither", ncores=2,
                                    faults=schedule.spec_items())
        assert result.resil is not None
        assert result.num_cores == 1    # survivor of a 2-core target

    def test_rejects_risc_trips_sampling(self):
        faults = FaultSchedule.single_kill(0, 100)
        with pytest.raises(ValueError, match="edge"):
            ResilientRun(JobSpec.risc("dither"), faults)
        trips_spec = JobSpec.edge("dither", trips=True)
        with pytest.raises(ValueError, match="TRIPS"):
            ResilientRun(trips_spec, faults)
        sampled = JobSpec.edge("dither", ncores=2,
                               sampling={"ff": 1000, "window": 40})
        with pytest.raises(ValueError, match="sampled"):
            ResilientRun(sampled, faults)

    def test_schedule_validated_against_chip(self):
        with pytest.raises(ValueError, match="cores 0..1"):
            ResilientRun(edge("dither", 2), FaultSchedule.single_kill(7, 100))


class TestBootFaults:
    def test_dead_core_shrinks_composition(self):
        schedule = FaultSchedule((FaultEvent("core_dead", core=0),))
        result = run_resilient(edge("conv", 8), schedule)
        # Core 0 breaks the 8-core rectangle; a 2x2 survivor remains.
        assert result.num_cores == 4
        assert result.resil["boot_faulty"] == [0]
        assert result.resil["recoveries"] == []
        baseline = _simulate_edge(edge("conv", 8))
        assert result.cycles != baseline.cycles

    def test_verified_against_interpreter(self):
        # spec.verify=True means run_resilient differentially checked
        # the final memory image against the golden interpreter.
        schedule = FaultSchedule((FaultEvent("core_dead", core=1),))
        result = run_resilient(edge("dither", 4, verify=True), schedule)
        assert result.resil["requested_cores"] == 4

    def test_all_boot_dead_is_rejected_up_front(self):
        schedule = FaultSchedule(tuple(FaultEvent("core_dead", core=c)
                                       for c in (0, 1)))
        with pytest.raises(ValueError, match="no survivor"):
            ResilientRun(edge("dither", 2), schedule)


class TestKillRecovery:
    def _half_cycle(self, bench, ncores):
        return _simulate_edge(edge(bench, ncores)).cycles // 2

    def test_recovers_and_verifies(self):
        ncores = 8
        kill_at = self._half_cycle("conv", ncores)
        schedule = FaultSchedule.single_kill(0, kill_at)
        # verify=True: the post-recovery memory image must match the
        # golden interpreter exactly (the differential acceptance gate).
        result = run_resilient(edge("conv", ncores, verify=True), schedule)

        payload = result.resil
        assert [e["kind"] for e in payload["injected"]] == ["core_kill"]
        assert len(payload["recoveries"]) == 1
        report = payload["recoveries"][0]
        assert report["cycle"] == kill_at
        assert report["core"] == 0
        assert len(report["old_cores"]) == 8
        assert len(report["new_cores"]) == 4
        assert 0 not in report["new_cores"]
        assert report["recovery_cycles"] > 0
        assert report["resumed_at"] == kill_at + report["recovery_cycles"]
        assert report["blocks_lost"] >= 0
        assert report["ipc_before"] > 0
        assert report["ipc_after"] > 0
        assert len(payload["segments"]) == 2
        assert result.num_cores == 4

    def test_failure_costs_cycles(self):
        ncores = 4
        baseline = _simulate_edge(edge("dither", ncores))
        schedule = FaultSchedule.single_kill(1, baseline.cycles // 2)
        result = run_resilient(edge("dither", ncores), schedule)
        assert result.cycles > baseline.cycles
        # Architectural work is conserved: same committed instructions.
        assert result.insts_committed >= baseline.insts_committed

    def test_double_kill_cascades(self):
        ncores = 8
        kill_at = self._half_cycle("conv", ncores)
        # Core 0 breaks the 8-core rectangle; the thread recomposes on
        # [1, 2, 5, 6].  Core 2 then fragments every remaining 2x2, so
        # the second recovery must shrink to a 2-core composition.
        schedule = FaultSchedule((
            FaultEvent("core_kill", core=0, cycle=kill_at),
            FaultEvent("core_kill", core=2, cycle=kill_at + 2000),
        ))
        result = run_resilient(edge("conv", ncores, verify=True), schedule)
        recoveries = result.resil["recoveries"]
        sizes = [(len(r["old_cores"]), len(r["new_cores"]))
                 for r in recoveries]
        assert sizes == [(8, 4), (4, 2)]
        assert len(result.resil["segments"]) == 3
        assert result.num_cores == 2

    def test_composition_lost_when_no_survivor(self):
        kill_at = self._half_cycle("dither", 2)
        schedule = FaultSchedule((
            FaultEvent("core_kill", core=0, cycle=kill_at),
            FaultEvent("core_kill", core=1, cycle=kill_at + 200),
        ))
        with pytest.raises(CompositionLost, match="no fault-free region"):
            run_resilient(edge("dither", 2), schedule)


class TestLinkDegradation:
    def test_slow_link_costs_cycles(self):
        baseline = _simulate_edge(edge("conv", 4))
        schedule = FaultSchedule((
            FaultEvent("link_slow", link=(0, 1), extra=3),
            FaultEvent("link_slow", link=(1, 0), extra=3),
        ))
        result = run_resilient(edge("conv", 4, verify=True), schedule)
        assert result.cycles > baseline.cycles
        assert result.num_cores == 4    # no core lost, only wires
        assert result.resil["recoveries"] == []
        kinds = [e["kind"] for e in result.resil["injected"]]
        assert kinds == ["link_slow", "link_slow"]


class TestObservability:
    def test_recovery_metrics_and_events(self):
        obs = repro.obs.configure(metrics=True)
        events = []
        obs.bus.attach(repro.obs.CallbackSink(events.append))
        kill_at = _simulate_edge(edge("dither", 4)).cycles // 2
        run_resilient(edge("dither", 4),
                      FaultSchedule.single_kill(0, kill_at))

        kinds = [e["kind"] for e in events]
        assert "fault.inject" in kinds
        assert "recompose.start" in kinds
        assert "recompose.done" in kinds
        metrics = obs.metrics
        assert metrics.counter("resil.recoveries") == 1
        assert metrics.counter("resil.faults_injected",
                               kind="core_kill") == 1
        assert metrics.counter("resil.recovery_cycles") > 0

    def test_recovery_profiler_phase(self):
        obs = repro.obs.configure(metrics=True)
        obs.profiler.enabled = True
        kill_at = _simulate_edge(edge("dither", 4)).cycles // 2
        run_resilient(edge("dither", 4),
                      FaultSchedule.single_kill(0, kill_at))
        assert "recovery" in obs.profiler.snapshot()
