"""Resilience suite fixtures."""

import pytest

import repro.obs


@pytest.fixture(autouse=True)
def _reset_obs():
    """Keep the process-global observability bundle inactive between
    tests (some tests configure metrics and must not leak state)."""
    repro.obs.reset()
    yield
    repro.obs.reset()
