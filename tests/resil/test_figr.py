"""Degradation-experiment tests: the figure-R curve, the fig10
dead-core extension, and the allocator/controller resilience hooks."""

import pytest

from repro.harness import fig6_performance, fig10_multiprogramming, \
    figR_degradation, figR_specs
from repro.sched import (
    CoreFailure,
    Job,
    ReallocationController,
    SpeedupTable,
    degraded_assignment,
    surviving_processors,
)
from repro.tflex import tflex_config
from repro.tflex.placement import pack


class TestFigRSpecs:
    def test_one_spec_per_point(self):
        specs = figR_specs(target_cores=8, max_dead=3,
                           benchmarks=["conv", "dither"])
        assert len(specs) == 4 * 2
        assert {s.bench for s in specs} == {"conv", "dither"}

    def test_zero_dead_point_is_the_plain_spec(self):
        specs = figR_specs(target_cores=8, max_dead=1, benchmarks=["conv"])
        assert specs[0].faults == ()
        assert "+faults" not in specs[0].label()
        assert len(specs[1].faults) == 1

    def test_bounds(self):
        with pytest.raises(ValueError, match="max_dead"):
            figR_specs(target_cores=8, max_dead=8)
        with pytest.raises(ValueError, match="max_dead"):
            figR_specs(target_cores=8, max_dead=0)


class TestFigRDegradation:
    @pytest.fixture(scope="class")
    def figR(self):
        return figR_degradation(target_cores=8, max_dead=2,
                                benchmarks=["conv"], seed=2007)

    def test_curve_shape(self, figR):
        assert figR.dead_counts == (0, 1, 2)
        assert figR.relative("conv", 0) == pytest.approx(1.0)
        assert figR.mean_relative(0) == pytest.approx(1.0)
        # Granted composition sizes can only shrink along the sweep.
        granted = [figR.granted_cores(k) for k in figR.dead_counts]
        assert granted[0] == 8
        assert all(b <= a for a, b in zip(granted, granted[1:]))

    def test_monotone_trend(self, figR):
        assert figR.monotone_trend()

    def test_dead_sets_nested(self, figR):
        sets = [set(figR.dead_sets[k]) for k in figR.dead_counts]
        assert sets[0] == set()
        assert sets[0] < sets[1] < sets[2]

    def test_payload_and_render(self, figR):
        payload = figR.payload()
        assert payload["monotone"] is True
        assert len(payload["curve"]) == 3
        point = payload["curve"][1]
        assert point["dead"] == 1
        assert 0 < point["mean_relative"] <= 1.0
        assert point["cycles"]["conv"] > 0
        assert "Figure R" in figR.render()


class TestFig10DeadCores:
    @pytest.fixture(scope="class")
    def fig6_small(self):
        return fig6_performance(core_counts=(1, 2, 4),
                                benchmarks=["conv", "dither", "mcf"])

    def test_zero_dead_is_byte_identical(self, fig6_small):
        base = fig10_multiprogramming(fig6_small, sizes=(2, 4),
                                      granularities=(1, 2, 4),
                                      workloads_per_size=3)
        again = fig10_multiprogramming(fig6_small, sizes=(2, 4),
                                       granularities=(1, 2, 4),
                                       workloads_per_size=3, dead_cores=0)
        assert base.ws == again.ws
        assert base.allocation == again.allocation
        assert again.dead_cores == 0

    def test_degraded_never_beats_pristine(self, fig6_small):
        kwargs = dict(sizes=(2, 4), granularities=(1, 2, 4),
                      workloads_per_size=3)
        pristine = fig10_multiprogramming(fig6_small, **kwargs)
        hurt = fig10_multiprogramming(fig6_small, dead_cores=5, **kwargs)
        assert hurt.dead_cores == 5
        for m in (2, 4):
            assert hurt.ws[m]["TFlex"] <= pristine.ws[m]["TFlex"] + 1e-9
            # Composability keeps TFlex ahead of any fixed survivor CMP.
            for g in (1, 2, 4):
                assert hurt.ws[m]["TFlex"] >= hurt.ws[m][f"CMP-{g}"] - 1e-9


def curve(peak, height=4.0):
    out = {}
    for k in (1, 2, 4, 8, 16, 32):
        out[k] = height * min(k, peak) / peak * (
            1.0 if k <= peak else peak / k * 1.2)
    out[peak] = height
    return out


@pytest.fixture
def table():
    return SpeedupTable(perf={"wide": curve(16), "narrow": curve(2)})


class TestDegradedAssignment:
    def test_no_dead_matches_chip_capacity(self, table):
        cfg = tflex_config(32)
        ws, sizes, placements = degraded_assignment(
            ["wide", "narrow"], table, cfg, dead=set())
        assert sum(sizes) <= 32
        assert len(placements) == 2

    def test_avoids_dead_cores(self, table):
        cfg = tflex_config(32)
        dead = {0, 5, 17}
        ws, sizes, placements = degraded_assignment(
            ["wide", "narrow"], table, cfg, dead=dead)
        assert ws > 0
        for tile in placements:
            assert not set(tile) & dead

    def test_degrades_gracefully(self, table):
        cfg = tflex_config(32)
        apps = ["wide", "wide", "narrow"]
        pristine, *_ = degraded_assignment(apps, table, cfg, dead=set())
        prev = pristine
        for k in (4, 8, 16):
            dead = set(range(k))
            ws, *_ = degraded_assignment(apps, table, cfg, dead=dead)
            assert 0 < ws <= prev + 1e-9
            prev = ws

    def test_raises_when_threads_cannot_fit(self, table):
        cfg = tflex_config(32)
        apps = ["wide"] * 4
        with pytest.raises(ValueError, match="fit"):
            degraded_assignment(apps, table, cfg, dead=set(range(30)),
                                allowed=(1, 2, 4, 8, 16))


class TestSurvivingProcessors:
    def test_pristine_chip(self):
        cfg = tflex_config(32)
        assert surviving_processors(cfg, 4, set()) == 8
        assert surviving_processors(cfg, 16, set()) == 2

    def test_one_fault_kills_one_tile(self):
        cfg = tflex_config(32)
        assert surviving_processors(cfg, 4, {0}) == 7
        # A fixed 16-core CMP loses half the chip to one dead core.
        assert surviving_processors(cfg, 16, {0}) == 1

    def test_spread_faults_can_kill_every_tile(self):
        cfg = tflex_config(32)
        tiles = pack(cfg, [4] * 8)
        dead = {tile[0] for tile in tiles}
        assert surviving_processors(cfg, 4, dead) == 0


class TestControllerFailures:
    def test_failure_shrinks_capacity_in_trace(self, table):
        controller = ReallocationController(table)
        jobs = [Job(name=f"j{i}", bench="wide", arrival=0.0, work=2.0)
                for i in range(2)]
        result = controller.run(jobs, failures=(CoreFailure(time=1.0,
                                                            cores=16),))
        capacities = [ev.capacity for ev in result.trace]
        assert capacities[0] == 32
        assert min(capacities) == 16

    def test_failures_extend_makespan(self, table):
        controller = ReallocationController(table)
        jobs = [Job(name=f"j{i}", bench="wide", arrival=0.0, work=2.0)
                for i in range(2)]
        clean = controller.run(jobs)
        hurt = ReallocationController(table).run(
            jobs, failures=(CoreFailure(time=0.5, cores=24),))
        assert hurt.makespan > clean.makespan

    def test_total_loss_starves(self, table):
        controller = ReallocationController(table)
        with pytest.raises(RuntimeError, match="failed"):
            controller.run([Job(name="a", bench="wide", arrival=0.0,
                                work=5.0)],
                           failures=(CoreFailure(time=1.0, cores=32),))

    def test_failure_validation(self):
        with pytest.raises(ValueError):
            CoreFailure(time=-1.0)
        with pytest.raises(ValueError):
            CoreFailure(time=0.0, cores=0)
