"""Fault-model tests: serialisation round trips (property-based),
canonical ordering, spec hashing, CLI grammar, and validation."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import JobSpec
from repro.exec.spec import spec_hash
from repro.resil import KINDS, NETS, FaultEvent, FaultSchedule, parse_inject
from repro.tflex import tflex_config


# -- strategies --------------------------------------------------------

def dead_events():
    return st.builds(lambda c: FaultEvent("core_dead", core=c),
                     st.integers(0, 31))


def kill_events():
    return st.builds(lambda c, cy: FaultEvent("core_kill", core=c, cycle=cy),
                     st.integers(0, 31), st.integers(1, 10**7))


def link_events():
    pairs = st.tuples(st.integers(0, 31), st.integers(0, 31)).filter(
        lambda p: p[0] != p[1])
    return st.builds(
        lambda link, extra, net: FaultEvent("link_slow", link=link,
                                            extra=extra, net=net),
        pairs, st.integers(1, 9), st.sampled_from(NETS))


def events():
    return st.one_of(dead_events(), kill_events(), link_events())


def schedules():
    return st.builds(lambda evs: FaultSchedule(tuple(evs)),
                     st.lists(events(), max_size=8))


# -- round trips -------------------------------------------------------

class TestEventRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(events())
    def test_dict_round_trip(self, event):
        assert FaultEvent.from_dict(event.to_dict()) == event

    @settings(max_examples=80, deadline=None)
    @given(events())
    def test_canonical_json_round_trip(self, event):
        data = json.loads(event.canonical_json())
        assert FaultEvent.from_dict(data) == event

    @settings(max_examples=40, deadline=None)
    @given(events())
    def test_dict_carries_only_used_fields(self, event):
        keys = set(event.to_dict())
        if event.kind == "core_dead":
            assert keys == {"kind", "core"}
        elif event.kind == "core_kill":
            assert keys == {"kind", "core", "cycle"}
        else:
            assert keys == {"kind", "link", "extra", "net"}


class TestScheduleRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_dict_round_trip(self, schedule):
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_spec_items_round_trip(self, schedule):
        items = schedule.spec_items()
        assert all(isinstance(i, str) for i in items)
        assert FaultSchedule.from_spec_items(items) == schedule

    @settings(max_examples=60, deadline=None)
    @given(st.lists(events(), max_size=8))
    def test_order_independent(self, evs):
        assert FaultSchedule(tuple(evs)) == FaultSchedule(tuple(reversed(evs)))

    def test_core_faults_dedup_links_stack(self):
        kill = FaultEvent("core_kill", core=1, cycle=100)
        link = FaultEvent("link_slow", link=(0, 1), extra=2)
        schedule = FaultSchedule((kill, link, kill, link))
        assert schedule.kill_events() == [kill]
        assert schedule.link_events() == [link, link]

    def test_canonical_order(self):
        schedule = FaultSchedule((
            FaultEvent("core_kill", core=0, cycle=500),
            FaultEvent("link_slow", link=(0, 1), extra=1),
            FaultEvent("core_kill", core=3, cycle=100),
            FaultEvent("core_dead", core=7),
        ))
        kinds = [e.kind for e in schedule.events]
        assert kinds == ["core_dead", "link_slow", "core_kill", "core_kill"]
        # Kills ordered by cycle.
        assert [e.cycle for e in schedule.kill_events()] == [100, 500]

    def test_bool(self):
        assert not FaultSchedule()
        assert FaultSchedule((FaultEvent("core_dead", core=0),))


# -- spec hashing ------------------------------------------------------

class TestSpecHash:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(events(), max_size=6))
    def test_equal_schedules_hash_equal(self, evs):
        a = JobSpec.edge("conv", ncores=8,
                         faults=FaultSchedule(tuple(evs)).spec_items())
        b = JobSpec.edge("conv", ncores=8,
                         faults=FaultSchedule(
                             tuple(reversed(evs))).spec_items())
        assert spec_hash(a) == spec_hash(b)

    def test_different_schedules_hash_differently(self):
        plain = JobSpec.edge("conv", ncores=8)
        one = JobSpec.edge("conv", ncores=8,
                           faults=FaultSchedule.single_kill(0, 100)
                           .spec_items())
        two = JobSpec.edge("conv", ncores=8,
                           faults=FaultSchedule.single_kill(0, 200)
                           .spec_items())
        assert len({spec_hash(plain), spec_hash(one), spec_hash(two)}) == 3

    def test_label_suffix(self):
        spec = JobSpec.edge("conv", ncores=8,
                            faults=FaultSchedule.single_kill(0, 100)
                            .spec_items())
        assert spec.label().endswith("+faults1")
        assert "+faults" not in JobSpec.edge("conv", ncores=8).label()

    def test_spec_dict_round_trip(self):
        spec = JobSpec.edge("conv", ncores=8,
                            faults=FaultSchedule.single_kill(2, 99)
                            .spec_items())
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_faults_reject_sampling_and_trips(self):
        faults = FaultSchedule.single_kill(0, 100).spec_items()
        with pytest.raises(ValueError, match="fast-forward"):
            JobSpec.edge("conv", ncores=8, faults=faults,
                         sampling={"ff": 1000})
        with pytest.raises(ValueError):
            JobSpec.edge("conv", trips=True, faults=faults)


# -- event validation --------------------------------------------------

class TestEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor", core=0)

    def test_core_required(self):
        with pytest.raises(ValueError, match="core index"):
            FaultEvent("core_dead")

    def test_dead_takes_no_cycle(self):
        with pytest.raises(ValueError, match="core_kill for a mid-run"):
            FaultEvent("core_dead", core=0, cycle=5)

    def test_kill_needs_cycle(self):
        with pytest.raises(ValueError, match="cycle >= 1"):
            FaultEvent("core_kill", core=0)

    def test_link_needs_distinct_pair(self):
        with pytest.raises(ValueError, match="distinct"):
            FaultEvent("link_slow", link=(3, 3), extra=1)

    def test_link_needs_positive_extra(self):
        with pytest.raises(ValueError, match="extra latency"):
            FaultEvent("link_slow", link=(0, 1), extra=0)

    def test_link_needs_known_net(self):
        with pytest.raises(ValueError, match="unknown network"):
            FaultEvent("link_slow", link=(0, 1), extra=1, net="psychic")


class TestScheduleValidation:
    def test_core_out_of_range(self):
        cfg = tflex_config(4)
        schedule = FaultSchedule((FaultEvent("core_dead", core=9),))
        with pytest.raises(ValueError, match="cores 0..3"):
            schedule.validate(cfg)

    def test_link_not_adjacent(self):
        cfg = tflex_config(16)   # 4x4 mesh
        schedule = FaultSchedule(
            (FaultEvent("link_slow", link=(0, 5), extra=1),))
        with pytest.raises(ValueError, match="not a mesh link"):
            schedule.validate(cfg)

    def test_link_adjacency_is_grid_not_index(self):
        cfg = tflex_config(16)   # 4x4: core 3 and 4 are on different rows
        schedule = FaultSchedule(
            (FaultEvent("link_slow", link=(3, 4), extra=1),))
        with pytest.raises(ValueError, match="not a mesh link"):
            schedule.validate(cfg)
        ok = FaultSchedule((FaultEvent("link_slow", link=(4, 5), extra=1),
                            FaultEvent("link_slow", link=(1, 5), extra=1)))
        ok.validate(cfg)

    def test_kill_beyond_budget(self):
        cfg = tflex_config(4)
        schedule = FaultSchedule.single_kill(0, 5000)
        schedule.validate(cfg)                      # no budget: fine
        with pytest.raises(ValueError, match="would never fire"):
            schedule.validate(cfg, max_cycles=1000)

    def test_no_survivor(self):
        cfg = tflex_config(2)
        schedule = FaultSchedule(tuple(FaultEvent("core_dead", core=c)
                                       for c in (0, 1)))
        with pytest.raises(ValueError, match="no survivor"):
            schedule.validate(cfg)


# -- seeded generators -------------------------------------------------

class TestBootDead:
    def test_nested_dead_sets(self):
        sets = [set(FaultSchedule.boot_dead(k, 16, seed=7).boot_dead_cores())
                for k in range(16)]
        for small, big in zip(sets, sets[1:]):
            assert small < big

    def test_deterministic(self):
        a = FaultSchedule.boot_dead(5, 32, seed=2007)
        b = FaultSchedule.boot_dead(5, 32, seed=2007)
        assert a == b
        assert a.spec_items() == b.spec_items()

    def test_seed_matters(self):
        a = FaultSchedule.boot_dead(6, 32, seed=1)
        b = FaultSchedule.boot_dead(6, 32, seed=2)
        assert a != b

    def test_count_bounds(self):
        assert not FaultSchedule.boot_dead(0, 8, seed=1)
        with pytest.raises(ValueError):
            FaultSchedule.boot_dead(8, 8, seed=1)
        with pytest.raises(ValueError):
            FaultSchedule.boot_dead(-1, 8, seed=1)


# -- CLI grammar -------------------------------------------------------

class TestParseInject:
    def test_dead(self):
        assert parse_inject("dead:3") == FaultEvent("core_dead", core=3)

    def test_kill(self):
        assert parse_inject("kill:2@500") == FaultEvent(
            "core_kill", core=2, cycle=500)

    def test_link_default_net(self):
        assert parse_inject("link:2-3:4") == FaultEvent(
            "link_slow", link=(2, 3), extra=4, net="both")

    def test_link_explicit_net(self):
        assert parse_inject("link:2-3:4:opn") == FaultEvent(
            "link_slow", link=(2, 3), extra=4, net="opn")

    @pytest.mark.parametrize("text,fragment", [
        ("garbage", "not a fault spec"),
        ("kill:2", "missing '@CYCLE'"),
        ("meteor:1", "unknown fault kind"),
        ("dead:xyz", "dead:xyz"),
        ("link:2-3", "link:SRC-DST:EXTRA"),
        ("link:23:4", "SRC-DST"),
    ])
    def test_bad_specs_are_actionable(self, text, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_inject(text)
        assert fragment in str(excinfo.value)

    def test_round_trip_through_schedule(self):
        events = tuple(parse_inject(t) for t in
                       ("dead:1", "kill:2@900", "link:0-1:2:control"))
        schedule = FaultSchedule(events)
        assert FaultSchedule.from_spec_items(schedule.spec_items()) == schedule
