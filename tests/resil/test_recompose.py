"""Unit tests for the recomposition building blocks: survivor-region
selection and RAS state transfer between compositions."""

from hypothesis import given, settings, strategies as st

from repro.predictor.ras import DistributedRas
from repro.resil import choose_composition, transfer_ras
from repro.tflex import tflex_config
from repro.tflex.placement import rectangle


class TestChooseComposition:
    def test_no_faults_matches_default_placement(self):
        # The fault-free path must land on the exact same rectangle the
        # plain harness composes, or golden results would drift.
        for n in (1, 2, 4, 8, 16):
            cfg = tflex_config(max(n, 4))
            assert choose_composition(cfg, n, set()) == \
                rectangle(cfg, n, (0, 0))

    def test_avoids_unavailable(self):
        cfg = tflex_config(16)
        cores = choose_composition(cfg, 16, {0})
        assert cores is not None
        assert 0 not in cores
        assert len(cores) == 8     # largest survivor rectangle

    def test_falls_back_to_smaller_sizes(self):
        cfg = tflex_config(8)      # 4x2 mesh
        # One dead core rules out the full-chip rectangle entirely.
        cores = choose_composition(cfg, 8, {0})
        assert cores == [1, 2, 5, 6]   # the 2x2 just right of the fault

    def test_single_survivor(self):
        cfg = tflex_config(4)
        cores = choose_composition(cfg, 4, {0, 1, 2})
        assert cores == [3]

    def test_none_when_everything_taken(self):
        cfg = tflex_config(4)
        assert choose_composition(cfg, 4, {0, 1, 2, 3}) is None

    def test_respects_target(self):
        cfg = tflex_config(16)
        cores = choose_composition(cfg, 4, set())
        assert len(cores) == 4

    def test_deterministic(self):
        cfg = tflex_config(16)
        assert choose_composition(cfg, 8, {5}) == \
            choose_composition(cfg, 8, {5})


class TestTransferRas:
    def _push(self, ras, values):
        for v in values:
            ras.push(v)

    def test_same_capacity_round_trip(self):
        old = DistributedRas(4, entries_per_core=4)
        new = DistributedRas(4, entries_per_core=4)
        self._push(old, [10, 20, 30])
        transfer_ras(old, new)
        assert new.depth == 3
        assert new.pop()[0] == 30
        assert new.pop()[0] == 20
        assert new.pop()[0] == 10

    def test_shrinking_keeps_youngest(self):
        old = DistributedRas(4, entries_per_core=2)   # capacity 8
        new = DistributedRas(2, entries_per_core=2)   # capacity 4
        self._push(old, range(100, 108))              # 8 live entries
        transfer_ras(old, new)
        assert new.depth == 4
        assert [new.pop()[0] for _ in range(4)] == [107, 106, 105, 104]

    def test_growing_keeps_everything(self):
        old = DistributedRas(1, entries_per_core=4)
        new = DistributedRas(4, entries_per_core=4)
        self._push(old, [1, 2, 3])
        transfer_ras(old, new)
        assert new.depth == 3
        assert [new.pop()[0] for _ in range(3)] == [3, 2, 1]

    def test_overflowed_stack_clamps_to_live_window(self):
        old = DistributedRas(2, entries_per_core=2)   # capacity 4
        new = DistributedRas(2, entries_per_core=2)
        self._push(old, range(10))   # 10 pushes wrap the 4-entry stack
        transfer_ras(old, new)
        assert new.depth == 4
        assert [new.pop()[0] for _ in range(4)] == [9, 8, 7, 6]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(1, 10**6), max_size=24),
           st.sampled_from([1, 2, 4]), st.sampled_from([1, 2, 4]))
    def test_pop_sequence_matches_suffix(self, values, old_cores, new_cores):
        old = DistributedRas(old_cores, entries_per_core=4)
        new = DistributedRas(new_cores, entries_per_core=4)
        self._push(old, values)
        transfer_ras(old, new)
        live = min(len(values), old.capacity)
        keep = min(live, new.capacity)
        assert new.depth == keep
        expected = list(reversed(values[len(values) - keep:]))
        assert [new.pop()[0] for _ in range(keep)] == expected
