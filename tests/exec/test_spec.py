"""JobSpec canonicalisation and content hashing."""

import subprocess
import sys

from repro.exec import SCHEMA_VERSION, JobSpec, spec_hash


class TestCanonicalisation:
    def test_override_order_irrelevant(self):
        a = JobSpec.edge("conv", overrides={"a": 1, "b": 2})
        b = JobSpec.edge("conv", overrides={"b": 2, "a": 1})
        assert a == b
        assert spec_hash(a) == spec_hash(b)

    def test_trips_ignores_requested_cores(self):
        a = JobSpec.edge("conv", trips=True, ncores=8)
        b = JobSpec.edge("conv", trips=True, ncores=16)
        assert spec_hash(a) == spec_hash(b)

    def test_typed_overrides_do_not_collide(self):
        # "+x=1" formats identically for int 1 and str "1": the old
        # label-keyed cache collided here, the content hash must not.
        a = JobSpec.edge("conv", overrides={"x": 1})
        b = JobSpec.edge("conv", overrides={"x": "1"})
        assert a.label() == b.label()
        assert spec_hash(a) != spec_hash(b)

    def test_labels_match_legacy_format(self):
        assert JobSpec.edge("conv", ncores=2).label() == "tflex-2"
        assert JobSpec.edge("conv", trips=True).label() == "trips"
        assert (JobSpec.edge("conv", ncores=2, ideal_handshake=True).label()
                == "tflex-2-ideal")
        spec = JobSpec.edge("conv", ncores=4,
                            overrides={"b": 2, "a": 1})
        assert spec.label() == "tflex-4+a=1+b=2"
        assert JobSpec.risc("conv").label() == "ooo"

    def test_dict_round_trip(self):
        spec = JobSpec.edge("mcf", ncores=16, scale=3,
                            overrides={"x": 1}, core_overrides={"y": False})
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestHashing:
    def test_distinct_points_distinct_hashes(self):
        specs = [
            JobSpec.edge("conv", ncores=2),
            JobSpec.edge("conv", ncores=4),
            JobSpec.edge("dither", ncores=2),
            JobSpec.edge("conv", ncores=2, scale=2),
            JobSpec.edge("conv", ncores=2, ideal_handshake=True),
            JobSpec.risc("conv"),
        ]
        hashes = {spec_hash(s) for s in specs}
        assert len(hashes) == len(specs)

    def test_salt_changes_hash(self):
        spec = JobSpec.edge("conv", ncores=2)
        assert spec_hash(spec, salt=SCHEMA_VERSION) != \
            spec_hash(spec, salt=SCHEMA_VERSION + 1)

    def test_stable_across_processes(self):
        # Hash randomisation (PYTHONHASHSEED) must not leak into the
        # content address: recompute in a fresh interpreter.
        spec = JobSpec.edge("conv", ncores=2, overrides={"z": 9, "a": 1})
        code = (
            "from repro.exec import JobSpec, spec_hash;"
            "print(spec_hash(JobSpec.edge('conv', ncores=2,"
            " overrides={'a': 1, 'z': 9})))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": "src", "PYTHONHASHSEED": "7"},
            cwd=__file__.rsplit("/tests/", 1)[0])
        assert out.stdout.strip() == spec_hash(spec)
