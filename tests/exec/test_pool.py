"""WorkerPool: warm reuse, watchdog escalation, transparent respawn.

Worker functions live at module level so they pickle into children.
The nasty ones model the three ways a real worker dies: ignoring
SIGTERM (stuck in C code), breaking the pipe mid-send, and crashing
outright.
"""

import os
import signal
import struct
import time

import pytest

from repro.exec import JobSpec, ParallelExecutor, ResultStore, run_specs
from repro.exec.pool import WorkerPool
from repro.obs import Observability


def _specs(n, bench="conv"):
    return [JobSpec.edge(bench, ncores=2, scale=i + 1) for i in range(n)]


def _ok_worker(spec):
    return {"bench": spec.bench, "scale": spec.scale,
            "value": spec.scale * 10}


def _sigterm_ignoring_worker(spec):
    """The acceptance scenario: a worker wedged with SIGTERM trapped.
    Only SIGKILL (the watchdog's escalation) can take it down."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(60)
    return _ok_worker(spec)


def _broken_pipe_worker(spec):
    """Corrupt the reply stream mid-frame: write a length header that
    promises 64 bytes, deliver 2, and die.  The parent's recv() must
    classify this as a lost worker, not block forever."""
    from repro.exec.worker import current_connection

    conn = current_connection()
    os.write(conn.fileno(), struct.pack("!i", 64) + b"xx")
    os._exit(0)


def _crash_on_scale_2(spec):
    if spec.scale == 2:
        os._exit(13)
    return _ok_worker(spec)


def _obs():
    return Observability(metrics_enabled=True)


class TestWarmReuse:
    def test_pool_matches_serial(self):
        specs = _specs(6)
        serial = run_specs(specs, jobs=1, worker=_ok_worker)
        pooled = run_specs(specs, jobs=2, worker=_ok_worker, pool=True)
        assert [r.payload for r in pooled] == [r.payload for r in serial]
        assert [r.spec for r in pooled] == specs

    def test_pool_and_spawn_records_byte_identical(self, tmp_path):
        """The pool is an execution backend, not a semantic change: the
        store records it writes are the bytes the spawn path writes."""
        specs = _specs(5)
        store_pool = ResultStore(tmp_path / "pool")
        store_spawn = ResultStore(tmp_path / "spawn")
        run_specs(specs, jobs=2, worker=_ok_worker, store=store_pool,
                  pool=True)
        run_specs(specs, jobs=2, worker=_ok_worker, store=store_spawn,
                  pool=False)
        for spec in specs:
            a = store_pool.path_for(store_pool.key(spec)).read_bytes()
            b = store_spawn.path_for(store_spawn.key(spec)).read_bytes()
            assert a == b

    def test_workers_are_reused_across_jobs(self):
        """6 jobs over 2 warm workers: at least 4 are served by a worker
        that already ran one — the exec.pool_reuse counter proves jobs
        are not paying a process spawn each."""
        obs = _obs()
        results = run_specs(_specs(6), jobs=2, worker=_ok_worker,
                            pool=True, obs=obs)
        assert all(r.status == "ok" for r in results)
        assert obs.metrics.counter("exec.pool_reuse") >= 4

    def test_pool_size_capped_by_todo(self):
        results = run_specs(_specs(2), jobs=8, worker=_ok_worker, pool=True)
        assert [r.status for r in results] == ["ok", "ok"]


class TestWatchdog:
    def test_sigterm_ignoring_worker_is_killed_within_grace(self):
        """Regression (acceptance criterion): a worker that traps
        SIGTERM used to wedge the sweep in an unbounded join().  The
        watchdog must escalate to SIGKILL within the grace period and
        mark the job failed."""
        executor = ParallelExecutor(jobs=2, timeout=0.3, retries=0,
                                    worker=_sigterm_ignoring_worker,
                                    pool=True)
        executor.grace = 1.0
        started = time.monotonic()
        (r,) = executor.run(_specs(1))
        elapsed = time.monotonic() - started
        assert r.status == "failed"
        assert "timed out" in r.error
        # timeout + terminate-grace + kill-grace + scheduling slack —
        # nowhere near the worker's 60s sleep.
        assert elapsed < 15

    def test_sigterm_ignoring_worker_spawn_path(self):
        """The same escalation protects the per-job-spawn backend."""
        executor = ParallelExecutor(jobs=2, timeout=0.3, retries=0,
                                    worker=_sigterm_ignoring_worker,
                                    pool=False)
        executor.grace = 1.0
        started = time.monotonic()
        (r,) = executor.run(_specs(1))
        assert r.status == "failed"
        assert "timed out" in r.error
        assert time.monotonic() - started < 15

    def test_timeout_error_string_matches_spawn_path(self):
        (r,) = run_specs(_specs(1), jobs=2, timeout=0.2, retries=0,
                         worker=_sigterm_ignoring_worker, pool=True)
        assert r.error.startswith("worker timed out after 0.2s")


class TestRespawn:
    def test_pipe_broken_mid_send_fails_job_not_sweep(self):
        """A worker that corrupts the reply stream and dies loses its
        own job; the pool respawns the slot and the sweep completes."""
        obs = _obs()
        specs = _specs(1)
        # jobs=2 with one cold spec: the pool backend with one slot
        # (jobs=1 would run serially, in-process).
        results = run_specs(specs, jobs=2, retries=0,
                            worker=_broken_pipe_worker, pool=True, obs=obs)
        (r,) = results
        assert r.status == "failed"
        assert "worker" in r.error      # pipe broken / crashed (exit 0)
        respawns = sum(
            obs.metrics.counter("exec.worker_respawns", reason=reason)
            for reason in ("pipe", "crash"))
        assert respawns >= 1

    def test_respawn_after_crash_keeps_serving(self):
        """One job crashes its worker; the pool replaces the slot and
        every other job still completes."""
        obs = _obs()
        specs = _specs(4)
        results = run_specs(specs, jobs=2, retries=0,
                            worker=_crash_on_scale_2, pool=True, obs=obs)
        by_scale = {r.spec.scale: r for r in results}
        assert by_scale[2].status == "failed"
        assert "exit code 13" in by_scale[2].error
        for scale in (1, 3, 4):
            assert by_scale[scale].status == "ok"
        assert obs.metrics.counter("exec.worker_respawns",
                                   reason="crash") >= 1

    def test_crash_is_retried_like_spawn_path(self):
        """The executor's retry policy sees pool crashes exactly as it
        sees spawn-path crashes (same error string, same metric)."""
        obs = _obs()
        results = run_specs([JobSpec.edge("conv", ncores=2, scale=2)],
                            jobs=2, worker=_crash_on_scale_2,
                            pool=True, obs=obs)
        (r,) = results
        assert r.status == "failed"
        assert r.attempts == 2
        assert "worker crashed (exit code 13)" in r.error
        assert obs.metrics.counter("exec.crashes", bench="conv") == 2


class TestPoolUnit:
    def test_dispatch_requires_idle_worker(self):
        pool = WorkerPool(size=1, worker=_ok_worker)
        try:
            pool.dispatch(0, _specs(1)[0])
            with pytest.raises(RuntimeError):
                pool.dispatch(1, _specs(1)[0])
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent_and_fast(self):
        pool = WorkerPool(size=2, worker=_ok_worker, grace=2.0)
        started = time.monotonic()
        pool.shutdown()
        pool.shutdown()
        assert time.monotonic() - started < 8
        assert all(not pw.process.is_alive() for pw in pool.workers)

    def test_events_come_back_with_durations(self):
        pool = WorkerPool(size=1, worker=_ok_worker)
        try:
            pool.dispatch(7, _specs(1)[0])
            deadline = time.monotonic() + 30
            events = []
            while not events and time.monotonic() < deadline:
                events = pool.poll()
                time.sleep(0.01)
            (event,) = events
            assert event.tag == 7
            assert event.ok
            assert event.value == _ok_worker(_specs(1)[0])
            assert event.duration >= 0.0
        finally:
            pool.shutdown()
