"""Cache garbage collection and the gzip blob store."""

import gzip
import json
import os

import pytest

import repro.obs as obs_lib
from repro.exec.store import BlobStore, gc_cache, parse_size
from repro.obs import RingBufferSink


@pytest.fixture(autouse=True)
def _obs_reset():
    yield
    obs_lib.reset()


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("0", 0),
        ("123456", 123456),
        ("1K", 1 << 10),
        ("512m", 512 << 20),
        ("2G", 2 << 30),
        (" 10K ", 10 << 10),
    ])
    def test_accepted(self, text, expected):
        assert parse_size(text) == expected

    def test_passthrough(self):
        assert parse_size(None) is None
        assert parse_size(42) == 42

    @pytest.mark.parametrize("text", ["lots", "", "K", "1.5G", "-1", "-2M"])
    def test_rejected(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


def _populate(root, ages_days, now):
    """One result record and one trace blob per age, oldest first;
    returns paths in creation order."""
    paths = []
    for i, age in enumerate(ages_days):
        result = root / f"{i:02x}" / f"{i:02x}{'0' * 6}.json"
        result.parent.mkdir(parents=True, exist_ok=True)
        result.write_text(json.dumps({"payload": i}))
        trace = root / "traces" / f"{i:02x}" / f"{i:02x}{'f' * 6}.json.gz"
        trace.parent.mkdir(parents=True, exist_ok=True)
        trace.write_bytes(gzip.compress(b"{}"))
        stamp = now - age * 86400
        for path in (result, trace):
            os.utime(path, (stamp, stamp))
            paths.append(path)
    return paths


class TestGcCache:
    NOW = 1_700_000_000.0

    def test_no_bounds_only_reports(self, tmp_path):
        paths = _populate(tmp_path, (10, 0), now=self.NOW)
        report = gc_cache(tmp_path, now=self.NOW)
        assert report["scanned"] == 4
        assert report["removed"] == 0
        assert report["kept"] == 4
        assert report["scanned_bytes"] == sum(p.stat().st_size
                                              for p in paths)
        assert all(p.exists() for p in paths)

    def test_age_bound_prunes_old_records_and_traces(self, tmp_path):
        paths = _populate(tmp_path, (10, 5, 0), now=self.NOW)
        report = gc_cache(tmp_path, max_age_days=7, now=self.NOW)
        assert report["removed"] == 2          # the 10-day result + trace
        assert sorted(report["removed_paths"]) == sorted(
            str(p) for p in paths[:2])
        assert not any(p.exists() for p in paths[:2])
        assert all(p.exists() for p in paths[2:])

    def test_size_budget_keeps_newest(self, tmp_path):
        paths = _populate(tmp_path, (10, 5, 0), now=self.NOW)
        newest = paths[4:]
        budget = sum(p.stat().st_size for p in newest)
        report = gc_cache(tmp_path, max_bytes=budget, now=self.NOW)
        assert report["kept"] == 2
        assert report["kept_bytes"] == budget
        assert all(p.exists() for p in newest)
        assert not any(p.exists() for p in paths[:4])

    def test_dry_run_plans_without_deleting(self, tmp_path):
        paths = _populate(tmp_path, (10, 0), now=self.NOW)
        report = gc_cache(tmp_path, max_age_days=1, dry_run=True,
                          now=self.NOW)
        assert report["dry_run"] is True
        assert report["removed"] == 2
        assert len(report["removed_paths"]) == 2
        assert all(p.exists() for p in paths)

    def test_sidecars_are_exempt(self, tmp_path):
        _populate(tmp_path, (10,), now=self.NOW)
        for name in ("durations.json", ".lock"):
            side = tmp_path / name
            side.write_text("{}")
            os.utime(side, (self.NOW - 30 * 86400,) * 2)
        report = gc_cache(tmp_path, max_age_days=0.5, now=self.NOW)
        assert report["scanned"] == 2          # records only
        assert (tmp_path / "durations.json").exists()
        assert (tmp_path / ".lock").exists()

    def test_missing_root_is_empty_report(self, tmp_path):
        report = gc_cache(tmp_path / "absent", max_age_days=1)
        assert report["scanned"] == 0 and report["removed"] == 0

    def test_emits_event_and_metrics(self, tmp_path):
        _populate(tmp_path, (10, 0), now=self.NOW)
        obs = obs_lib.configure(metrics=True)
        ring = obs.bus.attach(RingBufferSink(kinds=("cache.gc",)))
        report = gc_cache(tmp_path, max_age_days=1, now=self.NOW)
        events = ring.of_kind("cache.gc")
        assert len(events) == 1
        assert events[0]["removed"] == report["removed"] == 2
        assert events[0]["bytes_freed"] == report["removed_bytes"]
        assert obs.metrics.counter("exec.gc_scanned") == 4
        assert obs.metrics.counter("exec.gc_removed", dry_run="false") == 2


class TestBlobStore:
    KEY = "ab" * 32

    def test_roundtrip(self, tmp_path):
        store = BlobStore(tmp_path, salt=7)
        payload = {"x": [1, 2.5, "three"], "nested": {"ok": True}}
        path = store.store(self.KEY, payload)
        assert path == store.path_for(self.KEY)
        assert store.load(self.KEY) == payload
        assert store.counters() == {"hits": 1, "misses": 0, "writes": 1}
        assert len(store) == 1

    def test_bytes_are_deterministic(self, tmp_path):
        """mtime=0 + compact separators: identical content produces
        identical bytes, so concurrent writers of one content key can
        never disagree."""
        a = BlobStore(tmp_path / "a", salt=1)
        b = BlobStore(tmp_path / "b", salt=1)
        payload = {"v": list(range(64))}
        a.store(self.KEY, payload)
        b.store(self.KEY, payload)
        assert a.path_for(self.KEY).read_bytes() \
            == b.path_for(self.KEY).read_bytes()

    def test_no_temp_files_left_behind(self, tmp_path):
        store = BlobStore(tmp_path, salt=1)
        store.store(self.KEY, {"v": 1})
        assert not list(tmp_path.rglob("*.tmp"))

    def test_corruption_and_salt_misses(self, tmp_path):
        store = BlobStore(tmp_path, salt=1)
        store.store(self.KEY, {"v": 1})
        assert BlobStore(tmp_path, salt=2).load(self.KEY) is None
        store.path_for(self.KEY).write_bytes(b"not gzip")
        assert store.load(self.KEY) is None
        store.store(self.KEY, {"v": 2})        # rewrite heals
        assert store.load(self.KEY) == {"v": 2}

    def test_clear(self, tmp_path):
        store = BlobStore(tmp_path, salt=1)
        store.store(self.KEY, {"v": 1})
        store.store("cd" * 32, {"v": 2})
        assert store.clear() == 2
        assert len(store) == 0
