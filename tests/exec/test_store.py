"""ResultStore: atomic writes, corruption tolerance, salt invalidation."""

import json

from repro.exec import JobSpec, ResultStore


SPEC = JobSpec.edge("conv", ncores=4)
PAYLOAD = {"kind": "edge", "result": {"cycles": 123}}


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(SPEC) is None
        store.store(SPEC, PAYLOAD)
        assert store.load(SPEC) == PAYLOAD
        assert store.counters() == {"hits": 1, "misses": 1, "writes": 1}

    def test_layout_is_content_addressed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        key = store.key(SPEC)
        assert path == tmp_path / key[:2] / f"{key}.json"
        record = json.loads(path.read_text())
        assert record["key"] == key
        assert record["spec"]["bench"] == "conv"

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in (1, 2, 4):
            store.store(JobSpec.edge("conv", ncores=n), PAYLOAD)
        assert list(tmp_path.rglob("*.tmp")) == []
        assert len(store) == 3

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(SPEC, PAYLOAD)
        assert store.clear() == 1
        assert store.load(SPEC) is None


class TestCorruptionTolerance:
    def _record_path(self, store):
        store.store(SPEC, PAYLOAD)
        return store.path_for(store.key(SPEC))

    def test_truncated_json_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        # Simulate a crash mid-write that somehow survived: truncate the
        # record at half length.
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert store.load(SPEC) is None
        assert store.misses == 1

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_bytes(b"\x00\xff\x00garbage")
        assert store.load(SPEC) is None

    def test_wrong_json_shape_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_text(json.dumps([1, 2, 3]))
        assert store.load(SPEC) is None

    def test_rewrite_heals_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_text("{not json")
        assert store.load(SPEC) is None
        store.store(SPEC, PAYLOAD)
        assert store.load(SPEC) == PAYLOAD


class TestInvalidation:
    def test_salt_change_invalidates(self, tmp_path):
        old = ResultStore(tmp_path, salt=1)
        old.store(SPEC, PAYLOAD)
        new = ResultStore(tmp_path, salt=2)
        assert new.load(SPEC) is None        # different content address
        new.store(SPEC, PAYLOAD)
        assert new.load(SPEC) == PAYLOAD
        assert old.load(SPEC) == PAYLOAD     # old records untouched

    def test_schema_field_checked(self, tmp_path):
        # A record whose path matches but whose embedded schema does not
        # (e.g. hand-edited) is a miss, not an error.
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record))
        assert store.load(SPEC) is None
