"""ResultStore: atomic writes, corruption tolerance, salt invalidation."""

import json

from repro.exec import JobSpec, ResultStore


SPEC = JobSpec.edge("conv", ncores=4)
PAYLOAD = {"kind": "edge", "result": {"cycles": 123}}


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(SPEC) is None
        store.store(SPEC, PAYLOAD)
        assert store.load(SPEC) == PAYLOAD
        assert store.counters() == {"hits": 1, "misses": 1, "writes": 1}

    def test_layout_is_content_addressed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        key = store.key(SPEC)
        assert path == tmp_path / key[:2] / f"{key}.json"
        record = json.loads(path.read_text())
        assert record["key"] == key
        assert record["spec"]["bench"] == "conv"

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in (1, 2, 4):
            store.store(JobSpec.edge("conv", ncores=n), PAYLOAD)
        assert list(tmp_path.rglob("*.tmp")) == []
        assert len(store) == 3

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(SPEC, PAYLOAD)
        assert store.clear() == 1
        assert store.load(SPEC) is None


class TestCorruptionTolerance:
    def _record_path(self, store):
        store.store(SPEC, PAYLOAD)
        return store.path_for(store.key(SPEC))

    def test_truncated_json_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        # Simulate a crash mid-write that somehow survived: truncate the
        # record at half length.
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert store.load(SPEC) is None
        assert store.misses == 1

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_bytes(b"\x00\xff\x00garbage")
        assert store.load(SPEC) is None

    def test_wrong_json_shape_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_text(json.dumps([1, 2, 3]))
        assert store.load(SPEC) is None

    def test_rewrite_heals_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._record_path(store)
        path.write_text("{not json")
        assert store.load(SPEC) is None
        store.store(SPEC, PAYLOAD)
        assert store.load(SPEC) == PAYLOAD


class TestContains:
    """``contains`` must apply the same validation as ``load`` — a
    record that would miss on load must not report "cached" here
    (regression: it used to check only that the file parsed)."""

    def test_contains_matches_load_on_valid_record(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.contains(SPEC)
        store.store(SPEC, PAYLOAD)
        assert store.contains(SPEC)

    def test_corrupt_record_is_not_contained(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        path.write_text("{not json")
        assert not store.contains(SPEC)

    def test_wrong_schema_is_not_contained(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record))
        assert not store.contains(SPEC)

    def test_wrong_key_echo_is_not_contained(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        record = json.loads(path.read_text())
        record["key"] = "0" * 64
        path.write_text(json.dumps(record))
        assert not store.contains(SPEC)

    def test_missing_payload_is_not_contained(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        record = json.loads(path.read_text())
        del record["payload"]
        path.write_text(json.dumps(record))
        assert not store.contains(SPEC)

    def test_contains_does_not_touch_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(SPEC, PAYLOAD)
        store.contains(SPEC)
        assert store.counters() == {"hits": 0, "misses": 0, "writes": 1}


class TestAdvisoryLock:
    def test_lock_excludes_across_processes(self, tmp_path):
        """A child holding the store lock blocks the parent's acquire
        until released (flock is per-open-file, so the contention has
        to cross a process boundary to be observable)."""
        import multiprocessing
        import time

        from repro.exec import advisory_lock

        lock_path = tmp_path / ".lock"
        ctx = multiprocessing.get_context()
        acquired = ctx.Event()
        release = ctx.Event()
        child = ctx.Process(target=_hold_lock,
                            args=(str(lock_path), acquired, release))
        child.start()
        try:
            assert acquired.wait(10)
            started = time.monotonic()
            release_after = 0.3
            _release_later(release, release_after)
            with advisory_lock(lock_path):
                waited = time.monotonic() - started
            assert waited >= release_after * 0.5
        finally:
            release.set()
            child.join(10)

    def test_lock_is_reentrant_across_calls(self, tmp_path):
        from repro.exec import advisory_lock

        with advisory_lock(tmp_path / ".lock"):
            pass
        with advisory_lock(tmp_path / ".lock"):
            pass


def _hold_lock(path, acquired, release):
    from repro.exec import advisory_lock

    with advisory_lock(path):
        acquired.set()
        release.wait(30)


def _release_later(event, delay):
    import threading

    threading.Timer(delay, event.set).start()


class TestInvalidation:
    def test_salt_change_invalidates(self, tmp_path):
        old = ResultStore(tmp_path, salt=1)
        old.store(SPEC, PAYLOAD)
        new = ResultStore(tmp_path, salt=2)
        assert new.load(SPEC) is None        # different content address
        new.store(SPEC, PAYLOAD)
        assert new.load(SPEC) == PAYLOAD
        assert old.load(SPEC) == PAYLOAD     # old records untouched

    def test_schema_field_checked(self, tmp_path):
        # A record whose path matches but whose embedded schema does not
        # (e.g. hand-edited) is a miss, not an error.
        store = ResultStore(tmp_path)
        path = store.store(SPEC, PAYLOAD)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record))
        assert store.load(SPEC) is None
