"""Hash-stability golden: JobSpec content addresses are frozen.

Every persisted result (the store, durations sidecars, BENCH records)
is keyed by :func:`repro.exec.spec_hash`.  An *accidental* change to
the canonical form — field rename, different freezing, a json dump
tweak — silently orphans every cached result while all behavioural
tests keep passing.  This suite pins the hash of a corpus spanning
every spec field (including ``sampling`` and ``faults``) against
``hash_golden.json``.

If a hash changes on purpose (schema evolution), bump
``SCHEMA_VERSION`` in ``src/repro/exec/spec.py`` and regenerate:

    PYTHONPATH=src python tests/exec/test_hash_golden.py --regen
"""

import json
import pathlib

from repro.exec import SCHEMA_VERSION, JobSpec, spec_hash
from repro.resil import FaultEvent, FaultSchedule

GOLDEN_PATH = pathlib.Path(__file__).with_name("hash_golden.json")

#: The schema version the golden file was generated under.  A salt
#: bump invalidates every pinned hash by design — regenerate.
GOLDEN_SCHEMA_VERSION = 3


def golden_corpus() -> dict:
    """Name -> JobSpec, one entry per hash-relevant axis."""
    faults = FaultSchedule((
        FaultEvent("core_dead", core=3),
        FaultEvent("core_kill", core=1, cycle=500),
        FaultEvent("link_slow", link=(0, 2), extra=4, net="opn"),
    )).spec_items()
    return {
        "edge_default": JobSpec.edge("conv"),
        "edge_2core": JobSpec.edge("conv", ncores=2),
        "edge_32core_scale4": JobSpec.edge("gzip", ncores=32, scale=4),
        "trips_baseline": JobSpec.edge("conv", trips=True),
        "edge_ideal_handshake": JobSpec.edge("conv", ncores=8,
                                             ideal_handshake=True),
        "edge_overrides_int": JobSpec.edge("conv", overrides={"lsq_size": 1}),
        "edge_overrides_str": JobSpec.edge("conv",
                                           overrides={"lsq_size": "1"}),
        "edge_core_overrides": JobSpec.edge(
            "conv", overrides={"b": 2, "a": 1},
            core_overrides={"issue_width": 2}),
        "edge_no_verify": JobSpec.edge("conv", verify=False),
        "edge_sampled": JobSpec.edge(
            "equake", ncores=16,
            sampling={"ff_blocks": 64, "window_blocks": 16,
                      "warmup_blocks": 4}),
        "edge_sampled_fine": JobSpec.edge(
            "equake", ncores=16,
            sampling={"ff_blocks": 16, "window_blocks": 32,
                      "warmup_blocks": 8}),
        "edge_faulted": JobSpec.edge("ammp", ncores=8, faults=faults),
        "risc_baseline": JobSpec.risc("conv"),
        "risc_scaled": JobSpec.risc("mcf", scale=2),
    }


def test_golden_file_schema_version_current():
    """The golden file must be regenerated whenever the salt bumps —
    otherwise every pinned hash is testing a dead schema."""
    assert SCHEMA_VERSION == GOLDEN_SCHEMA_VERSION, (
        "SCHEMA_VERSION changed: regenerate tests/exec/hash_golden.json "
        "(see module docstring) and bump GOLDEN_SCHEMA_VERSION")


def test_hashes_match_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    corpus = golden_corpus()
    assert set(corpus) == set(golden["hashes"]), (
        "corpus and golden file list different spec names — regenerate")
    mismatches = {
        name: (spec_hash(spec), golden["hashes"][name])
        for name, spec in corpus.items()
        if spec_hash(spec) != golden["hashes"][name]
    }
    assert not mismatches, (
        f"content hashes drifted (cached results would be orphaned): "
        f"{mismatches}\nIf intentional, bump SCHEMA_VERSION and "
        f"regenerate the golden file.")


def test_golden_hashes_are_distinct():
    """The corpus axes must actually produce distinct addresses."""
    golden = json.loads(GOLDEN_PATH.read_text())
    hashes = list(golden["hashes"].values())
    assert len(set(hashes)) == len(hashes)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to overwrite the golden file without --regen")
    payload = {
        "schema_version": SCHEMA_VERSION,
        "hashes": {name: spec_hash(spec)
                   for name, spec in sorted(golden_corpus().items())},
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {len(payload['hashes'])} hashes to {GOLDEN_PATH}")
