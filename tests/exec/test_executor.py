"""ParallelExecutor: pool semantics, retry, timeout, store integration.

Worker functions live at module level so they pickle into children.
"""

import json
import os
import pathlib
import time

import pytest

from repro.exec import JobSpec, ParallelExecutor, ResultStore, run_specs


def _specs(n, bench="conv"):
    return [JobSpec.edge(bench, ncores=2, scale=i + 1) for i in range(n)]


def _ok_worker(spec):
    return {"bench": spec.bench, "scale": spec.scale,
            "value": spec.scale * 10}


def _raise_on_scale_2(spec):
    if spec.scale == 2:
        raise ValueError("simulated bad configuration")
    return _ok_worker(spec)


def _crash_worker(spec):
    os._exit(13)


def _sleep_worker(spec):
    time.sleep(30)
    return _ok_worker(spec)


def _counting_worker(spec):
    """Leave one uniquely-named breadcrumb file per execution, so tests
    can count how many times work actually ran across processes."""
    trail = pathlib.Path(os.environ["REPRO_TEST_COUNT_DIR"])
    (trail / f"{os.getpid()}-{time.monotonic_ns()}").write_text(spec.bench)
    return _ok_worker(spec)


def _flaky_worker(spec):
    """Crash on the first attempt, succeed on the retry (state shared
    through a sentinel file named by the test via the environment)."""
    sentinel = pathlib.Path(os.environ["REPRO_TEST_FLAKY_SENTINEL"])
    if not sentinel.exists():
        sentinel.write_text("first attempt crashed")
        os._exit(13)
    return _ok_worker(spec)


@pytest.mark.parametrize("pool", [True, False],
                         ids=["warm-pool", "per-job-spawn"])
class TestPoolSemantics:
    """Both parallel backends must be observationally identical to the
    serial path (the pool is an optimisation, never a semantic)."""

    def test_parallel_matches_serial(self, pool):
        specs = _specs(6)
        serial = run_specs(specs, jobs=1, worker=_ok_worker)
        parallel = run_specs(specs, jobs=2, worker=_ok_worker, pool=pool)
        assert [r.payload for r in serial] == [r.payload for r in parallel]
        assert all(r.status == "ok" for r in parallel)
        # Input order is preserved regardless of completion order.
        assert [r.spec for r in parallel] == specs

    def test_byte_identical_records(self, tmp_path, pool):
        specs = _specs(5)
        store1 = ResultStore(tmp_path / "serial")
        store2 = ResultStore(tmp_path / "parallel")
        run_specs(specs, jobs=1, worker=_ok_worker, store=store1)
        run_specs(specs, jobs=2, worker=_ok_worker, store=store2, pool=pool)
        for spec in specs:
            a = store1.path_for(store1.key(spec)).read_bytes()
            b = store2.path_for(store2.key(spec)).read_bytes()
            assert a == b

    def test_more_jobs_than_specs(self, pool):
        results = run_specs(_specs(2), jobs=8, worker=_ok_worker, pool=pool)
        assert [r.status for r in results] == ["ok", "ok"]


class TestFailureHandling:
    def test_raise_is_retried_once_then_reported(self):
        specs = _specs(4)
        results = run_specs(specs, jobs=2, worker=_raise_on_scale_2)
        by_scale = {r.spec.scale: r for r in results}
        bad = by_scale[2]
        assert bad.status == "failed"
        assert bad.attempts == 2                    # one retry
        assert "simulated bad configuration" in bad.error
        # The rest of the sweep survived.
        for scale in (1, 3, 4):
            assert by_scale[scale].status == "ok"

    def test_crash_is_retried_then_reported(self):
        results = run_specs(_specs(1), jobs=2, worker=_crash_worker)
        (r,) = results
        assert r.status == "failed"
        assert r.attempts == 2
        assert "exit code" in r.error

    def test_crash_then_success_on_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_SENTINEL",
                           str(tmp_path / "sentinel"))
        results = run_specs(_specs(1), jobs=2, worker=_flaky_worker)
        (r,) = results
        assert r.status == "ok"
        assert r.attempts == 2
        assert r.payload == _ok_worker(_specs(1)[0])

    def test_timeout_terminates_worker(self):
        executor = ParallelExecutor(jobs=2, timeout=0.25, retries=0,
                                    worker=_sleep_worker)
        started = time.monotonic()
        (r,) = executor.run(_specs(1))
        assert r.status == "failed"
        assert "timed out" in r.error
        assert time.monotonic() - started < 10      # not the 30s sleep

    def test_serial_path_retries_raises(self):
        results = run_specs(_specs(4), jobs=1, worker=_raise_on_scale_2)
        by_scale = {r.spec.scale: r for r in results}
        assert by_scale[2].status == "failed"
        assert by_scale[2].attempts == 2
        assert by_scale[1].status == "ok"


class _BrokenConn:
    """Pipe end whose poll() raises, as a dead fd does."""

    def poll(self):
        raise OSError(32, "Broken pipe")

    def close(self):
        pass


class _StubProcess:
    """Live-looking process we must not wait on before terminating."""

    exitcode = None

    def __init__(self):
        self.terminated = False

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.terminated = True

    def join(self, timeout=None):
        assert self.terminated, "joined a live worker with a dead pipe"

    def is_alive(self):
        return not self.terminated


class TestBrokenPipe:
    def test_broken_pipe_treated_as_crash(self):
        """A live-but-wedged worker whose pipe died must settle as a
        failure instead of spinning the scheduler forever (regression:
        a raising poll() used to read as 'no message yet')."""
        from repro.exec.executor import _Active

        executor = ParallelExecutor(jobs=2, worker=_ok_worker)
        act = _Active(index=0, process=_StubProcess(), conn=_BrokenConn(),
                      started=time.monotonic())
        assert executor._settle(act) is True
        kind, message = act.outcome
        assert kind == "error"
        assert "pipe" in message
        assert act.process.terminated


class _LaggedConn:
    """Pipe end whose first poll() misses the buffered message, as a
    real fd does when the child sends and exits between two checks."""

    def __init__(self, conn):
        self._conn = conn
        self._polls = 0

    def poll(self):
        self._polls += 1
        return False if self._polls == 1 else self._conn.poll()

    def recv(self):
        return self._conn.recv()

    def close(self):
        self._conn.close()


class _DeadProcess:
    """Process that already exited cleanly."""

    exitcode = 0

    def is_alive(self):
        return False

    def terminate(self):
        pass

    def kill(self):
        pass

    def join(self, timeout=None):
        pass


class TestSendExitRace:
    def test_result_sent_just_before_exit_is_not_a_crash(self):
        """A worker that sends its report and exits between the
        scheduler's poll() and its liveness check must settle with the
        report, not as 'worker crashed (exit code 0)' (regression:
        the dead-process branch never re-read the pipe)."""
        import multiprocessing

        from repro.exec.executor import _Active

        recv, send = multiprocessing.get_context().Pipe(duplex=False)
        send.send(("ok", {"value": 42}))
        send.close()
        executor = ParallelExecutor(jobs=2, worker=_ok_worker)
        act = _Active(index=0, process=_DeadProcess(),
                      conn=_LaggedConn(recv), started=time.monotonic())
        assert executor._settle(act) is True
        assert act.outcome == ("ok", {"value": 42})


@pytest.mark.parametrize("jobs,pool", [(1, True), (2, True), (2, False)],
                         ids=["serial", "warm-pool", "per-job-spawn"])
class TestCoalescing:
    """Equal-hash duplicates within one batch run once; every duplicate
    receives the primary's payload (regression: each used to simulate —
    or worse, race two writers onto one store record)."""

    def test_duplicates_run_once(self, tmp_path, monkeypatch, jobs, pool):
        monkeypatch.setenv("REPRO_TEST_COUNT_DIR", str(tmp_path))
        spec = JobSpec.edge("conv", ncores=2, scale=1)
        other = JobSpec.edge("conv", ncores=2, scale=2)
        results = run_specs([spec, other, spec, spec], jobs=jobs, pool=pool,
                            worker=_counting_worker)
        assert [r.status for r in results] == ["ok"] * 4
        assert results[0].payload == results[2].payload == results[3].payload
        assert len(list(tmp_path.iterdir())) == 2    # two unique hashes

    def test_duplicate_shares_failure_too(self, jobs, pool):
        bad = _specs(4)[1]                           # scale=2: raises
        results = run_specs([bad, bad], jobs=jobs, pool=pool, retries=0,
                            worker=_raise_on_scale_2)
        assert [r.status for r in results] == ["failed", "failed"]
        assert results[1].error == results[0].error

    def test_coalesced_metric_counts_duplicates(self, jobs, pool):
        from repro.obs import Observability

        obs = Observability(metrics_enabled=True)
        spec = JobSpec.edge("conv", ncores=2, scale=1)
        run_specs([spec, spec, spec], jobs=jobs, pool=pool,
                  worker=_ok_worker, obs=obs)
        assert obs.metrics.counter("exec.coalesced") == 2
        # Only the primary counts as an executed job.
        assert obs.metrics.counter("exec.jobs", status="ok") == 1


class TestSerialTimeoutWarning:
    """jobs=1 runs in-process, so timeout= cannot be enforced — that
    must be *loud* (regression: it was silently ignored)."""

    def _fresh_warning_state(self, monkeypatch):
        from repro.exec import executor as executor_mod

        monkeypatch.setattr(executor_mod, "_SERIAL_TIMEOUT_WARNED", False)

    def test_warns_once_and_counts_metric(self, monkeypatch):
        from repro.obs import Observability

        self._fresh_warning_state(monkeypatch)
        obs = Observability(metrics_enabled=True)
        with pytest.warns(RuntimeWarning, match="jobs=1"):
            run_specs(_specs(1), jobs=1, timeout=5.0, worker=_ok_worker,
                      obs=obs)
        assert obs.metrics.counter("exec.timeout_unsupported") == 1
        # The warning fires once per process; the metric, every run.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            run_specs(_specs(1), jobs=1, timeout=5.0, worker=_ok_worker,
                      obs=obs)
        assert obs.metrics.counter("exec.timeout_unsupported") == 2

    def test_no_warning_without_timeout_or_work(self, monkeypatch):
        import warnings as warnings_mod

        self._fresh_warning_state(monkeypatch)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            run_specs(_specs(1), jobs=1, worker=_ok_worker)      # no timeout
            run_specs([], jobs=1, timeout=1.0, worker=_ok_worker)  # no work

    def test_parallel_paths_do_not_warn(self, monkeypatch):
        import warnings as warnings_mod

        self._fresh_warning_state(monkeypatch)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            run_specs(_specs(1), jobs=2, timeout=30.0, worker=_ok_worker)


class TestStoreIntegration:
    def test_successes_persisted_and_replayed(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _specs(3)
        first = run_specs(specs, jobs=2, worker=_ok_worker, store=store)
        assert [r.status for r in first] == ["ok"] * 3
        assert store.writes == 3

        # Second run: everything is a store hit, no worker runs at all
        # (the crash worker would fail loudly if launched).
        replay = run_specs(specs, jobs=2, worker=_crash_worker, store=store)
        assert [r.status for r in replay] == ["cached"] * 3
        assert [r.payload for r in replay] == [r.payload for r in first]

    def test_failures_not_persisted(self, tmp_path):
        store = ResultStore(tmp_path)
        run_specs(_specs(4), jobs=2, worker=_raise_on_scale_2, store=store)
        assert store.writes == 3
        assert len(store) == 3


class TestRealWorker:
    def test_end_to_end_simulation_in_children(self, tmp_path):
        """Two real (tiny) simulation points through the default worker."""
        store = ResultStore(tmp_path)
        specs = [JobSpec.edge("dither", ncores=1),
                 JobSpec.edge("dither", ncores=2)]
        results = run_specs(specs, jobs=2, store=store)
        assert [r.status for r in results] == ["ok", "ok"]
        for r in results:
            assert r.payload["kind"] == "edge"
            assert r.payload["result"]["cycles"] > 0
        # Payloads are valid JSON all the way down.
        json.dumps([r.payload for r in results])


class TestRetryObservability:
    """Worker failures are labelled repro.obs metrics, not just log
    lines: ``exec.retries{reason,bench}`` and ``exec.crashes{bench}``."""

    def _obs(self):
        from repro.obs import Observability

        return Observability(metrics_enabled=True)

    def test_serial_retry_counts_exceptions(self):
        obs = self._obs()
        run_specs(_specs(2), jobs=1, worker=_raise_on_scale_2, obs=obs)
        # scale=2 raises on both attempts; only the retried one counts.
        assert obs.metrics.counter("exec.retries", reason="exception",
                                   bench="conv") == 1
        assert obs.metrics.counter("exec.crashes", bench="conv") == 0

    def test_parallel_crashes_labelled_per_attempt(self):
        obs = self._obs()
        results = run_specs(_specs(1), jobs=2, worker=_crash_worker, obs=obs)
        assert results[0].status == "failed"
        # Both attempts crashed; one of them was granted a retry.
        assert obs.metrics.counter("exec.crashes", bench="conv") == 2
        assert obs.metrics.counter("exec.retries", reason="crash",
                                   bench="conv") == 1

    def test_crash_then_success_counts_one_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_SENTINEL",
                           str(tmp_path / "sentinel"))
        obs = self._obs()
        results = run_specs(_specs(1), jobs=2, worker=_flaky_worker, obs=obs)
        assert results[0].status == "ok"
        assert obs.metrics.counter("exec.crashes", bench="conv") == 1
        assert obs.metrics.counter("exec.retries", reason="crash",
                                   bench="conv") == 1

    def test_retry_event_carries_reason(self):
        from repro.obs import CallbackSink

        obs = self._obs()
        events = []
        obs.bus.attach(CallbackSink(events.append, kinds=("job.retry",)))
        run_specs(_specs(2), jobs=1, worker=_raise_on_scale_2, obs=obs)
        assert len(events) == 1
        event = events[0]
        assert event["reason"] == "exception"
        assert event["bench"] == "conv"
        assert event["attempt"] == 1
        assert "simulated bad configuration" in event["error"]
