"""ProgressReporter: rendering, ETA math, rate limiting."""

import io

from repro.exec import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRendering:
    def test_eta_from_completed_rate(self):
        clock = FakeClock()
        rep = ProgressReporter(total=10, stream=io.StringIO(), clock=clock)
        clock.now += 5.0
        rep.done = 5
        text = rep.render()
        assert "[5/10]" in text
        assert "50%" in text
        assert "elapsed 5.0s" in text
        assert "eta 5.0s" in text

    def test_unknown_eta_before_first_completion(self):
        rep = ProgressReporter(total=4, stream=io.StringIO(),
                               clock=FakeClock())
        assert "eta ?" in rep.render()

    def test_failed_count_shown(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=2, stream=stream, clock=clock)
        clock.now += 1.0
        rep.update(label="conv", ok=False)
        assert "failed 1" in rep.render()
        assert "last=conv" in stream.getvalue()

    def test_human_time_units(self):
        clock = FakeClock()
        rep = ProgressReporter(total=2, stream=io.StringIO(), clock=clock)
        clock.now += 90.0
        rep.done = 1
        assert "elapsed 1.5m" in rep.render()


class TestEtaWithCache:
    def test_eta_ignores_cached_jobs(self):
        """Warm store hits complete instantly; counting them in the rate
        would wildly underestimate the ETA on mixed warm/cold sweeps."""
        clock = FakeClock()
        rep = ProgressReporter(total=10, stream=io.StringIO(), clock=clock,
                               min_interval=0.0)
        for _ in range(4):
            rep.update(cached=True)      # instant warm hits
        clock.now += 8.0
        for _ in range(2):
            rep.update()                 # 2 cold jobs in 8s -> 4s each
        assert "eta 16.0s" in rep.render()   # 4 remaining jobs

    def test_eta_unknown_while_only_cached(self):
        clock = FakeClock()
        rep = ProgressReporter(total=4, stream=io.StringIO(), clock=clock)
        rep.update(cached=True)
        clock.now += 2.0
        assert "eta ?" in rep.render()

    def test_eta_zero_when_done(self):
        clock = FakeClock()
        rep = ProgressReporter(total=2, stream=io.StringIO(), clock=clock)
        rep.update(cached=True)
        rep.update(cached=True)
        assert "eta 0.0s" in rep.render()


class TestFinish:
    def test_silent_when_nothing_emitted(self):
        """finish() on an unused reporter must not pollute the stream
        (regression: it used to write a bare newline)."""
        stream = io.StringIO()
        rep = ProgressReporter(total=5, stream=stream, clock=FakeClock())
        rep.finish()
        assert stream.getvalue() == ""

    def test_zero_total_is_silent(self):
        stream = io.StringIO()
        rep = ProgressReporter(total=0, stream=stream, clock=FakeClock())
        rep.finish()
        assert stream.getvalue() == ""

    def test_newline_after_real_output(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=2, stream=stream, clock=clock)
        clock.now += 1.0
        rep.update()
        rep.finish()
        assert stream.getvalue().endswith("\n")
        # The partial state was re-rendered by finish().
        assert "[1/2]" in stream.getvalue()


class TestRateLimiting:
    def test_intermediate_updates_coalesce(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=100, stream=stream, min_interval=1.0,
                               clock=clock)
        for _ in range(50):
            clock.now += 0.01    # 50 completions in half a second
            rep.update()
        # First update emits, the rest fall inside the interval.
        assert stream.getvalue().count("\r") == 1

    def test_final_update_always_emits(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=3, stream=stream, min_interval=60.0,
                               clock=clock)
        for _ in range(3):
            clock.now += 0.01
            rep.update()
        assert "[3/3]" in stream.getvalue()
        rep.finish()
        assert stream.getvalue().endswith("\n")


class TestRetries:
    def test_retries_shown_in_line(self):
        rep = ProgressReporter(total=4, stream=io.StringIO(),
                               clock=FakeClock())
        rep.update()
        assert "retries" not in rep.render()
        rep.note_retry()
        rep.note_retry()
        text = rep.render()
        assert "retries 2" in text
        # Retries sit between the failure count and the label.
        rep.failed = 1
        assert "failed 1 retries 2" in rep.render(label="conv")

    def test_note_retry_never_advances_completion(self):
        rep = ProgressReporter(total=2, stream=io.StringIO(),
                               clock=FakeClock())
        rep.note_retry()
        assert rep.done == 0
        assert "[0/2]" in rep.render()
