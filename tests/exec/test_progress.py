"""ProgressReporter: rendering, ETA math, rate limiting."""

import io

from repro.exec import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRendering:
    def test_eta_from_completed_rate(self):
        clock = FakeClock()
        rep = ProgressReporter(total=10, stream=io.StringIO(), clock=clock)
        clock.now += 5.0
        rep.done = 5
        text = rep.render()
        assert "[5/10]" in text
        assert "50%" in text
        assert "elapsed 5.0s" in text
        assert "eta 5.0s" in text

    def test_unknown_eta_before_first_completion(self):
        rep = ProgressReporter(total=4, stream=io.StringIO(),
                               clock=FakeClock())
        assert "eta ?" in rep.render()

    def test_failed_count_shown(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=2, stream=stream, clock=clock)
        clock.now += 1.0
        rep.update(label="conv", ok=False)
        assert "failed 1" in rep.render()
        assert "last=conv" in stream.getvalue()

    def test_human_time_units(self):
        clock = FakeClock()
        rep = ProgressReporter(total=2, stream=io.StringIO(), clock=clock)
        clock.now += 90.0
        rep.done = 1
        assert "elapsed 1.5m" in rep.render()


class TestRateLimiting:
    def test_intermediate_updates_coalesce(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=100, stream=stream, min_interval=1.0,
                               clock=clock)
        for _ in range(50):
            clock.now += 0.01    # 50 completions in half a second
            rep.update()
        # First update emits, the rest fall inside the interval.
        assert stream.getvalue().count("\r") == 1

    def test_final_update_always_emits(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(total=3, stream=stream, min_interval=60.0,
                               clock=clock)
        for _ in range(3):
            clock.now += 0.01
            rep.update()
        assert "[3/3]" in stream.getvalue()
        rep.finish()
        assert stream.getvalue().endswith("\n")
