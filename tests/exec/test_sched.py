"""Adaptive scheduling: job families, the duration book, LJF ordering."""

import json
import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import JobSpec
from repro.exec.sched import (
    BOOK_NAME,
    BOOK_SCHEMA,
    EWMA_ALPHA,
    DurationBook,
    job_family,
    order_indices,
)


class TestJobFamily:
    def test_edge_family_carries_machine_and_scale(self):
        assert job_family(JobSpec.edge("conv", ncores=4)) == "conv|tflex4|x1"
        assert (job_family(JobSpec.edge("gzip", ncores=16, scale=3))
                == "gzip|tflex16|x3")

    def test_trips_and_risc_are_distinct_machines(self):
        assert job_family(JobSpec.edge("conv", trips=True)) == "conv|trips|x1"
        assert job_family(JobSpec.risc("conv")) == "conv|risc|x1"

    def test_mode_tags(self):
        sampled = JobSpec.edge("conv", ncores=4,
                               sampling={"ff_blocks": 100})
        assert job_family(sampled).endswith("+sampled100")
        faulty = JobSpec.edge("conv", ncores=4, faults=("dead:3",))
        assert job_family(faulty).endswith("+faults")

    def test_sampling_fidelity_splits_families(self):
        """Search rungs at different fast-forward lengths differ by
        integer runtime factors — they must not share an estimate."""
        coarse = JobSpec.edge("conv", ncores=4,
                              sampling={"ff_blocks": 64,
                                        "window_blocks": 16})
        fine = JobSpec.edge("conv", ncores=4,
                            sampling={"ff_blocks": 16,
                                      "window_blocks": 32})
        assert job_family(coarse) != job_family(fine)
        # Window/warmup variants at one fast-forward length fold in.
        window = JobSpec.edge("conv", ncores=4,
                              sampling={"ff_blocks": 64,
                                        "window_blocks": 24})
        assert job_family(coarse) == job_family(window)

    def test_overrides_fold_into_one_family(self):
        base = JobSpec.edge("conv", ncores=4)
        ablated = JobSpec.edge("conv", ncores=4,
                               overrides={"l2_hit_cycles": 9})
        assert job_family(base) == job_family(ablated)


class TestDurationBook:
    def test_first_observation_is_the_estimate(self):
        book = DurationBook()
        assert book.estimate("f") is None
        book.note("f", 2.0)
        assert book.estimate("f") == 2.0

    def test_ewma_update(self):
        book = DurationBook()
        book.note("f", 2.0)
        book.note("f", 4.0)
        expected = EWMA_ALPHA * 4.0 + (1 - EWMA_ALPHA) * 2.0
        assert book.estimate("f") == pytest.approx(expected)

    def test_negative_durations_clamped(self):
        book = DurationBook()
        book.note("f", -1.0)
        assert book.estimate("f") == 0.0

    def test_flush_roundtrip(self, tmp_path):
        path = tmp_path / BOOK_NAME
        book = DurationBook(path)
        book.note("conv|tflex4|x1", 1.5)
        book.flush()
        again = DurationBook(path)
        assert again.estimate("conv|tflex4|x1") == 1.5
        data = json.loads(path.read_text())
        assert data["schema"] == BOOK_SCHEMA

    def test_flush_merges_concurrent_sessions(self, tmp_path):
        """Two invocations sharing one cache dir: each flushes only the
        families it ran; neither shreds the other's estimates."""
        path = tmp_path / BOOK_NAME
        a = DurationBook(path)
        b = DurationBook(path)
        a.note("fam.a", 1.0)
        b.note("fam.b", 2.0)
        a.flush()
        b.flush()           # b never saw fam.a — the merge keeps it
        merged = DurationBook(path)
        assert merged.estimate("fam.a") == 1.0
        assert merged.estimate("fam.b") == 2.0

    def test_corrupt_sidecar_reads_cold(self, tmp_path):
        path = tmp_path / BOOK_NAME
        path.write_text("{not json")
        assert len(DurationBook(path)) == 0
        path.write_text(json.dumps({"schema": 999, "families": {"f": 1}}))
        assert len(DurationBook(path)) == 0

    def test_flush_without_observations_writes_nothing(self, tmp_path):
        path = tmp_path / BOOK_NAME
        DurationBook(path).flush()
        assert not path.exists()

    def test_for_store_root(self, tmp_path):
        book = DurationBook.for_store_root(tmp_path)
        assert book.path == tmp_path / BOOK_NAME
        assert DurationBook.for_store_root(None).path is None

    def test_note_spec_uses_family(self):
        book = DurationBook()
        spec = JobSpec.edge("conv", ncores=4)
        book.note_spec(spec, 3.0)
        assert book.estimate_for(spec) == 3.0


class TestOrderIndices:
    def _specs(self):
        return [JobSpec.edge("conv", ncores=2, scale=i + 1)
                for i in range(4)]

    def test_fifo_keeps_input_order(self):
        specs = self._specs()
        book = DurationBook()
        book.note_spec(specs[0], 100.0)
        assert order_indices(specs, [0, 1, 2, 3], book, "fifo") == [0, 1, 2, 3]

    def test_cold_book_degrades_to_fifo(self):
        specs = self._specs()
        assert order_indices(specs, [2, 0, 1], DurationBook(),
                             "ljf") == [2, 0, 1]
        assert order_indices(specs, [2, 0, 1], None, "ljf") == [2, 0, 1]

    def test_ljf_fronts_longest_known(self):
        specs = self._specs()
        book = DurationBook()
        book.note_spec(specs[0], 1.0)
        book.note_spec(specs[1], 5.0)
        book.note_spec(specs[2], 3.0)
        book.note_spec(specs[3], 9.0)
        assert order_indices(specs, [0, 1, 2, 3], book, "ljf") == [3, 1, 2, 0]

    def test_unknown_families_run_first_in_input_order(self):
        """An unseen job may be the longest of all: dispatch it before
        the known ones so a misestimate cannot serialise the tail."""
        specs = self._specs()
        book = DurationBook()
        book.note_spec(specs[1], 5.0)
        book.note_spec(specs[2], 1.0)
        order = order_indices(specs, [0, 1, 2, 3], book, "ljf")
        assert order == [0, 3, 1, 2]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            order_indices(self._specs(), [0], DurationBook(), "random")


#: Hypothesis vocabularies for the property tests below.
_DURATIONS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
_FAMILY_NAMES = st.text(alphabet="abcdefgh0123456789|x+.", min_size=1,
                        max_size=16)
_FAMILY_MAPS = st.dictionaries(
    _FAMILY_NAMES, st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=6)


class TestDurationBookProperties:
    """Property tests: invariants the scheduler's correctness-neutral
    contract rests on, over adversarial inputs."""

    @given(st.lists(_DURATIONS, min_size=1, max_size=50))
    def test_ewma_never_negative(self, observations):
        """Whatever garbage timers report (clock steps backwards, NTP
        slew), the estimate must stay a plausible duration: >= 0 and
        finite after every single observation."""
        book = DurationBook()
        for seconds in observations:
            estimate = book.note("f", seconds)
            assert estimate >= 0.0
            assert estimate <= 1e6
            assert book.estimate("f") == estimate

    @settings(deadline=None, max_examples=25)
    @given(_FAMILY_MAPS, _FAMILY_MAPS)
    def test_sidecar_merge_is_commutative_for_disjoint_sessions(
            self, fams_a, fams_b):
        """Two sessions that ran disjoint families can flush into one
        sidecar in either order and produce the identical file — the
        read-merge-write contract of concurrent CLI invocations."""
        fams_a = {"a:" + name: secs for name, secs in fams_a.items()}
        fams_b = {"b:" + name: secs for name, secs in fams_b.items()}

        def flush_session(path, families):
            book = DurationBook(path)
            for family, seconds in families.items():
                book.note(family, seconds)
            book.flush()

        with tempfile.TemporaryDirectory() as tmp:
            ab = pathlib.Path(tmp) / "ab" / BOOK_NAME
            ba = pathlib.Path(tmp) / "ba" / BOOK_NAME
            flush_session(ab, fams_a)
            flush_session(ab, fams_b)
            flush_session(ba, fams_b)
            flush_session(ba, fams_a)
            assert json.loads(ab.read_text()) == json.loads(ba.read_text())

    @settings(deadline=None, max_examples=25)
    @given(_FAMILY_MAPS)
    def test_flush_is_idempotent(self, families):
        """Flushing a book twice writes the same file: the second flush
        has no touched families left and must not re-fold estimates."""
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / BOOK_NAME
            book = DurationBook(path)
            for family, seconds in families.items():
                book.note(family, seconds)
            book.flush()
            first = path.read_text()
            book.flush()
            assert path.read_text() == first


class TestOrderIndicesProperties:
    @settings(deadline=None)
    @given(n=st.integers(min_value=1, max_value=8), data=st.data())
    def test_order_is_permutation_of_todo(self, n, data):
        """LJF reorders dispatch, never gates or drops work: for any
        todo subset and any partially-warm book, the result is exactly
        a permutation of todo."""
        specs = [JobSpec.edge("conv", ncores=2, scale=i + 1)
                 for i in range(n)]
        todo = data.draw(st.permutations(range(n)))
        observed = data.draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1),
                      st.floats(min_value=0.0, max_value=1e3,
                                allow_nan=False)),
            max_size=2 * n))
        book = DurationBook()
        for index, seconds in observed:
            book.note_spec(specs[index], seconds)
        order = order_indices(specs, todo, book, "ljf")
        assert sorted(order) == sorted(todo)
        # Structural LJF invariant: unknown families first in input
        # order, then known families by non-increasing estimate.
        estimates = [book.estimate_for(specs[i]) for i in order]
        known_start = next(
            (pos for pos, est in enumerate(estimates) if est is not None),
            len(estimates))
        assert all(est is None for est in estimates[:known_start])
        known = estimates[known_start:]
        assert all(est is not None for est in known)
        assert known == sorted(known, reverse=True)

    @given(n=st.integers(min_value=1, max_value=8), data=st.data())
    def test_cold_book_is_fifo(self, n, data):
        """With no estimates at all (or no book), LJF degrades to plain
        FIFO — and the fifo policy is FIFO regardless of warmth."""
        specs = [JobSpec.edge("conv", ncores=2, scale=i + 1)
                 for i in range(n)]
        todo = data.draw(st.permutations(range(n)))
        assert order_indices(specs, todo, DurationBook(), "ljf") == list(todo)
        assert order_indices(specs, todo, None, "ljf") == list(todo)
        warm = DurationBook()
        warm.note_spec(specs[0], 42.0)
        assert order_indices(specs, todo, warm, "fifo") == list(todo)
