"""Hand-built EDGE programs shared by interpreter and simulator tests.

Each factory returns ``(program, check)`` where ``check(interp_or_sim_state)``
asserts the architectural post-state.  State is presented as a simple
namespace with ``regs`` (list) and ``mem`` (FlatMemory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import BlockBuilder, Program
from repro.mem.flatmem import FlatMemory


@dataclass
class ArchState:
    regs: list
    mem: FlatMemory


def counted_loop(n: int = 10) -> tuple[Program, callable]:
    """Sum 1..n with a two-block loop: r10 = total, r11 = i."""
    prog = Program(entry="init", name="counted_loop")

    b = BlockBuilder("init")
    b.write(10, b.movi(0))
    b.write(11, b.movi(1))
    b.branch("BRO", target="loop", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("loop")
    total = b.read(10)
    i = b.read(11)
    new_total = b.op("ADD", total, i)
    new_i = b.op("ADDI", i, imm=1)
    b.write(10, new_total)
    b.write(11, new_i)
    p = b.op("TLEI", new_i, imm=n)
    b.branch("BRO", target="loop", exit_id=0, pred=(p, True))
    b.branch("BRO", target="done", exit_id=1, pred=(p, False))
    prog.add_block(b.build())

    b = BlockBuilder("done")
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    expected = n * (n + 1) // 2

    def check(state: ArchState) -> None:
        assert state.regs[10] == expected, (state.regs[10], expected)
        assert state.regs[11] == n + 1

    return prog, check


def vector_sum(n: int = 16) -> tuple[Program, callable]:
    """Sum an n-element array of 64-bit ints into r10; result also stored."""
    prog = Program(entry="init", name="vector_sum")
    values = [3 * i - 7 for i in range(n)]
    base = prog.add_words(values)
    out = prog.alloc_data(8)

    b = BlockBuilder("init")
    b.write(10, b.movi(0))          # acc
    b.write(11, b.movi(base))       # ptr
    b.write(12, b.movi(base + 8 * n))  # end
    b.write(13, b.movi(out))        # out ptr
    b.branch("BRO", target="loop", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("loop")
    acc = b.read(10)
    ptr = b.read(11)
    end = b.read(12)
    elem = b.load(ptr)
    new_acc = b.op("ADD", acc, elem)
    new_ptr = b.op("ADDI", ptr, imm=8)
    b.write(10, new_acc)
    b.write(11, new_ptr)
    p = b.op("TLT", new_ptr, end)
    b.branch("BRO", target="loop", exit_id=0, pred=(p, True))
    b.branch("BRO", target="fini", exit_id=1, pred=(p, False))
    prog.add_block(b.build())

    b = BlockBuilder("fini")
    acc = b.read(10)
    outp = b.read(13)
    b.store(outp, acc)
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    expected = sum(values)

    def check(state: ArchState) -> None:
        assert state.regs[10] == expected, (state.regs[10], expected)
        assert state.mem.load(out, 8) == expected

    return prog, check


def predicated_classify(n: int = 12) -> tuple[Program, callable]:
    """Predication test: y[i] = x[i] if x[i] >= 0 else -x[i]; also count
    negatives.  Exercises predicate-merged values and null stores."""
    prog = Program(entry="init", name="predicated_classify")
    values = [((7 * i) % 11) - 5 for i in range(n)]
    xs = prog.add_words(values)
    ys = prog.add_words([0] * n)
    flags = prog.add_words([0] * n)

    b = BlockBuilder("init")
    b.write(10, b.movi(0))       # i
    b.write(11, b.movi(0))       # negative count
    b.branch("BRO", target="loop", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("loop")
    i = b.read(10)
    negs = b.read(11)
    offset = b.op("SHLI", i, imm=3)
    xaddr = b.op("ADDI", offset, imm=xs)
    x = b.load(xaddr)
    p = b.op("TLTI", x, imm=0)            # x < 0
    neg_x = b.op("NEG", x, pred=(p, True))
    pos_x = b.mov(x, pred=(p, False))
    # Predicate-merged |x| feeds the store via a MOV join.
    y = b.mov(neg_x)
    # Both producers target the same consumer operand: emulate by having
    # pos_x also feed the store address path.  Simpler: two predicated
    # stores to the same location, one per path.
    yaddr = b.op("ADDI", offset, imm=ys)
    st_neg = b.store(yaddr, y, pred=(p, True))
    b.null_store(st_neg, pred=(p, False))
    st_pos = b.store(yaddr, pos_x, pred=(p, False))
    b.null_store(st_pos, pred=(p, True))
    # Flag store only on the negative path (exercises NULL for stores).
    faddr = b.op("ADDI", offset, imm=flags)
    one = b.movi(1, pred=(p, True))
    st_flag = b.store(faddr, one, pred=(p, True))
    b.null_store(st_flag, pred=(p, False))
    # negs += (x < 0), using the test value as data.
    new_negs = b.op("ADD", negs, p)
    b.write(11, new_negs)
    new_i = b.op("ADDI", i, imm=1)
    b.write(10, new_i)
    q = b.op("TLTI", new_i, imm=n)
    b.branch("BRO", target="loop", exit_id=0, pred=(q, True))
    b.branch("BRO", target="done", exit_id=1, pred=(q, False))
    prog.add_block(b.build())

    b = BlockBuilder("done")
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    def check(state: ArchState) -> None:
        for i, x in enumerate(values):
            assert state.mem.load(ys + 8 * i, 8) == abs(x), (i, x)
            assert state.mem.load(flags + 8 * i, 8) == (1 if x < 0 else 0)
        assert state.regs[11] == sum(1 for x in values if x < 0)

    return prog, check


def call_return() -> tuple[Program, callable]:
    """CALLO/RET through a link register (r1): r10 = f(5) + f(9), f(x) = 3x + 1."""
    prog = Program(entry="main1", name="call_return")

    b = BlockBuilder("main1")
    b.write(2, b.movi(5))                       # argument
    b.write(1, b.label_address("main2"))        # link register
    b.branch("CALLO", target="func", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("main2")                   # return continuation of call 1
    b.write(10, b.read(3))                      # save f(5)
    b.write(2, b.movi(9))
    b.write(1, b.label_address("main3"))
    b.branch("CALLO", target="func", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("main3")
    first = b.read(10)
    second = b.read(3)
    b.write(10, b.op("ADD", first, second))
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("func")                    # r3 = 3 * r2 + 1
    arg = b.read(2)
    link = b.read(1)
    tripled = b.op("MULI", arg, imm=3)
    b.write(3, b.op("ADDI", tripled, imm=1))
    b.branch("RET", exit_id=0, addr=link)
    prog.add_block(b.build())

    def check(state: ArchState) -> None:
        assert state.regs[10] == (3 * 5 + 1) + (3 * 9 + 1)

    return prog, check


def store_load_forward() -> tuple[Program, callable]:
    """In-block store→load forwarding: store then reload the same word."""
    prog = Program(entry="only", name="store_load_forward")
    scratch = prog.alloc_data(16)

    b = BlockBuilder("only")
    addr = b.movi(scratch)
    value = b.movi(0xBEEF)
    b.store(addr, value)
    loaded = b.load(addr)                     # must forward 0xBEEF
    doubled = b.op("ADDI", loaded, imm=1)
    b.store(addr, doubled, offset=8)
    b.write(10, doubled)
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    def check(state: ArchState) -> None:
        assert state.regs[10] == 0xBEEF + 1
        assert state.mem.load(scratch, 8) == 0xBEEF
        assert state.mem.load(scratch + 8, 8) == 0xBEEF + 1

    return prog, check


def fp_kernel(n: int = 8) -> tuple[Program, callable]:
    """Floating point: r10 = sum of x[i]*x[i] + 0.5 over an array of doubles."""
    prog = Program(entry="init", name="fp_kernel")
    values = [0.25 * i - 0.8 for i in range(n)]
    base = prog.add_doubles(values)

    b = BlockBuilder("init")
    b.write(10, b.movi(0.0))
    b.write(11, b.movi(0))
    b.branch("BRO", target="loop", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("loop")
    acc = b.read(10)
    i = b.read(11)
    addr = b.op("ADDI", b.op("SHLI", i, imm=3), imm=base)
    x = b.load(addr, op="LDF")
    sq = b.op("FMUL", x, x)
    half = b.movi(0.5)
    term = b.op("FADD", sq, half)
    b.write(10, b.op("FADD", acc, term))
    new_i = b.op("ADDI", i, imm=1)
    b.write(11, new_i)
    p = b.op("TLTI", new_i, imm=n)
    b.branch("BRO", target="loop", exit_id=0, pred=(p, True))
    b.branch("BRO", target="done", exit_id=1, pred=(p, False))
    prog.add_block(b.build())

    b = BlockBuilder("done")
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    expected = sum(x * x + 0.5 for x in values)

    def check(state: ArchState) -> None:
        assert abs(state.regs[10] - expected) < 1e-9, (state.regs[10], expected)

    return prog, check


def wide_fanout(width: int = 24) -> tuple[Program, callable]:
    """One value feeding many consumers — exercises MOV-tree legalization."""
    prog = Program(entry="only", name="wide_fanout")

    b = BlockBuilder("only")
    seed = b.movi(7)
    acc = b.op("ADDI", seed, imm=0)
    for k in range(width):
        term = b.op("ADDI", seed, imm=k)
        acc = b.op("ADD", acc, term)
    b.write(10, acc)
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    expected = 7 + sum(7 + k for k in range(width))

    def check(state: ArchState) -> None:
        assert state.regs[10] == expected

    return prog, check


ALL_SAMPLES = {
    "counted_loop": counted_loop,
    "vector_sum": vector_sum,
    "predicated_classify": predicated_classify,
    "call_return": call_return,
    "store_load_forward": store_load_forward,
    "fp_kernel": fp_kernel,
    "wide_fanout": wide_fanout,
}
