"""Compiler tests: both backends must agree with Python reference
results (and with each other) on every test kernel."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Array, Assign, Bin, Cmp, CompileError, Const, For, Function, If,
    KernelProgram, Load, Return, Store, Var, compile_edge, compile_risc,
)
from repro.isa import Interpreter
from repro.isa.block import BLOCK_MAX_INSTS
from repro.risc import RiscInterpreter

from tests.compiler.kernels_for_tests import ALL_KERNELS, read_array


def run_edge(kernel):
    program = compile_edge(kernel)
    interp = Interpreter(program)
    interp.run()
    return program, interp


def run_risc(kernel):
    program = compile_risc(kernel)
    interp = RiscInterpreter(program)
    interp.run()
    return program, interp


def check_arrays(kernel, memory, expected):
    for array_name, values in expected.items():
        got = read_array(kernel, lambda a, s, fp: memory.load(a, s, fp=fp),
                         array_name)[:len(values)]
        for i, (g, e) in enumerate(zip(got, values)):
            if isinstance(e, float):
                assert g == pytest.approx(e, rel=1e-12), (array_name, i)
            else:
                assert g == e, (array_name, i, got, values)


class TestEdgeBackend:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_matches_reference(self, name):
        kernel, expected = ALL_KERNELS[name]()
        __, interp = run_edge(kernel)
        check_arrays(kernel, interp.mem, expected)

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_block_limits_respected(self, name):
        kernel, __ = ALL_KERNELS[name]()
        program = compile_edge(kernel)
        for block in program.blocks.values():
            assert block.size <= BLOCK_MAX_INSTS
            assert len(block.reads) <= 32
            assert len(block.writes) <= 32

    def test_splitting_produces_chain(self):
        kernel, expected = ALL_KERNELS["big_straightline"]()
        program, interp = run_edge(kernel)
        assert len(program.order) >= 2       # must have split
        check_arrays(kernel, interp.mem, expected)

    def test_high_fanout_value_respects_block_limit(self):
        # Regression: a CSE-shared value feeding ~100 one-instruction
        # statements used to pack the block up to the soft limit
        # *before* MOV-tree legalization, and the appended fan-out MOVs
        # then pushed it past BLOCK_MAX_INSTS (hypothesis found this).
        # Splitting must budget for the projected legalized size.
        uses = 120
        kernel = KernelProgram(
            name="fanout",
            arrays=[Array("inp", "int", 1, init=[7]),
                    Array("out", "int", 1)],
            functions=[Function("main", body=[
                Assign("x", Load("inp", Const(0))),
                Assign("acc", Const(0)),
                *[Assign("acc", Bin("+", Var("acc"), Var("x")))
                  for __ in range(uses)],
                Store("out", Const(0), Var("acc")),
                Return(Const(0)),
            ])])
        program, interp = run_edge(kernel)
        for block in program.blocks.values():
            assert block.size <= BLOCK_MAX_INSTS
        check_arrays(kernel, interp.mem, {"out": [uses * 7]})

    def test_unrolling_grows_blocks(self):
        k1, __ = ALL_KERNELS["saxpy"]()
        for fn in k1.functions:
            fn.body[0].unroll = 1
        small = max(b.size for b in compile_edge(k1).blocks.values())
        k4, __ = ALL_KERNELS["saxpy"]()
        big = max(b.size for b in compile_edge(k4).blocks.values())
        assert big > small

    def test_unroll_ignored_for_nondivisible_trip(self):
        kernel, expected = ALL_KERNELS["saxpy"](n=23, unroll=4)  # 23 % 4 != 0
        __, interp = run_edge(kernel)
        check_arrays(kernel, interp.mem, expected)

    def test_zero_trip_loop(self):
        kernel = KernelProgram(
            name="zerotrip",
            arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                Assign("acc", Const(7)),
                For("i", Const(5), Const(5), body=[
                    Assign("acc", Const(999)),
                ]),
                Store("out", Const(0), Var("acc")),
            ])])
        __, interp = run_edge(kernel)
        check_arrays(kernel, interp.mem, {"out": [7]})

    def test_dynamic_bound_loop(self):
        kernel = KernelProgram(
            name="dyn",
            arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                Assign("n", Const(6)),
                Assign("acc", Const(0)),
                For("i", Const(0), Var("n"), body=[
                    Assign("acc", Bin("+", Var("acc"), Var("i"))),
                ]),
                Store("out", Const(0), Var("acc")),
            ])])
        __, interp = run_edge(kernel)
        check_arrays(kernel, interp.mem, {"out": [15]})


class TestRiscBackend:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_matches_reference(self, name):
        kernel, expected = ALL_KERNELS[name]()
        __, interp = run_risc(kernel)
        check_arrays(kernel, interp.mem, expected)

    def test_disassembly_smoke(self):
        kernel, __ = ALL_KERNELS["call_chain"]()
        program = compile_risc(kernel)
        text = program.disassemble()
        assert "main:" in text
        assert "JAL" in text
        assert "HALT" in text


class TestBackendsAgree:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_all_arrays_identical(self, name):
        kernel, __ = ALL_KERNELS[name]()
        __, edge_interp = run_edge(kernel)
        kernel2, __ = ALL_KERNELS[name]()
        __, risc_interp = run_risc(kernel2)
        for arr in kernel.arrays:
            e = read_array(kernel, lambda a, s, fp: edge_interp.mem.load(a, s, fp=fp), arr.name)
            r = read_array(kernel2, lambda a, s, fp: risc_interp.mem.load(a, s, fp=fp), arr.name)
            assert e == r, arr.name


class TestErrors:
    def test_uninitialized_variable(self):
        kernel = KernelProgram(
            name="bad", arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                Store("out", Const(0), Var("nope")),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_type_mismatch(self):
        kernel = KernelProgram(
            name="bad", arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                Assign("x", Bin("+", Const(1), Const(1.5))),
                Store("out", Const(0), Var("x")),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_conditional_assign_before_init(self):
        kernel = KernelProgram(
            name="bad", arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                If(Cmp(">", Const(1), Const(0)), then=[
                    Assign("x", Const(5)),
                ]),
                Store("out", Const(0), Var("x")),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_loop_inside_conditional_rejected(self):
        kernel = KernelProgram(
            name="bad", arrays=[Array("out", "int", 1)],
            functions=[Function("main", body=[
                Assign("x", Const(0)),
                If(Cmp(">", Const(1), Const(0)), then=[
                    For("i", Const(0), Const(4), body=[
                        Assign("x", Bin("+", Var("x"), Const(1)))]),
                ]),
                Store("out", Const(0), Var("x")),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_no_main_rejected(self):
        kernel = KernelProgram(name="bad", functions=[Function("f")])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_unknown_call_rejected(self):
        kernel = KernelProgram(
            name="bad", arrays=[],
            functions=[Function("main", body=[
                __import__("repro.compiler", fromlist=["Call"]).Call("ghost", []),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)

    def test_store_type_mismatch(self):
        kernel = KernelProgram(
            name="bad", arrays=[Array("out", "float", 1)],
            functions=[Function("main", body=[
                Store("out", Const(0), Const(1)),
            ])])
        with pytest.raises(CompileError):
            compile_edge(kernel)


# ----------------------------------------------------------------------
# Property-based differential testing: random straight-line kernels with
# conditionals must produce identical results on both backends.
# ----------------------------------------------------------------------

@st.composite
def random_kernel(draw):
    n = 8
    data = draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
    num_vars = draw(st.integers(1, 4))
    var_names = [f"v{i}" for i in range(num_vars)]

    def expr(depth):
        choices = ["const", "var"]
        if depth > 0:
            choices += ["load", "bin", "bin", "cmp"]
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            return Const(draw(st.integers(-20, 20)))
        if kind == "var":
            return Var(draw(st.sampled_from(var_names)))
        if kind == "load":
            return Load("inp", Bin("%", Un_abs(expr(depth - 1)), Const(n)))
        if kind == "bin":
            op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
            return Bin(op, expr(depth - 1), expr(depth - 1))
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        return Cmp(op, expr(depth - 1), expr(depth - 1))

    def Un_abs(e):
        from repro.compiler import Un
        return Un("abs", e)

    body = [Assign(v, Const(draw(st.integers(-5, 5)))) for v in var_names]
    num_stmts = draw(st.integers(1, 6))
    for __ in range(num_stmts):
        kind = draw(st.sampled_from(["assign", "assign", "if", "store"]))
        if kind == "assign":
            body.append(Assign(draw(st.sampled_from(var_names)), expr(2)))
        elif kind == "store":
            body.append(Store("out", Bin("%", Un_abs(expr(1)), Const(n)), expr(2)))
        else:
            then = [Assign(draw(st.sampled_from(var_names)), expr(1))]
            else_ = ([Assign(draw(st.sampled_from(var_names)), expr(1))]
                     if draw(st.booleans()) else [])
            body.append(If(Cmp(draw(st.sampled_from(["<", ">", "=="])),
                               expr(1), expr(1)), then, else_))
    for i, v in enumerate(var_names):
        body.append(Store("out", Const(i), Var(v)))
    return KernelProgram(
        name="random",
        arrays=[Array("inp", "int", n, data), Array("out", "int", n)],
        functions=[Function("main", body=body)])


@settings(max_examples=40, deadline=None)
@given(random_kernel())
def test_backends_agree_on_random_kernels(kernel):
    edge_program = compile_edge(kernel)
    edge_interp = Interpreter(edge_program)
    edge_result = edge_interp.run(max_blocks=10_000)
    assert edge_result.halted and not edge_result.truncated

    risc_program = compile_risc(kernel)
    risc_interp = RiscInterpreter(risc_program)
    risc_interp.run(max_insts=500_000)

    out_edge = read_array(kernel, lambda a, s, fp: edge_interp.mem.load(a, s, fp=fp), "out")
    out_risc = read_array(kernel, lambda a, s, fp: risc_interp.mem.load(a, s, fp=fp), "out")
    assert out_edge == out_risc
