"""Small DSL kernels used by compiler tests, with reference results
computed in Python."""

from __future__ import annotations

from repro.compiler import (
    Array, Assign, Bin, Call, Cmp, Const, For, Function, If, ItoF, FtoI,
    KernelProgram, Load, Return, Store, Un, Var,
)


def saxpy(n: int = 24, unroll: int = 4):
    """y[i] = a*x[i] + y[i] (float)."""
    xs = [0.5 * i - 3.0 for i in range(n)]
    ys = [0.25 * i for i in range(n)]
    a = 2.5
    kernel = KernelProgram(
        name="saxpy",
        arrays=[Array("x", "float", n, xs), Array("y", "float", n, ys)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=unroll, body=[
                Store("y", Var("i"),
                      Bin("+", Bin("*", Const(a), Load("x", Var("i"))),
                          Load("y", Var("i")))),
            ]),
        ])])
    expected = {"y": [a * x + y for x, y in zip(xs, ys)]}
    return kernel, expected


def prefix_max(n: int = 20):
    """out[i] = max(in[0..i]) via conditionals; also counts updates."""
    data = [(13 * i) % 17 - 5 for i in range(n)]
    kernel = KernelProgram(
        name="prefix_max",
        arrays=[Array("inp", "int", n, data), Array("out", "int", n),
                Array("meta", "int", 1)],
        functions=[Function("main", body=[
            Assign("best", Load("inp", Const(0))),
            Assign("updates", Const(0)),
            For("i", Const(0), Const(n), body=[
                Assign("v", Load("inp", Var("i"))),
                If(Cmp(">", Var("v"), Var("best")), then=[
                    Assign("best", Var("v")),
                    Assign("updates", Bin("+", Var("updates"), Const(1))),
                ]),
                Store("out", Var("i"), Var("best")),
            ]),
            Store("meta", Const(0), Var("updates")),
        ])])
    out, best, updates = [], data[0], 0
    for v in data:
        if v > best:
            best = v
            updates += 1
        out.append(best)
    expected = {"out": out, "meta": [updates]}
    return kernel, expected


def nested_if(n: int = 18):
    """Three-way classification with nested conditionals and else paths."""
    data = [(7 * i) % 11 - 5 for i in range(n)]
    kernel = KernelProgram(
        name="nested_if",
        arrays=[Array("inp", "int", n, data), Array("cls", "int", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), body=[
                Assign("v", Load("inp", Var("i"))),
                Assign("c", Const(0)),
                If(Cmp("<", Var("v"), Const(0)), then=[
                    Assign("c", Const(-1)),
                ], else_=[
                    If(Cmp(">", Var("v"), Const(2)), then=[
                        Assign("c", Const(2)),
                    ], else_=[
                        Assign("c", Const(1)),
                    ]),
                ]),
                Store("cls", Var("i"), Var("c")),
            ]),
        ])])
    expected = {"cls": [(-1 if v < 0 else (2 if v > 2 else 1)) for v in data]}
    return kernel, expected


def call_chain():
    """Function calls: result = f(g(3), g(5)) where g(x)=x*x+1, f=sum."""
    kernel = KernelProgram(
        name="call_chain",
        arrays=[Array("out", "int", 1)],
        functions=[
            Function("main", body=[
                Call("g", [Const(3)], dest="a"),
                Call("g", [Const(5)], dest="b"),
                Call("f", [Var("a"), Var("b")], dest="r"),
                Store("out", Const(0), Var("r")),
            ]),
            Function("g", params=["x"], body=[
                Return(Bin("+", Bin("*", Var("x"), Var("x")), Const(1))),
            ]),
            Function("f", params=["p", "q"], body=[
                Return(Bin("+", Var("p"), Var("q"))),
            ]),
        ])
    expected = {"out": [(3 * 3 + 1) + (5 * 5 + 1)]}
    return kernel, expected


def histogram(n: int = 40, buckets: int = 8):
    """Scatter with data-dependent store addresses."""
    data = [(i * 37) % buckets for i in range(n)]
    kernel = KernelProgram(
        name="histogram",
        arrays=[Array("inp", "int", n, data), Array("hist", "int", buckets)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), body=[
                Assign("b", Load("inp", Var("i"))),
                Assign("old", Load("hist", Var("b"))),
                Store("hist", Var("b"), Bin("+", Var("old"), Const(1))),
            ]),
        ])])
    hist = [0] * buckets
    for value in data:
        hist[value] += 1
    expected = {"hist": hist}
    return kernel, expected


def type_mix(n: int = 16):
    """Int/float conversions: accumulate sqrt of positive ints."""
    data = [(11 * i) % 9 - 3 for i in range(n)]
    kernel = KernelProgram(
        name="type_mix",
        arrays=[Array("inp", "int", n, data), Array("out", "float", 1),
                Array("count", "int", 1)],
        functions=[Function("main", body=[
            Assign("acc", Const(0.0)),
            Assign("k", Const(0)),
            For("i", Const(0), Const(n), body=[
                Assign("v", Load("inp", Var("i"))),
                If(Cmp(">", Var("v"), Const(0)), then=[
                    Assign("acc", Bin("+", Var("acc"), Un("sqrt", ItoF(Var("v"))))),
                    Assign("k", Bin("+", Var("k"), Const(1))),
                ]),
            ]),
            Store("out", Const(0), Var("acc")),
            Store("count", Const(0), Var("k")),
        ])])
    import math
    acc = sum(math.sqrt(v) for v in data if v > 0)
    expected = {"out": [acc], "count": [sum(1 for v in data if v > 0)]}
    return kernel, expected


def big_straightline(terms: int = 60):
    """Oversized straight-line code forcing block splitting."""
    kernel = KernelProgram(
        name="big_straightline",
        arrays=[Array("out", "int", 1)],
        functions=[Function("main", body=(
            [Assign("acc", Const(0))]
            + [Assign("acc", Bin("+", Bin("*", Var("acc"), Const(3)),
                                 Const(k))) for k in range(terms)]
            + [Store("out", Const(0), Var("acc"))]
        ))])
    acc = 0
    for k in range(terms):
        acc = acc * 3 + k
    from repro.util import wrap64
    expected = {"out": [wrap64(acc)]}
    return kernel, expected


ALL_KERNELS = {
    "saxpy": saxpy,
    "prefix_max": prefix_max,
    "nested_if": nested_if,
    "call_chain": call_chain,
    "histogram": histogram,
    "type_mix": type_mix,
    "big_straightline": big_straightline,
}


def read_array(kernel: KernelProgram, memory_load, array_name: str):
    """Read an array's contents given a ``load(addr, size, fp)`` callable.

    Array bases are recomputed from the deterministic layout order
    (arrays are placed sequentially from the data base, 8-byte
    elements)."""
    offset = 0x10_0000
    for arr in kernel.arrays:
        if arr.name == array_name:
            return [
                memory_load(offset + 8 * i, 8, arr.elem == "float")
                for i in range(arr.size)
            ]
        offset += arr.size * arr.elem_size
    raise KeyError(array_name)
