"""Tests for the instruction placement scheduler."""

import pytest

from repro.compiler.schedule import cross_core_edges, place_block, place_program
from repro.isa import BlockBuilder, Interpreter, Program
from repro.tflex import run_program
from repro.workloads import BENCHMARKS, verify_edge_run

from tests.sample_programs import ALL_SAMPLES, ArchState


class TestPlaceBlock:
    def _chain_block(self, length=12):
        b = BlockBuilder("t")
        value = b.movi(0)
        for __ in range(length):
            value = b.op("ADDI", value, imm=1)
        b.write(10, value)
        b.branch("HALT", exit_id=0)
        return b.build()

    def test_identity_for_one_core(self):
        block = self._chain_block()
        assert place_block(block, 1) is block

    def test_chain_packs_onto_few_cores(self):
        """A serial chain should stay local: far fewer cross-core edges
        than the default sequential numbering."""
        block = self._chain_block(12)
        before = cross_core_edges(block, 4)
        placed = place_block(block, 4)
        after = cross_core_edges(placed, 4)
        # Sequential numbering hops on (nearly) every edge; placement
        # hops only where the chain spills to the next core's slots.
        assert after <= before // 2
        assert after <= 7

    def test_placement_preserves_structure(self):
        block = self._chain_block(12)
        placed = place_block(block, 4)
        placed.validate()
        assert placed.size == block.size
        assert [w.reg for w in placed.writes] == [w.reg for w in block.writes]
        assert sorted(i.op.name for i in placed.insts) == \
            sorted(i.op.name for i in block.insts)
        # LSQ ids and exits are untouched.
        assert placed.store_ids == block.store_ids
        assert placed.exit_labels == block.exit_labels

    def test_slots_balanced(self):
        """No core may receive more than ceil(size/N) instructions."""
        program, __, __k = BENCHMARKS["conv"].edge_program()
        for label in program.order:
            block = program.blocks[label]
            placed = place_block(block, 8)
            per_core = [0] * 8
            for inst in placed.insts:
                per_core[inst.iid % 8] += 1
            assert max(per_core) <= -(-block.size // 8)


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
    def test_samples_unchanged(self, name):
        program, check = ALL_SAMPLES[name]()
        placed = place_program(program, 8)
        interp = Interpreter(placed)
        interp.run()
        check(ArchState(regs=interp.regs, mem=interp.mem))

    @pytest.mark.parametrize("name", ["conv", "mcf", "8b10b"])
    def test_workloads_unchanged_on_simulator(self, name):
        program, expected, kernel = BENCHMARKS[name].edge_program()
        placed = place_program(program, 8)
        proc = run_program(placed, num_cores=8, max_cycles=3_000_000)
        verify_edge_run(kernel, proc.memory, expected)


class TestPlacementHelps:
    def test_reduces_cross_core_traffic_on_suite(self):
        """Across the suite, placement must cut cross-core dataflow
        edges substantially versus sequential numbering."""
        total_before = total_after = 0
        for name in ("conv", "ct", "bezier", "mcf", "mgrid"):
            program, __, __k = BENCHMARKS[name].edge_program()
            for label in program.order:
                block = program.blocks[label]
                total_before += cross_core_edges(block, 8)
                total_after += cross_core_edges(place_block(block, 8), 8)
        assert total_after < total_before * 0.8, (total_before, total_after)

    def test_schedule_for_32_runs_well_on_fewer(self):
        """Paper section 5: programs are scheduled assuming a 32-core
        processor; running on fewer cores loses little performance."""
        for name in ("conv", "genalg"):
            program, __, __k = BENCHMARKS[name].edge_program()
            base = run_program(program, num_cores=8).stats.cycles
            program2, expected, kernel = BENCHMARKS[name].edge_program()
            placed32 = place_program(program2, 32)
            proc = run_program(placed32, num_cores=8, max_cycles=3_000_000)
            verify_edge_run(kernel, proc.memory, expected)
            assert proc.stats.cycles < base * 1.15, name

    def test_opn_traffic_drops(self):
        """Fewer cross-core edges must show up as fewer operand hops."""
        program, expected, kernel = BENCHMARKS["conv"].edge_program()
        base = run_program(program, num_cores=8)
        program2, __, __k = BENCHMARKS["conv"].edge_program()
        placed_prog = place_program(program2, 8)
        placed = run_program(placed_prog, num_cores=8)
        verify_edge_run(kernel, placed.memory, expected)
        assert placed.stats.energy_events["opn_hop"] < \
            base.stats.energy_events["opn_hop"]
