"""The sampled-simulation acceptance gates.

Two end-to-end properties, both recorded into ``BENCH_sim.json`` so the
trajectory file carries accuracy/speedup alongside the perf-smoke
timings:

* **Accuracy** — on the golden ``scale=1`` suite, sampled runs with the
  accuracy-oriented parameters must land within 5% geomean IPC error of
  the full-detail runs the golden suite locks down.
* **Speedup** — on a ``scale=4`` figure-6 subset, sampled runs with the
  throughput-oriented parameters must be at least 5x faster in
  aggregate wall-clock than full detail.

Wall-clock is measured with every cache layer disabled, and the gate is
on the *aggregate* (pooled) ratio: per-point ratios vary with benchmark
length, but the pooled ratio is what a sweep actually experiences.
"""

import math
import pathlib
import time

import pytest

import repro.harness.runner as runner_mod
from repro.exec.spec import JobSpec
from repro.harness import configure_cache
from repro.harness.benchrecord import record_job
from repro.harness.golden import GOLDEN_BENCHMARKS, GOLDEN_SCALE
from repro.harness.runner import simulate_spec

pytestmark = pytest.mark.slow

ROOT = pathlib.Path(__file__).resolve().parents[2]
OUTPUT_PATH = ROOT / "BENCH_sim.json"

#: Accuracy-oriented parameters: dense windows, most blocks detailed.
ACCURACY_SAMPLING = {"ff_blocks": 16, "window_blocks": 32,
                     "warmup_blocks": 8}
#: Throughput-oriented parameters: long fast-forward gaps for scale>1
#: sweeps (the defaults wired into the ``--sample`` CLI flags sit
#: between these two).
SPEEDUP_SAMPLING = {"ff_blocks": 4000, "window_blocks": 12,
                    "warmup_blocks": 8}

#: The figure-6 subset timed for the speedup gate: two golden
#: benchmarks long enough at scale=4 that sampling has room to work,
#: at two composition sizes.
SPEEDUP_POINTS = (("conv", 8), ("conv", 16), ("ammp", 8), ("ammp", 16))
SPEEDUP_SCALE = 4

GEOMEAN_ERROR_GATE = 0.05
SPEEDUP_GATE = 5.0


def _calibrate() -> float:
    """Machine-speed probe matching ``benchmarks/test_perf_smoke.py``."""
    t0 = time.perf_counter()
    x = 0
    for i in range(2_000_000):
        x ^= i
    return time.perf_counter() - t0


def _cold(fn):
    """Run ``fn`` with the in-process and on-disk result caches off."""
    saved = dict(runner_mod._CACHE)
    runner_mod._CACHE.clear()
    configure_cache(enabled=False)
    try:
        return fn()
    finally:
        runner_mod._CACHE.clear()
        runner_mod._CACHE.update(saved)


def test_sampled_accuracy_gate_golden_suite():
    """Geomean IPC error across the golden suite must be within 5%."""
    errors = {}
    for bench in GOLDEN_BENCHMARKS:
        full = simulate_spec(JobSpec.edge(bench, 8, scale=GOLDEN_SCALE))
        sampled = simulate_spec(JobSpec.edge(
            bench, 8, scale=GOLDEN_SCALE, sampling=ACCURACY_SAMPLING))
        # Both modes execute the identical committed block stream, so
        # relative cycle error IS the IPC error for the workload.  (The
        # reported insts_committed can differ by a hair — fast-forward
        # counts interpreter-fired instructions — so comparing the two
        # ratios directly would conflate that counting difference in.)
        assert sampled.stats.blocks_committed == full.stats.blocks_committed
        errors[bench] = abs(sampled.cycles - full.cycles) / full.cycles

    geomean = math.exp(
        sum(math.log1p(e) for e in errors.values()) / len(errors)) - 1
    record_job(OUTPUT_PATH, ROOT, "sampled_error_geomean_pct",
               geomean * 100, _calibrate())
    detail = ", ".join(f"{b}={e:.1%}" for b, e in sorted(errors.items()))
    assert geomean <= GEOMEAN_ERROR_GATE, (
        f"geomean IPC error {geomean:.2%} exceeds "
        f"{GEOMEAN_ERROR_GATE:.0%} ({detail})")


def test_sampled_speedup_gate_scale4_subset():
    """Sampled mode must be >=5x faster in aggregate on the scale=4
    figure-6 subset."""
    def run(sampling):
        t0 = time.perf_counter()
        for bench, ncores in SPEEDUP_POINTS:
            simulate_spec(JobSpec.edge(bench, ncores, scale=SPEEDUP_SCALE,
                                       sampling=sampling))
        return time.perf_counter() - t0

    full_seconds = _cold(lambda: run(None))
    sampled_seconds = _cold(lambda: run(SPEEDUP_SAMPLING))
    speedup = full_seconds / sampled_seconds

    calibration = _calibrate()
    record_job(OUTPUT_PATH, ROOT, "sampled_fig6s4_full", full_seconds,
               calibration)
    record_job(OUTPUT_PATH, ROOT, "sampled_fig6s4_sampled", sampled_seconds,
               calibration)
    record_job(OUTPUT_PATH, ROOT, "sampled_speedup_x", speedup, calibration)
    assert speedup >= SPEEDUP_GATE, (
        f"aggregate speedup {speedup:.1f}x below {SPEEDUP_GATE:.0f}x "
        f"(full {full_seconds:.2f}s, sampled {sampled_seconds:.2f}s)")
