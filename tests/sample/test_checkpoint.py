"""Checkpoint serialization: property-based round-trips for every
state-transfer surface, plus resume determinism for the whole engine.

The serialization tests push randomised state through a JSON encode /
decode cycle (``json.loads(json.dumps(...))``) on every round-trip, so
they prove not just equality but JSON-safety — the property the
on-disk checkpoint format depends on.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.spec import JobSpec
from repro.isa.program import BLOCK_STRIDE
from repro.mem.cache import CacheBank, LineState
from repro.mem.flatmem import FlatMemory
from repro.predictor.bank import PredictorBank
from repro.predictor.ras import DistributedRas
from repro.predictor.targets import BranchKind
from repro.sample.checkpoint import CHECKPOINT_SCHEMA, Checkpoint
from repro.sample.engine import SampledRun


def _json_roundtrip(obj):
    return json.loads(json.dumps(obj))


# ----------------------------------------------------------------------
# Architectural state: flat memory
# ----------------------------------------------------------------------

_mem_stores = st.lists(
    st.tuples(st.integers(0, (1 << 20) // 8 - 1),          # word slot
              st.integers(-(2 ** 31), 2 ** 31 - 1)),        # value
    max_size=40)


class TestFlatMemory:
    @given(_mem_stores)
    def test_snapshot_restore_roundtrip(self, stores):
        mem = FlatMemory()
        for slot, value in stores:
            mem.store(slot * 8, 8, value)
        fresh = FlatMemory()
        fresh.restore(_json_roundtrip(mem.snapshot()))
        assert fresh.snapshot() == mem.snapshot()
        for slot, __ in stores:
            assert fresh.load(slot * 8, 8) == mem.load(slot * 8, 8)

    def test_restore_replaces_prior_contents(self):
        mem = FlatMemory()
        mem.store(0, 8, 7)
        snap = mem.snapshot()
        other = FlatMemory()
        other.store(4096, 8, 99)
        other.restore(snap)
        assert other.load(0, 8) == 7
        assert other.load(4096, 8) == 0


# ----------------------------------------------------------------------
# Shadow cache banks
# ----------------------------------------------------------------------

_cache_fills = st.lists(
    st.tuples(st.integers(0, 3),                            # ctx
              st.integers(0, 255),                          # line index
              st.booleans()),                               # modified?
    max_size=60)


class TestCacheBank:
    @given(_cache_fills)
    def test_export_import_roundtrip(self, fills):
        bank = CacheBank(4096, 2, name="src")
        for ctx, index, modified in fills:
            state = LineState.MODIFIED if modified else LineState.SHARED
            bank.fill(ctx, index * 64, state)
        exported = _json_roundtrip(bank.export_lines())
        fresh = CacheBank(4096, 2, name="dst")
        fresh.import_lines(exported)
        # Byte-equal export preserves contents, LRU order, and states.
        assert fresh.export_lines() == bank.export_lines()

    def test_geometry_mismatch_rejected(self):
        bank = CacheBank(4096, 2, name="src")
        bank.fill(0, 0)
        with pytest.raises(ValueError):
            CacheBank(2048, 2, name="dst").import_lines(bank.export_lines())


# ----------------------------------------------------------------------
# Predictor bank + distributed RAS
# ----------------------------------------------------------------------

_pred_stream = st.lists(
    st.tuples(st.integers(0, 63),                           # block number
              st.integers(0, 7),                            # actual exit id
              st.sampled_from(list(BranchKind)),            # actual kind
              st.integers(1, 63)),                          # target block
    max_size=30)


class TestPredictorBank:
    @given(_pred_stream)
    @settings(deadline=None)
    def test_state_roundtrip_after_training(self, stream):
        bank = PredictorBank()
        ras = DistributedRas(4)
        ghist = 0
        for num, exit_id, kind, target in stream:
            prediction = bank.predict(num * BLOCK_STRIDE, ghist, ras)
            bank.update(prediction, exit_id, kind, target * BLOCK_STRIDE)
            ghist = prediction.next_global_history
        state = _json_roundtrip(bank.state_dict())
        fresh = PredictorBank()
        fresh.load_state(state)
        assert fresh.state_dict() == bank.state_dict()

    def test_geometry_mismatch_rejected(self):
        state = PredictorBank().state_dict()
        with pytest.raises(ValueError):
            PredictorBank(local_l1=32).load_state(state)


class TestDistributedRas:
    @given(st.lists(st.integers(1, 2 ** 32 - 1), max_size=40),
           st.integers(0, 40))
    def test_state_roundtrip(self, pushes, npops):
        ras = DistributedRas(4, 4)   # capacity 16: long streams wrap
        for addr in pushes:
            ras.push(addr)
        for __ in range(min(npops, len(pushes))):
            ras.pop()
        state = _json_roundtrip(ras.state_dict())
        fresh = DistributedRas(4, 4)
        fresh.load_state(state)
        assert fresh.state_dict() == ras.state_dict()
        if len(pushes) > npops:
            assert fresh.pop()[0] == ras.pop()[0]

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistributedRas(2, 4).load_state(DistributedRas(4, 4).state_dict())


# ----------------------------------------------------------------------
# Whole-run checkpoints
# ----------------------------------------------------------------------

SAMPLING = {"ff_blocks": 16, "window_blocks": 32, "warmup_blocks": 8}


def _spec(bench="ammp", **kwargs):
    return JobSpec.edge(bench, 8, scale=1, sampling=SAMPLING, **kwargs)


class TestCheckpointContainer:
    def test_dict_and_file_roundtrip(self, tmp_path):
        run = SampledRun(_spec())
        run.step()
        checkpoint = run.checkpoint()
        rebuilt = Checkpoint.from_dict(_json_roundtrip(checkpoint.to_dict()))
        assert rebuilt.to_dict() == checkpoint.to_dict()

        path = tmp_path / "run.ckpt"
        checkpoint.save(path)
        assert Checkpoint.load(path).to_dict() == checkpoint.to_dict()

    def test_schema_mismatch_rejected(self):
        run = SampledRun(_spec())
        run.step()
        data = run.checkpoint().to_dict()
        data["schema"] = CHECKPOINT_SCHEMA + 1
        with pytest.raises(ValueError):
            Checkpoint.from_dict(data)

    def test_resume_under_different_spec_rejected(self):
        run = SampledRun(_spec())
        run.step()
        checkpoint = run.checkpoint()
        with pytest.raises(ValueError):
            SampledRun.resume(_spec("gzip"), checkpoint)


class TestResumeDeterminism:
    def test_resume_equals_straight_line(self, tmp_path):
        """Checkpoint after one window/fast-forward step, push the
        checkpoint through the on-disk JSON format, resume, and finish:
        the RunResult must be *identical* to the uninterrupted run's."""
        spec = _spec()
        straight = SampledRun(spec)
        expected = straight.run()

        interrupted = SampledRun(spec)
        assert interrupted.step()
        path = tmp_path / "warm.ckpt"
        interrupted.checkpoint().save(path)

        resumed = SampledRun.resume(spec, Checkpoint.load(path))
        actual = resumed.run()
        assert actual.to_dict() == expected.to_dict()

    def test_checkpoint_carries_dependence_history(self):
        """The violation-history set rides through the checkpoint: it
        accumulates monotonically in a real run, and dropping it at a
        resume boundary would bias later windows fast."""
        spec = JobSpec.edge(
            "gzip", 8, scale=4,
            sampling={"ff_blocks": 64, "window_blocks": 24,
                      "warmup_blocks": 8})
        run = SampledRun(spec)
        while run.step():
            pass
        assert run.dependence, "expected gzip scale=4 to violate"
        checkpoint = run.checkpoint()
        rebuilt = SampledRun.resume(spec,
                                    Checkpoint.from_dict(
                                        _json_roundtrip(checkpoint.to_dict())))
        assert rebuilt.dependence == run.dependence
