"""Sampled-engine semantics: exact fallback, spec plumbing, config
validation, runner routing, and observability hooks."""

import json

import pytest

import repro.obs as obs
from repro.exec.spec import SCHEMA_VERSION, JobSpec, spec_hash
from repro.harness.runner import RunResult, simulate_spec
from repro.obs import RingBufferSink
from repro.sample import SamplingConfig
from repro.sample.engine import SampledRun, run_sampled


SAMPLING = {"ff_blocks": 16, "window_blocks": 32, "warmup_blocks": 8}


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


class TestExactFallback:
    def test_short_program_is_bit_identical(self):
        """A program shorter than one window never fast-forwards, so
        the sampled result must equal the full-detail run bit for bit
        (cycles, every stats counter, power, DRAM traffic)."""
        full = simulate_spec(JobSpec.edge("a2time", 8, scale=1))
        sampled = run_sampled(JobSpec.edge(
            "a2time", 8, scale=1,
            sampling={"ff_blocks": 16, "window_blocks": 256,
                      "warmup_blocks": 8}))
        assert sampled.sampling["exact"]
        assert sampled.sampling["windows"] == 1

        want = full.to_dict()
        got = sampled.to_dict()
        assert got.pop("sampling")["ipc_rel_stddev"] == 0.0
        got["label"] = want["label"]     # only "+sampled" differs
        assert got == want


class TestSpecPlumbing:
    def test_sampling_changes_spec_hash(self):
        base = JobSpec.edge("conv", 8, scale=2)
        sampled = JobSpec.edge("conv", 8, scale=2, sampling=SAMPLING)
        other = JobSpec.edge("conv", 8, scale=2,
                             sampling=dict(SAMPLING, ff_blocks=17))
        hashes = {spec_hash(s) for s in (base, sampled, other)}
        assert len(hashes) == 3

    def test_sampled_label_suffix(self):
        assert JobSpec.edge("conv", 8).label() == "tflex-8"
        assert JobSpec.edge(
            "conv", 8, sampling=SAMPLING).label() == "tflex-8+sampled"

    def test_spec_dict_roundtrip_preserves_sampling(self):
        spec = JobSpec.edge("conv", 8, scale=2, sampling=SAMPLING)
        rebuilt = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.sampling_dict() == SAMPLING

    def test_schema_version_covers_sampling(self):
        # Sampling support bumped the exec-store schema: cached results
        # from pre-sampling builds must not be replayed.
        assert SCHEMA_VERSION >= 2


class TestSamplingConfig:
    def test_defaults_are_valid(self):
        SamplingConfig().validate()

    @pytest.mark.parametrize("bad", [
        {"ff_blocks": 0},
        {"window_blocks": 0},
        {"warmup_blocks": -1},
    ])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            SamplingConfig.from_dict(dict(SAMPLING, **bad))

    def test_from_dict_empty_means_full_detail(self):
        assert SamplingConfig.from_dict(None) is None
        assert SamplingConfig.from_dict({}) is None

    def test_unknown_key_rejected(self):
        with pytest.raises(TypeError):
            SamplingConfig.from_dict({"window": 40})


class TestRouting:
    def test_trips_spec_rejected_by_engine(self):
        with pytest.raises(ValueError):
            SampledRun(JobSpec.edge("conv", trips=True, sampling=SAMPLING))

    def test_runner_falls_back_to_detail_for_trips(self):
        spec = JobSpec.edge("conv", trips=True, scale=1, sampling=SAMPLING)
        result = simulate_spec(spec)
        assert result.sampling is None          # ran full detail
        assert result.cycles == simulate_spec(
            JobSpec.edge("conv", trips=True, scale=1)).cycles

    def test_risc_spec_rejected(self):
        spec = JobSpec.risc("conv")
        with pytest.raises(ValueError):
            SampledRun(spec, SamplingConfig())


class TestSampledResult:
    def test_extrapolated_run_reports_coverage(self):
        result = simulate_spec(JobSpec.edge(
            "conv", 8, scale=2, sampling=SAMPLING))
        info = result.sampling
        assert info is not None and not info["exact"]
        assert info["windows"] >= info["measured_windows"] >= 1
        assert 0 < info["window_insts"] < info["total_insts"]
        assert info["total_insts"] == result.insts_committed
        assert info["ipc_estimate"] == pytest.approx(
            result.insts_committed / result.cycles)

    def test_result_dict_roundtrip_with_sampling(self):
        result = simulate_spec(JobSpec.edge(
            "conv", 8, scale=2, sampling=SAMPLING))
        rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.sampling == result.sampling

    def test_unsampled_result_has_no_sampling_section(self):
        # Golden-suite payload compatibility: full-detail results must
        # serialize exactly as they did before sampling existed.
        result = simulate_spec(JobSpec.edge("a2time", 8, scale=1))
        assert result.sampling is None
        assert "sampling" not in result.to_dict()

    def test_verification_still_runs_on_sampled_memory(self):
        # The sampled run executes every block architecturally, so the
        # workload's end-state check stays enabled; a run that reaches
        # result() has passed it.
        result = run_sampled(JobSpec.edge(
            "gzip", 8, scale=1, sampling=SAMPLING, verify=True))
        assert result.insts_committed > 0


class TestObservability:
    def test_window_and_ff_events_and_metrics(self):
        bundle = obs.configure(metrics=True)
        sink = RingBufferSink()
        bundle.bus.attach(sink)
        run = SampledRun(JobSpec.edge("conv", 8, scale=2, sampling=SAMPLING))
        run.run()

        windows = sink.of_kind("sample.window")
        ffs = sink.of_kind("sample.ff")
        assert len(windows) == len(run.windows)
        assert windows[0]["bench"] == "conv"
        assert ffs and ffs[-1]["finished"] in (True, False)

        counters = bundle.metrics.snapshot()["counters"]
        for name in ("sample.windows", "sample.window_blocks",
                     "sample.ff_blocks"):
            assert any(key.startswith(name) for key in counters), name

    def test_ff_profiler_phase_recorded(self):
        bundle = obs.configure(metrics=True, profile=True)
        run = SampledRun(JobSpec.edge("conv", 8, scale=2, sampling=SAMPLING))
        run.run()
        assert bundle.profiler.seconds("sample.ff") > 0
