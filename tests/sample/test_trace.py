"""Shared fast-forward traces: schema round-trips, keying, store
hygiene, and the cross-composition differential gate.

The differential suite is the tentpole guarantee: replaying a recorded
fast-forward trace under a *different* composition must produce a
``RunResult`` byte-identical to interpreting the fast-forward region
live — across core counts, the ideal-handshake ablation arm, and
benchmarks of every category.
"""

import gzip
import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs_lib
from repro.exec import ResultStore
from repro.exec.spec import JobSpec
from repro.exec.worker import execute_spec
from repro.harness import clear_cache, configure_cache
from repro.obs import RingBufferSink
from repro.sample.trace import (
    TRACE_SCHEMA,
    FFTraceStore,
    RecordSession,
    ReplaySession,
    configure_ff_trace,
    decode_reg_delta,
    decode_trace,
    encode_reg_delta,
    encode_trace,
    prewarm_partition,
    reset_ff_trace,
    trace_group,
    trace_key,
)


SAMPLING = {"ff_blocks": 160, "window_blocks": 24, "warmup_blocks": 8}


@pytest.fixture(autouse=True)
def _isolated(tmp_path):
    """Each test gets a fresh in-process cache, a disabled result
    store, and its own trace-store root."""
    clear_cache()
    configure_cache(enabled=False)
    reset_ff_trace()
    configure_ff_trace(enabled=True, cache_dir=tmp_path / "traces")
    yield
    reset_ff_trace()
    clear_cache()
    configure_cache(enabled=False)
    obs_lib.reset()


def _json_roundtrip(obj):
    return json.loads(json.dumps(obj))


# ----------------------------------------------------------------------
# Schema round-trips (property-based, through JSON)
# ----------------------------------------------------------------------

_reg_values = st.one_of(st.integers(-(2 ** 63), 2 ** 63 - 1),
                        st.floats(allow_nan=False, allow_infinity=False))
_regfiles = st.lists(_reg_values, min_size=8, max_size=8)


class TestRegDelta:
    @given(_regfiles, _regfiles)
    def test_roundtrip(self, start, end):
        delta = _json_roundtrip(encode_reg_delta(start, end))
        assert decode_reg_delta(start, delta) == end

    @given(_regfiles)
    def test_identity_is_empty(self, regs):
        assert encode_reg_delta(regs, regs) == []

    def test_type_change_is_a_delta(self):
        # 1 == 1.0 in Python, but the register file distinguishes the
        # int from the float; the delta must carry it.
        assert encode_reg_delta([1], [1.0]) != []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_reg_delta([0], [0, 0])


_stores = st.lists(
    st.tuples(st.integers(0, 1 << 20),                     # address
              st.sampled_from([1, 2, 4, 8]),               # size
              st.integers(-(2 ** 31), 2 ** 31 - 1),        # value
              st.booleans()),                              # fp
    max_size=6).map(
        lambda items: [(0, a, 8 if fp else s, float(v) if fp else v, fp)
                       for a, s, v, fp in items])

_intervals = st.lists(st.tuples(
    st.integers(0, 63),                                    # block number
    st.integers(0, 7),                                     # exit id
    st.integers(0, 63),                                    # next block
    st.sampled_from(["BRO", "CALLO", "RET"]),              # branch op
    st.integers(1, 128),                                   # insts
    st.lists(st.integers(0, 1 << 20), max_size=4),         # load addrs
    _stores,
), min_size=1, max_size=8)


def _build_interval(blocks, start, finished):
    return {
        "start": start,
        "addrs": [b * 64 for b, *_ in blocks],
        "exits": [e for _, e, *_ in blocks],
        "nexts": [n * 64 for _, _, n, *_ in blocks],
        "branch_ops": [op for *_3, op, _i, _l, _s in blocks],
        "insts": [i for *_4, i, _l, _s in blocks],
        "loads": [len(l) for *_5, l, _s in blocks],
        "load_addrs": [list(l) for *_5, l, _s in blocks],
        "stores": [list(s) for *_6, s in blocks],
        "reg_delta": [[1, 42]],
        "finished": finished,
    }


class TestTraceRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(_intervals, min_size=1, max_size=3))
    def test_encode_decode_roundtrip(self, raw_intervals):
        intervals = [
            _build_interval(blocks, start=i * 4096,
                            finished=(i == len(raw_intervals) - 1))
            for i, blocks in enumerate(raw_intervals)
        ]
        payload = _json_roundtrip(encode_trace(
            "conv", 3, SAMPLING, "fp" * 32, intervals))
        trace = decode_trace(payload)

        assert trace.bench == "conv"
        assert trace.scale == 3
        assert trace.sampling == dict(sorted(SAMPLING.items()))
        assert trace.program == "fp" * 32
        assert len(trace.intervals) == len(intervals)
        for got, want in zip(trace.intervals, intervals):
            assert got.start == want["start"]
            assert list(got.addrs) == want["addrs"]
            assert list(got.exits) == want["exits"]
            assert list(got.nexts) == want["nexts"]
            assert list(got.branch_ops) == want["branch_ops"]
            assert list(got.insts) == want["insts"]
            assert list(got.loads) == want["loads"]
            assert [list(x) for x in got.load_addrs] == want["load_addrs"]
            assert [[tuple(s) for s in blk] for blk in got.stores] \
                == [[tuple(s) for s in blk] for blk in want["stores"]]
            assert got.reg_delta == want["reg_delta"]
            assert got.finished == want["finished"]

    @settings(max_examples=25, deadline=None)
    @given(_intervals)
    def test_stores_raw_matches_flatmemory_encoding(self, blocks):
        """The pre-encoded store bytes must be exactly what
        ``FlatMemory.store`` would have written."""
        from repro.mem.flatmem import FlatMemory

        interval = _build_interval(blocks, start=0, finished=True)
        payload = _json_roundtrip(encode_trace(
            "conv", 1, SAMPLING, "fp", [interval]))
        decoded = decode_trace(payload).intervals[0]

        via_store = FlatMemory()
        via_raw = FlatMemory()
        for blk, blk_raw in zip(decoded.stores, decoded.stores_raw):
            assert len(blk) == len(blk_raw)
            for (__lsq, addr, size, value, fp), (raddr, raw) in \
                    zip(blk, blk_raw):
                assert raddr == addr
                via_store.store(addr, size, value, fp=fp)
                via_raw.write_bytes(raddr, raw)
        assert via_store.snapshot() == via_raw.snapshot()

    def test_unknown_schema_rejected(self):
        payload = encode_trace("conv", 1, SAMPLING, "fp", [])
        payload["schema"] = TRACE_SCHEMA + 1
        with pytest.raises(ValueError):
            decode_trace(payload)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------

class TestTraceKey:
    def test_composition_axes_do_not_change_the_key(self):
        """Every composition of one (program, scale, schedule) shares a
        trace: ncores and the ideal-handshake ablation are invisible to
        the interpreter."""
        base = trace_key(JobSpec.edge("conv", 2, scale=2,
                                      sampling=SAMPLING))
        assert base is not None
        for spec in (
            JobSpec.edge("conv", 16, scale=2, sampling=SAMPLING),
            JobSpec.edge("conv", 32, scale=2, sampling=SAMPLING,
                         ideal_handshake=True),
            JobSpec.edge("conv", 2, scale=2, sampling=SAMPLING,
                         overrides={"lsq_size": 16}),
            JobSpec.edge("conv", 2, scale=2, sampling=SAMPLING,
                         verify=False),
        ):
            assert trace_key(spec) == base

    def test_program_and_schedule_axes_change_the_key(self):
        base = trace_key(JobSpec.edge("conv", 2, scale=2,
                                      sampling=SAMPLING))
        for spec in (
            JobSpec.edge("gzip", 2, scale=2, sampling=SAMPLING),
            JobSpec.edge("conv", 2, scale=3, sampling=SAMPLING),
            JobSpec.edge("conv", 2, scale=2,
                         sampling=dict(SAMPLING, ff_blocks=161)),
        ):
            assert trace_key(spec) != base

    def test_ineligible_specs_have_no_key(self):
        assert trace_key(JobSpec.edge("conv", 2)) is None       # no sampling
        assert trace_key(JobSpec.edge("conv", 2, trips=True,
                                      sampling=SAMPLING)) is None
        assert trace_group(JobSpec.edge("conv", 2)) is None

    def test_schema_version_salts_the_key(self, monkeypatch):
        spec = JobSpec.edge("conv", 2, scale=2, sampling=SAMPLING)
        base = trace_key(spec)
        import repro.sample.trace as trace_mod

        monkeypatch.setattr(trace_mod, "TRACE_SCHEMA", TRACE_SCHEMA + 1)
        assert trace_key(spec) != base


# ----------------------------------------------------------------------
# Store hygiene
# ----------------------------------------------------------------------

class TestStoreHygiene:
    def test_corrupt_blob_reads_as_miss(self, tmp_path):
        store = FFTraceStore(tmp_path / "t")
        key = "ab" * 32
        store.store(key, encode_trace("conv", 1, SAMPLING, "fp", []))
        assert store.load(key) is not None

        path = store.path_for(key)
        path.write_bytes(b"not gzip at all")
        assert store.load(key) is None
        path.write_bytes(gzip.compress(b'{"truncated'))
        assert store.load(key) is None

    def test_schema_bump_reads_as_miss(self, tmp_path):
        """A blob written under another schema version must miss (the
        store salt is the schema), not decode wrongly."""
        key = "cd" * 32
        old = FFTraceStore(tmp_path / "t")
        old.salt = TRACE_SCHEMA + 1
        old.store(key, {"schema": TRACE_SCHEMA + 1})
        assert FFTraceStore(tmp_path / "t").load(key) is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = FFTraceStore(tmp_path / "t")
        store.store("ef" * 32, encode_trace("conv", 1, SAMPLING, "fp", []))
        moved = store.path_for("01" * 32)
        moved.parent.mkdir(parents=True, exist_ok=True)
        store.path_for("ef" * 32).rename(moved)
        assert store.load("01" * 32) is None


# ----------------------------------------------------------------------
# Cross-composition differential (the tentpole gate)
# ----------------------------------------------------------------------

DIFF_BENCHMARKS = ("conv", "gzip", "equake")     # hand / spec-int / spec-fp
DIFF_COMPOSITIONS = ((2, False), (8, False), (32, True))


def _diff_specs():
    return [JobSpec.edge(bench, ncores=n, scale=2, sampling=SAMPLING,
                         ideal_handshake=ideal)
            for bench in DIFF_BENCHMARKS
            for n, ideal in DIFF_COMPOSITIONS]


@pytest.mark.slow
def test_cross_composition_replay_is_bit_identical(tmp_path):
    """3 benchmarks x 3 compositions: stored records from the shared
    trace store must equal per-job fast-forward byte for byte."""
    perjob = ResultStore(tmp_path / "perjob")
    configure_ff_trace(enabled=False)
    for spec in _diff_specs():
        perjob.store(spec, execute_spec(spec))

    clear_cache()
    shared = ResultStore(tmp_path / "shared")
    configure_ff_trace(enabled=True, cache_dir=tmp_path / "traces2")
    for spec in _diff_specs():
        shared.store(spec, execute_spec(spec))

    for spec in _diff_specs():
        a = shared.path_for(shared.key(spec)).read_bytes()
        b = perjob.path_for(perjob.key(spec)).read_bytes()
        assert a == b, f"records diverge for {spec.label()}"
    # One trace per benchmark was recorded.
    assert len(FFTraceStore()) == len(DIFF_BENCHMARKS)


def test_mismatching_trace_falls_back_to_live_run(tmp_path):
    """A trace whose interval boundaries do not line up is abandoned
    mid-run and the result still comes out identical — the fallback
    guarantee that makes replay safe to enable by default."""
    # A dense schedule guarantees several fast-forward intervals even
    # on the small scale, so the tamper lands mid-run.
    dense = {"ff_blocks": 48, "window_blocks": 16, "warmup_blocks": 4}
    spec = JobSpec.edge("conv", 4, scale=2, sampling=dense)
    reference = execute_spec(spec)
    key = trace_key(spec)
    payload = FFTraceStore().load(key)
    assert payload is not None and len(payload["intervals"]) >= 2

    # Corrupt the second interval's start address on disk (and drop the
    # in-process parse) so replay only notices once it is under way.
    payload["intervals"][1]["start"] += 64
    FFTraceStore().store(key, payload)
    import repro.sample.trace as trace_mod

    trace_mod._PARSED.clear()

    obs = obs_lib.configure(metrics=True)
    ring = obs.bus.attach(RingBufferSink(
        kinds=("trace.mismatch", "trace.replay")))
    clear_cache()
    result = execute_spec(spec)
    assert result == reference

    assert len(ring.of_kind("trace.mismatch")) == 1
    replays = ring.of_kind("trace.replay")
    assert len(replays) == 1 and replays[0]["fell_back"]


def test_record_then_replay_events_and_metrics(tmp_path):
    """The first run of a group records; the second replays every
    interval without interpreting (sample.ff never fires)."""
    obs = obs_lib.configure(metrics=True)
    ring = obs.bus.attach(RingBufferSink(
        kinds=("trace.record", "trace.replay", "trace.mismatch",
               "sample.ff", "sample.ff_replayed")))

    spec_a = JobSpec.edge("conv", 4, scale=2, sampling=SAMPLING)
    result_a = execute_spec(spec_a)
    clear_cache()
    spec_b = JobSpec.edge("conv", 16, scale=2, sampling=SAMPLING)
    execute_spec(spec_b)

    records = ring.of_kind("trace.record")
    assert len(records) == 1
    assert records[0]["bench"] == "conv"
    assert records[0]["intervals"] >= 1
    assert records[0]["bytes"] > 0

    lives = ring.of_kind("sample.ff")
    replayed = ring.of_kind("sample.ff_replayed")
    assert lives and all(e["bench"] == "conv" for e in lives)
    assert replayed and len(replayed) == records[0]["intervals"]
    assert not ring.of_kind("trace.mismatch")
    replays = ring.of_kind("trace.replay")
    assert len(replays) == 1 and not replays[0]["fell_back"]

    # Replaying run B re-used run A's trajectory: same committed blocks.
    clear_cache()
    result_b2 = execute_spec(JobSpec.edge("conv", 4, scale=2,
                                          sampling=SAMPLING))
    assert result_b2 == result_a


def test_disabled_tracing_records_nothing(tmp_path):
    configure_ff_trace(enabled=False)
    spec = JobSpec.edge("conv", 4, scale=2, sampling=SAMPLING)
    execute_spec(spec)
    assert len(FFTraceStore(tmp_path / "traces")) == 0


# ----------------------------------------------------------------------
# Prewarm partitioning (the executor's honest-work planner)
# ----------------------------------------------------------------------

class TestPrewarmPartition:
    def test_one_recorder_per_cold_group(self):
        specs = [JobSpec.edge("conv", n, scale=2, sampling=SAMPLING)
                 for n in (2, 4, 8)]
        specs += [JobSpec.edge("gzip", n, scale=2, sampling=SAMPLING)
                  for n in (2, 4)]
        specs.append(JobSpec.edge("conv", 8, scale=2))  # unsampled
        recorders, rest = prewarm_partition(specs)
        assert [s.bench for s in recorders] == ["conv", "gzip"]
        assert len(rest) == len(specs) - 2
        assert set(map(id, recorders)).isdisjoint(map(id, rest))

    def test_singleton_groups_are_not_recorders(self):
        specs = [JobSpec.edge("conv", 2, scale=2, sampling=SAMPLING)]
        recorders, rest = prewarm_partition(specs)
        assert recorders == [] and rest == specs

    def test_already_recorded_groups_pass_through(self):
        specs = [JobSpec.edge("conv", n, scale=2, sampling=SAMPLING)
                 for n in (2, 4)]
        execute_spec(specs[0])          # records the group's trace
        recorders, rest = prewarm_partition(specs)
        assert recorders == [] and rest == specs

    def test_disabled_tracing_passes_through(self):
        configure_ff_trace(enabled=False)
        specs = [JobSpec.edge("conv", n, scale=2, sampling=SAMPLING)
                 for n in (2, 4)]
        assert prewarm_partition(specs) == ([], specs)
