"""Differential testing: random valid EDGE programs must execute
identically on the golden-model interpreter and the cycle simulator at
every composition size.

The generator builds DAG-shaped programs (guaranteed termination) with
random dataflow, predicated regions (including NULL-resolved writes and
stores), stores/loads over a small aligned scratch region (exercising
LSQ forwarding and violation replay), and data-dependent two-way
branches (exercising prediction, misprediction recovery, and wrong-path
squashing).

Every generated program runs through a **three-way differential
oracle**: the ISA interpreter (golden model), a 1-core TFlex composition
(no distribution protocols), and an N-core composition (the full
distributed fetch/execute/commit machinery).  All three must agree on
architectural registers, scratch memory, and committed-block count.  The
generator body is shared between a Hypothesis strategy (which keeps
counterexamples shrinkable) and a plain seeded PRNG (`SEEDED_CASES`
below — deterministic regression cases that need no Hypothesis database
and reproduce from the seed alone).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import BlockBuilder, Interpreter, Program
from repro.tflex import run_program

pytestmark = pytest.mark.slow

SCRATCH = 0x20_0000
SCRATCH_WORDS = 8
INIT_REGS = (2, 3, 4, 5)

#: Deterministic differential cases: (generator seed, composition size).
#: Failures reproduce from the tuple alone — no example database needed.
SEEDED_CASES = tuple((seed, (2, 4, 8)[seed % 3]) for seed in range(24))


class HypothesisSource:
    """Draws through Hypothesis strategies (so shrinking works)."""

    def __init__(self, draw):
        self._draw = draw

    def integer(self, lo, hi):
        return self._draw(st.integers(lo, hi))

    def boolean(self):
        return self._draw(st.booleans())

    def choice(self, seq):
        return self._draw(st.sampled_from(list(seq)))

    def unique_sample(self, seq, max_size):
        return self._draw(st.lists(st.sampled_from(list(seq)), unique=True,
                                   max_size=max_size))


class SeededSource:
    """Draws from a plain PRNG: fully determined by the seed."""

    def __init__(self, seed):
        self._rng = random.Random(seed)

    def integer(self, lo, hi):
        return self._rng.randint(lo, hi)

    def boolean(self):
        return self._rng.random() < 0.5

    def choice(self, seq):
        seq = list(seq)
        return seq[self._rng.randrange(len(seq))]

    def unique_sample(self, seq, max_size):
        seq = list(seq)
        return self._rng.sample(seq, self._rng.randint(0, min(max_size, len(seq))))


def build_random_program(src) -> Program:
    """Generate one random valid program from a draw source."""
    num_blocks = src.integer(2, 5)
    program = Program(entry="b0", name="random")
    program.reg_init = {reg: src.integer(-40, 40) for reg in INIT_REGS}

    for index in range(num_blocks):
        b = BlockBuilder(f"b{index}")
        pool = [b.read(reg) for reg in INIT_REGS]
        pool.append(b.movi(src.integer(-10, 10)))

        def pick():
            return pool[src.integer(0, len(pool) - 1)]

        # Random straight-line dataflow.
        for __ in range(src.integer(1, 6)):
            op = src.choice(["ADD", "SUB", "MUL", "AND", "XOR"])
            pool.append(b.op(op, pick(), pick()))

        # A predicated region with covered outputs.
        written: set[int] = set()
        if src.boolean():
            pred = b.op("TLTI", pick(), imm=src.integer(-20, 20))
            reg = src.choice(INIT_REGS)
            written.add(reg)
            value = b.op("ADDI", pick(), imm=1, pred=(pred, True))
            b.write(reg, value)
            b.null_write(reg, pred=(pred, False))
            if src.boolean():
                addr = b.movi(SCRATCH + 8 * src.integer(0, SCRATCH_WORDS - 1),
                              pred=(pred, True))
                data = b.op("ADDI", value, imm=7, pred=(pred, True))
                handle = b.store(addr, data, pred=(pred, True))
                b.null_store(handle, pred=(pred, False))

        # Unconditional memory traffic (same-word aliasing is exact, so
        # forwarding and violations stay well-defined).
        for __ in range(src.integer(0, 2)):
            slot = src.integer(0, SCRATCH_WORDS - 1)
            if src.boolean():
                b.store(b.movi(SCRATCH + 8 * slot), pick())
            else:
                pool.append(b.load(b.movi(SCRATCH + 8 * slot)))

        # Unpredicated register updates (a slot may have only one
        # producer per dynamic path, so skip regs the predicated region
        # already covers).
        for reg in src.unique_sample(INIT_REGS, max_size=2):
            if reg not in written:
                b.write(reg, pick())

        # Exit: last block halts; earlier blocks branch forward, with a
        # data-dependent two-way choice half the time.
        if index == num_blocks - 1:
            b.branch("HALT", exit_id=0)
        else:
            succ_a = src.integer(index + 1, num_blocks - 1)
            if src.boolean():
                succ_b = src.integer(index + 1, num_blocks - 1)
                branch_pred = b.op("TGEI", pick(), imm=src.integer(-10, 10))
                b.branch("BRO", target=f"b{succ_a}", exit_id=0,
                         pred=(branch_pred, True))
                b.branch("BRO", target=f"b{succ_b}", exit_id=1,
                         pred=(branch_pred, False))
            else:
                b.branch("BRO", target=f"b{succ_a}", exit_id=0)
        program.add_block(b.build())

    program.validate()
    return program


@st.composite
def random_program(draw):
    return build_random_program(HypothesisSource(draw))


def _scratch_words(memory):
    return [memory.load(SCRATCH + 8 * i, 8) for i in range(SCRATCH_WORDS)]


def assert_three_way_agreement(program: Program, ncores: int) -> None:
    """Interpreter, 1-core sim, and N-core sim must agree exactly."""
    golden = Interpreter(program)
    result = golden.run(max_blocks=1000)
    assert result.halted and not result.truncated, \
        "golden run truncated by block budget — oracle comparison invalid"
    expected_scratch = _scratch_words(golden.mem)

    for cores in (1, ncores):
        proc = run_program(program, num_cores=cores, max_cycles=2_000_000)
        label = f"{cores}-core"
        assert proc.regs == golden.regs, f"{label}: register state diverged"
        assert _scratch_words(proc.memory) == expected_scratch, \
            f"{label}: scratch memory diverged"
        assert proc.stats.blocks_committed == result.blocks_executed, \
            f"{label}: committed-block count diverged"


@settings(max_examples=60, deadline=None)
@given(random_program(), st.sampled_from([2, 4, 8]))
def test_simulator_matches_interpreter(program, ncores):
    assert_three_way_agreement(program, ncores)


@pytest.mark.parametrize("seed,ncores", SEEDED_CASES)
def test_seeded_differential(seed, ncores):
    """Deterministic oracle cases: same seed, same program, forever."""
    program = build_random_program(SeededSource(seed))
    assert_three_way_agreement(program, ncores)
