"""Differential testing: random valid EDGE programs must execute
identically on the golden-model interpreter and the cycle simulator at
every composition size.

The generator builds DAG-shaped programs (guaranteed termination) with
random dataflow, predicated regions (including NULL-resolved writes and
stores), stores/loads over a small aligned scratch region (exercising
LSQ forwarding and violation replay), and data-dependent two-way
branches (exercising prediction, misprediction recovery, and wrong-path
squashing)."""

from hypothesis import given, settings, strategies as st

from repro.isa import BlockBuilder, Interpreter, Program
from repro.tflex import run_program


SCRATCH = 0x20_0000
SCRATCH_WORDS = 8
INIT_REGS = (2, 3, 4, 5)


@st.composite
def random_program(draw):
    num_blocks = draw(st.integers(2, 5))
    program = Program(entry="b0", name="random")
    program.reg_init = {
        reg: draw(st.integers(-40, 40)) for reg in INIT_REGS
    }

    for index in range(num_blocks):
        b = BlockBuilder(f"b{index}")
        pool = [b.read(reg) for reg in INIT_REGS]
        pool.append(b.movi(draw(st.integers(-10, 10))))

        def pick():
            return pool[draw(st.integers(0, len(pool) - 1))]

        # Random straight-line dataflow.
        for __ in range(draw(st.integers(1, 6))):
            op = draw(st.sampled_from(["ADD", "SUB", "MUL", "AND", "XOR"]))
            pool.append(b.op(op, pick(), pick()))

        # A predicated region with covered outputs.
        written: set[int] = set()
        if draw(st.booleans()):
            pred = b.op("TLTI", pick(), imm=draw(st.integers(-20, 20)))
            reg = draw(st.sampled_from(INIT_REGS))
            written.add(reg)
            value = b.op("ADDI", pick(), imm=1, pred=(pred, True))
            b.write(reg, value)
            b.null_write(reg, pred=(pred, False))
            if draw(st.booleans()):
                addr = b.movi(SCRATCH + 8 * draw(st.integers(0, SCRATCH_WORDS - 1)),
                              pred=(pred, True))
                data = b.op("ADDI", value, imm=7, pred=(pred, True))
                handle = b.store(addr, data, pred=(pred, True))
                b.null_store(handle, pred=(pred, False))

        # Unconditional memory traffic (same-word aliasing is exact, so
        # forwarding and violations stay well-defined).
        for __ in range(draw(st.integers(0, 2))):
            slot = draw(st.integers(0, SCRATCH_WORDS - 1))
            if draw(st.booleans()):
                b.store(b.movi(SCRATCH + 8 * slot), pick())
            else:
                pool.append(b.load(b.movi(SCRATCH + 8 * slot)))

        # Unpredicated register updates (a slot may have only one
        # producer per dynamic path, so skip regs the predicated region
        # already covers).
        for reg in draw(st.lists(st.sampled_from(INIT_REGS), unique=True,
                                 max_size=2)):
            if reg not in written:
                b.write(reg, pick())

        # Exit: last block halts; earlier blocks branch forward, with a
        # data-dependent two-way choice half the time.
        if index == num_blocks - 1:
            b.branch("HALT", exit_id=0)
        else:
            succ_a = draw(st.integers(index + 1, num_blocks - 1))
            if draw(st.booleans()):
                succ_b = draw(st.integers(index + 1, num_blocks - 1))
                branch_pred = b.op("TGEI", pick(), imm=draw(st.integers(-10, 10)))
                b.branch("BRO", target=f"b{succ_a}", exit_id=0,
                         pred=(branch_pred, True))
                b.branch("BRO", target=f"b{succ_b}", exit_id=1,
                         pred=(branch_pred, False))
            else:
                b.branch("BRO", target=f"b{succ_a}", exit_id=0)
        program.add_block(b.build())

    program.validate()
    return program


def _scratch_words(memory):
    return [memory.load(SCRATCH + 8 * i, 8) for i in range(SCRATCH_WORDS)]


@settings(max_examples=60, deadline=None)
@given(random_program(), st.sampled_from([1, 2, 4, 8]))
def test_simulator_matches_interpreter(program, ncores):
    golden = Interpreter(program)
    result = golden.run(max_blocks=1000)

    proc = run_program(program, num_cores=ncores, max_cycles=2_000_000)
    assert proc.regs == golden.regs
    assert _scratch_words(proc.memory) == _scratch_words(golden.mem)
    assert proc.stats.blocks_committed == result.blocks_executed
