"""ProcStats / LatencyBreakdown serialization and metrics export."""

from collections import Counter

from repro.noc.mesh import NetworkStats
from repro.obs import MetricsRegistry
from repro.tflex.stats import LatencyBreakdown, ProcStats


class TestLatencyBreakdownRoundTrip:
    def test_empty(self):
        again = LatencyBreakdown.from_dict(LatencyBreakdown().to_dict())
        assert again.samples == 0
        assert again.components == Counter()
        assert again.total_mean() == 0.0

    def test_components_missing_from_some_samples(self):
        # Real traces do this: one-core compositions record no
        # prediction latency, squeezed blocks no handoff, etc.  Every
        # sample bumps the count; only the present components grow.
        bd = LatencyBreakdown()
        bd.record(prediction=3, tag=1, pipeline=3)
        bd.record(tag=1, pipeline=3)                 # no prediction
        bd.record(tag=1, pipeline=3, handoff=2)      # late-appearing key
        assert bd.samples == 3
        assert bd.mean("prediction") == 1.0
        assert bd.mean("handoff") == 2 / 3
        again = LatencyBreakdown.from_dict(bd.to_dict())
        assert again.samples == bd.samples
        assert again.components == bd.components
        assert again.means() == bd.means()
        # A component never recorded still reads a zero mean.
        assert again.mean("distribution") == 0.0

    def test_dict_form_is_plain(self):
        data = LatencyBreakdown().to_dict()
        assert isinstance(data["components"], dict)
        assert not isinstance(data["components"], Counter)


def _populated_stats() -> ProcStats:
    stats = ProcStats(cycles=100, blocks_committed=10, insts_committed=55,
                      insts_fetched=80, blocks_fetched=12, blocks_squashed=2,
                      mispredictions=1, predictions=9, predictions_correct=8,
                      inflight_integral=250)
    stats.fetch_latency.record(prediction=3, tag=1, pipeline=3, dispatch=7)
    stats.fetch_latency.record(tag=1, pipeline=3)   # prediction/dispatch gap
    stats.commit_latency.record(state_update=4, handshake=6)
    stats.count("alu_op", 40)
    stats.count("lsq_search", 12)
    return stats


class TestProcStatsRoundTrip:
    def test_round_trip_preserves_everything(self):
        stats = _populated_stats()
        again = ProcStats.from_dict(stats.to_dict())
        assert again.to_dict() == stats.to_dict()
        assert again.ipc == stats.ipc
        assert again.prediction_accuracy == stats.prediction_accuracy
        assert again.avg_inflight_blocks == stats.avg_inflight_blocks
        assert again.fetch_latency.mean("prediction") == 1.5
        assert again.energy_events["alu_op"] == 40

    def test_fresh_stats_round_trip(self):
        again = ProcStats.from_dict(ProcStats().to_dict())
        assert again.cycles == 0
        assert again.fetch_latency.samples == 0
        assert again.energy_events == Counter()


class TestProcStatsToMetrics:
    def test_breakdowns_sum_back_exactly(self):
        stats = _populated_stats()
        reg = MetricsRegistry()
        stats.to_metrics(reg, proc="p0")
        assert reg.counter("tflex.blocks_committed", proc="p0") == 10
        assert reg.counter("tflex.fetch_latency_blocks", proc="p0") == 2
        for comp, cycles in stats.fetch_latency.components.items():
            assert reg.counter("tflex.fetch_latency_cycles",
                               component=comp, proc="p0") == cycles
        assert reg.counter_total("tflex.commit_latency_cycles") == \
               sum(stats.commit_latency.components.values())
        assert reg.counter("tflex.energy_events", event="alu_op",
                           proc="p0") == 40

    def test_two_procs_keep_separate_series(self):
        reg = MetricsRegistry()
        _populated_stats().to_metrics(reg, proc="a")
        _populated_stats().to_metrics(reg, proc="b")
        assert reg.counter("tflex.cycles", proc="a") == 100
        assert reg.counter_total("tflex.cycles") == 200


class TestNetworkStats:
    def test_merge_adds_fieldwise(self):
        a = NetworkStats(messages=3, hops=7, total_latency=11,
                         contention_cycles=2, local_deliveries=5)
        b = NetworkStats(messages=1, hops=2, total_latency=4,
                         contention_cycles=1, local_deliveries=0)
        a.merge(b)
        assert a == NetworkStats(messages=4, hops=9, total_latency=15,
                                 contention_cycles=3, local_deliveries=5)
        # The merged-from side is untouched.
        assert b.messages == 1

    def test_merge_empty_is_identity(self):
        a = NetworkStats(messages=3, hops=7, total_latency=11)
        before = NetworkStats(**vars(a))
        a.merge(NetworkStats())
        assert a == before

    def test_to_metrics_gauges_overwrite(self):
        reg = MetricsRegistry()
        stats = NetworkStats(messages=3, hops=7, total_latency=11)
        stats.to_metrics(reg, net="opn")
        stats.messages = 9      # later flush of the cumulative totals
        stats.to_metrics(reg, net="opn")
        assert reg.gauge("noc.messages", net="opn") == 9
        assert reg.gauge("noc.hops", net="opn") == 7
