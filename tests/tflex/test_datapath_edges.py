"""Targeted tests for datapath corner cases: LSQ overflow handling,
dependence-violation replay and throttling, register NULL forwarding
through the simulator, and wrong-path robustness."""

import pytest

from repro.isa import BlockBuilder, Interpreter, Program
from repro.tflex import TFlexSystem, rectangle, run_program, tflex_config
from dataclasses import replace


def _run(program, ncores=4, cfg=None, max_cycles=2_000_000):
    return run_program(program, num_cores=ncores, cfg=cfg, max_cycles=max_cycles)


def many_loads_program(num_blocks=12, loads_per_block=16):
    """Many in-flight blocks hammering few LSQ banks (overflow trigger)."""
    prog = Program(entry="b0", name="lsq_pressure")
    base = prog.add_words(list(range(64)))
    for i in range(num_blocks):
        b = BlockBuilder(f"b{i}")
        acc = b.movi(0)
        for k in range(loads_per_block):
            # All loads in one 64-byte line -> one bank under interleaving.
            value = b.load(b.movi(base + 8 * (k % 8)))
            acc = b.op("ADD", acc, value)
        b.write(10, b.op("ADD", b.read(10), acc))
        if i == num_blocks - 1:
            b.branch("HALT", exit_id=0)
        else:
            b.branch("BRO", target=f"b{i+1}", exit_id=0)
        prog.add_block(b.build())
    return prog, base


class TestLsqOverflow:
    def test_small_lsq_makes_progress(self):
        """With minimum-size LSQ banks (one block's worst case) the
        overflow policy must avoid livelock and stay correct."""
        prog, base = many_loads_program()
        golden = Interpreter(prog)
        golden.run()
        cfg = replace(tflex_config(8),
                      core=replace(tflex_config(8).core, lsq_entries=32))
        proc = _run(prog, ncores=8, cfg=cfg)
        assert proc.regs[10] == golden.regs[10]
        assert proc.stats.nacks > 0

    def test_overflow_flush_counted(self):
        prog, __ = many_loads_program(num_blocks=16, loads_per_block=24)
        cfg = replace(tflex_config(8),
                      core=replace(tflex_config(8).core, lsq_entries=32))
        proc = _run(prog, ncores=8, cfg=cfg)
        assert proc.stats.blocks_committed == 16

    def test_undersized_bank_rejected(self):
        with pytest.raises(ValueError, match="worst case"):
            replace(tflex_config(8),
                    core=replace(tflex_config(8).core, lsq_entries=6)).validate()


def store_load_conflict_program():
    """Producer block stores late; consumer block loads early -> the
    load speculates, gets stale data, and must replay."""
    prog = Program(entry="producer", name="violation")
    cell = prog.add_words([111])

    b = BlockBuilder("producer")
    # A long dependence chain delays the store's data.
    v = b.movi(1)
    for __ in range(12):
        v = b.op("MULI", v, imm=3)
    b.store(b.movi(cell), v)
    b.branch("BRO", target="consumer", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("consumer")
    loaded = b.load(b.movi(cell))
    b.write(10, loaded)
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    return prog, 3 ** 12


class TestViolationReplay:
    @pytest.mark.parametrize("ncores", [2, 4, 8])
    def test_replay_produces_correct_value(self, ncores):
        prog, expected = store_load_conflict_program()
        proc = _run(prog, ncores=ncores)
        assert proc.regs[10] == expected

    def test_violation_detected_and_throttled(self):
        prog, expected = store_load_conflict_program()
        proc = _run(prog, ncores=8)
        assert proc.regs[10] == expected
        # Either the violation fired (and the dependence throttle kicked
        # in) or timing happened to order them; the common case violates.
        if proc.stats.violations:
            assert proc.dependence_set


class TestRegisterNullForwarding:
    @pytest.mark.parametrize("flag,expected", [(1, 99), (0, 55)])
    def test_null_write_chains_in_simulator(self, flag, expected):
        """Block A conditionally writes r10 (NULL on the other path);
        block B reads r10 before A commits — forwarding must chain
        through the NULL to the architectural value."""
        prog = Program(entry="a", name="null_chain")
        prog.reg_init = {10: 55, 11: flag}

        b = BlockBuilder("a")
        p = b.op("TEQI", b.read(11), imm=1)
        b.write(10, b.movi(99, pred=(p, True)))
        b.null_write(10, pred=(p, False))
        b.branch("BRO", target="b", exit_id=0)
        prog.add_block(b.build())

        b = BlockBuilder("b")
        b.write(12, b.read(10))
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())

        for ncores in (1, 2, 4):
            proc = _run(prog, ncores=ncores)
            assert proc.regs[12] == expected, ncores


class TestWrongPathRobustness:
    def test_wrong_path_garbage_address_squashed(self):
        """A mispredicted path computing a wild address must not crash
        or corrupt state."""
        prog = Program(entry="head", name="wild")
        cell = prog.add_words([7])
        prog.reg_init = {2: 0}

        b = BlockBuilder("head")
        p = b.op("TEQI", b.read(2), imm=0)       # always true
        b.branch("BRO", target="good", exit_id=0, pred=(p, True))
        b.branch("BRO", target="wild", exit_id=1, pred=(p, False))
        prog.add_block(b.build())

        b = BlockBuilder("good")
        b.write(10, b.load(b.movi(cell)))
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())

        b = BlockBuilder("wild")                  # only ever wrong-path
        bogus = b.op("MULI", b.read(2), imm=-(1 << 40))
        addr = b.op("ADDI", bogus, imm=-123456)
        b.write(10, b.load(addr))
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())

        # Train the predictor toward "wild" by address aliasing is not
        # possible here; instead run enough times that cold predictions
        # take the wrong exit at least once on some composition.
        for ncores in (2, 4, 8):
            proc = _run(prog, ncores=ncores)
            assert proc.regs[10] == 7


class TestFlushDuringCommit:
    def test_committing_block_can_be_squashed(self):
        """A dependence violation may flush a younger block that is
        already in its commit handshake; architectural state must stay
        correct (the squashed commit must not apply)."""
        prog = Program(entry="p", name="flush_mid_commit")
        cell = prog.add_words([5])
        out = prog.alloc_data(8)

        b = BlockBuilder("p")
        v = b.movi(1)
        for __ in range(16):
            v = b.op("ADDI", v, imm=1)
        b.store(b.movi(cell), v)                 # late store
        b.branch("BRO", target="q", exit_id=0)
        prog.add_block(b.build())

        b = BlockBuilder("q")                     # early load + quick finish
        loaded = b.load(b.movi(cell))
        b.store(b.movi(out), loaded)
        b.branch("BRO", target="r", exit_id=0)
        prog.add_block(b.build())

        b = BlockBuilder("r")
        b.write(10, b.load(b.movi(out)))
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())

        golden = Interpreter(prog)
        golden.run()
        for ncores in (2, 4, 8):
            proc = _run(prog, ncores=ncores)
            assert proc.regs[10] == golden.regs[10], ncores
            assert proc.memory.load(out, 8) == golden.mem.load(out, 8)
