"""Fault isolation: composability turns dead cores into capacity loss.

A fixed-granularity processor loses the whole processor (or chip) to
one faulty tile; a CLP simply composes around it — one of the practical
benefits of full composability."""

import pytest

from repro.tflex import TFLEX, TFlexSystem, pack, rectangle
from repro.workloads import BENCHMARKS, verify_edge_run

from tests.sample_programs import ALL_SAMPLES, ArchState


def test_faulty_core_cannot_join_composition():
    system = TFlexSystem(TFLEX)
    system.cores[1].faulty = True
    program, __ = ALL_SAMPLES["counted_loop"]()
    with pytest.raises(RuntimeError, match="faulty"):
        system.compose(rectangle(TFLEX, 4, (0, 0)), program)   # includes core 1


def test_pack_avoids_faulty_cores():
    faulty = {0, 13, 22}
    groups = pack(TFLEX, [8, 8, 4, 4], avoid=faulty)
    placed = {core for group in groups for core in group}
    assert not (placed & faulty)
    assert len(placed) == 24


def test_pack_capacity_accounts_for_faults():
    with pytest.raises(ValueError):
        pack(TFLEX, [16, 16], avoid={5})   # only 31 healthy cores


def test_chip_keeps_working_around_faults():
    """With three dead cores, the chip still runs a full workload on the
    remaining capacity, and results stay correct."""
    system = TFlexSystem(TFLEX)
    dead = (1, 2, 3)   # one bad row; rectangle packing works around it
    for core_id in dead:
        system.cores[core_id].faulty = True

    programs = []
    checks = []
    for name in ("vector_sum", "fp_kernel", "predicated_classify"):
        program, check = ALL_SAMPLES[name]()
        programs.append(program)
        checks.append(check)
    groups = pack(TFLEX, [8, 8, 8], avoid=set(dead))
    procs = [system.compose(group, program)
             for group, program in zip(groups, programs)]
    system.run()
    for proc, check in zip(procs, checks):
        check(ArchState(regs=proc.regs, mem=proc.memory))


def test_degraded_chip_runs_suite_benchmark():
    system = TFlexSystem(TFLEX)
    system.cores[0].faulty = True      # kill the usual anchor core
    program, expected, kernel = BENCHMARKS["dither"].edge_program()
    group = pack(TFLEX, [8], avoid={0})[0]
    proc = system.compose(group, program)
    system.run()
    verify_edge_run(kernel, proc.memory, expected)
