"""Unit tests for simulator components: event queue, config, placement,
register-file banks, block instances, stats."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import BlockBuilder
from repro.isa.instruction import OperandSlot
from repro.tflex import TFLEX, BlockState, EventQueue, pack, rectangle, tflex_config, trips_config
from repro.tflex.instance import BlockInstance
from repro.tflex.regfile import RegfileBank
from repro.tflex.stats import LatencyBreakdown, ProcStats


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        order = []
        q.at(5, lambda: order.append("b"))
        q.at(3, lambda: order.append("a"))
        q.at(5, lambda: order.append("c"))   # same cycle: insertion order
        q.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.at(7, lambda: seen.append(q.now))
        q.run()
        assert seen == [7]

    def test_after_is_relative(self):
        q = EventQueue()
        seen = []
        q.at(10, lambda: q.after(5, lambda: seen.append(q.now)))
        q.run()
        assert seen == [15]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.at(10, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.at(5, lambda: None)

    def test_until_predicate_stops(self):
        q = EventQueue()
        count = []

        def tick():
            count.append(1)
            q.after(1, tick)

        q.at(0, tick)
        q.run(until=lambda: len(count) >= 10)
        assert len(count) == 10

    def test_max_cycles(self):
        q = EventQueue()

        def tick():
            q.after(1, tick)

        q.at(0, tick)
        assert q.run(max_cycles=100) is False


class TestConfig:
    def test_default_is_paper_table1(self):
        core = TFLEX.core
        assert core.window_entries == 128
        assert core.issue_int == 2 and core.issue_fp == 1
        assert core.icache_bytes == 8 * 1024
        assert core.dcache_bytes == 8 * 1024
        assert core.dcache_hit == 2
        assert core.lsq_entries == 44
        assert core.predictor_latency == 3
        assert core.local_l1 == 64 and core.local_l2 == 128
        assert core.global_entries == 512 and core.choice_entries == 512
        assert core.ras_entries == 16 and core.ctb_entries == 16
        assert core.btb_entries == 128 and core.btype_entries == 256
        assert TFLEX.num_cores == 32
        assert TFLEX.l2_banks * TFLEX.l2_bank_bytes == 4 * 1024 * 1024
        assert TFLEX.dram_latency == 150
        assert TFLEX.opn_channels == 2

    def test_trips_mode(self):
        cfg = trips_config()
        assert cfg.num_cores == 16
        assert cfg.core.issue_total == 1
        assert cfg.opn_channels == 1
        assert cfg.centralized_predictor
        assert cfg.dcache_banks == 4
        assert cfg.regfile_banks == 4
        assert cfg.max_inflight == 8
        cfg.validate()

    def test_sized_configs(self):
        for n in (1, 2, 4, 8, 16, 32):
            cfg = tflex_config(n)
            assert cfg.num_cores == n
            cfg.validate()
        with pytest.raises(ValueError):
            tflex_config(3)

    def test_validate_rejects_bad_mesh(self):
        from dataclasses import replace
        with pytest.raises(ValueError):
            replace(TFLEX, num_cores=30).validate()


class TestPlacement:
    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16, 32])
    def test_rectangle_sizes(self, size):
        cores = rectangle(TFLEX, size)
        assert len(cores) == size
        assert len(set(cores)) == size
        assert all(0 <= c < 32 for c in cores)

    def test_rectangle_is_contiguous(self):
        cores = rectangle(TFLEX, 4, (2, 3))
        assert cores == [14, 15, 18, 19]

    def test_rectangle_out_of_bounds(self):
        with pytest.raises(ValueError):
            rectangle(TFLEX, 32, (1, 0))

    def test_pack_disjoint(self):
        groups = pack(TFLEX, [8, 8, 4, 4, 2, 2, 1, 1])
        seen = set()
        for group in groups:
            assert not (seen & set(group))
            seen |= set(group)
        assert len(seen) == 30

    def test_pack_full_chip(self):
        groups = pack(TFLEX, [16, 8, 4, 2, 2])
        assert sum(len(g) for g in groups) == 32

    def test_pack_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack(TFLEX, [16, 16, 8])

    @given(st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=8))
    def test_pack_property(self, sizes):
        if sum(sizes) > 32:
            return
        groups = pack(TFLEX, sizes)
        flat = [c for g in groups for c in g]
        assert len(flat) == len(set(flat)) == sum(sizes)


class TestRegfileBank:
    def test_architectural_read(self):
        regs = [0] * 128
        regs[5] = 99
        bank = RegfileBank(regs)
        got = []
        assert bank.read(gseq=0, reg=5, deliver=got.append)
        assert got == [99]

    def test_forward_from_resolved_writer(self):
        bank = RegfileBank([0] * 128)
        bank.declare(1, [5])
        bank.produce(1, 5, 42)
        got = []
        assert bank.read(gseq=2, reg=5, deliver=got.append)
        assert got == [42]
        assert bank.stats.forwards == 1

    def test_read_waits_for_pending_writer(self):
        bank = RegfileBank([0] * 128)
        bank.declare(1, [5])
        got = []
        assert not bank.read(gseq=2, reg=5, deliver=got.append)
        assert got == []
        bank.produce(1, 5, 7)
        assert got == [7]
        assert bank.stats.stalls == 1

    def test_read_ignores_younger_writers(self):
        regs = [0] * 128
        regs[5] = 11
        bank = RegfileBank(regs)
        bank.declare(3, [5])
        got = []
        assert bank.read(gseq=2, reg=5, deliver=got.append)
        assert got == [11]

    def test_null_write_chains_to_older(self):
        regs = [0] * 128
        regs[5] = 11
        bank = RegfileBank(regs)
        bank.declare(1, [5])
        bank.declare(2, [5])
        bank.produce(1, 5, 22)
        bank.produce(2, 5, None, null=True)
        got = []
        assert bank.read(gseq=3, reg=5, deliver=got.append)
        assert got == [22]

    def test_null_write_chains_to_architectural(self):
        regs = [0] * 128
        regs[5] = 11
        bank = RegfileBank(regs)
        bank.declare(1, [5])
        bank.produce(1, 5, None, null=True)
        got = []
        assert bank.read(gseq=2, reg=5, deliver=got.append)
        assert got == [11]

    def test_commit_applies_value(self):
        regs = [0] * 128
        bank = RegfileBank(regs)
        bank.declare(1, [5])
        bank.produce(1, 5, 42)
        bank.commit(1, 5)
        assert regs[5] == 42
        assert bank.pending_count() == 0

    def test_commit_null_leaves_register(self):
        regs = [0] * 128
        regs[5] = 11
        bank = RegfileBank(regs)
        bank.declare(1, [5])
        bank.produce(1, 5, None, null=True)
        bank.commit(1, 5)
        assert regs[5] == 11

    def test_commit_unresolved_rejected(self):
        bank = RegfileBank([0] * 128)
        bank.declare(1, [5])
        with pytest.raises(ValueError):
            bank.commit(1, 5)

    def test_squash_drops_pending(self):
        bank = RegfileBank([0] * 128)
        bank.declare(1, [5])
        bank.declare(2, [5])
        bank.squash_from(2)
        assert bank.pending_count() == 1
        bank.squash_from(0)
        assert bank.pending_count() == 0

    def test_out_of_order_declare_rejected(self):
        bank = RegfileBank([0] * 128)
        bank.declare(2, [5])
        with pytest.raises(ValueError):
            bank.declare(1, [5])

    def test_chained_stall_through_null(self):
        """Reader waits on a pending writer that resolves NULL; value
        must chain to the next older resolved writer."""
        bank = RegfileBank([0] * 128)
        bank.declare(1, [5])
        bank.declare(2, [5])
        bank.produce(1, 5, 33)
        got = []
        bank.read(gseq=3, reg=5, deliver=got.append)
        assert got == []
        bank.produce(2, 5, None, null=True)
        assert got == [33]


class TestBlockInstance:
    def _instance(self):
        b = BlockBuilder("t")
        x = b.read(1)
        y = b.op("ADDI", x, imm=1)
        p = b.op("TLTI", y, imm=10)
        b.op("ADDI", y, imm=2, pred=(p, True))
        b.write(1, y)
        b.branch("HALT", exit_id=0)
        block = b.build()
        return BlockInstance(gseq=0, block=block, addr=0x10000,
                             owner_index=0, ghist_before=0), block

    def test_not_ready_before_dispatch(self):
        instance, block = self._instance()
        add = block.insts[1]
        instance.buffer_operand(add.iid, OperandSlot.OP0, 5)
        assert not instance.ready_to_fire(add)
        instance.dispatched.add(add.iid)
        assert instance.ready_to_fire(add)

    def test_predicate_mismatch_squashes(self):
        instance, block = self._instance()
        predicated = next(i for i in block.insts if i.pred is not None)
        instance.dispatched.add(predicated.iid)
        instance.buffer_operand(predicated.iid, OperandSlot.OP0, 5)
        instance.buffer_operand(predicated.iid, OperandSlot.PRED, 0)  # needs 1
        assert not instance.ready_to_fire(predicated)
        assert predicated.iid in instance.squashed_insts

    def test_outputs_complete(self):
        instance, __ = self._instance()
        assert not instance.outputs_complete
        instance.branch_done = True
        assert not instance.outputs_complete
        instance.writes_done = 1
        assert instance.outputs_complete  # no stores declared


class TestStats:
    def test_latency_breakdown_means(self):
        lb = LatencyBreakdown()
        lb.record(a=2, b=4)
        lb.record(a=4, b=0)
        assert lb.mean("a") == 3
        assert lb.means() == {"a": 3.0, "b": 2.0}
        assert lb.total_mean() == 5.0

    def test_empty_breakdown(self):
        lb = LatencyBreakdown()
        assert lb.mean("x") == 0.0
        assert lb.total_mean() == 0.0

    def test_proc_stats_properties(self):
        stats = ProcStats()
        assert stats.ipc == 0.0
        assert stats.prediction_accuracy == 0.0
        assert stats.speculation_waste == 0.0
        stats.cycles = 100
        stats.insts_committed = 250
        assert stats.ipc == 2.5
        stats.count("alu_op", 5)
        assert stats.energy_events["alu_op"] == 5
