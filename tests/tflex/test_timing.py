"""Precise timing validation of the core model.

Pins the cycle-level behaviours the paper states exactly: the
one-cycle inter-core operand bubble (figure 4b), dual-issue limits,
determinism of the whole simulator, and Table-1 latencies on the
memory path."""

import pytest

from repro.isa import BlockBuilder, Program
from repro.tflex import TFLEX, TFlexSystem, rectangle, run_program, tflex_config
from repro.workloads import BENCHMARKS


def loop_chain_program(chain: int, trips: int = 30,
                       num_chains: int = 1, fp_ops: int = 0) -> Program:
    """A counted loop whose body carries `num_chains` independent serial
    dependence chains of `chain` ADDIs (plus optional FP work), warmed
    past the cold I-cache misses by running `trips` iterations."""
    prog = Program(entry="init", name="loopchain")
    b = BlockBuilder("init")
    b.write(9, b.movi(0))           # trip counter
    for c in range(num_chains):
        b.write(10 + c, b.movi(c))
    if fp_ops:
        b.write(20, b.movi(1.5))
    b.branch("BRO", target="loop", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("loop")
    for c in range(num_chains):
        value = b.read(10 + c)
        for __ in range(chain):
            value = b.op("ADDI", value, imm=1)
        b.write(10 + c, value)
    if fp_ops:
        f = b.read(20)
        for __ in range(fp_ops):
            f = b.op("FADD", f, f)
        b.write(20, f)
    counter = b.op("ADDI", b.read(9), imm=1)
    b.write(9, counter)
    again = b.op("TLTI", counter, imm=trips)
    b.branch("BRO", target="loop", exit_id=0, pred=(again, True))
    b.branch("BRO", target="done", exit_id=1, pred=(again, False))
    prog.add_block(b.build())

    b = BlockBuilder("done")
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    return prog


def _per_iter(chain, ncores, num_chains=1, fp_ops=0):
    """Steady-state cycles per loop iteration (warm caches/predictors)."""
    short = run_program(loop_chain_program(chain, trips=10, num_chains=num_chains,
                                           fp_ops=fp_ops),
                        num_cores=ncores).stats.cycles
    long = run_program(loop_chain_program(chain, trips=40, num_chains=num_chains,
                                          fp_ops=fp_ops),
                       num_cores=ncores).stats.cycles
    return (long - short) / 30


class TestOperandTiming:
    def test_same_core_back_to_back(self):
        """Dependent single-cycle ops issue every ~2 cycles on one core
        (issue + wakeup), measured in the warm steady state."""
        short = _per_iter(chain=12, ncores=1)
        long = _per_iter(chain=36, ncores=1)
        per_op = (long - short) / 24
        assert 1.0 <= per_op <= 2.5, per_op

    def test_inter_core_hop_costs_one_bubble(self):
        """Figure 4b: striping a serial chain across 2 cores (iids
        alternate) adds roughly one cycle per dependence edge."""
        chain = 36
        one = _per_iter(chain, ncores=1)
        two = _per_iter(chain, ncores=2)
        per_edge_penalty = (two - one) / chain
        assert 0.3 <= per_edge_penalty <= 2.0, per_edge_penalty

    def test_issue_width_enforced(self):
        """An issue-bound body (8 chains x 8 ops on one core) runs
        measurably faster when the core's INT issue width is raised —
        i.e. the 2-INT-per-cycle limit really gates."""
        from dataclasses import replace
        from repro.tflex import tflex_config

        prog_narrow = loop_chain_program(chain=8, trips=40, num_chains=8)
        narrow = run_program(prog_narrow, num_cores=1).stats.cycles

        wide_cfg = replace(tflex_config(1),
                           core=replace(tflex_config(1).core, issue_int=4))
        prog_wide = loop_chain_program(chain=8, trips=40, num_chains=8)
        wide = run_program(prog_wide, num_cores=1, cfg=wide_cfg).stats.cycles
        assert wide < narrow * 0.95, (narrow, wide)

    def test_fp_issue_separate_pipe(self):
        """FP work issues through its own slot: adding an FP chain to an
        INT-saturated core costs less than the serial FP time."""
        int_only = _per_iter(chain=15, ncores=1, num_chains=2)
        mixed = _per_iter(chain=15, ncores=1, num_chains=2, fp_ops=8)
        fp_serial = 8 * 4   # 8 dependent FADDs at 4 cycles each
        assert mixed < int_only + fp_serial


class TestMemoryTiming:
    def test_dcache_hit_latency(self):
        """A dependent-load chain pays LSQ search + 2-cycle hits plus
        routing per load (Table 1)."""
        prog = Program(entry="only", name="loads")
        base = prog.add_words([0] * 8)
        b = BlockBuilder("only")
        addr = b.movi(base)
        value = b.load(addr)
        for __ in range(7):
            # Serial loads: each address depends on the previous value.
            addr2 = b.op("ADDI", value, imm=base)
            value = b.load(addr2)
        b.write(10, value)
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())
        proc = run_program(prog, num_cores=1)
        # 8 serial loads at >= 4 cycles each (issue + search + 2-cycle hit).
        assert proc.stats.cycles >= 8 * 4

    def test_l2_miss_pays_dram(self):
        """A cold load far beyond cache capacity pays the 150-cycle DRAM
        latency."""
        prog = Program(entry="only", name="cold")
        cell = prog.alloc_data(8)
        b = BlockBuilder("only")
        b.write(10, b.load(b.movi(cell)))
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())
        proc = run_program(prog, num_cores=1)
        assert proc.stats.cycles >= TFLEX.dram_latency


class TestDeterminism:
    @pytest.mark.parametrize("name", ["conv", "mcf"])
    def test_identical_runs(self, name):
        program, __, __k = BENCHMARKS[name].edge_program()
        a = run_program(program, num_cores=8)
        program2, __, __k2 = BENCHMARKS[name].edge_program()
        b = run_program(program2, num_cores=8)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.blocks_squashed == b.stats.blocks_squashed
        assert a.stats.energy_events == b.stats.energy_events

    def test_multiprogram_deterministic(self):
        def once():
            system = TFlexSystem(TFLEX)
            pa, __, __k = BENCHMARKS["conv"].edge_program()
            pb, __b, __k2 = BENCHMARKS["dither"].edge_program()
            proc_a = system.compose(rectangle(TFLEX, 8, (0, 0)), pa)
            proc_b = system.compose(rectangle(TFLEX, 8, (0, 2)), pb)
            system.run()
            return proc_a.stats.cycles, proc_b.stats.cycles

        assert once() == once()
