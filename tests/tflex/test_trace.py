"""Tests for block-lifecycle tracing and the timeline renderer."""

from repro.tflex import TFLEX, TFlexSystem, rectangle
from repro.tflex.trace import BlockTrace, render_timeline

from tests.sample_programs import ALL_SAMPLES


def traced_run(name="counted_loop", ncores=4):
    system = TFlexSystem(TFLEX)
    program, __ = ALL_SAMPLES[name]()
    proc = system.compose(rectangle(TFLEX, ncores, (0, 0)), program)
    proc.enable_block_trace()
    system.run()
    return proc


class TestBlockTrace:
    def test_every_committed_block_traced(self):
        proc = traced_run()
        assert len(proc.block_trace) == proc.stats.blocks_committed

    def test_milestones_ordered(self):
        proc = traced_run()
        for trace in proc.block_trace:
            assert trace.fetch_start <= trace.fetch_cmd
            assert trace.fetch_cmd <= trace.complete
            assert trace.complete <= trace.commit_start
            assert trace.commit_start <= trace.committed
            assert trace.lifetime > 0

    def test_commits_in_order(self):
        proc = traced_run()
        commit_times = [t.committed for t in proc.block_trace]
        assert commit_times == sorted(commit_times)

    def test_pipelining_visible(self):
        """With 4 cores, successive blocks' lifetimes overlap (fetch of
        block k+1 begins before block k commits)."""
        proc = traced_run(ncores=4)
        traces = sorted(proc.block_trace, key=lambda t: t.gseq)
        overlaps = sum(
            1 for a, b in zip(traces, traces[1:])
            if b.fetch_start < a.committed
        )
        assert overlaps > len(traces) // 2

    def test_disabled_by_default(self):
        system = TFlexSystem(TFLEX)
        program, __ = ALL_SAMPLES["counted_loop"]()
        proc = system.compose(rectangle(TFLEX, 2, (0, 0)), program)
        system.run()
        assert getattr(proc, "block_trace", None) is None


class TestRenderer:
    def test_renders_rows_and_legend(self):
        proc = traced_run()
        text = render_timeline(proc.block_trace)
        assert "legend" in text
        assert text.count("B") >= proc.stats.blocks_committed
        for char in "fxc":
            assert char in text

    def test_empty_trace(self):
        assert "no blocks" in render_timeline([])

    def test_width_respected(self):
        proc = traced_run()
        text = render_timeline(proc.block_trace, width=40)
        for line in text.splitlines()[1:-1]:
            assert len(line) <= 40 + 20   # row label + chart

    @staticmethod
    def _trace(gseq=0, fetch_start=0, fetch_cmd=4, complete=8,
               commit_start=8, committed=10, label="blk"):
        return BlockTrace(gseq=gseq, label=label, owner_index=0,
                          fetch_start=fetch_start, fetch_cmd=fetch_cmd,
                          complete=complete, commit_start=commit_start,
                          committed=committed)

    def test_commit_never_hides_execute(self):
        """When scaling squeezes commit into execute's column, the
        commit glyph spills right instead of overwriting (regression:
        the commit used to be drawn last and always won the cell)."""
        squeezed = self._trace(fetch_start=0, fetch_cmd=100, complete=110,
                               commit_start=110, committed=200)
        long = self._trace(gseq=1, fetch_start=0, fetch_cmd=400,
                           complete=900, commit_start=900, committed=1000)
        text = render_timeline([squeezed, long], width=11)
        row = text.splitlines()[1]
        chart = row.split("blk")[-1]
        assert "x" in chart and "c" in chart and "f" in chart
        assert chart.index("x") < chart.index("c")

    def test_fully_squeezed_row_shows_phase_order(self):
        """All three phases in one column still render f, x, c left to
        right (deterministic spill), never a lone commit glyph."""
        tiny = self._trace(fetch_start=0, fetch_cmd=1, complete=2,
                           commit_start=2, committed=3)
        long = self._trace(gseq=1, fetch_start=0, fetch_cmd=400,
                           complete=900, commit_start=900, committed=1000)
        text = render_timeline([tiny, long], width=10)
        chart = text.splitlines()[1]
        assert chart.index("f") < chart.index("x") < chart.index("c")

    def test_tiny_width_clamped(self):
        """width < 2 used to degenerate (zero scale, divide-into-nothing
        columns); it is now clamped and still renders every phase."""
        for width in (-5, 0, 1):
            text = render_timeline([self._trace()], width=width)
            assert "legend" in text
            row = text.splitlines()[1]
            assert "f" in row or "x" in row or "c" in row

    def test_deterministic(self):
        traces = [self._trace(gseq=i, fetch_start=i, fetch_cmd=i + 3,
                              complete=i + 9, commit_start=i + 9,
                              committed=i + 12) for i in range(6)]
        assert render_timeline(traces) == render_timeline(list(reversed(traces)))
