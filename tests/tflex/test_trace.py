"""Tests for block-lifecycle tracing and the timeline renderer."""

from repro.tflex import TFLEX, TFlexSystem, rectangle
from repro.tflex.trace import BlockTrace, render_timeline

from tests.sample_programs import ALL_SAMPLES


def traced_run(name="counted_loop", ncores=4):
    system = TFlexSystem(TFLEX)
    program, __ = ALL_SAMPLES[name]()
    proc = system.compose(rectangle(TFLEX, ncores, (0, 0)), program)
    proc.enable_block_trace()
    system.run()
    return proc


class TestBlockTrace:
    def test_every_committed_block_traced(self):
        proc = traced_run()
        assert len(proc.block_trace) == proc.stats.blocks_committed

    def test_milestones_ordered(self):
        proc = traced_run()
        for trace in proc.block_trace:
            assert trace.fetch_start <= trace.fetch_cmd
            assert trace.fetch_cmd <= trace.complete
            assert trace.complete <= trace.commit_start
            assert trace.commit_start <= trace.committed
            assert trace.lifetime > 0

    def test_commits_in_order(self):
        proc = traced_run()
        commit_times = [t.committed for t in proc.block_trace]
        assert commit_times == sorted(commit_times)

    def test_pipelining_visible(self):
        """With 4 cores, successive blocks' lifetimes overlap (fetch of
        block k+1 begins before block k commits)."""
        proc = traced_run(ncores=4)
        traces = sorted(proc.block_trace, key=lambda t: t.gseq)
        overlaps = sum(
            1 for a, b in zip(traces, traces[1:])
            if b.fetch_start < a.committed
        )
        assert overlaps > len(traces) // 2

    def test_disabled_by_default(self):
        system = TFlexSystem(TFLEX)
        program, __ = ALL_SAMPLES["counted_loop"]()
        proc = system.compose(rectangle(TFLEX, 2, (0, 0)), program)
        system.run()
        assert getattr(proc, "block_trace", None) is None


class TestRenderer:
    def test_renders_rows_and_legend(self):
        proc = traced_run()
        text = render_timeline(proc.block_trace)
        assert "legend" in text
        assert text.count("B") >= proc.stats.blocks_committed
        for char in "fxc":
            assert char in text

    def test_empty_trace(self):
        assert "no blocks" in render_timeline([])

    def test_width_respected(self):
        proc = traced_run()
        text = render_timeline(proc.block_trace, width=40)
        for line in text.splitlines()[1:-1]:
            assert len(line) <= 40 + 20   # row label + chart
