"""SMT-style core sharing: several threads on one composition.

The paper's TRIPS baseline offers SMT (4 threads, 256 instructions
each) as its only granularity flexibility; TFlex generalizes the
trade-off by composing instead.  These tests check that shared-core
threads stay architecturally correct while contending for issue slots,
caches, and LSQ capacity."""

import pytest

from repro.tflex import TFLEX, TFlexSystem, rectangle
from repro.workloads import BENCHMARKS, verify_edge_run

from tests.sample_programs import ALL_SAMPLES, ArchState


def test_two_threads_share_cores_correctly():
    system = TFlexSystem(TFLEX)
    prog_a, check_a = ALL_SAMPLES["vector_sum"]()
    prog_b, check_b = ALL_SAMPLES["fp_kernel"]()
    procs = system.compose_smt(rectangle(TFLEX, 8, (0, 0)), [prog_a, prog_b])
    system.run()
    check_a(ArchState(regs=procs[0].regs, mem=procs[0].memory))
    check_b(ArchState(regs=procs[1].regs, mem=procs[1].memory))


def test_four_threads_like_trips_smt():
    """Four threads on one 16-core composition (the TRIPS SMT shape)."""
    system = TFlexSystem(TFLEX)
    programs = []
    checks = []
    for name in ("counted_loop", "vector_sum", "predicated_classify",
                 "store_load_forward"):
        program, check = ALL_SAMPLES[name]()
        programs.append(program)
        checks.append(check)
    procs = system.compose_smt(rectangle(TFLEX, 16, (0, 0)), programs)
    assert all(p.max_inflight == 4 for p in procs)   # frames split 16/4
    system.run()
    for proc, check in zip(procs, checks):
        check(ArchState(regs=proc.regs, mem=proc.memory))


def test_smt_threads_interfere():
    """A thread sharing its cores must be no faster than running alone
    on the same composition."""
    prog_alone, __ , kernel = BENCHMARKS["conv"].edge_program()
    system = TFlexSystem(TFLEX)
    alone = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_alone)
    system.run()

    system2 = TFlexSystem(TFLEX)
    prog_a, expected_a, kernel_a = BENCHMARKS["conv"].edge_program()
    prog_b, __e, __k = BENCHMARKS["mcf"].edge_program()
    shared = system2.compose_smt(rectangle(TFLEX, 8, (0, 0)), [prog_a, prog_b])
    system2.run()
    verify_edge_run(kernel_a, shared[0].memory, expected_a)
    assert shared[0].stats.cycles >= alone.stats.cycles


def test_unshared_composition_still_exclusive():
    system = TFlexSystem(TFLEX)
    prog_a, __ = ALL_SAMPLES["counted_loop"]()
    prog_b, __b = ALL_SAMPLES["counted_loop"]()
    system.compose(rectangle(TFLEX, 8, (0, 0)), prog_a)
    with pytest.raises(RuntimeError, match="already belongs"):
        system.compose(rectangle(TFLEX, 8, (0, 0)), prog_b)


def test_smt_release_frees_cores_individually():
    system = TFlexSystem(TFLEX)
    prog_a, check_a = ALL_SAMPLES["counted_loop"]()
    prog_b, check_b = ALL_SAMPLES["vector_sum"]()
    procs = system.compose_smt(rectangle(TFLEX, 4, (0, 0)), [prog_a, prog_b])
    system.run()
    system.decompose(procs[0])
    # Cores still held by the second thread.
    assert system.cores[0].procs == [procs[1]]
    system.decompose(procs[1])
    assert system.cores[0].procs == []

    # Fully freed: a new exclusive composition may take them.
    prog_c, check_c = ALL_SAMPLES["fp_kernel"]()
    proc_c = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_c)
    system.run()
    check_c(ArchState(regs=proc_c.regs, mem=proc_c.memory))


def test_compose_smt_requires_programs():
    system = TFlexSystem(TFLEX)
    with pytest.raises(ValueError):
        system.compose_smt(rectangle(TFLEX, 4, (0, 0)), [])
