"""Integration tests: the cycle-level simulator must preserve the
golden model's architectural semantics at every composition size."""

import pytest

from repro.isa import Interpreter
from repro.tflex import (
    TFLEX,
    SimulationDeadlock,
    TFlexSystem,
    rectangle,
    run_program,
    trips_config,
)

from tests.sample_programs import ALL_SAMPLES, ArchState


CORE_COUNTS = [1, 2, 4, 8, 16, 32]


@pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
@pytest.mark.parametrize("ncores", CORE_COUNTS)
def test_matches_golden_model(name, ncores):
    program, check = ALL_SAMPLES[name]()
    proc = run_program(program, num_cores=ncores)
    check(ArchState(regs=proc.regs, mem=proc.memory))


@pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
def test_same_commit_path_as_interpreter(name):
    """Committed block count must equal the golden model's block count
    (speculation may fetch more, but commits exactly the true path)."""
    program, __ = ALL_SAMPLES[name]()
    golden = Interpreter(program).run()
    proc = run_program(program, num_cores=4)
    assert proc.stats.blocks_committed == golden.blocks_executed


@pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
def test_trips_mode_matches_golden_model(name):
    program, check = ALL_SAMPLES[name]()
    system = TFlexSystem(trips_config())
    proc = system.compose(list(range(16)), program)
    system.run()
    check(ArchState(regs=proc.regs, mem=proc.memory))


def test_registers_match_interpreter_exactly():
    program, __ = ALL_SAMPLES["predicated_classify"]()
    interp = Interpreter(program)
    interp.run()
    proc = run_program(program, num_cores=8)
    assert proc.regs == interp.regs


def test_stats_sanity():
    program, __ = ALL_SAMPLES["vector_sum"]()
    proc = run_program(program, num_cores=4)
    stats = proc.stats
    assert stats.cycles > 0
    assert stats.blocks_committed > 0
    assert stats.blocks_fetched >= stats.blocks_committed
    assert stats.blocks_fetched == stats.blocks_committed + stats.blocks_squashed
    assert stats.insts_committed > 0
    assert 0 < stats.ipc < 16
    assert stats.predictions >= stats.predictions_correct
    assert stats.loads_executed > 0
    assert stats.stores_committed == 1
    assert "cycles" in stats.summary()


def test_single_core_never_speculates():
    program, __ = ALL_SAMPLES["counted_loop"]()
    proc = run_program(program, num_cores=1)
    assert proc.stats.predictions == 0
    assert proc.stats.blocks_squashed == 0
    assert proc.stats.mispredictions == 0


def test_speculative_configs_predict():
    program, __ = ALL_SAMPLES["counted_loop"]()
    proc = run_program(program, num_cores=4)
    assert proc.stats.predictions > 0


def test_fetch_latency_breakdown_recorded():
    program, __ = ALL_SAMPLES["vector_sum"]()
    proc = run_program(program, num_cores=8)
    means = proc.stats.fetch_latency.means()
    # Paper figure 9a: prediction (3) + tag (1) + pipeline (3) are the
    # seven-cycle constant part.
    assert means["prediction"] == pytest.approx(3, abs=0.5)
    assert means["tag"] == 1
    assert means["pipeline"] == 3
    assert means["distribution"] > 0
    assert means["dispatch"] > 0
    commit = proc.stats.commit_latency.means()
    assert commit["handshake"] > 0
    assert commit["state_update"] >= 0


def test_one_core_has_no_prediction_latency():
    """Paper: the one-core configuration lacks speculation and thus
    incurs no prediction latency."""
    program, __ = ALL_SAMPLES["counted_loop"]()
    proc = run_program(program, num_cores=1)
    assert proc.stats.fetch_latency.mean("prediction") == 0
    assert proc.stats.fetch_latency.mean("handoff") == 0


def test_ideal_handshake_removes_protocol_latency():
    from dataclasses import replace
    from repro.tflex import tflex_config

    program, check = ALL_SAMPLES["vector_sum"]()
    cfg = replace(tflex_config(8), ideal_handshake=True)
    proc = run_program(program, num_cores=8, cfg=cfg)
    check(ArchState(regs=proc.regs, mem=proc.memory))
    means = proc.stats.fetch_latency.means()
    assert means["handoff"] == 0
    assert means["distribution"] == 0
    assert proc.stats.commit_latency.mean("handshake") == 0


def test_ideal_handshake_not_materially_slower():
    from dataclasses import replace
    from repro.tflex import tflex_config

    program, __ = ALL_SAMPLES["vector_sum"]()
    real = run_program(program, num_cores=8).stats.cycles
    cfg = replace(tflex_config(8), ideal_handshake=True)
    ideal = run_program(program, num_cores=8, cfg=cfg).stats.cycles
    # Small regressions are legitimate second-order speculation-timing
    # effects (different wrong-path interleavings).
    assert ideal <= real * 1.1


def test_deadlock_reported_with_diagnostics():
    """An infinite loop exhausts the cycle budget with a state dump."""
    from repro.isa import BlockBuilder, Program

    prog = Program(entry="spin", name="spin")
    b = BlockBuilder("spin")
    b.branch("BRO", target="spin", exit_id=0)
    prog.add_block(b.build())
    system = TFlexSystem(TFLEX)
    system.compose(rectangle(TFLEX, 2, (0, 0)), prog)
    with pytest.raises(SimulationDeadlock, match="budget"):
        system.run(max_cycles=5000)


class TestMultiprogramming:
    def test_two_threads_disjoint_cores(self):
        system = TFlexSystem(TFLEX)
        prog_a, check_a = ALL_SAMPLES["vector_sum"]()
        prog_b, check_b = ALL_SAMPLES["fp_kernel"]()
        proc_a = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_a, name="A")
        proc_b = system.compose(rectangle(TFLEX, 8, (0, 2)), prog_b, name="B")
        system.run()
        check_a(ArchState(regs=proc_a.regs, mem=proc_a.memory))
        check_b(ArchState(regs=proc_b.regs, mem=proc_b.memory))

    def test_overlapping_compositions_rejected(self):
        system = TFlexSystem(TFLEX)
        prog_a, __ = ALL_SAMPLES["counted_loop"]()
        prog_b, __ = ALL_SAMPLES["counted_loop"]()
        system.compose(rectangle(TFLEX, 8, (0, 0)), prog_a)
        with pytest.raises(RuntimeError, match="already belongs"):
            system.compose(rectangle(TFLEX, 4, (0, 1)), prog_b)

    def test_recomposition_after_decompose(self):
        """Paper section 4.7: composition changes need no L1 flush; the
        directory redirects stale lines."""
        system = TFlexSystem(TFLEX)
        prog_a, check_a = ALL_SAMPLES["vector_sum"]()
        proc_a = system.compose(rectangle(TFLEX, 4, (0, 0)), prog_a)
        system.run()
        check_a(ArchState(regs=proc_a.regs, mem=proc_a.memory))
        system.decompose(proc_a)

        prog_b, check_b = ALL_SAMPLES["predicated_classify"]()
        proc_b = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_b)
        system.run()
        check_b(ArchState(regs=proc_b.regs, mem=proc_b.memory))

    def test_decompose_requires_halt(self):
        system = TFlexSystem(TFLEX)
        prog, __ = ALL_SAMPLES["counted_loop"]()
        proc = system.compose(rectangle(TFLEX, 4, (0, 0)), prog)
        with pytest.raises(RuntimeError, match="still running"):
            system.decompose(proc)

    def test_shared_l2_contention_visible(self):
        """Two co-running threads must be no faster than each alone."""
        prog_a, __ = ALL_SAMPLES["vector_sum"]()
        alone = run_program(prog_a, num_cores=8).stats.cycles

        system = TFlexSystem(TFLEX)
        prog_a2, __ = ALL_SAMPLES["vector_sum"]()
        prog_b, __ = ALL_SAMPLES["vector_sum"]()
        proc_a = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_a2)
        system.compose(rectangle(TFLEX, 8, (0, 2)), prog_b)
        system.run()
        assert proc_a.stats.cycles >= alone * 0.9   # allow small placement noise
