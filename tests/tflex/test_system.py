"""System-level tests: chip wiring, shared resources, stats plumbing."""

import pytest

from repro.tflex import (
    TFLEX,
    SimulationDeadlock,
    TFlexSystem,
    rectangle,
    run_program,
    tflex_config,
)
from repro.workloads import BENCHMARKS

from tests.sample_programs import ALL_SAMPLES, ArchState


class TestWiring:
    def test_chip_inventory(self):
        system = TFlexSystem(TFLEX)
        assert len(system.cores) == 32
        assert len(system.l2.banks) == 32
        assert system.topology.num_nodes == 32
        assert system.opn.channels == 2
        assert system.control.channels == 2

    def test_l1_lookup_reaches_core_dcache(self):
        system = TFlexSystem(TFLEX)
        assert system.l2.l1_banks(5) is system.cores[5].dcache

    def test_cores_start_free(self):
        system = TFlexSystem(TFLEX)
        assert all(not c.procs for c in system.cores)


class TestSharedResources:
    def test_network_stats_accumulate(self):
        program, __, __k = BENCHMARKS["conv"].edge_program()
        system = TFlexSystem(tflex_config(8))
        system.compose(rectangle(tflex_config(8), 8), program)
        system.run()
        assert system.opn.stats.messages > 0
        assert system.opn.stats.hops >= system.opn.stats.messages
        assert system.opn.average_latency >= 1.0
        assert system.control.stats.messages > 0

    def test_dram_shared_between_processors(self):
        system = TFlexSystem(TFLEX)
        pa, __, __k = BENCHMARKS["conv"].edge_program()
        pb, __b, __k2 = BENCHMARKS["mgrid"].edge_program()
        system.compose(rectangle(TFLEX, 8, (0, 0)), pa)
        system.compose(rectangle(TFLEX, 8, (0, 2)), pb)
        system.run()
        assert system.dram.stats.requests > 0

    def test_energy_events_populated(self):
        program, __, __k = BENCHMARKS["dither"].edge_program()
        proc = run_program(program, num_cores=4)
        events = proc.stats.energy_events
        for key in ("alu_op", "icache_access", "dcache_read", "lsq_search",
                    "regfile_read", "regfile_write", "predictor_access",
                    "opn_hop", "window_write"):
            assert events[key] > 0, key

    def test_avg_inflight_bounded(self):
        program, __, __k = BENCHMARKS["conv"].edge_program()
        for ncores in (1, 8):
            proc = run_program(program, num_cores=ncores)
            assert 0 < proc.stats.avg_inflight_blocks <= proc.max_inflight


class TestErrorsAndEdges:
    def test_empty_composition_rejected(self):
        system = TFlexSystem(TFLEX)
        program, __ = ALL_SAMPLES["counted_loop"]()
        with pytest.raises(ValueError):
            system.compose([], program)

    def test_duplicate_cores_rejected(self):
        system = TFlexSystem(TFLEX)
        program, __ = ALL_SAMPLES["counted_loop"]()
        with pytest.raises(ValueError):
            system.compose([0, 0, 1], program)

    def test_run_program_validates_core_count(self):
        program, __ = ALL_SAMPLES["counted_loop"]()
        with pytest.raises(ValueError):
            run_program(program, num_cores=3)

    def test_noncontiguous_composition_allowed(self):
        """Any core set composes; rectangles are a placement policy,
        not an architectural requirement."""
        system = TFlexSystem(TFLEX)
        program, check = ALL_SAMPLES["vector_sum"]()
        proc = system.compose([0, 3, 12, 31], program)
        system.run()
        check(ArchState(regs=proc.regs, mem=proc.memory))

    def test_queue_drain_without_halt_is_deadlock(self):
        """A processor that never even starts (no events) is reported."""
        system = TFlexSystem(TFLEX)
        program, __ = ALL_SAMPLES["counted_loop"]()
        proc = system.compose(rectangle(TFLEX, 2, (0, 0)), program)
        proc.halted = False
        proc.next_gseq = 1   # pretend it started; no events scheduled
        proc.started = True
        with pytest.raises(SimulationDeadlock):
            system.run()
