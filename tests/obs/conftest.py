"""Keep the process-global observability bundle hermetic per test."""

import pytest

import repro.obs


@pytest.fixture(autouse=True)
def _reset_obs():
    repro.obs.reset()
    yield
    repro.obs.reset()
