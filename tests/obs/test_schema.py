"""Registry drift tests for :mod:`repro.obs.schema`.

Two directions, per docs/ANALYSIS.md:

* registry ⊆ docs — every registered name must appear literally in
  docs/OBSERVABILITY.md (the static REP403 pass enforces the same thing
  at lint time; this keeps the check in the plain test lane too);
* registry ⊇ runtime — every name actually emitted by a representative
  fast-lane workload (detailed run + sampled run, metrics on) must be
  registered, which catches dynamically formatted names the AST pass
  cannot see (e.g. the ``tflex.<field>`` scalar flush).
"""

from pathlib import Path

import repro.obs
from repro.obs import Observability, RingBufferSink
from repro.obs.schema import (
    EVENT_NAMES,
    METRIC_NAMES,
    PHASE_NAMES,
    TFLEX_SCALARS,
)

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


class TestRegistryMatchesDocs:
    def test_every_event_is_documented(self):
        text = DOC.read_text(encoding="utf-8")
        missing = sorted(n for n in EVENT_NAMES if n not in text)
        assert not missing, f"events not in docs/OBSERVABILITY.md: {missing}"

    def test_every_metric_is_documented(self):
        text = DOC.read_text(encoding="utf-8")
        missing = sorted(n for n in METRIC_NAMES if n not in text)
        assert not missing, f"metrics not in docs/OBSERVABILITY.md: {missing}"

    def test_tflex_scalars_mirror_procstats(self):
        from repro.tflex.stats import ProcStats

        assert tuple(ProcStats._SCALAR_FIELDS) == TFLEX_SCALARS


class TestRuntimeNamesAreRegistered:
    def _run_detailed(self, obs):
        from repro.tflex import TFlexSystem, rectangle, tflex_config
        from repro.workloads import BENCHMARKS

        program, __, __k = BENCHMARKS["tblook"].edge_program(1)
        cfg = tflex_config(2)
        system = TFlexSystem(cfg, obs=obs)
        system.compose(rectangle(cfg, 2), program)
        system.run()

    def _run_sampled(self):
        from repro.exec import JobSpec
        from repro.harness.runner import simulate_spec

        spec = JobSpec.edge("tblook", ncores=2,
                            sampling={"ff_blocks": 64, "window_blocks": 16,
                                      "warmup_blocks": 4})
        simulate_spec(spec)

    def test_emitted_names_are_subset_of_registry(self):
        obs = repro.obs.configure(metrics=True)
        ring = obs.bus.attach(RingBufferSink())
        obs.profiler.enabled = True
        self._run_detailed(obs)
        self._run_sampled()            # picks up the global bundle
        ring.events.append(obs.snapshot_event())

        kinds = {event["kind"] for event in ring.events}
        assert kinds - EVENT_NAMES == set(), (
            f"unregistered event kinds: {sorted(kinds - EVENT_NAMES)}")
        # A meaningful workload: both the detailed and sampled paths ran.
        assert "block.commit" in kinds
        assert "sample.window" in kinds

        snap = obs.metrics.snapshot()
        names = {key.split("{", 1)[0]
                 for group in snap.values() for key in group}
        assert names - METRIC_NAMES == set(), (
            f"unregistered metric names: {sorted(names - METRIC_NAMES)}")
        assert {f"tflex.{f}" for f in TFLEX_SCALARS} & names

        phases = set(obs.profiler.snapshot())
        assert phases - PHASE_NAMES == set(), (
            f"unregistered profiler phases: {sorted(phases - PHASE_NAMES)}")
