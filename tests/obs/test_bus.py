"""TraceBus and sinks: delivery, forking, JSONL output."""

import json

import repro.obs as obs
from repro.obs import (
    CallbackSink,
    JsonlSink,
    NullSink,
    Observability,
    RingBufferSink,
    TraceBus,
)


class TestBus:
    def test_inactive_without_sinks(self):
        bus = TraceBus()
        assert not bus.active
        bus.emit("x", a=1)       # no sink: silently dropped

    def test_delivery_to_all_sinks(self):
        bus = TraceBus()
        ring1 = bus.attach(RingBufferSink())
        ring2 = bus.attach(RingBufferSink())
        bus.emit("block.commit", gseq=3)
        assert list(ring1.events) == [{"kind": "block.commit", "gseq": 3}]
        assert list(ring2.events) == list(ring1.events)

    def test_detach(self):
        bus = TraceBus()
        ring = bus.attach(RingBufferSink())
        bus.detach(ring)
        assert not bus.active
        bus.emit("x")
        assert len(ring) == 0

    def test_fork_reaches_parent_sinks(self):
        parent = TraceBus()
        parent_ring = parent.attach(RingBufferSink())
        child = parent.fork()
        child_ring = child.attach(RingBufferSink())
        child.emit("scoped", n=1)
        parent.emit("global", n=2)
        assert [e["kind"] for e in parent_ring.events] == ["scoped", "global"]
        # The fork's private sink sees only the fork's own events.
        assert [e["kind"] for e in child_ring.events] == ["scoped"]

    def test_fork_active_follows_parent(self):
        parent = TraceBus()
        child = parent.fork()
        assert not child.active
        parent.attach(RingBufferSink())
        assert child.active


class TestSinks:
    def test_ring_capacity(self):
        ring = RingBufferSink(capacity=2)
        for i in range(5):
            ring.emit({"kind": "e", "i": i})
        assert [e["i"] for e in ring.events] == [3, 4]

    def test_ring_kind_filter(self):
        ring = RingBufferSink(kinds=("keep",))
        ring.emit({"kind": "keep"})
        ring.emit({"kind": "drop"})
        assert len(ring) == 1
        assert ring.of_kind("keep") == [{"kind": "keep"}]

    def test_callback_filtering(self):
        seen = []
        sink = CallbackSink(seen.append, kinds=("a",))
        sink.emit({"kind": "a"})
        sink.emit({"kind": "b"})
        assert seen == [{"kind": "a"}]

    def test_null_sink(self):
        NullSink().emit({"kind": "x"})   # nothing to assert: no effect

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"kind": "a", "n": 1})
        sink.emit({"kind": "b", "s": "text"})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"kind": "a", "n": 1}, {"kind": "b", "s": "text"}]
        assert sink.events_written == 2


class TestObservability:
    def test_inactive_by_default(self):
        assert not Observability().active

    def test_active_with_sink_or_metrics_or_profiler(self):
        o = Observability()
        o.bus.attach(RingBufferSink())
        assert o.active
        assert Observability(metrics_enabled=True).active
        o2 = Observability()
        o2.profiler.enabled = True
        assert o2.active

    def test_fork_shares_registry(self):
        parent = Observability(metrics_enabled=True)
        ring = RingBufferSink()
        child = parent.fork(ring)
        child.metrics.inc("x")
        assert parent.metrics.counter("x") == 1
        child.emit("e")
        assert len(ring) == 1

    def test_snapshot_event_is_json_safe(self):
        o = Observability(metrics_enabled=True)
        o.metrics.inc("c", proc="p0")
        event = o.snapshot_event()
        assert event["kind"] == "metrics.snapshot"
        json.dumps(event)


class TestGlobal:
    def test_default_is_inactive(self):
        assert not obs.current().active

    def test_configure_trace_and_reset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configured = obs.configure(trace_path=path, metrics=True)
        assert obs.current() is configured
        assert configured.active
        configured.emit("hello", n=1)
        obs.reset()                       # closes the sink
        assert not obs.current().active
        assert json.loads(path.read_text()) == {"kind": "hello", "n": 1}

    def test_configure_metrics_only(self):
        configured = obs.configure(metrics=True)
        assert configured.active
        assert not configured.bus.active
