"""PhaseProfiler: exclusive accounting, disabled path, rendering."""

from repro.obs import PhaseProfiler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDisabled:
    def test_noop_context_manager(self):
        prof = PhaseProfiler(enabled=False)
        with prof.phase("fetch"):
            pass
        assert prof.total_seconds == 0.0
        assert prof.snapshot() == {}
        # The disabled path hands out one shared object (no allocation).
        assert prof.phase("a") is prof.phase("b")


class TestAccounting:
    def test_simple_phase(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("fetch"):
            clock.advance(2.0)
        assert prof.seconds("fetch") == 2.0
        assert prof.calls("fetch") == 1

    def test_nested_time_is_exclusive(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("issue"):
            clock.advance(1.0)
            with prof.phase("execute"):
                clock.advance(3.0)
            clock.advance(0.5)
        assert prof.seconds("execute") == 3.0
        assert prof.seconds("issue") == 1.5      # inner time not double-charged
        assert prof.total_seconds == 4.5

    def test_reentrant_same_phase(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("noc"):
            clock.advance(1.0)
            with prof.phase("noc"):
                clock.advance(1.0)
        assert prof.seconds("noc") == 2.0
        assert prof.calls("noc") == 2

    def test_accumulates_across_calls(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        for _ in range(3):
            with prof.phase("lsq"):
                clock.advance(0.5)
        assert prof.seconds("lsq") == 1.5
        assert prof.calls("lsq") == 3

    def test_clear(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("x"):
            clock.advance(1.0)
        prof.clear()
        assert prof.snapshot() == {}


class TestRendering:
    def test_table_sorted_by_time(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("cold"):
            clock.advance(1.0)
        with prof.phase("hot"):
            clock.advance(9.0)
        table = prof.table()
        assert table.index("hot") < table.index("cold")
        assert "TOTAL" in table
        assert "90.0%" in table

    def test_empty_table(self):
        assert "no phases" in PhaseProfiler().table()

    def test_snapshot_shape(self):
        clock = FakeClock()
        prof = PhaseProfiler(enabled=True, clock=clock)
        with prof.phase("fetch"):
            clock.advance(2.0)
        assert prof.snapshot() == {"fetch": {"seconds": 2.0, "calls": 1}}
