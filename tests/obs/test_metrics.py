"""MetricsRegistry: series identity, recording, snapshot export."""

from repro.obs import MetricsRegistry, format_series


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("noc.messages")
        reg.inc("noc.messages", 4)
        assert reg.counter("noc.messages") == 5

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.inc("noc.messages", 2, net="opn")
        reg.inc("noc.messages", 3, net="control")
        assert reg.counter("noc.messages", net="opn") == 2
        assert reg.counter("noc.messages", net="control") == 3
        assert reg.counter_total("noc.messages") == 5

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a=1, b=2)
        reg.inc("x", b=2, a=1)
        assert reg.counter("x", b=2, a=1) == 2
        assert len(reg) == 1

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0


class TestGauges:
    def test_last_value_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("inflight", 3)
        reg.set_gauge("inflight", 7)
        assert reg.gauge("inflight") == 7

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("nope") is None


class TestHistograms:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        for value in (1, 2, 3, 10):
            reg.observe("duration", value)
        hist = reg.histogram("duration")
        assert hist.count == 4
        assert hist.total == 16
        assert hist.min == 1
        assert hist.max == 10
        assert hist.mean == 4.0

    def test_bucket_placement(self):
        reg = MetricsRegistry()
        reg.observe("d", 1)      # <= 2**0 -> bucket 0
        reg.observe("d", 2)      # <= 2**1 -> bucket 1
        reg.observe("d", 3)      # <= 2**2 -> bucket 2
        reg.observe("d", 1e30)   # overflow slot
        buckets = reg.histogram("d").buckets
        assert buckets[0] == 1
        assert buckets[1] == 1
        assert buckets[2] == 1
        assert buckets[-1] == 1


class TestExport:
    def test_format_series(self):
        assert format_series("a.b", ()) == "a.b"
        assert format_series("a.b", (("k", "v"), ("n", 2))) == "a.b{k=v,n=2}"

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 2, status="ok")
        reg.set_gauge("load", 0.5)
        reg.observe("dur", 4.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"jobs{status=ok}": 2}
        assert snap["gauges"] == {"load": 0.5}
        assert snap["histograms"]["dur"]["count"] == 1
        import json
        json.dumps(snap)     # JSON-safe all the way down

    def test_render_and_series_listing(self):
        reg = MetricsRegistry()
        reg.inc("b.z")
        reg.inc("a.y")
        assert list(reg.series()) == ["a.y", "b.z"]
        assert "a.y" in reg.render()

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.clear()
        assert len(reg) == 0
        assert reg.render() == "(no metrics recorded)"
