"""Observability wired through the simulator, exec engine, and CLI.

The acceptance check lives here: ``repro fig9 --trace-out`` must emit
schema-valid JSONL whose final ``metrics.snapshot`` cross-checks against
the :class:`ProcStats` figure-9 breakdowns of the very same runs.
"""

import json
from collections import Counter

import repro.obs
from repro.exec import JobSpec, ParallelExecutor, ResultStore
from repro.obs import Observability, RingBufferSink
from repro.tflex import TFlexSystem, rectangle, tflex_config
from repro.workloads import BENCHMARKS

BENCH = "tblook"     # smallest/fastest benchmark in the suite


def _run_bench(name=BENCH, ncores=2, obs=None):
    program, __, __k = BENCHMARKS[name].edge_program(1)
    cfg = tflex_config(ncores)
    system = TFlexSystem(cfg, obs=obs)
    proc = system.compose(rectangle(cfg, ncores), program)
    system.run()
    return proc


class TestSimulatorEvents:
    def test_block_events_match_stats(self):
        obs = Observability()
        ring = obs.bus.attach(RingBufferSink())
        proc = _run_bench(ncores=4, obs=obs)
        commits = ring.of_kind("block.commit")
        assert len(commits) == proc.stats.blocks_committed
        assert all(e["proc"] == proc.name for e in commits)
        assert len(ring.of_kind("block.fetch")) == proc.stats.blocks_fetched
        halts = ring.of_kind("proc.halt")
        assert [h["cycles"] for h in halts] == [proc.stats.cycles]
        assert ring.of_kind("sim.done")
        for e in commits:
            assert (e["fetch_start"] <= e["fetch_cmd"] <= e["complete"]
                    <= e["commit_start"] <= e["committed"])

    def test_squash_events_account_for_every_squashed_block(self):
        obs = Observability()
        ring = obs.bus.attach(RingBufferSink(kinds=("block.squash",)))
        proc = _run_bench("rspeed", ncores=8, obs=obs)
        assert proc.stats.blocks_squashed > 0
        assert sum(e["count"] for e in ring.events) == proc.stats.blocks_squashed

    def test_mispredict_events(self):
        obs = Observability()
        ring = obs.bus.attach(RingBufferSink(kinds=("block.mispredict",)))
        proc = _run_bench("rspeed", ncores=8, obs=obs)
        assert len(ring) == proc.stats.mispredictions
        for e in ring.events:
            assert e["predicted"] != e["actual"]

    def test_halt_flushes_procstats_to_metrics(self):
        obs = Observability(metrics_enabled=True)
        proc = _run_bench(ncores=2, obs=obs)
        m = obs.metrics
        name = proc.name
        assert m.counter("tflex.blocks_committed",
                         proc=name) == proc.stats.blocks_committed
        assert m.counter("tflex.cycles", proc=name) == proc.stats.cycles
        for comp, cycles in proc.stats.fetch_latency.components.items():
            assert m.counter("tflex.fetch_latency_cycles", component=comp,
                             proc=name) == cycles
        for comp, cycles in proc.stats.commit_latency.components.items():
            assert m.counter("tflex.commit_latency_cycles", component=comp,
                             proc=name) == cycles
        # Network totals land as gauges at the end of the run.
        opn = proc.system.opn.stats
        assert m.gauge("noc.messages", net="opn") == opn.messages
        assert m.gauge("noc.contention_cycles",
                       net="opn") == opn.contention_cycles

    def test_global_bundle_is_picked_up_by_default(self):
        ring = repro.obs.current().bus.attach(
            RingBufferSink(kinds=("block.commit",)))
        proc = _run_bench(ncores=2)     # no explicit obs handed over
        assert len(ring) == proc.stats.blocks_committed

    def test_inactive_obs_emits_nothing_and_records_nothing(self):
        obs = Observability()
        proc = _run_bench(ncores=2, obs=obs)
        assert proc.stats.blocks_committed > 0
        assert len(obs.metrics) == 0
        assert obs.profiler.snapshot() == {}


class TestBlockTraceViaBus:
    def test_block_trace_works_with_global_obs_inactive(self):
        program, __, __k = BENCHMARKS[BENCH].edge_program(1)
        cfg = tflex_config(2)
        system = TFlexSystem(cfg)
        proc = system.compose(rectangle(cfg, 2), program)
        proc.enable_block_trace()
        system.run()
        assert len(proc.block_trace) == proc.stats.blocks_committed
        gseqs = [t.gseq for t in proc.block_trace]
        assert gseqs == sorted(gseqs)

    def test_private_trace_also_reaches_global_sinks(self):
        ring = repro.obs.current().bus.attach(
            RingBufferSink(kinds=("block.commit",)))
        program, __, __k = BENCHMARKS[BENCH].edge_program(1)
        cfg = tflex_config(2)
        system = TFlexSystem(cfg)
        proc = system.compose(rectangle(cfg, 2), program)
        proc.enable_block_trace()
        system.run()
        assert [t.gseq for t in proc.block_trace] == \
               [e["gseq"] for e in ring.events]


class TestProfiler:
    def test_phases_cover_the_pipeline(self):
        obs = Observability()
        obs.profiler.enabled = True
        _run_bench("rspeed", ncores=8, obs=obs)
        phases = set(obs.profiler.snapshot())
        assert {"fetch", "issue", "execute", "commit", "noc", "lsq"} <= phases
        assert obs.profiler.total_seconds > 0.0


def _payload_worker(spec):
    return {"bench": spec.bench, "scale": spec.scale}


def _failing_worker(spec):
    raise RuntimeError("boom")


class TestExecutorEvents:
    def _specs(self, n=2):
        return [JobSpec.edge(BENCH, ncores=1, scale=s, verify=False)
                for s in range(1, n + 1)]

    def test_job_lifecycle_events_and_metrics(self):
        obs = Observability(metrics_enabled=True)
        ring = obs.bus.attach(RingBufferSink())
        ex = ParallelExecutor(jobs=1, worker=_payload_worker, obs=obs)
        results = ex.run(self._specs())
        assert all(r.status == "ok" for r in results)
        kinds = [e["kind"] for e in ring.events]
        assert kinds.count("job.start") == 2
        assert kinds.count("job.done") == 2
        assert obs.metrics.counter("exec.jobs", status="ok") == 2
        assert obs.metrics.histogram("exec.job_seconds").count == 2

    def test_cached_jobs_emit_cached_events(self, tmp_path):
        obs = Observability(metrics_enabled=True)
        ring = obs.bus.attach(RingBufferSink())
        store = ResultStore(tmp_path)
        specs = self._specs()
        store.store(specs[0], {"warm": True})
        ex = ParallelExecutor(jobs=1, worker=_payload_worker, store=store,
                              obs=obs)
        ex.run(specs)
        assert len(ring.of_kind("job.cached")) == 1
        assert obs.metrics.counter("exec.jobs", status="cached") == 1
        assert obs.metrics.counter("exec.jobs", status="ok") == 1

    def test_failed_job_reports_attempts(self):
        obs = Observability(metrics_enabled=True)
        ring = obs.bus.attach(RingBufferSink())
        ex = ParallelExecutor(jobs=1, worker=_failing_worker, retries=1,
                              obs=obs)
        results = ex.run(self._specs(1))
        assert results[0].status == "failed"
        done = ring.of_kind("job.done")
        assert done[0]["status"] == "failed"
        assert done[0]["attempts"] == 2
        assert "boom" in done[0]["error"]
        assert obs.metrics.counter("exec.jobs", status="failed") == 1


class TestCli:
    def test_profile_command_prints_table_and_resets(self, capsys):
        from repro.cli import main

        assert main(["profile", BENCH, "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "TOTAL" in out
        assert "cycles simulated" in out
        assert not repro.obs.current().active

    def test_fig9_trace_out_cross_checks_procstats(self, tmp_path, capsys):
        """The acceptance check: fig9 --trace-out emits schema-valid
        JSONL ending in a metrics snapshot whose figure-9 breakdown
        counters equal the ProcStats totals of the same runs."""
        from repro.cli import main
        from repro.harness import run_edge_benchmark
        from repro.harness import runner
        from repro.harness.experiments import CORE_COUNTS

        trace = tmp_path / "trace.jsonl"
        old_store = runner._STORE
        runner.clear_cache()
        try:
            rc = main(["fig9", "--bench", BENCH, "--no-cache",
                       "--trace-out", str(trace), "--metrics"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "Figure 9a" in out
            assert "tflex.blocks_committed" in out    # --metrics report

            lines = trace.read_text().splitlines()
            assert lines
            events = [json.loads(line) for line in lines]
            for event in events:
                assert isinstance(event, dict)
                assert isinstance(event.get("kind"), str)
            snapshot = events[-1]
            assert snapshot["kind"] == "metrics.snapshot"
            counters = snapshot["metrics"]["counters"]

            # Re-read the very same points (in-process cache: no resim)
            # and sum their ProcStats breakdowns independently.
            runs = [run_edge_benchmark(BENCH, ncores=n)
                    for n in CORE_COUNTS]
            runs.append(run_edge_benchmark(BENCH, ncores=max(CORE_COUNTS),
                                           ideal_handshake=True))
            fetch_totals: Counter = Counter()
            commit_totals: Counter = Counter()
            blocks = 0
            for run in runs:
                fetch_totals.update(run.stats.fetch_latency.components)
                commit_totals.update(run.stats.commit_latency.components)
                blocks += run.stats.blocks_committed

            def series(name, comp):
                return counters[f"{name}{{component={comp},proc={BENCH}}}"]

            for comp, cycles in fetch_totals.items():
                assert series("tflex.fetch_latency_cycles", comp) == cycles
            for comp, cycles in commit_totals.items():
                assert series("tflex.commit_latency_cycles", comp) == cycles
            assert counters[f"tflex.blocks_committed{{proc={BENCH}}}"] == blocks
            # ... and every committed block produced one trace event.
            commits = [e for e in events if e["kind"] == "block.commit"]
            assert len(commits) == blocks
            # The CLI restored the inactive default bundle on the way out.
            assert not repro.obs.current().active
        finally:
            runner._STORE = old_store
            runner.clear_cache()
