"""Golden-model interpreter tests, including contract-violation detection."""

import pytest

from repro.isa import BlockBuilder, Interpreter, InterpError, Program
from repro.isa.program import HALT_ADDR, ProgramError

from tests.sample_programs import ALL_SAMPLES, ArchState


@pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
def test_sample_programs(name):
    program, check = ALL_SAMPLES[name]()
    interp = Interpreter(program)
    result = interp.run()
    assert result.halted
    check(ArchState(regs=interp.regs, mem=interp.mem))


def test_path_recording():
    program, __ = ALL_SAMPLES["counted_loop"]()
    interp = Interpreter(program)
    result = interp.run(record_path=True)
    labels = [step[0] for step in result.path]
    assert labels[0] == "init"
    assert labels[-1] == "done"
    assert labels.count("loop") == 10
    assert result.path[-1][2] == HALT_ADDR


def test_insts_fired_counted():
    program, __ = ALL_SAMPLES["counted_loop"]()
    result = Interpreter(program).run()
    # init: 2 movi + branch = 3; loop x10: read-fed adds etc.; done: 1.
    assert result.insts_fired > result.blocks_executed
    assert result.blocks_executed == 12


def test_block_budget_surfaces_truncation():
    prog = Program(entry="spin", name="spin")
    b = BlockBuilder("spin")
    b.branch("BRO", target="spin", exit_id=0)
    prog.add_block(b.build())
    result = Interpreter(prog).run(max_blocks=100)
    assert result.truncated
    assert not result.halted
    assert result.blocks_executed == 100


def test_completed_run_is_not_truncated():
    program, __ = ALL_SAMPLES["counted_loop"]()
    result = Interpreter(program).run()
    assert result.halted and not result.truncated


def test_memory_isolated_until_commit():
    """execute_block must not mutate architectural state."""
    program, __ = ALL_SAMPLES["store_load_forward"]()
    interp = Interpreter(program)
    block = program.blocks["only"]
    before = interp.mem.read_bytes(0x10_0000, 16)
    outcome = interp.execute_block(block)
    assert interp.mem.read_bytes(0x10_0000, 16) == before
    assert interp.regs[10] == 0
    interp.commit(outcome)
    assert interp.regs[10] == 0xBEEF + 1


def test_unresolved_store_slot_detected():
    """A predicated store without a complementary NULL must be caught."""
    prog = Program(entry="bad", name="bad_store")
    b = BlockBuilder("bad")
    p = b.op("TEQI", b.movi(0), imm=1)         # false
    addr = b.movi(0x2000, pred=(p, True))
    val = b.movi(5, pred=(p, True))
    b.store(addr, val, pred=(p, True))          # never fires; no null pair
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    with pytest.raises(InterpError, match="store slots"):
        Interpreter(prog).run()


def test_unresolved_write_slot_detected():
    prog = Program(entry="bad", name="bad_write")
    b = BlockBuilder("bad")
    p = b.op("TEQI", b.movi(0), imm=1)         # false
    b.write(9, b.movi(5, pred=(p, True)))       # producer squashed, no null
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    with pytest.raises(InterpError, match="write slots"):
        Interpreter(prog).run()


def test_null_write_resolves_slot():
    prog = Program(entry="ok", name="null_write")
    b = BlockBuilder("ok")
    p = b.op("TEQI", b.movi(0), imm=1)          # false
    b.write(9, b.movi(5, pred=(p, True)))
    b.null_write(9, pred=(p, False))
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    interp = Interpreter(prog)
    interp.regs[9] = 77
    interp.run()
    assert interp.regs[9] == 77                  # null write leaves register


def test_two_branches_firing_detected():
    prog = Program(entry="bad", name="two_branches")
    b = BlockBuilder("bad")
    p = b.op("TEQI", b.movi(1), imm=1)          # true
    q = b.op("TEQI", b.movi(2), imm=2)          # also true
    b.branch("HALT", exit_id=0, pred=(p, True))
    b.branch("HALT", exit_id=1, pred=(q, True))
    prog.add_block(b.build())
    with pytest.raises(InterpError, match="second branch"):
        Interpreter(prog).run()


def test_no_branch_fires_detected():
    prog = Program(entry="bad", name="no_branch")
    b = BlockBuilder("bad")
    p = b.op("TEQI", b.movi(0), imm=1)          # false
    b.branch("HALT", exit_id=0, pred=(p, True))  # squashed
    prog.add_block(b.build())
    with pytest.raises(InterpError, match="without a branch"):
        Interpreter(prog).run()


def test_branch_to_unknown_block_rejected_at_validate():
    prog = Program(entry="a", name="dangling")
    b = BlockBuilder("a")
    b.branch("BRO", target="nowhere", exit_id=0)
    prog.add_block(b.build())
    with pytest.raises(ProgramError):
        Interpreter(prog)


def test_load_sees_older_cross_block_store():
    """A store committed by an earlier block is visible to later blocks."""
    prog = Program(entry="first", name="cross_block")
    scratch = prog.alloc_data(8)

    b = BlockBuilder("first")
    b.store(b.movi(scratch), b.movi(1234))
    b.branch("BRO", target="second", exit_id=0)
    prog.add_block(b.build())

    b = BlockBuilder("second")
    b.write(10, b.load(b.movi(scratch)))
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())

    interp = Interpreter(prog)
    interp.run()
    assert interp.regs[10] == 1234


def test_load_waits_for_older_store_slot():
    """Load after a predicated store/null pair gets the right value on
    both predicate paths."""
    for flag, expected in ((1, 55), (0, 11)):
        prog = Program(entry="only", name="pred_store_load")
        scratch = prog.add_words([11])
        b = BlockBuilder("only")
        p = b.op("TEQI", b.movi(flag), imm=1)
        addr_t = b.movi(scratch, pred=(p, True))
        val = b.movi(55, pred=(p, True))
        st = b.store(addr_t, val, pred=(p, True))
        b.null_store(st, pred=(p, False))
        loaded = b.load(b.movi(scratch))
        b.write(10, loaded)
        b.branch("HALT", exit_id=0)
        prog.add_block(b.build())
        interp = Interpreter(prog)
        interp.run()
        assert interp.regs[10] == expected, flag


def test_exit_ids_reported():
    program, __ = ALL_SAMPLES["counted_loop"]()
    result = Interpreter(program).run(record_path=True)
    loop_exits = [e for (label, e, __) in result.path if label == "loop"]
    assert set(loop_exits[:-1]) == {0}
    assert loop_exits[-1] == 1
