"""Round-trip tests for the binary encoding and the textual assembler."""

import pytest

from repro.isa import BlockBuilder, Interpreter, Program
from repro.isa.asm import AsmError, assemble, parse_instruction
from repro.isa.encoding import (
    EncodingError,
    decode_program,
    encode_program,
    OPCODE_INDEX,
)
from repro.workloads import BENCHMARKS

from tests.sample_programs import ALL_SAMPLES


def _structurally_equal(a: Program, b: Program) -> bool:
    if a.entry != b.entry or a.order != b.order:
        return False
    for label in a.order:
        if a.blocks[label] != b.blocks[label]:
            return False
    return True


class TestBinaryEncoding:
    def test_opcode_index_stable_and_total(self):
        from repro.isa.opcodes import OPCODES
        assert set(OPCODE_INDEX) == set(OPCODES)
        assert len(set(OPCODE_INDEX.values())) == len(OPCODES)
        assert max(OPCODE_INDEX.values()) < 512   # fits 9 bits

    @pytest.mark.parametrize("name", sorted(ALL_SAMPLES))
    def test_sample_roundtrip(self, name):
        program, __ = ALL_SAMPLES[name]()
        decoded = decode_program(encode_program(program))
        assert _structurally_equal(program, decoded)

    @pytest.mark.parametrize("name", ["conv", "mcf", "8b10b", "equake", "bezier"])
    def test_workload_roundtrip(self, name):
        program, __, __k = BENCHMARKS[name].edge_program()
        decoded = decode_program(encode_program(program))
        assert _structurally_equal(program, decoded)

    def test_decoded_program_executes_identically(self):
        program, check = ALL_SAMPLES["predicated_classify"]()
        decoded = decode_program(encode_program(program))
        # Re-attach loader state (data/reg_init are not part of the image).
        decoded.data = program.data
        decoded.reg_init = program.reg_init
        original = Interpreter(program)
        golden = original.run(record_path=True)
        replay = Interpreter(decoded)
        rerun = replay.run(record_path=True)
        assert golden.path == rerun.path
        assert original.regs == replay.regs

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            decode_program(b"NOPE" + b"\x00" * 16)

    def test_image_is_compact(self):
        program, __, __k = BENCHMARKS["conv"].edge_program()
        image = encode_program(program)
        # ~9-18 bytes per instruction plus headers.
        assert len(image) < program.total_instructions * 30 + 1024


class TestAssembler:
    def test_disassemble_assemble_roundtrip(self):
        for name in sorted(ALL_SAMPLES):
            program, __ = ALL_SAMPLES[name]()
            text = program.disassemble()
            parsed = assemble(text)
            assert _structurally_equal(program, parsed), name

    def test_workload_roundtrip(self):
        program, __, __k = BENCHMARKS["dither"].edge_program()
        parsed = assemble(program.disassemble())
        assert _structurally_equal(program, parsed)

    def test_hand_written_listing(self):
        text = """
        ; a tiny counter
        block start:
          W0   write r5
          I0   MOVI   #41 => I1.l
          I1   ADDI   #1 => W0
          I2   BRO    [exit 0] -> fin

        block fin:
          I0   HALT   [exit 0]
        """
        program = assemble(text)
        interp = Interpreter(program)
        interp.run()
        assert interp.regs[5] == 42

    def test_entry_header_respected(self):
        text = """
        ; program demo  entry=second
        block first:
          I0   HALT   [exit 0]
        block second:
          I0   HALT   [exit 0]
        """
        program = assemble(text)
        assert program.entry == "second"
        assert program.name == "demo"

    def test_explicit_entry_overrides(self):
        text = "block only:\n  I0   HALT   [exit 0]\n"
        program = assemble(text, entry="only")
        assert program.entry == "only"

    def test_parse_instruction_fields(self):
        inst = parse_instruction("I3   STD    <!p> #8 [lsq 2]", 1)
        assert inst.iid == 3
        assert inst.op.name == "STD"
        assert inst.pred is False
        assert inst.imm == 8
        assert inst.lsq_id == 2

    def test_parse_predicated_branch(self):
        inst = parse_instruction("I4   BRO    <p> [exit 1] -> loop", 1)
        assert inst.pred is True
        assert inst.exit_id == 1
        assert inst.branch_target == "loop"

    def test_parse_float_and_label_immediates(self):
        assert parse_instruction("I0 MOVI #0.5", 1).imm == 0.5
        imm = parse_instruction("I0 MOVI #&target", 1).imm
        from repro.isa.instruction import LabelRef
        assert imm == LabelRef("target")

    def test_errors(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            parse_instruction("I0 FROB", 3)
        with pytest.raises(AsmError, match="bad target"):
            parse_instruction("I0 MOVI #1 => Q9", 2)
        with pytest.raises(AsmError, match="no blocks"):
            assemble("; empty\n")
        with pytest.raises(AsmError, match="before first block"):
            assemble("I0 HALT [exit 0]\n")

    def test_invalid_block_caught_by_validation(self):
        text = """
        block bad:
          I0   ADD    => W0
          I1   HALT   [exit 0]
        """
        with pytest.raises(Exception):
            assemble(text)


class TestPropertyRoundtrips:
    """Randomly generated valid programs survive both the textual and
    binary round trips exactly."""

    def test_random_programs_roundtrip(self):
        from hypothesis import given, settings
        from tests.tflex.test_random_programs import random_program

        @settings(max_examples=30, deadline=None)
        @given(random_program())
        def check(program):
            text_trip = assemble(program.disassemble())
            assert _structurally_equal(program, text_trip)
            binary_trip = decode_program(encode_program(program))
            assert _structurally_equal(program, binary_trip)

        check()
