"""Unit tests for Program: layout, addressing, data segment, validation."""

import pytest

from repro.isa import BlockBuilder, Program, ProgramError
from repro.isa.program import BLOCK_STRIDE, CODE_BASE, DATA_BASE


def two_block_program() -> Program:
    prog = Program(entry="a", name="t")
    b = BlockBuilder("a")
    b.branch("BRO", target="b", exit_id=0)
    prog.add_block(b.build())
    b = BlockBuilder("b")
    b.branch("HALT", exit_id=0)
    prog.add_block(b.build())
    return prog


class TestAddressing:
    def test_block_addresses_strided(self):
        prog = two_block_program()
        assert prog.address_of("a") == CODE_BASE
        assert prog.address_of("b") == CODE_BASE + BLOCK_STRIDE

    def test_label_at_roundtrip(self):
        prog = two_block_program()
        for label in prog.order:
            assert prog.label_at(prog.address_of(label)) == label

    def test_label_at_rejects_misaligned(self):
        prog = two_block_program()
        with pytest.raises(ProgramError):
            prog.label_at(CODE_BASE + 4)
        with pytest.raises(ProgramError):
            prog.label_at(CODE_BASE + 5 * BLOCK_STRIDE)

    def test_unknown_label_rejected(self):
        prog = two_block_program()
        with pytest.raises(ProgramError):
            prog.address_of("ghost")

    def test_sequential_next(self):
        prog = two_block_program()
        assert prog.sequential_next("a") == "b"
        assert prog.sequential_next("b") is None

    def test_duplicate_label_rejected(self):
        prog = two_block_program()
        b = BlockBuilder("a")
        b.branch("HALT", exit_id=0)
        with pytest.raises(ProgramError):
            prog.add_block(b.build())


class TestDataSegment:
    def test_alloc_is_aligned_and_disjoint(self):
        prog = Program(entry="x")
        first = prog.alloc_data(12)
        second = prog.alloc_data(8)
        assert first >= DATA_BASE
        assert first % 8 == 0 and second % 8 == 0
        assert second >= first + 12

    def test_add_words_signed(self):
        prog = Program(entry="x")
        addr = prog.add_words([-5, 7])
        raw = prog.data[addr]
        assert int.from_bytes(raw[:8], "little", signed=True) == -5
        assert int.from_bytes(raw[8:], "little", signed=True) == 7

    def test_add_doubles(self):
        import struct
        prog = Program(entry="x")
        addr = prog.add_doubles([1.5])
        assert struct.unpack("<d", prog.data[addr])[0] == 1.5

    def test_add_bytes(self):
        prog = Program(entry="x")
        addr = prog.add_bytes(b"abc")
        assert prog.data[addr] == b"abc"


class TestValidation:
    def test_missing_entry(self):
        prog = two_block_program()
        prog.entry = "ghost"
        with pytest.raises(ProgramError):
            prog.validate()

    def test_bad_reg_init(self):
        prog = two_block_program()
        prog.reg_init = {200: 1}
        with pytest.raises(ProgramError):
            prog.validate()

    def test_total_instructions(self):
        prog = two_block_program()
        assert prog.total_instructions == 2

    def test_disassemble_includes_all_blocks(self):
        text = two_block_program().disassemble()
        assert "block a" in text and "block b" in text
