"""Unit tests for opcode specs and evaluation semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import (
    INT_MAX,
    INT_MIN,
    OPCODES,
    OpClass,
    bind_evaluator,
    evaluate,
    memory_size,
    wrap64,
)


int64 = st.integers(min_value=INT_MIN, max_value=INT_MAX)


def _alu_specs():
    """Every opcode ``evaluate`` implements (probed, not listed, so a
    new ALU opcode is covered automatically)."""
    specs = []
    for spec in OPCODES.values():
        try:
            probe = tuple([1.5 if spec.is_fp else 3] * spec.operands)
            evaluate(spec, probe, imm=2 if spec.has_imm else None)
        except ValueError:
            continue
        specs.append(spec)
    return specs


ALU_SPECS = _alu_specs()


class TestWrap64:
    def test_identity_in_range(self):
        assert wrap64(42) == 42
        assert wrap64(INT_MIN) == INT_MIN
        assert wrap64(INT_MAX) == INT_MAX

    def test_overflow_wraps(self):
        assert wrap64(INT_MAX + 1) == INT_MIN
        assert wrap64(INT_MIN - 1) == INT_MAX

    @given(st.integers(min_value=-(1 << 70), max_value=1 << 70))
    def test_always_in_range(self, value):
        assert INT_MIN <= wrap64(value) <= INT_MAX

    @given(int64, int64)
    def test_add_matches_two_complement(self, a, b):
        assert wrap64(a + b) == wrap64(wrap64(a) + wrap64(b))


class TestOpcodeTable:
    def test_expected_opcodes_present(self):
        for name in ("ADD", "ADDI", "MUL", "DIV", "FADD", "FMUL", "LDD",
                     "STD", "LDF", "STF", "BRO", "CALLO", "RET", "HALT",
                     "NULL", "MOV", "MOVI", "TEQ", "TLTI"):
            assert name in OPCODES, name

    def test_operand_counts(self):
        assert OPCODES["ADD"].operands == 2
        assert OPCODES["ADDI"].operands == 1
        assert OPCODES["MOVI"].operands == 0
        assert OPCODES["LDD"].operands == 1
        assert OPCODES["STD"].operands == 2
        assert OPCODES["RET"].operands == 1
        assert OPCODES["BRO"].operands == 0

    def test_classes(self):
        assert OPCODES["ADD"].opclass is OpClass.INT
        assert OPCODES["MUL"].opclass is OpClass.IMUL
        assert OPCODES["FADD"].is_fp
        assert not OPCODES["ADD"].is_fp
        assert OPCODES["LDD"].is_memory
        assert OPCODES["STF"].is_memory
        assert not OPCODES["MOV"].is_memory

    def test_latencies_positive(self):
        for spec in OPCODES.values():
            assert spec.latency >= 1, spec.name

    def test_memory_sizes(self):
        assert memory_size(OPCODES["LDB"]) == 1
        assert memory_size(OPCODES["LDH"]) == 2
        assert memory_size(OPCODES["LDW"]) == 4
        assert memory_size(OPCODES["LDD"]) == 8
        assert memory_size(OPCODES["LDF"]) == 8
        assert memory_size(OPCODES["STD"]) == 8

    def test_memory_size_rejects_alu(self):
        with pytest.raises(ValueError):
            memory_size(OPCODES["ADD"])


class TestIntegerEvaluate:
    @pytest.mark.parametrize("name,a,b,expected", [
        ("ADD", 2, 3, 5),
        ("SUB", 2, 3, -1),
        ("MUL", -4, 6, -24),
        ("AND", 0b1100, 0b1010, 0b1000),
        ("OR", 0b1100, 0b1010, 0b1110),
        ("XOR", 0b1100, 0b1010, 0b0110),
        ("SHL", 1, 10, 1024),
        ("SRA", -8, 1, -4),
        ("DIV", 7, 2, 3),
        ("DIV", -7, 2, -3),       # truncation toward zero
        ("MOD", 7, 2, 1),
        ("MOD", -7, 2, -1),
        ("DIV", 5, 0, 0),          # defined: division by zero yields 0
        ("MOD", 5, 0, 0),
    ])
    def test_binary(self, name, a, b, expected):
        assert evaluate(OPCODES[name], (a, b)) == expected

    def test_shr_is_logical(self):
        assert evaluate(OPCODES["SHR"], (-1, 60)) == 15

    def test_shift_amount_masked(self):
        assert evaluate(OPCODES["SHL"], (1, 64)) == 1
        assert evaluate(OPCODES["SHL"], (1, 65)) == 2

    def test_immediate_forms(self):
        assert evaluate(OPCODES["ADDI"], (10,), imm=5) == 15
        assert evaluate(OPCODES["SHLI"], (3,), imm=2) == 12
        assert evaluate(OPCODES["TLTI"], (3,), imm=4) == 1

    def test_unary(self):
        assert evaluate(OPCODES["NOT"], (0,)) == -1
        assert evaluate(OPCODES["NEG"], (5,)) == -5
        assert evaluate(OPCODES["NEG"], (INT_MIN,)) == INT_MIN  # wraps

    def test_mov_movi(self):
        assert evaluate(OPCODES["MOV"], (123,)) == 123
        assert evaluate(OPCODES["MOVI"], (), imm=-9) == -9

    @given(int64, int64)
    def test_add_commutes(self, a, b):
        add = OPCODES["ADD"]
        assert evaluate(add, (a, b)) == evaluate(add, (b, a))

    @given(int64, int64)
    def test_sub_add_roundtrip(self, a, b):
        s = evaluate(OPCODES["SUB"], (a, b))
        assert evaluate(OPCODES["ADD"], (s, b)) == a

    @given(int64, st.integers(min_value=1, max_value=INT_MAX))
    def test_divmod_identity(self, a, b):
        q = evaluate(OPCODES["DIV"], (a, b))
        r = evaluate(OPCODES["MOD"], (a, b))
        assert wrap64(q * b + r) == a


class TestTestOps:
    @pytest.mark.parametrize("name,a,b,expected", [
        ("TEQ", 3, 3, 1), ("TEQ", 3, 4, 0),
        ("TNE", 3, 4, 1), ("TNE", 3, 3, 0),
        ("TLT", -1, 0, 1), ("TLT", 0, 0, 0),
        ("TLE", 0, 0, 1), ("TGT", 1, 0, 1), ("TGE", 0, 0, 1),
        ("FTLT", 1.5, 2.5, 1), ("FTEQ", 0.5, 0.5, 1), ("FTLE", 2.0, 1.0, 0),
    ])
    def test_results(self, name, a, b, expected):
        assert evaluate(OPCODES[name], (a, b)) == expected

    @given(int64, int64)
    def test_trichotomy(self, a, b):
        lt = evaluate(OPCODES["TLT"], (a, b))
        eq = evaluate(OPCODES["TEQ"], (a, b))
        gt = evaluate(OPCODES["TGT"], (a, b))
        assert lt + eq + gt == 1


class TestFloatEvaluate:
    def test_arith(self):
        assert evaluate(OPCODES["FADD"], (1.5, 2.25)) == 3.75
        assert evaluate(OPCODES["FSUB"], (1.5, 2.25)) == -0.75
        assert evaluate(OPCODES["FMUL"], (3.0, -2.0)) == -6.0
        assert evaluate(OPCODES["FDIV"], (1.0, 4.0)) == 0.25

    def test_fdiv_by_zero(self):
        assert math.isinf(evaluate(OPCODES["FDIV"], (1.0, 0.0)))

    def test_unary(self):
        assert evaluate(OPCODES["FSQRT"], (9.0,)) == 3.0
        assert math.isnan(evaluate(OPCODES["FSQRT"], (-1.0,)))
        assert evaluate(OPCODES["FABS"], (-2.5,)) == 2.5
        assert evaluate(OPCODES["FNEG"], (2.5,)) == -2.5

    def test_conversions(self):
        assert evaluate(OPCODES["ITOF"], (7,)) == 7.0
        assert evaluate(OPCODES["FTOI"], (7.9,)) == 7
        assert evaluate(OPCODES["FTOI"], (-7.9,)) == -7
        assert evaluate(OPCODES["FTOI"], (math.nan,)) == 0

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_ftoi_itof_identity_on_small_ints(self, x):
        n = evaluate(OPCODES["FTOI"], (x,))
        assert isinstance(n, int)


class TestBindEvaluator:
    """The interpreter's prepared blocks pre-bind one evaluator per
    static instruction; it must compute exactly what ``evaluate``
    would, for every ALU opcode and operand/immediate combination."""

    def test_covers_every_alu_opcode(self):
        assert ALU_SPECS, "probe found no ALU opcodes"
        for spec in ALU_SPECS:
            assert callable(bind_evaluator(spec, 2 if spec.has_imm else None))

    def test_rejects_non_alu_opcodes(self):
        for name in ("LDD", "STD", "BRO", "HALT", "NULL"):
            with pytest.raises(ValueError):
                bind_evaluator(OPCODES[name])

    @given(st.data())
    def test_matches_evaluate(self, data):
        spec = data.draw(st.sampled_from(ALU_SPECS))
        value = (st.floats(allow_nan=False, allow_infinity=False)
                 if spec.is_fp else int64)
        operands = tuple(data.draw(value) for __ in range(spec.operands))
        imm = data.draw(int64) if spec.has_imm else None

        expected = evaluate(spec, operands, imm)
        bound = bind_evaluator(spec, imm)
        a = operands[0] if spec.operands >= 1 else None
        b = operands[1] if spec.operands >= 2 else None
        got = bound(a, b)

        if isinstance(expected, float) and math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected
            assert type(got) is type(expected)
