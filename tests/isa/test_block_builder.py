"""Unit tests for Target encoding, Block validation, and BlockBuilder."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    Block,
    BlockBuilder,
    BlockError,
    BlockTooLarge,
    Instruction,
    OperandSlot,
    Target,
    TargetKind,
    MAX_TARGETS,
    MAX_LSQ_IDS,
    MAX_READS,
    MAX_WRITES,
)
from repro.isa.opcodes import OPCODES


class TestTargetEncoding:
    @pytest.mark.parametrize("target", [
        Target(TargetKind.INST, 0, OperandSlot.PRED),
        Target(TargetKind.INST, 127, OperandSlot.OP0),
        Target(TargetKind.INST, 64, OperandSlot.OP1),
        Target(TargetKind.WRITE, 0),
        Target(TargetKind.WRITE, 31),
    ])
    def test_roundtrip(self, target):
        bits = target.encode()
        assert 0 <= bits < 512  # nine bits, as the paper states
        decoded = Target.decode(bits)
        assert decoded.kind == target.kind
        assert decoded.index == target.index
        if target.kind is TargetKind.INST:
            assert decoded.slot == target.slot

    @given(st.integers(min_value=0, max_value=127),
           st.sampled_from(list(OperandSlot)))
    def test_roundtrip_property(self, index, slot):
        t = Target(TargetKind.INST, index, slot)
        assert Target.decode(t.encode()) == t

    def test_distinct_encodings(self):
        seen = set()
        for index in range(128):
            for slot in OperandSlot:
                seen.add(Target(TargetKind.INST, index, slot).encode())
        for index in range(32):
            seen.add(Target(TargetKind.WRITE, index).encode())
        assert len(seen) == 128 * 3 + 32


def _minimal_block() -> Block:
    b = BlockBuilder("t")
    b.branch("HALT", exit_id=0)
    return b.build()


class TestBuilderBasics:
    def test_minimal_block_valid(self):
        block = _minimal_block()
        assert block.size == 1
        assert block.branches[0].op.name == "HALT"

    def test_iids_sequential(self):
        b = BlockBuilder("t")
        x = b.movi(1)
        y = b.op("ADDI", x, imm=2)
        b.write(5, y)
        b.branch("HALT", exit_id=0)
        block = b.build()
        assert [i.iid for i in block.insts] == list(range(block.size))

    def test_read_deduplication(self):
        b = BlockBuilder("t")
        a = b.read(4)
        c = b.read(4)
        assert a == c
        b.write(5, b.op("ADD", a, c))
        b.branch("HALT", exit_id=0)
        block = b.build()
        assert len(block.reads) == 1
        assert block.reads[0].reg == 4

    def test_write_slots_merge_by_register(self):
        b = BlockBuilder("t")
        p = b.op("TEQI", b.movi(1), imm=1)
        b.write(7, b.movi(10, pred=(p, True)))
        b.write(7, b.movi(20, pred=(p, False)))
        b.branch("HALT", exit_id=0)
        block = b.build()
        assert len(block.writes) == 1

    def test_lsq_ids_in_program_order(self):
        b = BlockBuilder("t")
        addr = b.movi(0x1000)
        v = b.movi(1)
        first = b.store(addr, v)
        __ = b.load(addr)
        second = b.store(addr, v, offset=8)
        b.branch("HALT", exit_id=0)
        block = b.build()
        assert first.lsq_id == 0
        assert second.lsq_id == 2
        loads = [i for i in block.insts if i.is_load]
        assert loads[0].lsq_id == 1

    def test_null_store_shares_lsq_id(self):
        b = BlockBuilder("t")
        p = b.op("TEQI", b.movi(0), imm=1)
        addr = b.movi(0x1000, pred=(p, True))
        v = b.movi(1, pred=(p, True))
        handle = b.store(addr, v, pred=(p, True))
        b.null_store(handle, pred=(p, False))
        b.branch("HALT", exit_id=0)
        block = b.build()
        nulls = [i for i in block.insts if i.is_null and i.null_store]
        assert len(nulls) == 1
        assert nulls[0].lsq_id == handle.lsq_id
        assert block.store_ids == frozenset({handle.lsq_id})

    def test_builder_single_use(self):
        b = BlockBuilder("t")
        b.branch("HALT", exit_id=0)
        b.build()
        with pytest.raises(BlockError):
            b.build()


class TestFanoutLegalization:
    @pytest.mark.parametrize("fanout", [1, 2, 3, 4, 7, 16, 40])
    def test_mov_tree_inserted(self, fanout):
        b = BlockBuilder("t")
        seed = b.movi(5)
        acc = None
        for __ in range(fanout):
            term = b.op("ADDI", seed, imm=1)
            acc = term if acc is None else b.op("ADD", acc, term)
        b.write(10, acc)
        b.branch("HALT", exit_id=0)
        block = b.build()  # validation checks every operand has a producer
        for inst in block.insts:
            assert len(inst.targets) <= MAX_TARGETS
        for read in block.reads:
            assert len(read.targets) <= MAX_TARGETS

    def test_read_fanout_legalized(self):
        b = BlockBuilder("t")
        v = b.read(3)
        acc = b.op("ADDI", v, imm=0)
        for k in range(10):
            acc = b.op("ADD", acc, v)
        b.write(10, acc)
        b.branch("HALT", exit_id=0)
        block = b.build()
        assert all(len(r.targets) <= MAX_TARGETS for r in block.reads)

    @pytest.mark.parametrize("fanout", [1, 2, 3, 4, 7, 16, 40])
    def test_legalized_size_predicts_build_exactly(self, fanout):
        b = BlockBuilder("t")
        seed = b.movi(5)
        acc = None
        for __ in range(fanout):
            term = b.op("ADDI", seed, imm=1)
            acc = term if acc is None else b.op("ADD", acc, term)
        b.write(10, acc)
        b.branch("HALT", exit_id=0)
        predicted = b.legalized_size
        assert predicted >= b.size
        block = b.build()
        assert block.size == predicted

    def test_legalized_size_counts_read_fanout(self):
        b = BlockBuilder("t")
        v = b.read(3)
        acc = b.op("ADDI", v, imm=0)
        for __ in range(10):
            acc = b.op("ADD", acc, v)
        b.write(10, acc)
        b.branch("HALT", exit_id=0)
        predicted = b.legalized_size
        assert predicted > b.size          # the read owes MOV-tree nodes
        assert b.build().size == predicted

    def test_too_many_insts_rejected(self):
        b = BlockBuilder("t")
        x = b.movi(0)
        for __ in range(130):
            x = b.op("ADDI", x, imm=1)
        b.write(10, x)
        b.branch("HALT", exit_id=0)
        with pytest.raises(BlockTooLarge):
            b.build()

    def test_too_many_memory_ops_rejected(self):
        b = BlockBuilder("t")
        addr = b.movi(0x1000)
        with pytest.raises(BlockTooLarge):
            for k in range(MAX_LSQ_IDS + 1):
                b.load(addr, offset=8 * k)

    def test_too_many_reads_rejected(self):
        b = BlockBuilder("t")
        with pytest.raises(BlockTooLarge):
            for reg in range(MAX_READS + 1):
                b.read(reg)

    def test_too_many_writes_rejected(self):
        b = BlockBuilder("t")
        v = b.movi(1)
        with pytest.raises(BlockTooLarge):
            for reg in range(MAX_WRITES + 1):
                b.write(reg, v)


class TestBuilderErrors:
    def test_unknown_opcode(self):
        b = BlockBuilder("t")
        with pytest.raises(BlockError):
            b.op("FROB")

    def test_wrong_operand_count(self):
        b = BlockBuilder("t")
        x = b.movi(1)
        with pytest.raises(BlockError):
            b.op("ADD", x)

    def test_missing_immediate(self):
        b = BlockBuilder("t")
        x = b.movi(1)
        with pytest.raises(BlockError):
            b.op("ADDI", x)

    def test_unexpected_immediate(self):
        b = BlockBuilder("t")
        x = b.movi(1)
        with pytest.raises(BlockError):
            b.op("ADD", x, x, imm=3)

    def test_memory_op_via_op_rejected(self):
        b = BlockBuilder("t")
        x = b.movi(1)
        with pytest.raises(BlockError):
            b.op("LDD", x, imm=0)

    def test_duplicate_exit_id(self):
        b = BlockBuilder("t")
        p = b.op("TEQI", b.movi(1), imm=1)
        b.branch("BRO", target="a", exit_id=0, pred=(p, True))
        with pytest.raises(BlockError):
            b.branch("BRO", target="b", exit_id=0, pred=(p, False))

    def test_ret_requires_addr(self):
        b = BlockBuilder("t")
        with pytest.raises(BlockError):
            b.branch("RET", exit_id=0)

    def test_null_store_requires_pred(self):
        b = BlockBuilder("t")
        addr = b.movi(0)
        handle = b.store(addr, addr)
        with pytest.raises(BlockError):
            b.null_store(handle, pred=None)


class TestBlockValidation:
    def test_missing_operand_producer(self):
        # Hand-construct an invalid block: ADD with no producers.
        add = Instruction(iid=0, op=OPCODES["ADD"])
        halt = Instruction(iid=1, op=OPCODES["HALT"], exit_id=0)
        block = Block(label="bad", insts=[add, halt])
        with pytest.raises(BlockError):
            block.validate()

    def test_no_branch_rejected(self):
        movi = Instruction(iid=0, op=OPCODES["MOVI"], imm=1)
        block = Block(label="bad", insts=[movi])
        with pytest.raises(BlockError):
            block.validate()

    def test_multiple_unpredicated_branches_rejected(self):
        b1 = Instruction(iid=0, op=OPCODES["HALT"], exit_id=0)
        b2 = Instruction(iid=1, op=OPCODES["HALT"], exit_id=1)
        block = Block(label="bad", insts=[b1, b2])
        with pytest.raises(BlockError):
            block.validate()

    def test_target_out_of_range(self):
        movi = Instruction(iid=0, op=OPCODES["MOVI"], imm=1,
                           targets=(Target(TargetKind.INST, 5, OperandSlot.OP0),))
        halt = Instruction(iid=1, op=OPCODES["HALT"], exit_id=0)
        block = Block(label="bad", insts=[movi, halt])
        with pytest.raises(BlockError):
            block.validate()

    def test_disassemble_smoke(self):
        b = BlockBuilder("demo", comment="smoke test")
        x = b.read(2)
        b.write(3, b.op("ADDI", x, imm=1))
        b.branch("HALT", exit_id=0)
        text = b.build().disassemble()
        assert "demo" in text
        assert "ADDI" in text
        assert "read" in text

    def test_insts_for_core_partition(self):
        b = BlockBuilder("t")
        x = b.movi(0)
        for __ in range(15):
            x = b.op("ADDI", x, imm=1)
        b.write(10, x)
        b.branch("HALT", exit_id=0)
        block = b.build()
        for ncores in (1, 2, 4, 8):
            seen = []
            for core in range(ncores):
                seen += [i.iid for i in block.insts_for_core(core, ncores)]
            assert sorted(seen) == list(range(block.size))
