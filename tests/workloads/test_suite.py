"""Workload-suite tests: every benchmark's reference results must hold
on both golden models, and the registry must match the paper's suite
structure (Table 1)."""

import pytest

from repro.isa import Interpreter
from repro.isa.block import BLOCK_MAX_INSTS
from repro.risc import RiscInterpreter
from repro.tflex import run_program
from repro.workloads import (
    BENCHMARKS,
    compiled_suite,
    hand_optimized,
    read_array_values,
    spec_fp,
    spec_int,
    verify_edge_run,
)
from repro.workloads.data import Lcg


class TestRegistry:
    def test_suite_composition_matches_paper(self):
        """Paper Table 1: 12 hand-optimized (3 kernels + 7 EEMBC +
        2 Versabench) and 14 SPEC (8 INT + 6 FP)."""
        assert len(BENCHMARKS) == 26
        assert len(hand_optimized()) == 12
        assert len(spec_int()) == 8
        assert len(spec_fp()) == 6
        assert len(compiled_suite()) == 14

    def test_paper_benchmark_names_present(self):
        for name in ("conv", "ct", "genalg", "a2time", "autocor", "basefp",
                     "bezier", "dither", "rspeed", "tblook", "802.11b", "8b10b"):
            assert BENCHMARKS[name].category == "hand", name
        for name in ("bzip2", "gzip", "mcf", "parser", "twolf", "vpr",
                     "gcc", "perlbmk"):
            assert BENCHMARKS[name].category == "spec_int", name
        for name in ("mgrid", "applu", "swim", "art", "equake", "ammp"):
            assert BENCHMARKS[name].category == "spec_fp", name

    def test_ilp_classes_assigned(self):
        assert {b.ilp for b in BENCHMARKS.values()} == {"high", "low"}

    def test_deterministic_inputs(self):
        a, __ = BENCHMARKS["conv"].build()
        b, __ = BENCHMARKS["conv"].build()
        assert a.arrays[0].init == b.arrays[0].init


class TestLcg:
    def test_deterministic(self):
        assert Lcg(5).ints(10, 0, 100) == Lcg(5).ints(10, 0, 100)

    def test_bounds(self):
        values = Lcg(9).ints(500, -3, 7)
        assert all(-3 <= v <= 7 for v in values)
        floats = Lcg(9).floats(500, -1.0, 2.0)
        assert all(-1.0 <= v <= 2.0 for v in floats)

    def test_seeds_differ(self):
        assert Lcg(1).ints(10, 0, 1000) != Lcg(2).ints(10, 0, 1000)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestGoldenModels:
    def test_edge_interpreter_matches_reference(self, name):
        program, expected, kernel = BENCHMARKS[name].edge_program()
        interp = Interpreter(program)
        result = interp.run(max_blocks=500_000)
        assert result.halted and not result.truncated
        verify_edge_run(kernel, interp.mem, expected)

    def test_risc_interpreter_matches_reference(self, name):
        program, expected, kernel = BENCHMARKS[name].risc_program()
        interp = RiscInterpreter(program)
        interp.run()
        verify_edge_run(kernel, interp.mem, expected)

    def test_block_limits(self, name):
        program, __, __k = BENCHMARKS[name].edge_program()
        for block in program.blocks.values():
            assert block.size <= BLOCK_MAX_INSTS


@pytest.mark.parametrize("name", ["conv", "dither", "mcf", "equake", "8b10b"])
@pytest.mark.parametrize("ncores", [1, 4, 16])
def test_tflex_simulator_matches_reference(name, ncores):
    """Spot-check the cycle simulator on a representative subset (the
    full 26x6 sweep lives in the benchmark harness)."""
    program, expected, kernel = BENCHMARKS[name].edge_program()
    proc = run_program(program, num_cores=ncores, max_cycles=3_000_000)
    verify_edge_run(kernel, proc.memory, expected)


def test_scale_parameter_grows_work():
    small, __, __k = BENCHMARKS["conv"].edge_program(scale=1)
    big, __, __k2 = BENCHMARKS["conv"].edge_program(scale=2)
    small_dyn = Interpreter(small).run().insts_fired
    big_dyn = Interpreter(big).run().insts_fired
    assert big_dyn > small_dyn * 1.5


def test_read_array_values_unknown_array():
    __, __e, kernel = BENCHMARKS["conv"].edge_program()
    with pytest.raises(KeyError):
        read_array_values(kernel, lambda a, s, fp: 0, "missing")
