"""Microbenchmark tests: correctness on both golden models and the
expected scaling behaviours on the simulator."""

import pytest

from repro.isa import Interpreter
from repro.risc import RiscInterpreter
from repro.compiler import compile_edge, compile_risc
from repro.tflex import run_program
from repro.workloads import verify_edge_run
from repro.workloads.micro import MICROBENCHMARKS


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
def test_golden_models_agree(name):
    kernel, expected = MICROBENCHMARKS[name]()
    edge = compile_edge(kernel)
    interp = Interpreter(edge)
    result = interp.run(max_blocks=500_000)
    assert result.halted and not result.truncated
    verify_edge_run(kernel, interp.mem, expected)

    kernel2, expected2 = MICROBENCHMARKS[name]()
    risc = compile_risc(kernel2)
    risc_interp = RiscInterpreter(risc)
    risc_interp.run()
    verify_edge_run(kernel2, risc_interp.mem, expected2)


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
def test_simulator_correct(name):
    kernel, expected = MICROBENCHMARKS[name]()
    program = compile_edge(kernel)
    proc = run_program(program, num_cores=8, max_cycles=5_000_000)
    verify_edge_run(kernel, proc.memory, expected)


def _cycles(name, ncores):
    kernel, __ = MICROBENCHMARKS[name]()
    program = compile_edge(kernel)
    return run_program(program, num_cores=ncores,
                       max_cycles=5_000_000).stats.cycles


class TestScalingCharacter:
    def test_fanout_tree_scales(self):
        """Wide independent dataflow gains from composition."""
        assert _cycles("fanout_tree", 8) < _cycles("fanout_tree", 1) * 0.7

    def test_alu_chain_does_not_scale(self):
        """A serial chain cannot use added cores (the control case)."""
        one = _cycles("alu_chain", 1)
        eight = _cycles("alu_chain", 8)
        assert eight > one * 0.5   # no miracle speedup

    def test_pointer_chase_memory_bound(self):
        """Serial loads: composition cannot shorten the chain much."""
        one = _cycles("pointer_chase", 1)
        eight = _cycles("pointer_chase", 8)
        assert eight > one * 0.4

    def test_branch_random_hurts_prediction(self):
        kernel, __ = MICROBENCHMARKS["branch_random"]()
        program = compile_edge(kernel)
        proc = run_program(program, num_cores=8, max_cycles=5_000_000)
        # Predicated inner branches are if-converted, but the exit path
        # still commits every block; prediction stays decent while IPC
        # is modest.
        assert proc.stats.blocks_committed > 100
