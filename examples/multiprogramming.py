#!/usr/bin/env python
"""Multiprogramming and dynamic recomposition (paper figures 1 and 2).

Phase 1 runs two different programs *simultaneously* on disjoint
compositions of one chip — they share the S-NUCA L2 and DRAM, so the
contention is real.  Phase 2 releases the cores and recomposes them
into one large processor for a single thread, without flushing L1
caches: the directory protocol forwards or invalidates stale lines on
demand (paper section 4.7).

Run:  python examples/multiprogramming.py
"""

from repro.tflex import TFLEX, TFlexSystem, rectangle
from repro.workloads import BENCHMARKS, verify_edge_run


def main() -> None:
    system = TFlexSystem(TFLEX)

    # ------------------------------------------------------------------
    # Phase 1: two threads, 8 cores each (figure 1b style).
    # ------------------------------------------------------------------
    prog_a, expected_a, kernel_a = BENCHMARKS["conv"].edge_program()
    prog_b, expected_b, kernel_b = BENCHMARKS["mcf"].edge_program()

    proc_a = system.compose(rectangle(TFLEX, 8, (0, 0)), prog_a, name="conv@8")
    proc_b = system.compose(rectangle(TFLEX, 8, (0, 2)), prog_b, name="mcf@8")
    system.run()

    verify_edge_run(kernel_a, proc_a.memory, expected_a)
    verify_edge_run(kernel_b, proc_b.memory, expected_b)
    print("phase 1: two simultaneous threads on disjoint 8-core processors")
    for proc in (proc_a, proc_b):
        print(f"  {proc.name:8s} {proc.stats.cycles:6d} cycles  "
              f"IPC {proc.stats.ipc:.2f}")
    print(f"  shared L2: {system.l2.stats.accesses} accesses, "
          f"{system.l2.stats.miss_rate:.0%} miss rate; "
          f"DRAM: {system.dram.stats.requests} requests")

    # ------------------------------------------------------------------
    # Phase 2: recompose the same 16 cores into one big processor.
    # ------------------------------------------------------------------
    system.decompose(proc_a)
    system.decompose(proc_b)

    prog_c, expected_c, kernel_c = BENCHMARKS["ct"].edge_program()
    proc_c = system.compose(rectangle(TFLEX, 16, (0, 0)), prog_c, name="ct@16")
    system.run()
    verify_edge_run(kernel_c, proc_c.memory, expected_c)

    print("\nphase 2: same cores recomposed into one 16-core processor")
    print(f"  {proc_c.name:8s} {proc_c.stats.cycles:6d} cycles  "
          f"IPC {proc_c.stats.ipc:.2f}")
    leftover = sum(system.cores[c].dcache.resident_lines() for c in range(16))
    print(f"  no L1 flush on recomposition: {leftover} lines (old and new "
          f"contexts) still resident; the directory forwards or invalidates "
          f"stale lines only if they are referenced again (section 4.7)")


if __name__ == "__main__":
    main()
