#!/usr/bin/env python
"""Run-time core reallocation over a job stream (paper section 8).

The paper closes by envisioning run-time software that grows and
shrinks processors as threads arrive and depart.  This example measures
real cores->performance curves for a few benchmarks on the simulator
(the figure-6 methodology), then drives the analytical reallocation
controller over a bursty job stream under three disciplines:

* composable (CLP): optimal asymmetric allocation, re-solved per event;
* symmetric: equal-size processors, granularity re-chosen per event;
* fixed CMP-4: conventional fixed-granularity silicon with a FIFO queue.

Run:  python examples/os_reallocation.py
"""

from repro.harness import format_table, run_edge_benchmark
from repro.sched import Job, ReallocationController, SpeedupTable


BENCHES = ["conv", "ct", "mcf", "dither"]
SIZES = (1, 2, 4, 8, 16, 32)


def measure_curves() -> SpeedupTable:
    print("measuring cores->performance curves on the simulator ...")
    perf = {}
    for name in BENCHES:
        perf[name] = {n: run_edge_benchmark(name, ncores=n).performance
                      for n in SIZES}
    return SpeedupTable(perf=perf)


def job_stream() -> list[Job]:
    """A bursty arrival pattern: a long job, then a burst, then stragglers."""
    stream = [Job("J0", "conv", arrival=0.0, work=3.0)]
    for i, bench in enumerate(["ct", "mcf", "dither", "ct", "mcf"]):
        stream.append(Job(f"J{i+1}", bench, arrival=0.5, work=1.0))
    stream.append(Job("J6", "conv", arrival=2.0, work=1.5))
    stream.append(Job("J7", "dither", arrival=2.5, work=0.5))
    return stream


def main() -> None:
    table = measure_curves()
    rows = []
    for policy, kwargs in (("composable", {}),
                           ("symmetric", {}),
                           ("fixed CMP-4", {"policy": "fixed", "granularity": 4})):
        controller = ReallocationController(
            table, policy=kwargs.get("policy", policy),
            granularity=kwargs.get("granularity", 4))
        result = controller.run(job_stream())
        rows.append([policy, round(result.makespan, 2),
                     round(result.mean_turnaround, 2),
                     round(result.mean_slowdown, 2),
                     f"{result.utilization(32):.0%}"])
    print(format_table(
        ["policy", "makespan", "mean turnaround", "mean slowdown", "core util"],
        rows, title="8-job bursty stream on a 32-core chip"))

    # Show the composable trace: allocations change at every event.
    controller = ReallocationController(table, policy="composable")
    result = controller.run(job_stream())
    print("\ncomposable allocation trace (time: job=cores ...):")
    for event in result.trace[:10]:
        grants = " ".join(f"{j}={k}" for j, k in sorted(event.running.items()))
        wait = f"  (waiting: {', '.join(event.waiting)})" if event.waiting else ""
        print(f"  t={event.time:5.2f}  {grants}{wait}")


if __name__ == "__main__":
    main()
