#!/usr/bin/env python
"""Write a new kernel in the DSL and compare TFlex against the
conventional out-of-order baseline — the figure-5 methodology applied to
your own code.

The kernel (a string-distance scoring loop) is compiled twice from one
AST: the EDGE backend forms predicated hyperblocks for TFlex, and the
RISC backend emits linear code for the 4-wide OoO model.

Run:  python examples/custom_kernel.py
"""

from repro.compiler import (
    Array, Assign, Bin, Cmp, Const, For, Function, If, KernelProgram, Load,
    Store, Un, Var, compile_edge, compile_risc,
)
from repro.harness import format_table
from repro.risc import OoOCore
from repro.tflex import run_program
from repro.workloads import verify_edge_run
from repro.workloads.data import Lcg


def build_kernel() -> tuple[KernelProgram, dict]:
    """Banded alignment score between two byte strings."""
    n = 64
    rng = Lcg(99)
    a = rng.ints(n, 0, 3)
    b = rng.ints(n, 0, 3)
    kernel = KernelProgram(
        name="align_score",
        arrays=[Array("a", "int", n, a), Array("b", "int", n, b),
                Array("scores", "int", n), Array("total", "int", 1)],
        functions=[Function("main", body=[
            Assign("acc", Const(0)),
            For("i", Const(1), Const(n - 1), unroll=2, body=[
                Assign("match", Const(-1)),
                If(Cmp("==", Load("a", Var("i")), Load("b", Var("i"))), then=[
                    Assign("match", Const(2)),
                ]),
                # Small shift tolerance: a diagonal neighbour match
                # rescues half the penalty.
                If(Cmp("==", Load("a", Var("i")),
                       Load("b", Bin("-", Var("i"), Const(1)))), then=[
                    If(Cmp("<", Var("match"), Const(1)), then=[
                        Assign("match", Const(1)),
                    ]),
                ]),
                Assign("acc", Bin("+", Var("acc"), Var("match"))),
                Store("scores", Var("i"), Var("match")),
            ]),
            Store("total", Const(0), Var("acc")),
        ])])

    scores, acc = [0], 0
    for i in range(1, n - 1):
        match = 2 if a[i] == b[i] else -1
        if a[i] == b[i - 1] and match < 1:
            match = 1
        acc += match
        scores.append(match)
    return kernel, {"scores": scores, "total": [acc]}


def main() -> None:
    kernel, expected = build_kernel()

    # Conventional baseline: 4-wide OoO superscalar.
    risc_program = compile_risc(kernel)
    ooo_stats, ooo_interp = OoOCore().run(risc_program)
    verify_edge_run(kernel, ooo_interp.mem, expected)

    # TFlex at several compositions.
    edge_program = compile_edge(kernel)
    rows = [["OoO 4-wide", ooo_stats.cycles, round(ooo_stats.ipc, 2), "-"]]
    for ncores in (1, 2, 4, 8, 16):
        proc = run_program(edge_program, num_cores=ncores)
        verify_edge_run(kernel, proc.memory, expected)
        rows.append([f"TFlex x{ncores}", proc.stats.cycles,
                     round(proc.stats.ipc, 2),
                     round(ooo_stats.cycles / proc.stats.cycles, 2)])

    print(format_table(["machine", "cycles", "IPC", "speedup vs OoO"], rows,
                       title="Custom kernel: one AST, two targets"))
    print("\nhyperblocks formed by the EDGE backend:")
    for label in edge_program.order:
        block = edge_program.blocks[label]
        print(f"  {label:12s} {block.size:3d} instructions, "
              f"{len(block.reads)} reads, {len(block.writes)} writes")


if __name__ == "__main__":
    main()
