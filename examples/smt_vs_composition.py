#!/usr/bin/env python
"""Partitioning versus composition: SMT sharing against split processors.

The paper contrasts two ways to run multiple threads on fixed silicon
(section 2): *partitioning* a large processor between threads (SMT — the
TRIPS baseline's only flexibility) and *composing* right-sized
processors per thread (the CLP approach).  This example runs the same
two-thread workload three ways on 8 cores and compares:

1. SMT: both threads share all 8 cores (issue slots, caches, LSQs);
2. split 4+4: each thread gets its own 4-core composition;
3. serial: each thread alone on all 8 cores, back to back.

Run:  python examples/smt_vs_composition.py [benchA benchB]
"""

import sys

from repro.harness import format_table
from repro.tflex import TFLEX, TFlexSystem, rectangle
from repro.workloads import BENCHMARKS, verify_edge_run


def run_smt(name_a: str, name_b: str) -> tuple[int, int]:
    system = TFlexSystem(TFLEX)
    prog_a, exp_a, kern_a = BENCHMARKS[name_a].edge_program()
    prog_b, exp_b, kern_b = BENCHMARKS[name_b].edge_program()
    procs = system.compose_smt(rectangle(TFLEX, 8, (0, 0)), [prog_a, prog_b],
                               names=[name_a, name_b])
    system.run()
    verify_edge_run(kern_a, procs[0].memory, exp_a)
    verify_edge_run(kern_b, procs[1].memory, exp_b)
    return procs[0].stats.cycles, procs[1].stats.cycles


def run_split(name_a: str, name_b: str) -> tuple[int, int]:
    system = TFlexSystem(TFLEX)
    prog_a, exp_a, kern_a = BENCHMARKS[name_a].edge_program()
    prog_b, exp_b, kern_b = BENCHMARKS[name_b].edge_program()
    proc_a = system.compose(rectangle(TFLEX, 4, (0, 0)), prog_a)
    proc_b = system.compose(rectangle(TFLEX, 4, (0, 2)), prog_b)
    system.run()
    verify_edge_run(kern_a, proc_a.memory, exp_a)
    verify_edge_run(kern_b, proc_b.memory, exp_b)
    return proc_a.stats.cycles, proc_b.stats.cycles


def run_alone(name: str) -> int:
    system = TFlexSystem(TFLEX)
    prog, exp, kern = BENCHMARKS[name].edge_program()
    proc = system.compose(rectangle(TFLEX, 8, (0, 0)), prog)
    system.run()
    verify_edge_run(kern, proc.memory, exp)
    return proc.stats.cycles


def main() -> None:
    name_a = sys.argv[1] if len(sys.argv) > 2 else "conv"
    name_b = sys.argv[2] if len(sys.argv) > 2 else "mcf"

    smt_a, smt_b = run_smt(name_a, name_b)
    split_a, split_b = run_split(name_a, name_b)
    alone_a, alone_b = run_alone(name_a), run_alone(name_b)

    rows = [
        ["SMT (8 shared)", smt_a, smt_b, max(smt_a, smt_b)],
        ["split 4+4", split_a, split_b, max(split_a, split_b)],
        ["serial on 8", alone_a, alone_b, alone_a + alone_b],
    ]
    print(format_table(
        ["scheme", f"{name_a} cycles", f"{name_b} cycles", "makespan"],
        rows, title=f"Two threads ({name_a}, {name_b}) on 8 cores"))

    best = min(rows, key=lambda r: r[3])
    print(f"\nbest makespan: {best[0]}")
    print("composition lets the scheduler pick this per workload "
          "(figure 10's weighted-speedup advantage)")


if __name__ == "__main__":
    main()
