#!/usr/bin/env python
"""Composition sweep: one application across every processor granularity.

Reproduces, for a single benchmark, the per-application view behind
figures 6-8: performance, area efficiency, and power efficiency as the
same binary runs on 1..32 aggregated cores — no recompilation, just a
different interleaving of the same blocks (the CLP promise).

Run:  python examples/composition_sweep.py [benchmark]
"""

import sys

from repro.harness import format_table, run_edge_benchmark
from repro.power import AreaModel, EnergyModel
from repro.workloads import BENCHMARKS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "conv"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from "
                         f"{', '.join(sorted(BENCHMARKS))}")

    area = AreaModel()
    rows = []
    baseline_cycles = None
    for ncores in (1, 2, 4, 8, 16, 32):
        run = run_edge_benchmark(name, ncores=ncores)
        if baseline_cycles is None:
            baseline_cycles = run.cycles
        speedup = baseline_cycles / run.cycles
        perf_area = 1.0 / (run.cycles * area.processor_mm2(ncores))
        eff = EnergyModel.perf2_per_watt(run.cycles, run.power.total)
        rows.append([
            ncores,
            run.cycles,
            round(speedup, 2),
            round(run.stats.ipc, 2),
            f"{run.stats.prediction_accuracy:.0%}",
            round(run.power.total, 2),
            f"{perf_area:.2e}",
            f"{eff:.2e}",
        ])

    print(format_table(
        ["cores", "cycles", "speedup", "IPC", "bpred", "watts",
         "perf/mm^2", "perf^2/W"],
        rows,
        title=f"Composition sweep: {name} (same binary on every granularity)"))

    best_perf = max(rows, key=lambda r: r[2])[0]
    best_eff = max(rows, key=lambda r: float(r[7]))[0]
    print(f"\nbest performance at {best_perf} cores; "
          f"best power efficiency at {best_eff} cores")
    print("(figure 6/8 shape: performance peaks wider than efficiency)")


if __name__ == "__main__":
    main()
