#!/usr/bin/env python
"""Quickstart: build an EDGE program by hand and run it on a composed
TFlex processor.

Demonstrates the three layers of the library:

1. the EDGE ISA (``repro.isa``): block-atomic programs with explicit
   dataflow targets,
2. the golden-model interpreter, and
3. the TFlex cycle-level simulator (``repro.tflex``), composing four
   lightweight cores into one logical processor.

Run:  python examples/quickstart.py
"""

from repro.isa import BlockBuilder, Interpreter, Program
from repro.tflex import run_program


def build_program() -> tuple[Program, int]:
    """Sum of squares 1..n, written directly against the block API."""
    n = 20
    program = Program(entry="init", name="sum_of_squares")
    out_addr = program.alloc_data(8)

    # Block 1: initialize the accumulator and induction variable.
    b = BlockBuilder("init", comment="acc = 0; i = 1")
    b.write(10, b.movi(0))          # r10 = acc
    b.write(11, b.movi(1))          # r11 = i
    b.branch("BRO", target="loop", exit_id=0)
    program.add_block(b.build())

    # Block 2: one loop iteration per block execution.
    b = BlockBuilder("loop", comment="acc += i*i; i++; repeat while i <= n")
    acc = b.read(10)
    i = b.read(11)
    square = b.op("MUL", i, i)
    b.write(10, b.op("ADD", acc, square))
    next_i = b.op("ADDI", i, imm=1)
    b.write(11, next_i)
    again = b.op("TLEI", next_i, imm=n)
    b.branch("BRO", target="loop", exit_id=0, pred=(again, True))
    b.branch("BRO", target="done", exit_id=1, pred=(again, False))
    program.add_block(b.build())

    # Block 3: store the result and halt.
    b = BlockBuilder("done", comment="store acc; halt")
    b.store(b.movi(out_addr), b.read(10))
    b.branch("HALT", exit_id=0)
    program.add_block(b.build())

    program.validate()
    return program, out_addr


def main() -> None:
    program, out_addr = build_program()
    print(program.disassemble())
    print()

    # Golden model: architectural semantics.
    interp = Interpreter(program)
    result = interp.run()
    expected = sum(i * i for i in range(1, 21))
    assert interp.regs[10] == expected
    print(f"interpreter: {result.blocks_executed} blocks, "
          f"{result.insts_fired} instructions, acc = {interp.regs[10]}")

    # Cycle-level simulation on compositions of 1, 2 and 4 cores.
    for ncores in (1, 2, 4):
        proc = run_program(program, num_cores=ncores)
        assert proc.memory.load(out_addr, 8) == expected
        stats = proc.stats
        print(f"TFlex x{ncores}: {stats.cycles} cycles, IPC {stats.ipc:.2f}, "
              f"branch prediction {stats.prediction_accuracy:.0%} "
              f"({stats.predictions} predictions)")

    # Block-pipeline timeline on 4 cores (the paper's figure-2 view).
    from repro.tflex import TFlexSystem, rectangle, tflex_config
    from repro.tflex.trace import render_timeline

    cfg = tflex_config(4)
    system = TFlexSystem(cfg)
    proc = system.compose(rectangle(cfg, 4), program)
    proc.enable_block_trace()
    system.run()
    print()
    print(render_timeline(proc.block_trace[:12]))


if __name__ == "__main__":
    main()
