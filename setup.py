"""Setuptools shim enabling legacy editable installs in offline environments
(the sandbox lacks the `wheel` package needed for PEP-517 editable installs)."""

from setuptools import setup

setup()
