"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark suite with categories and ILP classes.
* ``run BENCH`` — run one benchmark on a composition (or TRIPS/the OoO
  baseline) and print the statistics.
* ``sweep BENCH`` — the composition sweep for one benchmark.
* ``fig5|fig6|fig7|fig8|fig9|fig10|table2`` — regenerate one of the
  paper's artifacts (fig7/8/10/table2 compute the figure-6 sweep first);
  ``--bench NAME`` (repeatable) restricts the suite.
* ``resil`` — the dead-core degradation sweep (figure R); ``--out``
  writes the curve as JSON.  See docs/RESILIENCE.md.
* ``search`` — per-application BEST-composition search by successive
  halving over fidelity tiers (``--objective speedup|perf_per_area|
  perf2_per_watt|all``); ``--out`` writes the BEST line plus the
  detailed-work accounting as JSON.  See docs/SEARCH.md.
* ``disasm BENCH`` — print the compiled EDGE hyperblocks.
* ``profile BENCH`` — wall-clock phase profile of one simulation.
* ``lint`` — AST invariant analysis over ``src/repro`` (transfer-surface
  completeness, determinism, content-hash axes, obs schema); exit 1 on
  non-baseline findings.  See docs/ANALYSIS.md.

``run`` additionally takes ``--inject SPEC`` (repeatable) to inject
faults: ``dead:CORE``, ``kill:CORE@CYCLE``, or ``link:SRC-DST:EXTRA``
(docs/RESILIENCE.md has the grammar).  Flag combinations are validated
up front — conflicting or out-of-range ``--sample-*``/``--inject``
values fail with an actionable message before any simulation starts.

Simulating commands take ``--jobs N`` (parallel workers for cold
points) with ``--pool/--no-pool`` (warm persistent worker pool vs one
process per job) and ``--schedule ljf|fifo`` (dispatch order),
``--cache-dir DIR`` and ``--no-cache`` (the persistent result store
under ``.repro-cache/`` — see docs/EXECUTION.md),
``--ff-trace/--no-ff-trace`` (shared fast-forward traces for sampled
runs, recorded once per benchmark/schedule and replayed by every
composition — on by default, disabled by ``--no-cache`` unless
``--ff-trace`` asks for it explicitly), plus ``--trace-out FILE``
(JSONL event trace) and ``--metrics`` (print the metrics registry) —
see docs/OBSERVABILITY.md.

``cache gc`` prunes the persistent cache (result records and
fast-forward traces; the scheduler's duration sidecar is kept) by
size and/or age: ``repro cache gc --max-bytes 500M --max-age-days 30``
(``--dry-run`` reports the plan without deleting).

``run``, ``sweep`` and the fig6-derived figures additionally take
``--sample`` (with ``--sample-ff/--sample-window/--sample-warmup``) to
run TFlex points under the sampled-simulation engine — interpreter
fast-forward between detailed windows; see docs/PERFORMANCE.md for the
accuracy/speedup trade-off.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_list(args) -> int:
    from repro.harness import format_table
    from repro.workloads import BENCHMARKS

    rows = [[b.name, b.category, b.ilp] for b in
            sorted(BENCHMARKS.values(), key=lambda b: (b.category, b.name))]
    print(format_table(["benchmark", "category", "ilp"], rows,
                       title="26-benchmark suite (paper Table 1)"))
    return 0


def _cmd_run(args) -> int:
    from repro.harness import run_edge_benchmark, run_risc_benchmark

    if args.machine == "ooo":
        result = run_risc_benchmark(args.bench, scale=args.scale)
        print(f"{args.bench} on OoO baseline: {result.cycles} cycles, "
              f"{result.insts} insts, {result.mispredictions} mispredicts")
        return 0
    sampling = _sampling_from_args(args)
    if sampling and args.machine == "trips":
        print("repro: --sample applies to TFlex compositions only; "
              "the TRIPS baseline always runs in full detail",
              file=sys.stderr)
        sampling = None
    faults = None
    if getattr(args, "inject", None):
        from repro.resil import FaultSchedule, parse_inject

        faults = FaultSchedule(tuple(parse_inject(text)
                                     for text in args.inject)).spec_items()
    run = run_edge_benchmark(args.bench, ncores=args.cores,
                             trips=(args.machine == "trips"),
                             scale=args.scale, sampling=sampling,
                             faults=faults)
    print(f"{args.bench} on {run.label}:")
    print(run.stats.summary())
    print(run.power.table())
    if run.resil:
        info = run.resil
        print(f"faults: {len(info['injected'])} injected, "
              f"{len(info['recoveries'])} recoveries, "
              f"{len(info['segments'])} segments")
        for rec in info["recoveries"]:
            print(f"  cycle {rec['cycle']}: core {rec['core']} died, "
                  f"{len(rec['old_cores'])} -> {len(rec['new_cores'])} cores "
                  f"in {rec['recovery_cycles']} cycles "
                  f"({rec['blocks_lost']} blocks lost, "
                  f"IPC {rec['ipc_before']:.2f} -> "
                  + (f"{rec['ipc_after']:.2f})" if rec["ipc_after"]
                     is not None else "n/a)"))
    if run.sampling:
        info = run.sampling
        print(f"sampled: {info['windows']} windows, "
              f"{info['window_insts']}/{info['total_insts']} insts in "
              f"detail, IPC estimate {info['ipc_estimate']:.3f}"
              + ("" if info["ipc_rel_stddev"] is None else
                 f" (+/-{info['ipc_rel_stddev']:.1%} window spread)"))
    return 0


def _cmd_sweep(args) -> int:
    from repro.exec import JobSpec
    from repro.harness import format_table, prewarm_specs, run_edge_benchmark

    core_counts = (1, 2, 4, 8, 16, 32)
    sampling = _sampling_from_args(args)
    if args.jobs > 1:
        prewarm_specs([JobSpec.edge(args.bench, ncores=n, scale=args.scale,
                                    sampling=sampling)
                       for n in core_counts],
                      jobs=args.jobs, progress=True)
    rows = []
    base = None
    for ncores in core_counts:
        run = run_edge_benchmark(args.bench, ncores=ncores, scale=args.scale,
                                 sampling=sampling)
        base = base or run.cycles
        rows.append([ncores, run.cycles, round(base / run.cycles, 2),
                     round(run.stats.ipc, 2), round(run.power.total, 2)])
    print(format_table(["cores", "cycles", "speedup", "IPC", "watts"], rows,
                       title=f"composition sweep: {args.bench}"))
    return 0


def _cmd_disasm(args) -> int:
    from repro.workloads import BENCHMARKS

    program, __, __k = BENCHMARKS[args.bench].edge_program(args.scale)
    print(program.disassemble())
    return 0


def _cmd_timeline(args) -> int:
    from repro.tflex import TFlexSystem, rectangle, render_timeline, tflex_config
    from repro.workloads import BENCHMARKS

    program, __, __k = BENCHMARKS[args.bench].edge_program(args.scale)
    cfg = tflex_config(args.cores)
    system = TFlexSystem(cfg)
    proc = system.compose(rectangle(cfg, args.cores), program)
    proc.enable_block_trace()
    system.run()
    print(render_timeline(proc.block_trace[:args.blocks]))
    print()
    print(proc.stats.summary())
    return 0


def _cmd_profile(args) -> int:
    import time

    import repro.obs
    from repro.exec import JobSpec
    from repro.harness.runner import simulate_spec

    spec = JobSpec.edge(args.bench, ncores=args.cores,
                        trips=(args.machine == "trips"), scale=args.scale)
    obs = repro.obs.configure(profile=True)
    try:
        started = time.perf_counter()
        result = simulate_spec(spec)
        host = time.perf_counter() - started
        print(f"{args.bench} on {result.label}: {result.cycles} cycles "
              f"simulated in {host:.2f}s host time")
        print()
        print(obs.profiler.table())
    finally:
        repro.obs.reset()
    return 0


def _cmd_figure(args) -> int:
    from repro import harness

    progress = args.jobs > 1
    benchmarks = args.benchmarks   # None -> the full suite
    if args.command == "fig5":
        print(harness.fig5_baseline(scale=args.scale, benchmarks=benchmarks,
                                    jobs=args.jobs, progress=progress).render())
        return 0
    if args.command == "fig9":
        print(harness.fig9_protocols(scale=args.scale, benchmarks=benchmarks,
                                     jobs=args.jobs, progress=progress).render())
        return 0
    fig6 = harness.fig6_performance(scale=args.scale, benchmarks=benchmarks,
                                    jobs=args.jobs, progress=progress,
                                    sampling=_sampling_from_args(args))
    if args.command == "fig6":
        print(fig6.render())
    elif args.command == "fig7":
        print(harness.fig7_area(fig6).render())
    elif args.command == "fig8":
        print(harness.fig8_power(fig6).render())
    elif args.command == "fig10":
        print(harness.fig10_multiprogramming(fig6).render())
    elif args.command == "table2":
        print(harness.table2_area_power(fig6).render())
    return 0


def _cmd_search(args) -> int:
    import json

    from repro.harness import fig_best
    from repro.search import HalvingConfig
    from repro.search.objective import OBJECTIVE_NAMES

    wanted = args.objectives or ["all"]
    if "all" in wanted:
        wanted = list(OBJECTIVE_NAMES)
    config = HalvingConfig(eta=args.eta, seed=args.seed,
                           max_candidates=args.max_candidates)
    result = fig_best(objectives=wanted, scale=args.scale,
                      benchmarks=args.benchmarks, jobs=args.jobs,
                      progress=args.jobs > 1, config=config)
    print(result.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            json.dump(result.payload(), sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"search result written to {args.out}")
    return 0


def _cmd_resil(args) -> int:
    import json

    from repro.harness import figR_degradation

    result = figR_degradation(
        target_cores=args.cores, max_dead=args.max_dead,
        benchmarks=args.benchmarks, seed=args.seed, scale=args.scale,
        jobs=args.jobs, progress=args.jobs > 1)
    print(result.render())
    if not result.monotone_trend():
        print("repro: warning: degradation curve is not monotone — a "
              "benchmark in the sweep gains from smaller compositions "
              "(see docs/RESILIENCE.md)", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            json.dump(result.payload(), sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"degradation curve written to {args.out}")
    return 0


def _cmd_cache(args) -> int:
    import pathlib

    from repro.exec.store import gc_cache
    from repro.harness import resolve_cache_dir

    root = (pathlib.Path(args.cache_dir) if args.cache_dir
            else resolve_cache_dir())
    report = gc_cache(root, max_bytes=args.max_bytes_parsed,
                      max_age_days=args.max_age_days, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"cache gc: {root}")
    print(f"  scanned {report['scanned']} entries "
          f"({report['scanned_bytes']} bytes)")
    print(f"  {verb} {report['removed']} entries "
          f"({report['removed_bytes']} bytes), "
          f"kept {report['kept']} ({report['kept_bytes']} bytes)")
    if args.dry_run:
        for path in report["removed_paths"]:
            print(f"    {path}")
    return 0


def _cmd_lint(args) -> int:
    import pathlib

    from repro.analysis import LintError, run_lint
    from repro.analysis.baseline import write_baseline

    if args.root is not None:
        root = pathlib.Path(args.root)
    else:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent

    baseline = args.baseline
    if baseline is None:
        default = pathlib.Path("analysis") / "baseline.json"
        if default.is_file():
            baseline = default
    elif baseline == "none":
        baseline = None

    try:
        if args.write_baseline:
            report = run_lint(root, rules=args.rules_parsed)
            path = args.baseline or str(
                pathlib.Path("analysis") / "baseline.json")
            write_baseline(path, report.findings)
            print(f"repro lint: wrote {len(report.findings)} finding(s) "
                  f"to {path} — fill in the reasons or fix them")
            return 0
        report = run_lint(root, baseline_path=baseline,
                          rules=args.rules_parsed)
    except LintError as exc:
        print(f"repro lint: internal error: {exc}", file=sys.stderr)
        return 3

    rendered = (report.to_json() if args.format == "json"
                else report.render_text())
    if args.out:
        pathlib.Path(args.out).write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    return report.exit_code


def _add_sample_flags(sub_parser) -> None:
    """Sampled-simulation knobs (see docs/PERFORMANCE.md)."""
    sub_parser.add_argument(
        "--sample", action="store_true",
        help="sampled simulation: interpreter fast-forward with "
             "periodic detailed windows (TFlex points only)")
    sub_parser.add_argument(
        "--sample-ff", type=int, default=448, metavar="BLOCKS",
        help="blocks fast-forwarded between detailed windows (default 448)")
    sub_parser.add_argument(
        "--sample-window", type=int, default=40, metavar="BLOCKS",
        help="measured blocks per detailed window (default 40)")
    sub_parser.add_argument(
        "--sample-warmup", type=int, default=8, metavar="BLOCKS",
        help="warm-up blocks run in detail before each window's "
             "measurement mark (default 8)")


def _sampling_from_args(args) -> dict | None:
    """The JobSpec sampling mapping for --sample, or None without it."""
    if not getattr(args, "sample", False):
        return None
    return {"ff_blocks": args.sample_ff,
            "window_blocks": args.sample_window,
            "warmup_blocks": args.sample_warmup}


def _add_exec_flags(sub_parser, jobs: bool = True) -> None:
    """Execution-engine knobs shared by the simulating subcommands."""
    if jobs:
        sub_parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for cold simulation points (default 1)")
        pool_group = sub_parser.add_mutually_exclusive_group()
        pool_group.add_argument(
            "--pool", dest="pool", action="store_true", default=True,
            help="serve jobs from a warm persistent worker pool (default)")
        pool_group.add_argument(
            "--no-pool", dest="pool", action="store_false",
            help="spawn one fresh worker process per job")
        sub_parser.add_argument(
            "--schedule", choices=("ljf", "fifo"), default="ljf",
            help="cold-job dispatch order: longest-job-first from learned "
                 "duration estimates, or submission order (default ljf)")
    sub_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result store location (default .repro-cache)")
    sub_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result store for this invocation")
    ff_group = sub_parser.add_mutually_exclusive_group()
    ff_group.add_argument(
        "--ff-trace", dest="ff_trace", action="store_true", default=None,
        help="record/replay shared fast-forward traces for sampled runs "
             "(default; recorded once per benchmark+schedule under "
             "<cache-dir>/traces and replayed by every composition)")
    ff_group.add_argument(
        "--no-ff-trace", dest="ff_trace", action="store_false",
        help="interpret every sampled run's fast-forward live")
    sub_parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a JSONL event trace of this invocation to FILE")
    sub_parser.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry when the command finishes")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composable Lightweight Processors (TFlex) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run_p = sub.add_parser("run", help="run one benchmark")
    run_p.add_argument("bench")
    run_p.add_argument("--cores", type=int, default=8,
                       help="composition size (power of two up to 32)")
    run_p.add_argument("--machine", choices=("tflex", "trips", "ooo"),
                       default="tflex")
    run_p.add_argument("--scale", type=int, default=1)
    run_p.add_argument(
        "--inject", action="append", metavar="SPEC",
        help="inject a fault: dead:CORE, kill:CORE@CYCLE, or "
             "link:SRC-DST:EXTRA[:NET] (repeatable; TFlex only)")
    _add_sample_flags(run_p)
    _add_exec_flags(run_p, jobs=False)

    sweep_p = sub.add_parser("sweep", help="composition sweep for one benchmark")
    sweep_p.add_argument("bench")
    sweep_p.add_argument("--scale", type=int, default=1)
    _add_sample_flags(sweep_p)
    _add_exec_flags(sweep_p)

    disasm_p = sub.add_parser("disasm", help="print compiled hyperblocks")
    disasm_p.add_argument("bench")
    disasm_p.add_argument("--scale", type=int, default=1)

    tl_p = sub.add_parser("timeline", help="block-pipeline timeline (figure 2 view)")
    tl_p.add_argument("bench")
    tl_p.add_argument("--cores", type=int, default=8)
    tl_p.add_argument("--blocks", type=int, default=16)
    tl_p.add_argument("--scale", type=int, default=1)

    prof_p = sub.add_parser(
        "profile", help="wall-clock phase profile of one simulation")
    prof_p.add_argument("bench")
    prof_p.add_argument("--cores", type=int, default=8,
                        help="composition size (power of two up to 32)")
    prof_p.add_argument("--machine", choices=("tflex", "trips"),
                        default="tflex")
    prof_p.add_argument("--scale", type=int, default=1)

    from repro.search.objective import OBJECTIVE_NAMES

    search_p = sub.add_parser(
        "search", help="BEST-composition search (successive halving)")
    search_p.add_argument(
        "--objective", action="append", dest="objectives",
        choices=OBJECTIVE_NAMES + ("all",), metavar="NAME",
        help=f"objective to maximize: one of {', '.join(OBJECTIVE_NAMES)} "
             f"or all (repeatable; default all)")
    search_p.add_argument("--scale", type=int, default=1)
    search_p.add_argument("--bench", action="append", dest="benchmarks",
                          metavar="NAME",
                          help="restrict the search to this benchmark "
                               "(repeatable; default: the full suite)")
    search_p.add_argument("--eta", type=int, default=2,
                          help="promotion factor: each rung keeps the top "
                               "1/eta fraction of candidates (default 2)")
    search_p.add_argument("--seed", type=int, default=2007,
                          help="seed for the (optional) candidate subsample")
    search_p.add_argument("--max-candidates", type=int, default=None,
                          metavar="N",
                          help="deterministically subsample the space down "
                               "to N candidates before rung 0")
    search_p.add_argument("--out", default=None, metavar="FILE",
                          help="write the BEST line and work accounting "
                               "as JSON")
    _add_exec_flags(search_p)

    resil_p = sub.add_parser(
        "resil", help="dead-core degradation sweep (figure R)")
    resil_p.add_argument("--cores", type=int, default=16,
                         help="target composition size (default 16)")
    resil_p.add_argument("--max-dead", type=int, default=6,
                         help="largest dead-core count swept (default 6)")
    resil_p.add_argument("--seed", type=int, default=2007,
                         help="seed for the dead-core permutation")
    resil_p.add_argument("--scale", type=int, default=1)
    resil_p.add_argument("--bench", action="append", dest="benchmarks",
                         metavar="NAME",
                         help="restrict the sweep to this benchmark "
                              "(repeatable; default: ammp, conv, equake)")
    resil_p.add_argument("--out", default=None, metavar="FILE",
                         help="write the degradation curve as JSON")
    _add_exec_flags(resil_p)

    cache_p = sub.add_parser(
        "cache", help="persistent store maintenance")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    gc_p = cache_sub.add_parser(
        "gc", help="prune cached results and fast-forward traces by "
                   "age and total size")
    gc_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="store location to prune (default .repro-cache)")
    gc_p.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="prune oldest entries until the store fits in SIZE "
             "(accepts K/M/G suffixes, e.g. 512M)")
    gc_p.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="prune entries older than DAYS")
    gc_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be pruned without deleting anything")

    lint_p = sub.add_parser(
        "lint", help="static invariant analysis over src/repro "
                     "(transfer surfaces, determinism, hash axes, "
                     "obs schema — see docs/ANALYSIS.md)")
    lint_p.add_argument(
        "--root", default=None, metavar="DIR",
        help="source tree to analyse (default: the installed repro "
             "package directory)")
    lint_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)")
    lint_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the report to FILE (same format)")
    lint_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="grandfathered-findings file (default: analysis/baseline.json "
             "when present; pass 'none' to ignore it)")
    lint_p.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0")
    lint_p.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule-id prefixes to run, e.g. REP1,REP204 "
             "(default: all)")

    for fig in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2"):
        fig_p = sub.add_parser(fig, help=f"regenerate {fig}")
        fig_p.add_argument("--scale", type=int, default=1)
        fig_p.add_argument("--bench", action="append", dest="benchmarks",
                           metavar="NAME",
                           help="restrict to this benchmark (repeatable; "
                                "default: the full suite)")
        if fig in ("fig6", "fig7", "fig8", "fig10", "table2"):
            _add_sample_flags(fig_p)
        _add_exec_flags(fig_p)
    return parser


def _validate(parser: argparse.ArgumentParser, args) -> None:
    """Check flag values and combinations up front, so misuse fails in
    milliseconds with an actionable message instead of asserting deep
    inside a multi-minute simulation."""
    if getattr(args, "sample", False):
        if args.sample_ff < 1:
            parser.error(f"--sample-ff must be >= 1, got {args.sample_ff}")
        if args.sample_window < 1:
            parser.error(
                f"--sample-window must be >= 1, got {args.sample_window}")
        if args.sample_warmup < 0:
            parser.error(
                f"--sample-warmup must be >= 0, got {args.sample_warmup}")
        if args.sample_warmup >= args.sample_window:
            parser.error(
                f"--sample-warmup ({args.sample_warmup}) must be smaller "
                f"than --sample-window ({args.sample_window}): warm-up "
                f"blocks run unmeasured before each window, so a warm-up "
                f"that long leaves the window mostly unmeasured — raise "
                f"--sample-window or lower --sample-warmup")
    elif any(getattr(args, name, None) is not None
             and getattr(args, name) != default
             for name, default in (("sample_ff", 448),
                                   ("sample_window", 40),
                                   ("sample_warmup", 8))):
        parser.error("--sample-ff/--sample-window/--sample-warmup have no "
                     "effect without --sample")

    if getattr(args, "inject", None):
        if args.machine != "tflex":
            parser.error(f"--inject targets TFlex compositions; it cannot "
                         f"combine with --machine {args.machine}")
        if getattr(args, "sample", False):
            parser.error("--inject cannot combine with --sample: a "
                         "recomposition inside a fast-forward region is "
                         "undefined — drop one of the two")
        from repro.resil import MAX_CYCLES, FaultSchedule, parse_inject
        from repro.tflex import tflex_config

        try:
            schedule = FaultSchedule(tuple(parse_inject(text)
                                           for text in args.inject))
            schedule.validate(tflex_config(args.cores),
                              max_cycles=MAX_CYCLES)
        except ValueError as exc:
            parser.error(f"--inject: {exc}")

    if args.command == "search":
        if args.eta < 2:
            parser.error(f"--eta must be >= 2 (each rung has to eliminate "
                         f"something), got {args.eta}")
        if args.max_candidates is not None and args.max_candidates < 1:
            parser.error(f"--max-candidates must be >= 1, "
                         f"got {args.max_candidates}")

    if args.command == "lint":
        args.rules_parsed = None
        if args.rules:
            args.rules_parsed = tuple(
                r.strip() for r in args.rules.split(",") if r.strip())
            bad = [r for r in args.rules_parsed if not r.startswith("REP")]
            if bad:
                parser.error(f"--rules entries must be REP-prefixed rule "
                             f"ids or prefixes, got {', '.join(bad)}")

    if args.command == "cache":
        from repro.exec.store import parse_size

        args.max_bytes_parsed = None
        if args.max_bytes is not None:
            try:
                args.max_bytes_parsed = parse_size(args.max_bytes)
            except ValueError as exc:
                parser.error(f"--max-bytes: {exc}")
        if args.max_age_days is not None and args.max_age_days < 0:
            parser.error(f"--max-age-days must be >= 0, "
                         f"got {args.max_age_days}")

    if args.command == "resil":
        from repro.tflex.placement import SHAPES

        if args.cores not in SHAPES:
            parser.error(
                f"--cores must be a power of two up to 32, got {args.cores}")
        if not 0 < args.max_dead < args.cores:
            parser.error(
                f"--max-dead must be between 1 and {args.cores - 1} "
                f"(at least one core has to survive on a "
                f"{args.cores}-core chip), got {args.max_dead}")


def _configure_store(args) -> None:
    """Apply --cache-dir/--no-cache/--ff-trace; commands without the
    flags (list, disasm, timeline) leave the store configuration
    untouched."""
    if not hasattr(args, "no_cache"):
        return
    from repro.harness import configure_cache

    configure_cache(cache_dir=args.cache_dir, enabled=not args.no_cache)

    # The fast-forward trace store rides the same cache directory.  It
    # follows --no-cache (a no-disk invocation stays no-disk) unless
    # --ff-trace explicitly asks for traces; the choice is mirrored
    # into the environment so executor workers — which never see the
    # parsed flags — resolve the same store.
    import pathlib

    from repro.sample.trace import (TRACE_DIR_ENV, TRACE_ENABLED_ENV,
                                    configure_ff_trace, resolve_trace_dir)

    ff_trace = getattr(args, "ff_trace", None)
    enabled = ff_trace if ff_trace is not None else not args.no_cache
    configure_ff_trace(
        enabled=enabled,
        cache_dir=(pathlib.Path(args.cache_dir) / "traces"
                   if args.cache_dir else None))
    os.environ[TRACE_ENABLED_ENV] = "1" if enabled else "0"
    if enabled:
        os.environ[TRACE_DIR_ENV] = str(resolve_trace_dir())


def _configure_exec(args) -> None:
    """Apply --pool/--no-pool/--schedule as process-wide executor
    defaults; commands without the flags leave them untouched."""
    if not hasattr(args, "schedule"):
        return
    from repro.harness import configure_exec

    configure_exec(pool=args.pool, schedule=args.schedule)


def _configure_obs(args) -> None:
    """Apply --trace-out/--metrics by installing the process-global
    observability bundle; commands without the flags leave it alone."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics", False):
        import repro.obs

        repro.obs.configure(trace_path=args.trace_out, metrics=args.metrics)


def _finalize_obs(args) -> None:
    """End-of-run bookkeeping: append the ``metrics.snapshot`` event to
    the trace, close sinks (restoring the inactive default bundle, so
    later in-process work cannot write to a closed trace file), and
    print the ``--metrics`` report."""
    import repro.obs

    obs = repro.obs.current()
    if not obs.active:
        return
    if obs.bus.active:
        obs.bus.deliver(obs.snapshot_event())
    report = obs.metrics.render() if getattr(args, "metrics", False) else None
    repro.obs.reset()
    if report is not None:
        print()
        print(report)


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "disasm":
        return _cmd_disasm(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "resil":
        return _cmd_resil(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_figure(args)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)

    # _configure_store mirrors the ff-trace choice into the environment
    # for executor workers; restore it on exit so in-process callers
    # (tests, notebooks) don't leak one invocation's choice into the
    # next.
    from repro.sample.trace import TRACE_DIR_ENV, TRACE_ENABLED_ENV

    saved_env = {name: os.environ.get(name)
                 for name in (TRACE_ENABLED_ENV, TRACE_DIR_ENV)}
    try:
        try:
            _configure_store(args)
        except OSError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        _configure_exec(args)
        _configure_obs(args)
        try:
            return _dispatch(args)
        finally:
            _finalize_obs(args)
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
