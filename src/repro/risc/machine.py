"""Trace-driven out-of-order superscalar timing model (the "Core 2"
stand-in for figure 5).

The interpreter produces the dynamic instruction trace; this model
replays it through a 4-wide out-of-order pipeline: fetch along the
predicted path (gshare + BTB + RAS, with a fixed redirect penalty on
mispredictions), register renaming limited by a reorder buffer,
dataflow-ordered issue constrained by issue width and functional-unit
counts, a two-level cache hierarchy on the load path, and 4-wide
in-order commit.  Trace-driven timing is a standard approximation that
preserves the dependence/bandwidth/misprediction behaviour the
comparison needs without a second execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.cache import CacheBank
from repro.risc.interp import RiscInterpreter, TraceEntry
from repro.risc.isa import NUM_RISC_REGS, RiscProgram


@dataclass(frozen=True)
class OoOConfig:
    """A Core 2-class out-of-order core."""

    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 96
    decode_depth: int = 3              # fetch -> dispatch latency
    mispredict_penalty: int = 12

    int_alus: int = 3
    mul_units: int = 1
    div_units: int = 1
    fp_units: int = 2
    mem_ports: int = 2

    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l1_hit: int = 3
    l2_bytes: int = 4 * 1024 * 1024
    l2_assoc: int = 8
    l2_hit: int = 12
    mem_latency: int = 150

    gshare_bits: int = 12
    btb_entries: int = 512
    ras_entries: int = 16


@dataclass
class OoOStats:
    cycles: int = 0
    insts: int = 0
    branches: int = 0
    mispredictions: int = 0
    l1_misses: int = 0
    l2_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.insts / self.cycles if self.cycles else 0.0


class _BranchPredictor:
    """gshare direction + BTB indirect targets + return address stack."""

    def __init__(self, cfg: OoOConfig) -> None:
        # Counters start weakly taken: loop back-edges dominate, and a
        # cold counter should not cost a misprediction per history value.
        self._pht = [2] * (1 << cfg.gshare_bits)
        self._mask = (1 << cfg.gshare_bits) - 1
        self._history = 0
        self._btb: dict[int, int] = {}
        self._btb_entries = cfg.btb_entries
        self._ras: list[int] = []
        self._ras_entries = cfg.ras_entries

    def predict(self, entry: TraceEntry) -> bool:
        """True if the fetch unit follows this branch correctly."""
        inst = entry.inst
        op = inst.op
        if op in ("BEQZ", "BNEZ"):
            index = (entry.pc ^ self._history) & self._mask
            predicted_taken = self._pht[index] >= 2
            counter = self._pht[index]
            if entry.taken:
                self._pht[index] = min(3, counter + 1)
            else:
                self._pht[index] = max(0, counter - 1)
            self._history = ((self._history << 1) | int(entry.taken)) & self._mask
            if predicted_taken != entry.taken:
                return False
            if entry.taken:
                # Direction right; the target still needs a BTB hit.
                return self._btb_lookup(entry.pc, entry.target_pc)
            return True
        if op == "B":
            return self._btb_lookup(entry.pc, entry.target_pc)
        if op == "JAL":
            if len(self._ras) >= self._ras_entries:
                self._ras.pop(0)
            self._ras.append(entry.pc + 1)
            return self._btb_lookup(entry.pc, entry.target_pc)
        if op == "JR":
            predicted = self._ras.pop() if self._ras else None
            return predicted == entry.target_pc
        return True    # HALT

    def _btb_lookup(self, pc: int, target: Optional[int]) -> bool:
        index = pc % self._btb_entries
        hit = self._btb.get(index) == target
        self._btb[index] = target
        return hit


class OoOCore:
    """Run a RISC program and report out-of-order timing."""

    def __init__(self, cfg: Optional[OoOConfig] = None) -> None:
        self.cfg = cfg if cfg is not None else OoOConfig()

    def run(self, program: RiscProgram, max_insts: int = 5_000_000
            ) -> tuple[OoOStats, RiscInterpreter]:
        """Returns (timing stats, the interpreter holding final state)."""
        interp = RiscInterpreter(program)
        result = interp.run(max_insts=max_insts, record_trace=True)
        stats = self._time_trace(result.trace)
        stats.insts = result.insts_executed
        return stats, interp

    # ------------------------------------------------------------------
    # Timing replay
    # ------------------------------------------------------------------

    def _time_trace(self, trace: list[TraceEntry]) -> OoOStats:
        cfg = self.cfg
        stats = OoOStats()
        predictor = _BranchPredictor(cfg)
        l1 = CacheBank(cfg.l1_bytes, cfg.l1_assoc, 64, name="ooo-l1")
        l2 = CacheBank(cfg.l2_bytes, cfg.l2_assoc, 64, name="ooo-l2")

        reg_ready = [0] * NUM_RISC_REGS
        fetch_cycle = 0
        fetched_this_cycle = 0
        issue_count: dict[int, int] = {}
        unit_free = {
            "alu": [0] * cfg.int_alus,
            "mul": [0] * cfg.mul_units,
            "div": [0] * cfg.div_units,
            "fp": [0] * cfg.fp_units,
            "fmul": [0] * cfg.fp_units,
            "fdiv": [0] * cfg.div_units,
            "load": [0] * cfg.mem_ports,
            "store": [0] * cfg.mem_ports,
            "branch": [0] * cfg.int_alus,
            "jump": [0] * cfg.int_alus,
            "halt": [0] * cfg.int_alus,
        }
        commit_times: list[int] = []      # ring of recent commits (ROB model)
        commit_cycle = 0
        commit_this_cycle = 0
        # Store queue for forwarding: addr -> (data_ready, seq).
        recent_stores: dict[int, int] = {}

        for seq, entry in enumerate(trace):
            inst = entry.inst

            # ---------------- fetch ----------------
            if fetched_this_cycle >= cfg.fetch_width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            fetch = fetch_cycle
            fetched_this_cycle += 1

            # ---------------- dispatch (ROB gate) ----------------
            dispatch = fetch + cfg.decode_depth
            if len(commit_times) >= cfg.rob_entries:
                dispatch = max(dispatch, commit_times[-cfg.rob_entries])

            # ---------------- issue ----------------
            ready = dispatch
            for reg in inst.sources():
                ready = max(ready, reg_ready[reg])
            opclass = inst.opclass
            units = unit_free[opclass]
            best = min(range(len(units)), key=lambda u: units[u])
            issue = max(ready, units[best])
            while issue_count.get(issue, 0) >= cfg.issue_width:
                issue += 1
            issue_count[issue] = issue_count.get(issue, 0) + 1
            units[best] = issue + 1

            # ---------------- execute ----------------
            latency = inst.latency
            if opclass == "load":
                latency = self._load_latency(entry.addr, l1, l2, stats,
                                             recent_stores, seq)
            complete = issue + latency
            if opclass == "store":
                line = entry.addr & ~63
                recent_stores[line] = complete
                if len(recent_stores) > 64:
                    recent_stores.pop(next(iter(recent_stores)))
                l1.access(0, entry.addr, write=True) or l1.fill(0, entry.addr)

            dest = inst.destination()
            if dest is not None and dest != 0:
                reg_ready[dest] = complete

            # ---------------- branch resolution ----------------
            if inst.is_branch and inst.op != "HALT":
                stats.branches += 1
                if not predictor.predict(entry):
                    stats.mispredictions += 1
                    fetch_cycle = complete + cfg.mispredict_penalty
                    fetched_this_cycle = 0

            # ---------------- commit (in order) ----------------
            commit = max(complete + 1, commit_cycle)
            if commit == commit_cycle and commit_this_cycle >= cfg.commit_width:
                commit += 1
            if commit > commit_cycle:
                commit_cycle = commit
                commit_this_cycle = 1
            else:
                commit_this_cycle += 1
            commit_times.append(commit_cycle)
            if len(commit_times) > cfg.rob_entries * 2:
                del commit_times[:cfg.rob_entries]

        stats.cycles = commit_cycle
        return stats

    def _load_latency(self, addr: int, l1: CacheBank, l2: CacheBank,
                      stats: OoOStats, recent_stores: dict[int, int],
                      seq: int) -> int:
        cfg = self.cfg
        line = addr & ~63
        if line in recent_stores:
            # Store-to-load forwarding within the window.
            return cfg.l1_hit
        if l1.access(0, addr):
            return cfg.l1_hit
        stats.l1_misses += 1
        l1.fill(0, addr)
        if l2.access(0, addr):
            return cfg.l1_hit + cfg.l2_hit
        stats.l2_misses += 1
        l2.fill(0, addr)
        return cfg.l1_hit + cfg.l2_hit + cfg.mem_latency
