"""A small conventional RISC ISA (the figure-5 baseline target).

Sixty-four integer/FP registers (r0 hardwired to zero), three-address
register arithmetic with immediate forms, load/store with displacement,
compare-to-register (SLT-style), conditional branches on zero, JAL/JR
for calls, and HALT.  Programs are linear instruction lists with labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util import wrap64


NUM_RISC_REGS = 64

#: Opcode -> (class, latency).  Classes: alu, mul, div, fp, fmul, fdiv,
#: load, store, branch, jump, halt.
OPS: dict[str, tuple[str, int]] = {
    "ADD": ("alu", 1), "SUB": ("alu", 1), "AND": ("alu", 1), "OR": ("alu", 1),
    "XOR": ("alu", 1), "SHL": ("alu", 1), "SHR": ("alu", 1), "SRA": ("alu", 1),
    "SLT": ("alu", 1), "SLE": ("alu", 1), "SEQ": ("alu", 1), "SNE": ("alu", 1),
    "NOT": ("alu", 1), "NEG": ("alu", 1), "LI": ("alu", 1), "MOV": ("alu", 1),
    "MUL": ("mul", 3), "DIV": ("div", 12), "MOD": ("div", 12),
    "FADD": ("fp", 4), "FSUB": ("fp", 4), "FABS": ("fp", 2), "FNEG": ("fp", 2),
    "ITOF": ("fp", 2), "FTOI": ("fp", 2),
    "FEQ": ("fp", 2), "FLT": ("fp", 2), "FLE": ("fp", 2),
    "FMUL": ("fmul", 4), "FDIV": ("fdiv", 16), "FSQRT": ("fdiv", 16),
    "LD": ("load", 1), "LDF": ("load", 1),
    "ST": ("store", 1), "STF": ("store", 1),
    "B": ("jump", 1), "BEQZ": ("branch", 1), "BNEZ": ("branch", 1),
    "JAL": ("jump", 1), "JR": ("jump", 1),
    "HALT": ("halt", 1),
}


class RiscError(Exception):
    """Malformed RISC program or instruction."""


@dataclass
class RInst:
    """One RISC instruction.

    Fields are used per opcode: ``rd`` destination, ``rs1``/``rs2``
    sources, ``imm`` immediate/displacement, ``target`` label for
    control flow.  For stores, ``rs1`` is the base address register and
    ``rs2`` the data register.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: Optional[int | float] = None
    target: Optional[str] = None

    @property
    def opclass(self) -> str:
        return OPS[self.op][0]

    @property
    def latency(self) -> int:
        return OPS[self.op][1]

    @property
    def is_branch(self) -> bool:
        return self.opclass in ("branch", "jump", "halt")

    def sources(self) -> list[int]:
        """Register numbers read by this instruction."""
        op = self.op
        if op in ("LI", "B", "JAL", "HALT"):
            return []
        if op in ("BEQZ", "BNEZ", "JR", "NOT", "NEG", "MOV", "FABS", "FNEG",
                  "ITOF", "FTOI", "FSQRT", "LD", "LDF"):
            return [self.rs1]
        if op in ("ST", "STF"):
            return [self.rs1, self.rs2]
        if self.imm is not None:    # immediate ALU form
            return [self.rs1]
        return [self.rs1, self.rs2]

    def destination(self) -> Optional[int]:
        if self.op in ("ST", "STF", "B", "BEQZ", "BNEZ", "JR", "HALT"):
            return None
        return self.rd

    def describe(self) -> str:
        parts = [self.op]
        dest = self.destination()
        if dest is not None:
            parts.append(f"r{dest}")
        parts += [f"r{s}" for s in self.sources()]
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"-> {self.target}")
        return " ".join(parts)


@dataclass
class RiscProgram:
    """A linked linear RISC program."""

    name: str = "risc"
    insts: list[RInst] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, bytes] = field(default_factory=dict)
    _next_data: int = 0x10_0000

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        if name in self.labels:
            raise RiscError(f"duplicate label {name!r}")
        self.labels[name] = len(self.insts)

    def emit(self, inst: RInst) -> None:
        if inst.op not in OPS:
            raise RiscError(f"unknown opcode {inst.op!r}")
        self.insts.append(inst)

    def alloc_data(self, nbytes: int, align: int = 8) -> int:
        addr = (self._next_data + align - 1) // align * align
        self._next_data = addr + nbytes
        return addr

    def add_blob(self, raw: bytes) -> int:
        addr = self.alloc_data(len(raw))
        self.data[addr] = raw
        return addr

    def pc_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise RiscError(f"unknown label {label!r}") from None

    def validate(self) -> None:
        for inst in self.insts:
            if inst.target is not None and inst.target not in self.labels:
                raise RiscError(f"{inst.describe()}: undefined label")
            for reg in inst.sources() + ([inst.destination()] if inst.destination() is not None else []):
                if not 0 <= reg < NUM_RISC_REGS:
                    raise RiscError(f"{inst.describe()}: register r{reg}")
        if "main" not in self.labels:
            raise RiscError("no main entry label")

    def disassemble(self) -> str:
        by_pc: dict[int, list[str]] = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for pc, inst in enumerate(self.insts):
            for name in by_pc.get(pc, []):
                lines.append(f"{name}:")
            lines.append(f"  {pc:4d}  {inst.describe()}")
        return "\n".join(lines)


def evaluate_alu(inst: RInst, a, b):
    """Compute an ALU/FP result (shared by interpreter and timing model)."""
    op = inst.op
    if op == "LI":
        return inst.imm
    if op == "MOV":
        return a
    if op == "NOT":
        return wrap64(~int(a))
    if op == "NEG":
        return wrap64(-int(a))
    if op in ("FABS",):
        return abs(float(a))
    if op == "FNEG":
        return -float(a)
    if op == "ITOF":
        return float(int(a))
    if op == "FTOI":
        value = float(a)
        return 0 if value != value else wrap64(int(value))
    if op == "FSQRT":
        import math
        return math.sqrt(a) if a >= 0 else math.nan

    if inst.imm is not None and op not in ("LD", "LDF", "ST", "STF"):
        b = inst.imm
    int_ops = {
        "ADD": lambda: wrap64(int(a) + int(b)),
        "SUB": lambda: wrap64(int(a) - int(b)),
        "MUL": lambda: wrap64(int(a) * int(b)),
        "DIV": lambda: 0 if int(b) == 0 else wrap64(int(int(a) / int(b))),
        "MOD": lambda: 0 if int(b) == 0 else wrap64(int(a) - int(int(a) / int(b)) * int(b)),
        "AND": lambda: int(a) & int(b),
        "OR": lambda: int(a) | int(b),
        "XOR": lambda: int(a) ^ int(b),
        "SHL": lambda: wrap64(int(a) << (int(b) & 63)),
        "SHR": lambda: wrap64((int(a) % (1 << 64)) >> (int(b) & 63)),
        "SRA": lambda: wrap64(int(a) >> (int(b) & 63)),
        "SLT": lambda: int(int(a) < int(b)),
        "SLE": lambda: int(int(a) <= int(b)),
        "SEQ": lambda: int(int(a) == int(b)),
        "SNE": lambda: int(int(a) != int(b)),
    }
    if op in int_ops:
        return int_ops[op]()
    fp_ops = {
        "FADD": lambda: float(a) + float(b),
        "FSUB": lambda: float(a) - float(b),
        "FMUL": lambda: float(a) * float(b),
        "FDIV": lambda: float("inf") if float(b) == 0.0 else float(a) / float(b),
        "FEQ": lambda: int(float(a) == float(b)),
        "FLT": lambda: int(float(a) < float(b)),
        "FLE": lambda: int(float(a) <= float(b)),
    }
    if op in fp_ops:
        return fp_ops[op]()
    raise RiscError(f"evaluate_alu cannot execute {op}")
