"""Conventional RISC ISA and out-of-order superscalar model.

Stands in for the paper's Intel Core 2 measurements (figure 5): the same
kernels, lowered to a linear load/store ISA by
:mod:`repro.compiler.risc_backend`, run on a 4-wide out-of-order core
model with branch prediction and a two-level cache hierarchy.
"""

from repro.risc.isa import RInst, RiscProgram, RiscError
from repro.risc.interp import RiscInterpreter
from repro.risc.machine import OoOCore, OoOConfig, OoOStats

__all__ = [
    "RInst",
    "RiscProgram",
    "RiscError",
    "RiscInterpreter",
    "OoOCore",
    "OoOConfig",
    "OoOStats",
]
