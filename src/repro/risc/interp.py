"""Functional interpreter for the RISC ISA.

Executes a program in order, producing the architectural result and —
for the timing model — the dynamic instruction trace (program counters
and load/store addresses), which the out-of-order model replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.flatmem import FlatMemory
from repro.risc.isa import NUM_RISC_REGS, RInst, RiscError, RiscProgram, evaluate_alu


@dataclass
class TraceEntry:
    """One dynamic instruction for the timing model."""

    pc: int
    inst: RInst
    addr: Optional[int] = None      # effective address for loads/stores
    taken: bool = False             # conditional-branch outcome
    target_pc: Optional[int] = None  # where control went (branches/jumps)


@dataclass
class RiscRunResult:
    insts_executed: int
    halted: bool
    trace: Optional[list[TraceEntry]] = None


class RiscInterpreter:
    """In-order functional execution (golden model + trace source)."""

    def __init__(self, program: RiscProgram,
                 memory: Optional[FlatMemory] = None) -> None:
        program.validate()
        self.program = program
        self.mem = memory if memory is not None else FlatMemory()
        self.mem.load_image(program.data)
        self.regs: list = [0] * NUM_RISC_REGS

    def run(self, max_insts: int = 5_000_000,
            record_trace: bool = False) -> RiscRunResult:
        program = self.program
        regs = self.regs
        pc = program.pc_of("main")
        executed = 0
        trace: Optional[list[TraceEntry]] = [] if record_trace else None

        while True:
            if executed >= max_insts:
                raise RiscError(f"instruction budget exhausted ({max_insts})")
            inst = program.insts[pc]
            executed += 1
            entry = TraceEntry(pc=pc, inst=inst) if record_trace else None
            next_pc = pc + 1
            op = inst.op

            if op == "HALT":
                if record_trace:
                    trace.append(entry)
                return RiscRunResult(executed, True, trace)
            if op in ("LD", "LDF"):
                addr = regs[inst.rs1] + int(inst.imm or 0)
                regs[inst.rd] = self.mem.load(addr, 8, fp=(op == "LDF"))
                if record_trace:
                    entry.addr = addr
            elif op in ("ST", "STF"):
                addr = regs[inst.rs1] + int(inst.imm or 0)
                self.mem.store(addr, 8, regs[inst.rs2], fp=(op == "STF"))
                if record_trace:
                    entry.addr = addr
            elif op == "B":
                next_pc = program.pc_of(inst.target)
            elif op == "BEQZ":
                if regs[inst.rs1] == 0:
                    next_pc = program.pc_of(inst.target)
                    if record_trace:
                        entry.taken = True
            elif op == "BNEZ":
                if regs[inst.rs1] != 0:
                    next_pc = program.pc_of(inst.target)
                    if record_trace:
                        entry.taken = True
            elif op == "JAL":
                regs[inst.rd] = pc + 1
                next_pc = program.pc_of(inst.target)
            elif op == "JR":
                next_pc = regs[inst.rs1]
            else:
                a = regs[inst.rs1]
                b = regs[inst.rs2]
                regs[inst.rd] = evaluate_alu(inst, a, b)

            regs[0] = 0     # r0 stays zero
            if record_trace:
                entry.target_pc = next_pc if next_pc != pc + 1 else None
                trace.append(entry)
            pc = next_pc
