"""Dynamic block instances: the unit of fetch, speculation, and commit.

A :class:`BlockInstance` is one in-flight execution of a static block on
a composed processor: it tracks per-instruction operand buffers,
dispatch/fire state, output-completion counting (the owner core's
bookkeeping), and the speculative-state checkpoints needed to squash it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.isa.block import Block
from repro.isa.instruction import Instruction, OperandSlot
from repro.predictor.bank import Prediction


class BlockState(Enum):
    FETCHING = "fetching"
    EXECUTING = "executing"     # dispatched (possibly partially), issuing
    COMPLETE = "complete"       # all outputs produced, awaiting oldest
    COMMITTING = "committing"   # commit protocol in flight
    COMMITTED = "committed"
    SQUASHED = "squashed"


@dataclass(slots=True)
class BlockInstance:
    """One dynamic execution of a block on a composed processor."""

    gseq: int                      # fetch sequence number within its thread
    block: Block
    addr: int
    owner_index: int               # participating-core index of the owner
    ghist_before: int              # global exit history entering this block
    prediction: Optional[Prediction] = None   # of this block's *next* block
    state: BlockState = BlockState.FETCHING
    proc: object = None            # owning ComposedProcessor (set at fetch)
    decoded: object = None         # DecodedBlock for the fetching composition

    # Execution state, keyed by instruction ID.  Each value is a 3-slot
    # buffer indexed by :class:`OperandSlot` (PRED=0, OP0=1, OP1=2);
    # ``None`` marks an absent operand — real tokens are numbers or the
    # NULL_VALUE sentinel, never ``None``.
    operands: dict[int, list] = field(default_factory=dict)
    dispatched: set[int] = field(default_factory=set)
    fired: set[int] = field(default_factory=set)
    squashed_insts: set[int] = field(default_factory=set)

    # Output completion counting (owner-side).
    writes_done: int = 0
    stores_done: int = 0
    branch_done: bool = False
    resolved_store_slots: set[int] = field(default_factory=set)

    # Branch resolution.
    actual_exit: Optional[int] = None
    actual_next: Optional[int] = None
    actual_kind: Optional[object] = None   # BranchKind

    # Timing marks for the figure-9 breakdowns.
    t_fetch_start: int = 0
    t_fetch_cmd: int = 0
    fetch_parts: dict[str, int] = field(default_factory=dict)
    commit_parts: dict[str, int] = field(default_factory=dict)
    t_complete: int = 0
    t_commit_start: int = 0

    insts_fired_count: int = 0

    # ------------------------------------------------------------------
    # Derived
    # ------------------------------------------------------------------

    @property
    def squashed(self) -> bool:
        return self.state is BlockState.SQUASHED

    @property
    def committed(self) -> bool:
        return self.state is BlockState.COMMITTED

    @property
    def writes_expected(self) -> int:
        return len(self.block.writes)

    @property
    def stores_expected(self) -> int:
        return len(self.block.store_ids)

    @property
    def outputs_complete(self) -> bool:
        return (self.branch_done
                and self.writes_done >= self.writes_expected
                and self.stores_done >= self.stores_expected)

    # ------------------------------------------------------------------
    # Operand buffering
    # ------------------------------------------------------------------

    def buffer_operand(self, iid: int, slot: OperandSlot, value: object) -> None:
        """Stash an arriving operand (may precede dispatch)."""
        ops = self.operands.get(iid)
        if ops is None:
            self.operands[iid] = ops = [None, None, None]
        ops[slot] = value

    def ready_to_fire(self, inst: Instruction) -> bool:
        """True when a dispatched, unfired instruction has its operands
        and a matching predicate (squashes it on a mismatched one)."""
        iid = inst.iid
        if (iid not in self.dispatched or iid in self.fired
                or iid in self.squashed_insts):
            return False
        ops = self.operands.get(iid)
        if inst.pred is not None:
            pred_value = ops[0] if ops is not None else None
            if pred_value is None:
                return False
            if bool(pred_value) != inst.pred:
                self.squashed_insts.add(iid)
                return False
        for slot_no in range(inst.num_operands):
            if ops is None or ops[slot_no + 1] is None:
                return False
        return True

    def operand_values(self, inst: Instruction) -> tuple:
        n = inst.num_operands
        if not n:
            return ()
        ops = self.operands[inst.iid]
        return tuple(ops[1:1 + n])

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<B{self.gseq} {self.block.label}@{self.addr:#x} "
                f"{self.state.value}>")
