"""Per-composition decoded-block cache.

Fetching a block on an N-core composition repeatedly re-derives the same
static facts from the ISA-level :class:`~repro.isa.block.Block`: which
instructions interleave onto which participating core, how they group
into dispatch packets, which register reads resolve at which bank, how
many I-cache lines each core's slice occupies, and how the write set
spreads over the register banks.  All of it depends only on the block
and the composition geometry — never on dynamic state — so a composed
processor decodes each block **once** and replays the
:class:`DecodedBlock` on every subsequent fetch.

The decode is a pure reshaping of data the simulator already computed
per fetch; replaying it is cycle- and stat-identical by construction.
"""

from __future__ import annotations

from repro.isa.block import Block


class DecodedBlock:
    """Placement/dispatch facts for one block on one composition."""

    __slots__ = ("block", "chunk_sizes", "groups", "reads_by_core",
                 "icache_lines", "write_slots", "writes_per_bank")

    def __init__(self, block: Block, ncores: int, num_rf_banks: int,
                 dispatch_width: int, line_size: int) -> None:
        self.block = block

        # Instruction interleaving: instruction ``i`` executes on
        # participating core ``i mod N`` (paper section 4.4), dispatched
        # in packets of ``dispatch_width`` per cycle.
        chunks = [[] for __ in range(ncores)]
        for inst in block.insts:
            chunks[inst.iid % ncores].append(inst)
        self.chunk_sizes = tuple(len(c) for c in chunks)
        self.groups = tuple(
            tuple(tuple(chunk[i:i + dispatch_width])
                  for i in range(0, len(chunk), dispatch_width))
            for chunk in chunks)

        # Register reads resolve at the bank holding the register; bank
        # ``b`` lives on participating core ``b`` (the composition's
        # first cores), so the core index equals the bank index.
        reads = [[] for __ in range(ncores)]
        for r in block.reads:
            reads[r.reg % num_rf_banks].append(r.index)
        self.reads_by_core = tuple(tuple(r) for r in reads)

        # Each core's slice occupies ceil(4 * |chunk| / line) I-cache
        # lines (only meaningful for non-empty slices).
        self.icache_lines = tuple(
            max(1, -(-size * 4 // line_size)) for size in self.chunk_sizes)

        # Write set: (bank, register) per header write slot, plus the
        # per-bank drain depth used by the commit protocol.
        self.write_slots = tuple(
            (wslot.reg % num_rf_banks, wslot.reg) for wslot in block.writes)
        per_bank = [0] * num_rf_banks
        for bank, __ in self.write_slots:
            per_bank[bank] += 1
        self.writes_per_bank = tuple(per_bank)
