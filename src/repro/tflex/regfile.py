"""Register-file banks with cross-block forwarding.

Registers are address-interleaved across the participating cores
(register number modulo bank count), so register bandwidth and capacity
scale with composition size.  Each bank tracks the *pending writes* of
in-flight blocks — declared when a block is fetched, from its header's
write set — and forwards values to younger blocks' reads as producers
execute, without waiting for commit.

A NULL-resolved write performs no architectural update; readers bound to
it chain to the next older writer (or the architectural value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional


class WriteStatus(Enum):
    PENDING = "pending"
    VALUE = "value"
    NULL = "null"


@dataclass
class PendingWrite:
    """A declared, not-yet-committed register write of one block."""

    gseq: int
    reg: int
    status: WriteStatus = WriteStatus.PENDING
    value: object = None
    subscribers: list[Callable[[], None]] = field(default_factory=list)


@dataclass
class RegfileStats:
    reads: int = 0
    writes: int = 0
    forwards: int = 0       # reads satisfied by an in-flight producer
    stalls: int = 0         # reads that had to wait for a producer


class RegfileBank:
    """One register bank of a composed processor.

    The architectural register values live with the processor (they
    survive recomposition); the bank owns the in-flight forwarding
    state.
    """

    def __init__(self, arch_regs: list, name: str = "rf") -> None:
        self.arch = arch_regs
        self.name = name
        self.stats = RegfileStats()
        # reg -> pending writes ordered oldest..youngest.
        self._pending: dict[int, list[PendingWrite]] = {}

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------

    def declare(self, gseq: int, regs: list[int]) -> None:
        """Register a fetched block's write set (ordering: callers must
        declare blocks in increasing gseq)."""
        for reg in regs:
            writers = self._pending.setdefault(reg, [])
            if writers and writers[-1].gseq >= gseq:
                raise ValueError(f"{self.name}: out-of-order declare for r{reg}")
            writers.append(PendingWrite(gseq=gseq, reg=reg))

    def produce(self, gseq: int, reg: int, value: object, null: bool = False) -> None:
        """A block's write arrived (or resolved NULL); wake subscribers."""
        self.stats.writes += 1
        writer = self._find(gseq, reg)
        writer.status = WriteStatus.NULL if null else WriteStatus.VALUE
        writer.value = value
        subscribers, writer.subscribers = writer.subscribers, []
        for callback in subscribers:
            callback()

    def commit(self, gseq: int, reg: int) -> None:
        """Apply a block's write architecturally and retire the entry."""
        writers = self._pending.get(reg, [])
        for i, writer in enumerate(writers):
            if writer.gseq == gseq:
                if writer.status is WriteStatus.PENDING:
                    raise ValueError(f"{self.name}: committing unresolved r{reg}")
                if writer.status is WriteStatus.VALUE:
                    self.arch[reg] = writer.value
                del writers[i]
                if not writers:
                    del self._pending[reg]
                return
        raise KeyError(f"{self.name}: no pending write r{reg} of block {gseq}")

    def squash_from(self, gseq: int) -> None:
        """Drop pending writes of blocks >= gseq (flush).

        Subscribed readers belong to even younger blocks, which the same
        flush squashes, so their callbacks are simply dropped."""
        for reg in list(self._pending):
            writers = [w for w in self._pending[reg] if w.gseq < gseq]
            if writers:
                self._pending[reg] = writers
            else:
                del self._pending[reg]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(self, gseq: int, reg: int, deliver: Callable[[object], None]) -> bool:
        """Resolve a read for a block against older in-flight writers.

        Calls ``deliver(value)`` immediately if the value is available
        (architectural, or forwarded from a resolved producer); otherwise
        subscribes and delivers later.  Returns True if immediate.
        """
        self.stats.reads += 1
        writer = self._youngest_older_writer(gseq, reg)
        if writer is None:
            deliver(self.arch[reg])
            return True
        if writer.status is WriteStatus.VALUE:
            self.stats.forwards += 1
            deliver(writer.value)
            return True
        if writer.status is WriteStatus.NULL:
            # Chain past the null writer as of *its* age.
            return self.read(writer.gseq, reg, deliver)
        self.stats.stalls += 1
        writer.subscribers.append(lambda: self.read(gseq, reg, deliver))
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _find(self, gseq: int, reg: int) -> PendingWrite:
        for writer in self._pending.get(reg, []):
            if writer.gseq == gseq:
                return writer
        raise KeyError(f"{self.name}: no pending write r{reg} of block {gseq}")

    def _youngest_older_writer(self, gseq: int, reg: int) -> Optional[PendingWrite]:
        best = None
        for writer in self._pending.get(reg, []):
            if writer.gseq < gseq:
                best = writer
            else:
                break
        return best

    def pending_count(self) -> int:
        return sum(len(w) for w in self._pending.values())
