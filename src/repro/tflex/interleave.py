"""Pure interleaving hash functions of paper section 4.

These map architectural identifiers onto composition resources:

* block starting address -> owner core (prediction, fetch/commit
  control);
* data address -> D-cache/LSQ bank (XOR-folded line address);
* register number -> register-file bank;
* bank index -> participating-core index hosting it.

They are pure functions of the address and the composition geometry, so
both the cycle simulator (:class:`repro.tflex.processor.ComposedProcessor`)
and the sampled-simulation shadow models (:mod:`repro.sample.shadow`)
compute them from this one definition — a warmed shadow structure is
guaranteed to land in the same bank the detailed window will consult.
"""

from __future__ import annotations

from repro.isa.program import BLOCK_STRIDE


def owner_index_of(addr: int, ncores: int, centralized: bool = False) -> int:
    """Owner core (participating index) of a block address."""
    if centralized:
        return 0
    return (addr // BLOCK_STRIDE) % ncores


def dbank_of(addr: int, line_size: int, num_dbanks: int) -> int:
    """D-cache/LSQ bank for a data address: XOR-folded line address
    modulo the bank count (paper section 4.5)."""
    line = addr // line_size
    return (line ^ (line >> 5) ^ (line >> 10)) % num_dbanks


def num_dbanks_of(ncores: int, dcache_banks) -> int:
    """Resolved D-cache bank count (config may pin it below ncores)."""
    return min(ncores, dcache_banks or ncores)

def num_rf_banks_of(ncores: int, regfile_banks) -> int:
    """Resolved register-file bank count."""
    return min(ncores, regfile_banks or ncores)


def rf_bank_of(reg: int, num_rf_banks: int) -> int:
    return reg % num_rf_banks


def dbank_core_index(bank: int, ncores: int, num_dbanks: int) -> int:
    """Participating-core index hosting D-cache bank ``bank`` (banks
    spread down one edge of the composition)."""
    return bank * max(1, ncores // num_dbanks)
