"""Discrete-event kernel for the cycle-level simulator.

The simulator is event-driven with cycle granularity: components
schedule callbacks at absolute cycles, and idle stretches (cores waiting
on memory, empty pipelines) cost nothing.  Ties are broken by insertion
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class EventQueue:
    """A deterministic min-heap scheduler over integer cycles."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0
        self._stopped = False

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event.

        The fast-path alternative to polling an ``until`` predicate: a
        handler that detects the stop condition (e.g. the last processor
        halting) flags it once, instead of the loop re-evaluating the
        condition before every event.
        """
        self._stopped = True

    def clear_stop(self) -> None:
        """Withdraw a stop request (e.g. new work composed mid-run)."""
        self._stopped = False

    def at(self, cycle: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at an absolute cycle (>= now)."""
        if cycle < self.now:
            raise ValueError(f"scheduling into the past: {cycle} < {self.now}")
        heapq.heappush(self._heap, (cycle, self._seq, fn))
        self._seq += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        self.at(self.now + delay, fn)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run(self, until: Optional[Callable[[], bool]] = None,
            max_cycles: int = 10_000_000) -> bool:
        """Process events in order until the queue drains, :meth:`stop`
        is called, ``until()`` holds, or the cycle budget is exceeded.

        Returns True if stopped (normal completion for simulations) or
        on queue drain, False on budget exhaustion.  Both stop checks
        happen *before* the next event, so a handler that flags the stop
        condition leaves ``now`` at its own cycle — identical to the
        polled ``until`` semantics.
        """
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        events = self.events_processed
        if until is None:
            while heap:
                if self._stopped:
                    break
                cycle, __, fn = pop(heap)
                if cycle > max_cycles:
                    self.now = cycle
                    self.events_processed = events
                    return False
                self.now = cycle
                events += 1
                fn()
            self.events_processed = events
            return True
        while heap:
            if self._stopped or until():
                return True
            cycle, __, fn = pop(heap)
            if cycle > max_cycles:
                self.now = cycle
                return False
            self.now = cycle
            self.events_processed += 1
            fn()
        return True
