"""Discrete-event kernel for the cycle-level simulator.

The simulator is event-driven with cycle granularity: components
schedule callbacks at absolute cycles, and idle stretches (cores waiting
on memory, empty pipelines) cost nothing.  Ties are broken by insertion
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class EventQueue:
    """A deterministic min-heap scheduler over integer cycles."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def at(self, cycle: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at an absolute cycle (>= now)."""
        if cycle < self.now:
            raise ValueError(f"scheduling into the past: {cycle} < {self.now}")
        heapq.heappush(self._heap, (cycle, self._seq, fn))
        self._seq += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        self.at(self.now + delay, fn)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run(self, until: Optional[Callable[[], bool]] = None,
            max_cycles: int = 10_000_000) -> bool:
        """Process events in order until the queue drains, ``until()``
        holds, or the cycle budget is exceeded.

        Returns True if stopped by ``until()`` (normal completion for
        simulations) or queue drain, False on budget exhaustion.
        """
        while self._heap:
            if until is not None and until():
                return True
            cycle, __, fn = heapq.heappop(self._heap)
            if cycle > max_cycles:
                self.now = cycle
                return False
            self.now = cycle
            self.events_processed += 1
            fn()
        return True
