"""Configuration of TFlex cores and systems (paper Table 1).

:data:`TFLEX` is the paper's default 32-core chip.  :func:`trips_config`
builds the fixed-granularity TRIPS baseline as a configuration of the
same simulator: sixteen single-issue tiles sharing one logical
processor, with a centralized next-block predictor, four D-cache/LSQ
banks, four register banks, and half the operand-network bandwidth —
the three modelled deltas (dual issue, doubled operand bandwidth,
fully-distributed cache/LSQ banks) the paper credits TFlex with, plus
the centralization limits composability removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CoreConfig:
    """One TFlex core (paper Table 1)."""

    # Execution: out-of-order, RAM-structured 128-entry issue window,
    # dual issue (up to two INT and one FP).
    window_entries: int = 128
    issue_int: int = 2
    issue_fp: int = 1
    issue_total: Optional[int] = None    # cap on combined issue (TRIPS tiles: 1)
    dispatch_width: int = 4              # instructions dispatched per cycle

    # Instruction supply: partitioned 8KB I-cache, 1-cycle hit.
    icache_bytes: int = 8 * 1024
    icache_assoc: int = 2
    icache_hit: int = 1

    # Data supply: partitioned 8KB D-cache (2-cycle hit, 2-way,
    # 1R + 1W port), 44-entry LSQ bank.
    dcache_bytes: int = 8 * 1024
    dcache_assoc: int = 2
    dcache_hit: int = 2
    lsq_entries: int = 44
    lsq_search: int = 1

    # Next-block predictor (local/gshare tournament, 3-cycle latency,
    # speculative updates): Local 64(L1)+128(L2), Global 512, Choice 512,
    # RAS 16, CTB 16, BTB 128, Btype 256.
    predictor_latency: int = 3
    local_l1: int = 64
    local_l2: int = 128
    global_entries: int = 512
    choice_entries: int = 512
    ras_entries: int = 16
    ctb_entries: int = 16
    btb_entries: int = 128
    btype_entries: int = 256


@dataclass(frozen=True)
class SystemConfig:
    """A whole chip: core array, networks, L2, DRAM, and mode flags."""

    name: str = "tflex"
    num_cores: int = 32
    mesh_width: int = 4
    mesh_height: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)

    # Networks: TFlex doubles operand-network bandwidth vs TRIPS.
    opn_channels: int = 2
    control_channels: int = 2
    hop_latency: int = 1

    # L2: 4MB S-NUCA, 32 banks, 8-way; hit 5..27 cycles by distance.
    l2_banks: int = 32
    l2_bank_bytes: int = 128 * 1024
    l2_assoc: int = 8
    l2_tag_latency: int = 3
    line_size: int = 64

    # Memory: 150-cycle unloaded latency.
    dram_latency: int = 150
    dram_issue_gap: int = 4

    # Composition structure overrides (None = fully distributed, one bank
    # per participating core — the TFlex design point).
    dcache_banks: Optional[int] = None
    regfile_banks: Optional[int] = None
    centralized_predictor: bool = False
    max_inflight: Optional[int] = None    # None = one block per core

    # Protocol ablation (paper section 6.4): distributed fetch/commit
    # handshakes take zero cycles.
    ideal_handshake: bool = False

    # Retry delay after an LSQ NACK.
    nack_retry: int = 8

    # Dependence prediction after a load/store violation: False = the
    # replayed load waits for ALL older stores (blunt, always safe);
    # True = a store-set predictor delays it only until the specific
    # stores it conflicted with have resolved.
    store_sets: bool = False

    # Misprediction redirect penalty beyond protocol latencies.
    flush_penalty: int = 2

    def validate(self) -> None:
        if self.num_cores != self.mesh_width * self.mesh_height:
            raise ValueError(
                f"{self.name}: {self.num_cores} cores != "
                f"{self.mesh_width}x{self.mesh_height} mesh")
        for banks in (self.dcache_banks, self.regfile_banks):
            if banks is not None and banks < 1:
                raise ValueError(f"{self.name}: bank override must be >= 1")
        # Forward-progress invariant: one block's memory operations (up
        # to 32 LSQ slots) may all hash to a single bank; the bank must
        # be able to hold them or the oldest block can never complete
        # (the NACK overflow policy only evicts *younger* occupants).
        from repro.isa.block import MAX_LSQ_IDS
        if self.core.lsq_entries < MAX_LSQ_IDS:
            raise ValueError(
                f"{self.name}: lsq_entries={self.core.lsq_entries} < "
                f"{MAX_LSQ_IDS}; a bank must hold one block's worst case")


#: The paper's TFlex chip: 32 dual-issue cores in a 4x8 array.
TFLEX = SystemConfig()


def trips_config() -> SystemConfig:
    """The fixed-granularity TRIPS baseline (paper section 5).

    16 single-issue execution tiles in a 4x4 array run one thread as a
    single composed processor with up to 8 blocks (1K instructions) in
    flight.  Control is centralized: one predictor bank at the G-tile
    corner, 4 D-cache/LSQ banks on one edge, 4 register banks, and an
    operand network with half of TFlex's bandwidth.  TRIPS tiles carry
    one FPU each (twice the FP capacity of an equal-area TFlex array —
    which is what costs TRIPS power efficiency in figure 8).
    """
    return SystemConfig(
        name="trips",
        num_cores=16,
        mesh_width=4,
        mesh_height=4,
        core=replace(
            CoreConfig(),
            issue_int=1,
            issue_fp=1,
            issue_total=1,
            # The centralized predictor has a single bank's capacity.
        ),
        opn_channels=1,
        control_channels=1,
        dcache_banks=4,
        regfile_banks=4,
        centralized_predictor=True,
        max_inflight=8,
    )


def tflex_config(num_cores: int = 32) -> SystemConfig:
    """A TFlex chip sized to ``num_cores`` (power of two up to 32)."""
    shapes = {1: (1, 1), 2: (2, 1), 4: (2, 2), 8: (4, 2), 16: (4, 4), 32: (4, 8)}
    if num_cores not in shapes:
        raise ValueError(f"unsupported core count {num_cores}")
    width, height = shapes[num_cores]
    return SystemConfig(name=f"tflex{num_cores}", num_cores=num_cores,
                        mesh_width=width, mesh_height=height)
