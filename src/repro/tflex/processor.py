"""A composed processor: N cores acting as one logical processor.

This class holds the per-thread state (architectural registers, flat
memory, register-forwarding banks, distributed RAS, global exit history,
in-flight block window) and the interleaving hash functions of paper
section 4:

* **block starting address** -> owner core (prediction, fetch control,
  completion detection, commit initiation);
* **instruction ID within a block** -> execution core (low-order target
  bits select the core, the rest the window slot);
* **data address** -> D-cache/LSQ bank (XOR-folded cache-line address);
* **register number** -> register-file bank;
* the RAS is sequentially partitioned (handled by
  :class:`repro.predictor.DistributedRas`).

Protocol behaviour comes from :class:`ProtocolMixin`; datapath behaviour
from :class:`DatapathMixin`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.isa.block import NUM_REGS
from repro.isa.program import Program
from repro.mem.flatmem import FlatMemory
from repro.predictor import DistributedRas, PredictorBank
from repro.tflex import interleave
from repro.tflex.datapath import DatapathMixin
from repro.tflex.decode import DecodedBlock
from repro.tflex.instance import BlockInstance
from repro.tflex.protocol import ProtocolMixin
from repro.tflex.regfile import RegfileBank
from repro.tflex.stats import ProcStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.tflex.system import TFlexSystem


class ComposedProcessor(ProtocolMixin, DatapathMixin):
    """One logical processor composed from participating cores."""

    def __init__(self, system: "TFlexSystem", proc_id: int,
                 core_ids: list[int], program: Program,
                 name: Optional[str] = None, share_cores: bool = False,
                 max_inflight: Optional[int] = None,
                 ctx: Optional[int] = None) -> None:
        """Args:
            share_cores: Allow the cores to be shared with other
                processors (SMT-style multithreading of one
                composition).  Threads then compete for issue slots,
                caches, predictors, and LSQ capacity.
            max_inflight: Cap on in-flight blocks (defaults to the
                configuration rule: one per core; SMT threads should
                split the frames, e.g. N/threads each).
            ctx: Cache/LSQ context tag (defaults to ``proc_id``).  A
                processor recomposed after a core failure reuses its
                predecessor's tag so surviving cores' cache lines stay
                valid and the L2 directory stays coherent.
        """
        if not core_ids:
            raise ValueError("a composed processor needs at least one core")
        if len(set(core_ids)) != len(core_ids):
            raise ValueError("duplicate cores in composition")
        program.validate()

        self.system = system
        self.cfg = system.cfg
        self.queue = system.queue
        #: Observability handle; ``enable_block_trace`` replaces it with
        #: a fork carrying this processor's private trace sink.
        self.obs = system.obs
        self.ctx = proc_id if ctx is None else ctx
        self.name = name or f"proc{proc_id}"
        self.program = program
        self.core_ids = list(core_ids)
        self.ncores = len(core_ids)
        self._max_inflight_override = max_inflight
        for core_id in core_ids:
            system.cores[core_id].assign(self, share=share_cores)

        # Per-thread architectural state.
        self.memory = FlatMemory()
        self.memory.load_image(program.data)
        self.regs: list = [0] * NUM_REGS
        for reg, value in program.reg_init.items():
            self.regs[reg] = value

        # Banked structures (bank counts may be overridden — the TRIPS
        # baseline centralizes them on a subset of cores).
        self.num_rf_banks = interleave.num_rf_banks_of(
            self.ncores, self.cfg.regfile_banks)
        self.num_dbanks = interleave.num_dbanks_of(
            self.ncores, self.cfg.dcache_banks)
        self.rf_banks = [RegfileBank(self.regs, name=f"{self.name}.rf{i}")
                         for i in range(self.num_rf_banks)]
        ras_cores = 1 if self.cfg.centralized_predictor else self.ncores
        self.ras = DistributedRas(ras_cores, self.cfg.core.ras_entries)

        # Speculation state: one in-flight block per participating core
        # (each core's 128-entry window holds one block's worth of
        # instructions), unless the configuration pins it (TRIPS: 8) or
        # the composition splits frames between SMT threads.
        if self._max_inflight_override is not None:
            self.max_inflight = max(1, self._max_inflight_override)
        elif self.cfg.max_inflight is not None:
            self.max_inflight = max(1, self.cfg.max_inflight)
        else:
            self.max_inflight = self.ncores
        self.speculative = self.max_inflight > 1
        self.next_gseq = 0
        self.fetch_epoch = 0
        self.inflight: list[BlockInstance] = []
        self.instances: dict[int, BlockInstance] = {}
        self.stalled_fetch: Optional[tuple] = None
        self.deferred_loads: list = []
        self.dependence_set: set[tuple[str, int]] = set()
        if self.cfg.store_sets:
            from repro.lsq.storeset import StoreSetPredictor
            self.store_sets = StoreSetPredictor()
        else:
            self.store_sets = None
        self.halted = False
        self.started = False
        #: True when the processor was halted by :meth:`interrupt`
        #: (fault recovery) rather than by committing a HALT block or
        #: reaching ``commit_limit``.
        self.interrupted = False
        self._last_dealloc = system.queue.now
        self._occupancy_mark = system.queue.now

        # Detailed-window controls for sampled simulation (repro.sample):
        # ``commit_limit`` halts the processor after that many committed
        # blocks; ``measure_after`` snapshots (cycle, insts_committed) at
        # the end of the warm-up prefix.  The commit protocol always
        # tracks the last committed block's successor so a fast-forward
        # engine can resume functionally where the window stopped.
        self.commit_limit: Optional[int] = None
        self.measure_after: Optional[int] = None
        self.measure_mark: Optional[tuple[int, int]] = None
        self.last_commit_next: Optional[int] = None
        self.last_commit_ghist = 0

        self.stats = ProcStats()
        #: Cycle at which this processor was composed; stats.cycles is
        #: relative to it (systems host runs back to back).
        self.start_cycle = system.queue.now

        # ------------------------------------------------------------------
        # Hot-path tables (pure precomputation of the hash functions
        # above; see docs/PERFORMANCE.md).
        # ------------------------------------------------------------------
        #: Energy-event counter, bound once: the datapath increments it
        #: directly instead of going through ``stats.count``.
        self._events = self.stats.energy_events
        self._topology = system.topology
        #: Flat pairwise hop-count table (``a * n + b``), borrowed from
        #: the topology: core IDs are always valid node indices here, so
        #: the delay helpers index it directly.
        self._dist = system.topology._dist
        self._nnodes = system.topology.num_nodes
        self._opn = system.opn
        self._control = system.control
        #: Bank index -> global core ID (``rf_bank_core``/``dbank_core``
        #: are pure functions of the composition).
        self._rf_bank_core_ids = [self.core_of_index(b)
                                  for b in range(self.num_rf_banks)]
        self._dbank_core_ids = [
            self.core_of_index(
                interleave.dbank_core_index(b, self.ncores, self.num_dbanks))
            for b in range(self.num_dbanks)]
        #: Participating-core index -> bank indices resident there (the
        #: commit protocol's drain lookup, inverted once).
        part_of = {cid: i for i, cid in enumerate(self.core_ids)}
        self._rf_banks_at: list[tuple[int, ...]] = [() for __ in core_ids]
        for b, cid in enumerate(self._rf_bank_core_ids):
            self._rf_banks_at[part_of[cid]] += (b,)
        self._dbanks_at: list[tuple[int, ...]] = [() for __ in core_ids]
        for b, cid in enumerate(self._dbank_core_ids):
            self._dbanks_at[part_of[cid]] += (b,)
        #: Decoded-block cache: block label -> placement/dispatch facts
        #: for this composition (decode once per program, not per fetch).
        self._decoded: dict[str, DecodedBlock] = {}

    # ------------------------------------------------------------------
    # Interleaving hash functions (paper section 4)
    # ------------------------------------------------------------------

    def core_of_index(self, index: int) -> int:
        """Global core ID of participating-core ``index``."""
        return self.core_ids[index]

    def owner_index_of(self, addr: int) -> int:
        """Owner core (participating index) of a block address."""
        return interleave.owner_index_of(addr, self.ncores,
                                         self.cfg.centralized_predictor)

    def predictor_bank(self, owner_index: int) -> PredictorBank:
        """The physical predictor bank used for a block's prediction."""
        if self.cfg.centralized_predictor:
            return self.system.cores[self.core_of_index(0)].predictor
        return self.system.cores[self.core_of_index(owner_index)].predictor

    def rf_bank_of(self, reg: int) -> int:
        return interleave.rf_bank_of(reg, self.num_rf_banks)

    def rf_bank_core(self, bank_index: int) -> int:
        """Register banks sit on the first cores of the composition
        (the top row in the TRIPS floorplan)."""
        return self._rf_bank_core_ids[bank_index]

    def dbank_of(self, addr: int) -> int:
        """D-cache/LSQ bank for a data address: XOR-folded line address
        modulo the bank count (paper section 4.5)."""
        return interleave.dbank_of(addr, self.cfg.line_size, self.num_dbanks)

    def dbank_core(self, bank_index: int) -> int:
        """D-cache banks spread down one edge of the composition (the
        left column in the TRIPS floorplan)."""
        return self._dbank_core_ids[bank_index]

    # ------------------------------------------------------------------
    # Decoded-block cache
    # ------------------------------------------------------------------

    def decoded(self, block) -> DecodedBlock:
        """Placement/dispatch facts for ``block`` on this composition,
        decoded on first fetch and replayed afterwards."""
        entry = self._decoded.get(block.label)
        if entry is None or entry.block is not block:
            entry = DecodedBlock(block, self.ncores, self.num_rf_banks,
                                 self.cfg.core.dispatch_width,
                                 self.cfg.line_size)
            self._decoded[block.label] = entry
        return entry

    # ------------------------------------------------------------------
    # Network timing
    # ------------------------------------------------------------------

    def operand_delay(self, src: int, dst: int, when: int) -> int:
        """Operand-network delivery time (reserves link bandwidth)."""
        if src == dst:
            return when
        events = self._events
        events["opn_msg"] += 1
        events["opn_hop"] += self._dist[src * self._nnodes + dst]
        return self._opn.delay(src, dst, when)

    def control_delay(self, src: int, dst: int, when: int) -> int:
        """Point-to-point control message delivery (reserves bandwidth);
        free under the ideal-handshake ablation (paper section 6.4)."""
        if src == dst or self.cfg.ideal_handshake:
            return when
        events = self._events
        events["control_msg"] += 1
        events["control_hop"] += self._dist[src * self._nnodes + dst]
        return self._control.delay(src, dst, when)

    def control_broadcast_delay(self, src: int, dst: int, when: int) -> int:
        """One leg of a broadcast/combining operation (fetch commands,
        commit commands, acks, deallocation).  The control network
        replicates these along a multicast tree, so the latency is the
        hop distance, not a serialized unicast per destination."""
        if src == dst or self.cfg.ideal_handshake:
            return when
        distance = self._dist[src * self._nnodes + dst]
        events = self._events
        events["control_msg"] += 1
        events["control_hop"] += distance
        return when + distance * self._control.hop_latency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def enable_block_trace(self) -> None:
        """Record a :class:`repro.tflex.trace.BlockTrace` for every
        committed block (see ``repro.tflex.trace.render_timeline``).

        Implemented as a private sink on a fork of the system's trace
        bus: this processor's ``block.commit`` events feed the list
        without globally enabling tracing, and still reach any global
        sinks (``--trace-out``) when those are configured.
        """
        from repro.obs import CallbackSink

        self.block_trace: list = []
        self.obs = self.obs.fork(
            CallbackSink(self._record_block_trace, kinds=("block.commit",)))

    def _record_block_trace(self, event: dict) -> None:
        from repro.tflex.trace import BlockTrace

        self.block_trace.append(BlockTrace(
            gseq=event["gseq"], label=event["label"],
            owner_index=event["owner_index"],
            fetch_start=event["fetch_start"], fetch_cmd=event["fetch_cmd"],
            complete=event["complete"], commit_start=event["commit_start"],
            committed=event["committed"]))

    def note_occupancy(self) -> None:
        """Accumulate the in-flight-blocks time integral (call before
        any change to the in-flight set)."""
        now = self.queue.now
        self.stats.inflight_integral += len(self.inflight) * (now - self._occupancy_mark)
        self._occupancy_mark = now

    @property
    def done(self) -> bool:
        return self.halted

    def release_cores(self) -> None:
        """Detach from all cores (decomposition / recomposition)."""
        for core_id in self.core_ids:
            self.system.cores[core_id].release(self)

    def debug_state(self) -> str:
        """One-line-per-block snapshot for deadlock diagnostics."""
        lines = [f"{self.name}: halted={self.halted} inflight={len(self.inflight)}"]
        for instance in self.inflight:
            lines.append(
                f"  B{instance.gseq} {instance.block.label} {instance.state.value} "
                f"branch={instance.branch_done} "
                f"writes={instance.writes_done}/{instance.writes_expected} "
                f"stores={instance.stores_done}/{instance.stores_expected} "
                f"dispatched={len(instance.dispatched)}/{instance.block.size} "
                f"fired={len(instance.fired)}")
        if self.stalled_fetch is not None:
            lines.append(f"  stalled fetch at {self.stalled_fetch[0]:#x}")
        if self.deferred_loads:
            lines.append(f"  deferred loads: {len(self.deferred_loads)}")
        return "\n".join(lines)
