"""One physical TFlex core: instruction window, wake-up, and issue.

A core owns the *physical* structures that persist across composition
changes — I-cache, D-cache, LSQ bank, predictor bank — and the transient
issue machinery for whichever composed processor it currently belongs
to.  Issue obeys the paper's core model: up to two integer-class and one
FP-class instruction per cycle (configurable; TRIPS tiles issue one
total), oldest block first.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FP_CLASSES
from repro.tflex.instance import BlockState
from repro.lsq import LsqBank
from repro.mem.cache import CacheBank
from repro.predictor import PredictorBank

if TYPE_CHECKING:  # pragma: no cover
    from repro.tflex.instance import BlockInstance
    from repro.tflex.system import TFlexSystem

#: Hoisted enum member: the issue loop tests it per ready entry.
SQUASHED = BlockState.SQUASHED


class Core:
    """One lightweight processor core."""

    def __init__(self, system: "TFlexSystem", core_id: int) -> None:
        self.system = system
        self.id = core_id
        cfg = system.cfg.core
        self.icache = CacheBank(cfg.icache_bytes, cfg.icache_assoc,
                                system.cfg.line_size, name=f"i{core_id}")
        self.dcache = CacheBank(cfg.dcache_bytes, cfg.dcache_assoc,
                                system.cfg.line_size, name=f"d{core_id}")
        self.lsq = LsqBank(cfg.lsq_entries, name=f"lsq{core_id}")
        self.predictor = PredictorBank(
            local_l1=cfg.local_l1, local_l2=cfg.local_l2,
            global_entries=cfg.global_entries, choice_entries=cfg.choice_entries,
            btype_entries=cfg.btype_entries, btb_entries=cfg.btb_entries,
            ctb_entries=cfg.ctb_entries, latency=cfg.predictor_latency)

        #: Processors currently using this core.  Normally one; several
        #: when threads share a composition SMT-style (the TRIPS SMT
        #: mode the paper describes as the baseline's only flexibility).
        self.procs: list = []
        #: Manufacturing/field fault: a faulty core cannot join any
        #: composition.  Composability turns core-granularity faults
        #: into capacity loss instead of chip loss — the chip keeps
        #: running with every remaining core.
        self.faulty = False
        self._ready: list[tuple[int, int, int, "BlockInstance", Instruction]] = []
        self._push_seq = 0                    # heap tie-breaker
        self._issue_scheduled = False
        # Issue widths, resolved once (the config is frozen).
        self._issue_int = cfg.issue_int
        self._issue_fp = cfg.issue_fp
        self._issue_total = (cfg.issue_total if cfg.issue_total is not None
                             else cfg.issue_int + cfg.issue_fp)
        self._queue = system.queue

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    @property
    def proc(self):
        """The sole owner (None when free; ambiguous under sharing)."""
        return self.procs[0] if self.procs else None

    def assign(self, proc, share: bool = False) -> None:
        if self.faulty:
            raise RuntimeError(f"core {self.id} is marked faulty")
        if self.procs and not share:
            raise RuntimeError(
                f"core {self.id} already belongs to {self.procs[0].name}")
        self.procs.append(proc)

    def release(self, proc=None) -> None:
        """Detach a processor (composition change).

        Physical cache and predictor state is deliberately retained —
        the directory protocol handles stale L1 lines (paper 4.7)."""
        if proc is None:
            self.procs.clear()
        elif proc in self.procs:
            self.procs.remove(proc)
        if not self.procs:
            self._ready.clear()
            self._issue_scheduled = False

    # ------------------------------------------------------------------
    # Wake-up and issue
    # ------------------------------------------------------------------

    def wake(self, instance: "BlockInstance", inst: Instruction) -> None:
        """An operand arrived (or dispatch completed): queue if ready."""
        if instance.ready_to_fire(inst):
            self._push_seq += 1
            heapq.heappush(self._ready,
                           (instance.gseq, inst.iid, self._push_seq, instance, inst))
            self._schedule_issue()

    def _schedule_issue(self) -> None:
        if not self._issue_scheduled and self._ready:
            self._issue_scheduled = True
            self._queue.after(1, self._issue_tick)

    def _issue_tick(self) -> None:
        prof = self.system.obs.profiler
        if prof.enabled:
            with prof.phase("issue"):
                return self._do_issue_tick()
        return self._do_issue_tick()

    def _do_issue_tick(self) -> None:
        """Issue up to the per-class widths this cycle, oldest first
        (threads sharing the core compete for the same issue slots)."""
        self._issue_scheduled = False
        if not self.procs:
            self._ready.clear()
            return
        slots_int = self._issue_int
        slots_fp = self._issue_fp
        slots_total = self._issue_total
        deferred: list[tuple[int, int, int, "BlockInstance", Instruction]] = []

        ready = self._ready
        pop = heapq.heappop
        while ready and slots_total > 0:
            entry = pop(ready)
            __, __, __, instance, inst = entry
            if instance.state is SQUASHED or inst.iid in instance.fired:
                continue
            is_fp = inst.op.opclass in FP_CLASSES
            if is_fp:
                if slots_fp == 0:
                    deferred.append(entry)
                    continue
                slots_fp -= 1
            else:
                if slots_int == 0:
                    deferred.append(entry)
                    continue
                slots_int -= 1
            slots_total -= 1
            instance.fired.add(inst.iid)
            instance.insts_fired_count += 1
            instance.proc.issue(instance, inst, self)

        for entry in deferred:
            heapq.heappush(self._ready, entry)
        self._schedule_issue()

    def ready_count(self) -> int:
        return len(self._ready)
