"""Distributed control protocols of a composed processor.

Implements the owner-core protocols of paper section 4: block fetch
(tag access, next-block prediction, control hand-off to the next owner,
fetch-command distribution, per-core dispatch), misprediction and
dependence-violation recovery (flush + predictor/RAS repair), completion
detection by output counting, and the four-phase distributed commit
(commit command, architectural update, acknowledgment, deallocation).

Mixed into :class:`repro.tflex.processor.ComposedProcessor`.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import BLOCK_STRIDE, HALT_ADDR, ProgramError
from repro.mem.cache import LineState
from repro.predictor.exits import GLOBAL_HISTORY_EXITS, push_history
from repro.predictor.targets import BranchKind
from repro.tflex.instance import BlockInstance, BlockState

#: Hoisted enum member: squash checks guard every hot handler.
SQUASHED = BlockState.SQUASHED


#: Constant front-end latencies (paper figure 9a: the first three fetch
#: components — prediction, I-cache tag access, fetch pipeline — total a
#: constant seven cycles, except that one-core compositions make no
#: prediction).
TAG_LATENCY = 1
FETCH_PIPELINE_LATENCY = 3


class ProtocolMixin:
    """Fetch/flush/commit behaviour of a composed processor."""

    # ------------------------------------------------------------------
    # Fetch chain
    # ------------------------------------------------------------------

    def start(self, addr: Optional[int] = None, ghist: int = 0) -> None:
        """Begin fetching — at the program's entry block by default, or
        at an injected ``(addr, ghist)`` resume point (sampled
        simulation restarts a detailed window mid-program)."""
        if addr is None:
            addr = self.program.address_of(self.program.entry)
        self.started = True
        self._schedule_fetch(addr, ghist=ghist, when=self.queue.now,
                             handoff_lat=0)

    def _schedule_fetch(self, addr: int, ghist: int, when: int,
                        handoff_lat: int) -> None:
        epoch = self.fetch_epoch
        self.queue.at(when, lambda: self._try_fetch(addr, ghist, epoch, handoff_lat))

    def _try_fetch(self, addr: int, ghist: int, epoch: int, handoff_lat: int) -> None:
        if self.halted or epoch != self.fetch_epoch:
            return
        try:
            self.program.label_at(addr)
        except ProgramError:
            # Predicted into space that holds no block (e.g. a BTB alias
            # or a prediction past HALT).  Fetch stalls until the
            # mispredicted branch resolves and redirects.
            return
        if len(self.inflight) >= self.max_inflight:
            self.stalled_fetch = (addr, ghist, epoch, handoff_lat)
            return
        self._fetch_block(addr, ghist, handoff_lat)

    def _fetch_block(self, addr: int, ghist: int, handoff_lat: int) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("fetch"):
                return self._do_fetch_block(addr, ghist, handoff_lat)
        return self._do_fetch_block(addr, ghist, handoff_lat)

    def _do_fetch_block(self, addr: int, ghist: int, handoff_lat: int) -> None:
        self.note_occupancy()
        now = self.queue.now
        block = self.program.block_at(addr)
        decoded = self.decoded(block)
        owner_index = self.owner_index_of(addr)
        instance = BlockInstance(
            gseq=self.next_gseq, block=block, addr=addr,
            owner_index=owner_index, ghist_before=ghist,
            t_fetch_start=now, proc=self, decoded=decoded,
        )
        self.next_gseq += 1
        self.inflight.append(instance)
        self.instances[instance.gseq] = instance
        self.stats.blocks_fetched += 1
        self.stats.insts_fetched += block.size
        self._events["icache_tag"] += 1

        owner_core = self.core_of_index(owner_index)
        t_cmd = now + TAG_LATENCY + FETCH_PIPELINE_LATENCY

        prediction_lat = 0
        if self.speculative:
            prediction_lat = self._predict_next(instance, owner_core, now)

        # Declare the block's register-write set to the banks.  This is
        # carried by the fetch command; it is applied here, synchronously
        # and in gseq order, so a younger block's read can never race
        # ahead of an older block's declaration.
        gseq = instance.gseq
        for bank_index, reg in decoded.write_slots:
            self.rf_banks[bank_index].declare(gseq, (reg,))

        # Broadcast the fetch command to every participating core (a
        # multicast on the control network).  Cores whose command
        # arrives on the same cycle share one event: within this
        # handler the scheduled sequence numbers are consecutive, so
        # folding same-cycle deliveries preserves the global event
        # order exactly (no foreign event can interleave).
        distribution = 0
        buckets: dict[int, list[int]] = {}
        for index in range(self.ncores):
            dest = self.core_of_index(index)
            arrive = self.control_broadcast_delay(owner_core, dest, t_cmd)
            if arrive - t_cmd > distribution:
                distribution = arrive - t_cmd
            group = buckets.get(arrive)
            if group is None:
                buckets[arrive] = group = [index]
                self.queue.at(arrive,
                              lambda g=group: self._core_fetch_many(instance, g))
            else:
                group.append(index)

        instance.t_fetch_cmd = t_cmd
        instance.fetch_parts = {
            "prediction": prediction_lat,
            "tag": TAG_LATENCY,
            "pipeline": FETCH_PIPELINE_LATENCY,
            "handoff": handoff_lat,
            "distribution": distribution,
            "dispatch": 0,
        }
        instance.state = BlockState.EXECUTING
        obs = self.obs
        if obs.active:
            obs.emit("block.fetch", cycle=now, proc=self.name,
                     gseq=instance.gseq, label=block.label, addr=addr,
                     owner_index=owner_index)

    def _predict_next(self, instance: BlockInstance, owner_core: int,
                      now: int) -> int:
        """Run the owner's next-block predictor; chains the next fetch."""
        bank = self.predictor_bank(instance.owner_index)
        self.stats.count("predictor_access")
        self.stats.predictions += 1
        prediction = bank.predict(instance.addr, instance.ghist_before, self.ras)
        instance.prediction = prediction

        t_pred = now + TAG_LATENCY + bank.latency
        if prediction.ras_core is not None and not self.cfg.ideal_handshake:
            # RAS traffic: a pop must round-trip to the core holding the
            # stack top before the target is known; a push is
            # fire-and-forget.
            ras_core = self.core_of_index(prediction.ras_core % self.ncores)
            if prediction.kind is BranchKind.RETURN:
                t_pred += 2 * self.system.control.zero_load_delay(owner_core, ras_core)

        next_owner = self.core_of_index(self.owner_index_of(prediction.next_addr))
        arrive = self.control_delay(owner_core, next_owner, t_pred)
        self._schedule_fetch(prediction.next_addr, prediction.next_global_history,
                             arrive, handoff_lat=arrive - t_pred)
        return bank.latency

    # ------------------------------------------------------------------
    # Per-core fetch + dispatch
    # ------------------------------------------------------------------

    def _core_fetch_many(self, instance: BlockInstance,
                         core_indices: list[int]) -> None:
        """Same-cycle fetch-command arrivals, folded into one event."""
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("fetch"):
                for core_index in core_indices:
                    self._do_core_fetch(instance, core_index)
            return
        for core_index in core_indices:
            self._do_core_fetch(instance, core_index)

    def _core_fetch(self, instance: BlockInstance, core_index: int) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("fetch"):
                return self._do_core_fetch(instance, core_index)
        return self._do_core_fetch(instance, core_index)

    def _do_core_fetch(self, instance: BlockInstance, core_index: int) -> None:
        """One participating core fetches and dispatches its interleaved
        slice of the block (plus the register reads banked on it)."""
        if instance.state is SQUASHED:
            return
        now = self.queue.now
        core = self.system.cores[self.core_of_index(core_index)]
        decoded = instance.decoded

        # Register reads banked on this core resolve after header decode.
        my_reads = decoded.reads_by_core[core_index]
        if my_reads:
            self.queue.at(now + 1, lambda: self._dispatch_reads(instance, my_reads))

        if not decoded.chunk_sizes[core_index]:
            return

        # I-cache: the slice occupies ceil(4*|chunk| / line) lines.  The
        # I-cache is private, so keying lines by block address + offset
        # is unique within this core (different cores cache their own
        # slices under the same keys, which models per-core footprint
        # shrinking as composition grows).
        cfg = self.cfg.core
        events = self._events
        t = now
        for line_no in range(decoded.icache_lines[core_index]):
            line_addr = instance.addr + line_no * self.cfg.line_size
            events["icache_access"] += 1
            t += cfg.icache_hit
            if not core.icache.access(self.ctx, line_addr):
                done, state = self.system.l2.read(self.ctx, line_addr, core.id, t)
                core.icache.fill(self.ctx, line_addr, state)
                events["l2_access"] += 1
                t = done

        # Dispatch in groups of dispatch_width per cycle.
        groups = decoded.groups[core_index]
        for g, group in enumerate(groups):
            self.queue.at(t + g + 1,
                          lambda grp=group: self._dispatch_group(instance, grp, core))
        t_done = t + len(groups)
        dispatch_lat = t_done - now
        if dispatch_lat > instance.fetch_parts.get("dispatch", 0):
            instance.fetch_parts["dispatch"] = dispatch_lat

    def _dispatch_reads(self, instance: BlockInstance, read_indices: list[int]) -> None:
        if instance.state is SQUASHED:
            return
        for index in read_indices:
            self.dispatch_read(instance, index)

    def _dispatch_group(self, instance: BlockInstance, group, core) -> None:
        if instance.state is SQUASHED:
            return
        dispatched = instance.dispatched
        events = self._events
        for inst in group:
            dispatched.add(inst.iid)
            events["window_write"] += 1
            core.wake(instance, inst)

    # ------------------------------------------------------------------
    # Branch resolution and misprediction recovery
    # ------------------------------------------------------------------

    def _on_branch_resolved(self, instance: BlockInstance, inst,
                            next_addr: int) -> None:
        if instance.state is SQUASHED or instance.branch_done:
            return
        instance.branch_done = True
        instance.actual_exit = inst.exit_id
        instance.actual_kind = BranchKind.of_opcode(inst.op.name)
        instance.actual_next = next_addr

        prediction = instance.prediction
        if prediction is not None:
            if prediction.next_addr == next_addr:
                self.stats.predictions_correct += 1
            else:
                self._mispredict(instance)
        self._check_complete(instance)

    def _mispredict(self, instance: BlockInstance) -> None:
        """Owner-initiated recovery: flush younger blocks, repair
        speculative predictor and RAS state, redirect fetch."""
        self.stats.mispredictions += 1
        obs = self.obs
        if obs.active:
            obs.emit("block.mispredict", cycle=self.queue.now,
                     proc=self.name, gseq=instance.gseq,
                     predicted=instance.prediction.next_addr,
                     actual=instance.actual_next)
        self.flush_from(instance.gseq + 1, reason="mispredict", refetch=False)

        # Repair this block's own speculative state: push the *actual*
        # exit into its local history, and redo its RAS effect with the
        # actual branch kind.
        prediction = instance.prediction
        bank = self.predictor_bank(instance.owner_index)
        bank.exits.repair(prediction.checkpoint.exit_prediction,
                          actual_exit=instance.actual_exit)
        if prediction.checkpoint.ras_checkpoint is not None:
            self.ras.restore(prediction.checkpoint.ras_checkpoint)
            prediction.checkpoint.ras_checkpoint = None
        if instance.actual_kind is BranchKind.CALL:
            prediction.checkpoint.ras_checkpoint = self.ras.push(
                instance.addr + BLOCK_STRIDE)   # sequential next block
        elif instance.actual_kind is BranchKind.RETURN:
            __, cp = self.ras.pop()
            prediction.checkpoint.ras_checkpoint = cp

        corrected = push_history(instance.ghist_before, instance.actual_exit,
                                 GLOBAL_HISTORY_EXITS)
        self._redirect_fetch(instance.actual_next, corrected,
                             self.queue.now + self.cfg.flush_penalty)

    def _redirect_fetch(self, addr: int, ghist: int, when: int) -> None:
        self.fetch_epoch += 1
        self.stalled_fetch = None
        if addr != HALT_ADDR:
            self._schedule_fetch(addr, ghist, when, handoff_lat=0)

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def flush_from(self, gseq: int, reason: str, refetch: bool = True) -> None:
        """Squash all in-flight blocks with sequence >= gseq.

        Repairs speculative predictor/RAS state youngest-first.  When
        ``refetch`` (dependence violations), fetch restarts at the oldest
        squashed block's address.
        """
        victims = [i for i in self.inflight if i.gseq >= gseq and not i.state is SQUASHED]
        if not victims:
            return
        self.note_occupancy()
        victims.sort(key=lambda i: i.gseq, reverse=True)
        for victim in victims:
            victim.state = BlockState.SQUASHED
            self.stats.blocks_squashed += 1
            if victim.prediction is not None:
                self.predictor_bank(victim.owner_index).repair(
                    victim.prediction, self.ras)
            self.instances.pop(victim.gseq, None)
        cut = victims[-1].gseq
        obs = self.obs
        if obs.active:
            obs.emit("block.squash", cycle=self.queue.now, proc=self.name,
                     reason=reason, count=len(victims), oldest_gseq=cut)
        self.inflight = [i for i in self.inflight if i.gseq < cut]
        for bank in self.rf_banks:
            bank.squash_from(cut)
        for index in range(self.num_dbanks):
            self.system.cores[self.dbank_core(index)].lsq.squash_from(cut, ctx=self.ctx)
        self.deferred_loads = [
            (inst, i, a) for (inst, i, a) in self.deferred_loads if not inst.state is SQUASHED
        ]
        if refetch:
            oldest = victims[-1]
            self._redirect_fetch(oldest.addr, oldest.ghist_before,
                                 self.queue.now + self.cfg.flush_penalty)

    # ------------------------------------------------------------------
    # Completion and commit
    # ------------------------------------------------------------------

    def _on_store_resolved(self, instance: BlockInstance, lsq_id: int) -> None:
        if instance.state is SQUASHED or lsq_id in instance.resolved_store_slots:
            return
        instance.resolved_store_slots.add(lsq_id)
        instance.stores_done += 1
        self._wake_deferred_loads()
        self._check_complete(instance)

    def _on_write_resolved(self, instance: BlockInstance) -> None:
        if instance.state is SQUASHED:
            return
        instance.writes_done += 1
        self._check_complete(instance)

    def _check_complete(self, instance: BlockInstance) -> None:
        if instance.state is not BlockState.EXECUTING:
            return
        if instance.outputs_complete:
            instance.state = BlockState.COMPLETE
            instance.t_complete = self.queue.now
            self._try_commit()

    def _try_commit(self) -> None:
        """Launch commits in order, but pipelined: a complete block may
        start its commit protocol as soon as every older block has
        *started* (not finished) committing — the paper overlaps fetch,
        execution, and commit of consecutive blocks (section 4.1).
        Deallocations still complete in order."""
        for instance in self.inflight:
            if instance.state is BlockState.COMPLETE:
                self._start_commit(instance)
            elif instance.state is not BlockState.COMMITTING:
                break

    def _start_commit(self, instance: BlockInstance) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("commit"):
                return self._do_start_commit(instance)
        return self._do_start_commit(instance)

    def _do_start_commit(self, instance: BlockInstance) -> None:
        """Four-phase distributed commit (paper section 4.6)."""
        instance.state = BlockState.COMMITTING
        now = self.queue.now
        instance.t_commit_start = now
        owner = self.core_of_index(instance.owner_index)

        # Phase 2: commit command to all participating cores.
        # Phase 3: each core updates architectural state (register and
        # store drains proceed in parallel across banks) and acks.
        writes_per_bank = instance.decoded.writes_per_bank
        gseq = instance.gseq
        stores_per_bank = [
            self.system.cores[self._dbank_core_ids[b]].lsq
                .store_count_of_block(gseq, ctx=self.ctx)
            for b in range(self.num_dbanks)
        ]

        t_acks = now
        max_update = 0
        for index in range(self.ncores):
            dest = self.core_of_index(index)
            t_cmd = self.control_broadcast_delay(owner, dest, now)
            drain = 0
            for b in self._rf_banks_at[index]:
                if writes_per_bank[b] > drain:
                    drain = writes_per_bank[b]
            for b in self._dbanks_at[index]:
                if stores_per_bank[b] > drain:
                    drain = stores_per_bank[b]
            t_done = t_cmd + drain
            if drain > max_update:
                max_update = drain
            t_ack = self.control_broadcast_delay(dest, owner, t_done)
            if t_ack > t_acks:
                t_acks = t_ack

        # Phase 4: deallocation broadcast.
        t_dealloc = t_acks
        for index in range(self.ncores):
            dest = self.core_of_index(index)
            t_dealloc = max(t_dealloc, self.control_broadcast_delay(owner, dest, t_acks))

        instance.commit_parts = {
            "state_update": max_update,
            "handshake": (t_dealloc - now) - max_update,
        }
        # Deallocations complete in block order even when commits overlap.
        t_dealloc = max(t_dealloc, self._last_dealloc + 1)
        self._last_dealloc = t_dealloc
        self.queue.at(t_dealloc, lambda: self._finish_commit(instance))

    def _finish_commit(self, instance: BlockInstance) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("commit"):
                return self._do_finish_commit(instance)
        return self._do_finish_commit(instance)

    def _do_finish_commit(self, instance: BlockInstance) -> None:
        """Apply architectural effects and free the block's frame."""
        if instance.state is SQUASHED:
            return   # flushed mid-commit (dependence violation upstream)
        self.note_occupancy()
        gseq = instance.gseq
        assert self.inflight and self.inflight[0] is instance, "commit out of order"
        self.inflight.pop(0)
        self.instances.pop(gseq, None)
        instance.state = BlockState.COMMITTED

        # Stores: drain to memory in LSQ-id order, touching the D-cache
        # and directory (post-commit write buffer; timing is off the
        # commit critical path).
        drained = []
        for b in range(self.num_dbanks):
            bank_core = self.dbank_core(b)
            lsq = self.system.cores[bank_core].lsq
            for entry in lsq.stores_of_block(gseq, ctx=self.ctx):
                drained.append((entry, bank_core))
            lsq.release_block(gseq, ctx=self.ctx)
        drained.sort(key=lambda pair: pair[0].lsq_id)
        for entry, bank_core in drained:
            self.memory.store(entry.addr, entry.size, entry.value, fp=entry.fp)
            self._commit_store_to_cache(entry, bank_core)
        self.stats.stores_committed += len(drained)

        # Register writes become architectural.
        events = self._events
        for bank_index, reg in instance.decoded.write_slots:
            self.rf_banks[bank_index].commit(gseq, reg)
            events["commit_write"] += 1

        # Train the predictor with the resolved block.
        if instance.prediction is not None:
            self.predictor_bank(instance.owner_index).update(
                instance.prediction, instance.actual_exit,
                instance.actual_kind, instance.actual_next)

        self.stats.blocks_committed += 1
        self.stats.insts_committed += instance.insts_fired_count
        self.stats.fetch_latency.record(**instance.fetch_parts)
        self.stats.commit_latency.record(**instance.commit_parts)

        # Resume point for a fast-forward engine: the committed path's
        # next block and the architectural global history after it.
        self.last_commit_next = instance.actual_next
        self.last_commit_ghist = push_history(
            instance.ghist_before, instance.actual_exit, GLOBAL_HISTORY_EXITS)
        if self.measure_after is not None \
                and self.stats.blocks_committed == self.measure_after:
            self.measure_mark = (self.queue.now, self.stats.insts_committed)

        # ``enable_block_trace`` consumes this from a private bus fork;
        # ``--trace-out`` sinks see it globally.
        obs = self.obs
        if obs.active:
            obs.emit("block.commit", cycle=self.queue.now, proc=self.name,
                     gseq=gseq, label=instance.block.label,
                     owner_index=instance.owner_index,
                     fetch_start=instance.t_fetch_start,
                     fetch_cmd=instance.t_fetch_cmd,
                     complete=instance.t_complete,
                     commit_start=instance.t_commit_start,
                     committed=self.queue.now,
                     insts=instance.insts_fired_count)

        self._wake_deferred_loads()

        if instance.actual_next == HALT_ADDR:
            self._halt()
            return
        if self.commit_limit is not None \
                and self.stats.blocks_committed >= self.commit_limit:
            # End of a detailed sampling window: stop cleanly (the halt
            # flush repairs all speculative predictor/RAS state, so the
            # structures exported afterwards are architecturally clean).
            self._halt()
            return

        if not self.speculative:
            ghist = push_history(instance.ghist_before, instance.actual_exit,
                                 GLOBAL_HISTORY_EXITS)
            self._schedule_fetch(instance.actual_next, ghist,
                                 self.queue.now, handoff_lat=0)
        elif self.stalled_fetch is not None:
            addr, ghist, epoch, handoff_lat = self.stalled_fetch
            self.stalled_fetch = None
            if epoch == self.fetch_epoch:
                self._schedule_fetch(addr, ghist, self.queue.now, handoff_lat)

        self._try_commit()

    def _commit_store_to_cache(self, entry, bank_core: int) -> None:
        """Write-path coherence for one committed store."""
        core = self.system.cores[bank_core]
        self.stats.count("dcache_write")
        line = core.dcache.probe(self.ctx, entry.addr)
        from repro.mem.cache import LineState
        if line is not None and line.state is LineState.MODIFIED:
            core.dcache.access(self.ctx, entry.addr, write=True)
            return
        # Upgrade or write-allocate through the directory.
        self.stats.count("l2_access")
        __, state = self.system.l2.write(self.ctx, entry.addr, bank_core,
                                         self.queue.now)
        victim = core.dcache.fill(self.ctx, entry.addr, state)
        if victim is not None:
            self.system.l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)
        core.dcache.access(self.ctx, entry.addr, write=True)

    # ------------------------------------------------------------------
    # Halt
    # ------------------------------------------------------------------

    def _halt(self) -> None:
        self.fetch_epoch += 1
        self.stalled_fetch = None
        if self.inflight:
            self.flush_from(self.inflight[0].gseq, reason="halt", refetch=False)
        self.note_occupancy()
        self.halted = True
        self.system.note_halted()
        self.stats.cycles = self.queue.now - self.start_cycle
        obs = self.obs
        if obs.active:
            self.stats.to_metrics(obs.metrics, proc=self.name)
            obs.emit("proc.halt", cycle=self.queue.now, proc=self.name,
                     cycles=self.stats.cycles,
                     blocks_committed=self.stats.blocks_committed,
                     insts_committed=self.stats.insts_committed,
                     mispredictions=self.stats.mispredictions)

    def interrupt(self) -> None:
        """Abandon all in-flight blocks and halt at the last committed
        block (fault recovery).

        The halt flush repairs speculative predictor/RAS state exactly
        as a clean halt does, so architectural state (registers, memory,
        ``last_commit_next``/``last_commit_ghist``) sits precisely at
        the last committed block and every transferable structure is
        architecturally clean.  No-op on an already-halted processor.
        """
        if self.halted:
            return
        self.interrupted = True
        self._halt()
