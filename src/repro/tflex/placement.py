"""Core placement: choosing which physical cores form a composition.

Compositions are contiguous rectangles of the core mesh, which keeps
operand-routing distances minimal.  :func:`pack` places several
processors of given sizes on one chip for multiprogrammed runs.
"""

from __future__ import annotations

from repro.tflex.config import SystemConfig


#: Rectangle shape (width, height) used for each power-of-two size on a
#: 4-wide mesh.
SHAPES = {1: (1, 1), 2: (2, 1), 4: (2, 2), 8: (4, 2), 16: (4, 4), 32: (4, 8)}


def rectangle(cfg: SystemConfig, size: int, origin: tuple[int, int] = (0, 0)) -> list[int]:
    """Core IDs of a ``size``-core rectangle anchored at ``origin``.

    Cores are listed row-major within the rectangle; the participating
    index order determines bank placement.
    """
    if size not in SHAPES:
        raise ValueError(f"composition size {size} not supported (powers of two up to 32)")
    width, height = SHAPES[size]
    ox, oy = origin
    if ox + width > cfg.mesh_width or oy + height > cfg.mesh_height:
        raise ValueError(f"{size}-core rectangle at {origin} exceeds the "
                         f"{cfg.mesh_width}x{cfg.mesh_height} mesh")
    return [
        (oy + y) * cfg.mesh_width + (ox + x)
        for y in range(height)
        for x in range(width)
    ]


def pack(cfg: SystemConfig, sizes: list[int],
         avoid: frozenset[int] | set[int] = frozenset()) -> list[list[int]]:
    """Place several compositions on one chip without overlap.

    Sizes are placed largest-first into the free area, scanning row
    major.  ``avoid`` excludes cores (e.g. ones marked faulty) — the
    composability fault-isolation story: a dead core costs one core's
    capacity, not the chip.  Raises if the workload does not fit.
    """
    if sum(sizes) > cfg.num_cores - len(avoid):
        raise ValueError(f"requested {sum(sizes)} cores > "
                         f"{cfg.num_cores - len(avoid)} available")
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    used = [core in avoid for core in range(cfg.num_cores)]
    result: list[list[int]] = [[] for __ in sizes]

    for index in order:
        size = sizes[index]
        placed = False
        for oy in range(cfg.mesh_height):
            for ox in range(cfg.mesh_width):
                try:
                    cores = rectangle(cfg, size, (ox, oy))
                except ValueError:
                    continue
                if any(used[c] for c in cores):
                    continue
                for c in cores:
                    used[c] = True
                result[index] = cores
                placed = True
                break
            if placed:
                break
        if not placed:
            raise ValueError(f"could not place a {size}-core processor "
                             f"(fragmented mesh for sizes {sizes})")
    return result
