"""Statistics collected by the TFlex simulator.

Per-processor stats cover the quantities the paper's evaluation plots:
cycle counts (figures 5-8), fetch/commit protocol latency breakdowns
(figure 9), speculation behaviour, and activity counts feeding the
energy model (figure 8, table 2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class LatencyBreakdown:
    """Accumulates per-block protocol component latencies (figure 9)."""

    samples: int = 0
    components: Counter = field(default_factory=Counter)

    def record(self, **latencies: int) -> None:
        self.samples += 1
        for name, value in latencies.items():
            self.components[name] += value

    def mean(self, name: str) -> float:
        if self.samples == 0:
            return 0.0
        return self.components[name] / self.samples

    def means(self) -> dict[str, float]:
        return {name: self.mean(name) for name in sorted(self.components)}

    def total_mean(self) -> float:
        return sum(self.means().values())

    def to_dict(self) -> dict:
        return {"samples": self.samples, "components": dict(self.components)}

    @staticmethod
    def from_dict(data: dict) -> "LatencyBreakdown":
        return LatencyBreakdown(samples=data["samples"],
                                components=Counter(data["components"]))


@dataclass
class ProcStats:
    """Statistics for one composed processor's run."""

    # Progress
    cycles: int = 0
    blocks_committed: int = 0
    insts_committed: int = 0
    insts_fetched: int = 0
    loads_executed: int = 0
    stores_committed: int = 0

    # Speculation
    blocks_fetched: int = 0
    blocks_squashed: int = 0
    mispredictions: int = 0
    violations: int = 0
    replays: int = 0          # LSQ conflicts forcing replay
    nacks: int = 0

    # Prediction
    predictions: int = 0
    predictions_correct: int = 0

    # Window utilization: integral of in-flight block count over time.
    inflight_integral: int = 0

    @property
    def avg_inflight_blocks(self) -> float:
        """Mean number of blocks in flight (window utilization)."""
        return self.inflight_integral / self.cycles if self.cycles else 0.0

    # Protocol latency breakdowns (figure 9)
    fetch_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    commit_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)

    # Activity counters for the energy model.
    energy_events: Counter = field(default_factory=Counter)

    @property
    def ipc(self) -> float:
        return self.insts_committed / self.cycles if self.cycles else 0.0

    @property
    def prediction_accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.predictions_correct / self.predictions

    @property
    def speculation_waste(self) -> float:
        """Fraction of fetched blocks that were squashed."""
        if self.blocks_fetched == 0:
            return 0.0
        return self.blocks_squashed / self.blocks_fetched

    def count(self, event: str, n: int = 1) -> None:
        self.energy_events[event] += n

    #: Plain-integer counter fields (everything except the breakdowns
    #: and the energy counter), used by the dict round-trip.
    _SCALAR_FIELDS = (
        "cycles", "blocks_committed", "insts_committed", "insts_fetched",
        "loads_executed", "stores_committed", "blocks_fetched",
        "blocks_squashed", "mispredictions", "violations", "replays",
        "nacks", "predictions", "predictions_correct", "inflight_integral",
    )

    def to_dict(self) -> dict:
        """JSON-safe form for the on-disk result store."""
        data = {name: getattr(self, name) for name in self._SCALAR_FIELDS}
        data["fetch_latency"] = self.fetch_latency.to_dict()
        data["commit_latency"] = self.commit_latency.to_dict()
        data["energy_events"] = dict(self.energy_events)
        return data

    @staticmethod
    def from_dict(data: dict) -> "ProcStats":
        stats = ProcStats(**{name: data[name]
                             for name in ProcStats._SCALAR_FIELDS})
        stats.fetch_latency = LatencyBreakdown.from_dict(data["fetch_latency"])
        stats.commit_latency = LatencyBreakdown.from_dict(data["commit_latency"])
        stats.energy_events = Counter(data["energy_events"])
        return stats

    def to_metrics(self, metrics, **labels) -> None:
        """Flush this run's totals into a
        :class:`repro.obs.MetricsRegistry` as labelled counter series
        (called once per processor at halt).

        Scalars become ``tflex.<field>``; the figure-9 breakdowns become
        ``tflex.fetch_latency_cycles`` / ``tflex.commit_latency_cycles``
        with a ``component`` label (plus ``..._blocks`` sample counts),
        so the exported series sum back exactly to the
        :class:`LatencyBreakdown` totals; energy events become
        ``tflex.energy_events`` with an ``event`` label.
        """
        for name in self._SCALAR_FIELDS:
            metrics.inc(f"tflex.{name}", getattr(self, name), **labels)
        for phase, breakdown in (("fetch", self.fetch_latency),
                                 ("commit", self.commit_latency)):
            metrics.inc(f"tflex.{phase}_latency_blocks",
                        breakdown.samples, **labels)
            for component, cycles in breakdown.components.items():
                metrics.inc(f"tflex.{phase}_latency_cycles", cycles,
                            component=component, **labels)
        for event, n in self.energy_events.items():
            metrics.inc("tflex.energy_events", n, event=event, **labels)

    def summary(self) -> str:
        lines = [
            f"cycles:            {self.cycles}",
            f"blocks committed:  {self.blocks_committed}",
            f"insts committed:   {self.insts_committed}  (IPC {self.ipc:.2f})",
            f"blocks squashed:   {self.blocks_squashed}"
            f"  (mispredicts {self.mispredictions}, violations {self.violations})",
            f"prediction acc.:   {self.prediction_accuracy:.1%}"
            f"  ({self.predictions} predictions)",
            f"avg blocks inflight: {self.avg_inflight_blocks:.2f}",
            f"LSQ nacks:         {self.nacks}",
        ]
        return "\n".join(lines)
