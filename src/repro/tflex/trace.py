"""Block-lifecycle tracing and ASCII timeline rendering.

Enable with :meth:`ComposedProcessor.enable_block_trace` before running;
every committed block then records its protocol milestones.  The
timeline renderer draws fetch/execute/commit phases per block — the
textual equivalent of the paper's figure 2 pipeline diagram, useful for
teaching and for eyeballing protocol overlap.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockTrace:
    """Milestones of one committed block (absolute cycles)."""

    gseq: int
    label: str
    owner_index: int
    fetch_start: int
    fetch_cmd: int
    complete: int
    commit_start: int
    committed: int

    @property
    def lifetime(self) -> int:
        return self.committed - self.fetch_start


def render_timeline(traces: list[BlockTrace], width: int = 72) -> str:
    """ASCII Gantt chart: one row per block.

    Legend: ``f`` fetch/dispatch, ``x`` execute (fetch command to
    completion), ``c`` commit protocol.
    """
    if not traces:
        return "(no blocks traced)"
    t0 = min(t.fetch_start for t in traces)
    t1 = max(t.committed for t in traces)
    span = max(1, t1 - t0)
    scale = (width - 1) / span

    def col(cycle: int) -> int:
        return int((cycle - t0) * scale)

    lines = [f"cycles {t0}..{t1}  ({span} total; "
             f"1 column ~ {max(1, round(span / width))} cycles)"]
    for trace in sorted(traces, key=lambda t: t.gseq):
        row = [" "] * width
        for start, end, char in (
                (trace.fetch_start, trace.fetch_cmd, "f"),
                (trace.fetch_cmd, trace.complete, "x"),
                (trace.commit_start, trace.committed, "c")):
            for i in range(col(start), max(col(start) + 1, col(end))):
                if 0 <= i < width:
                    row[i] = char
        lines.append(f"B{trace.gseq:<4} {trace.label:<12} {''.join(row)}")
    lines.append("legend: f fetch  x execute  c commit "
                 "(overlapping rows = pipelined blocks)")
    return "\n".join(lines)
