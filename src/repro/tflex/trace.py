"""Block-lifecycle tracing and ASCII timeline rendering.

Enable with :meth:`ComposedProcessor.enable_block_trace` before running;
every committed block then records its protocol milestones (consumed
from the processor's ``block.commit`` events on a private fork of the
``repro.obs`` trace bus).  The
timeline renderer draws fetch/execute/commit phases per block — the
textual equivalent of the paper's figure 2 pipeline diagram, useful for
teaching and for eyeballing protocol overlap.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockTrace:
    """Milestones of one committed block (absolute cycles)."""

    gseq: int
    label: str
    owner_index: int
    fetch_start: int
    fetch_cmd: int
    complete: int
    commit_start: int
    committed: int

    @property
    def lifetime(self) -> int:
        return self.committed - self.fetch_start


def render_timeline(traces: list[BlockTrace], width: int = 72) -> str:
    """ASCII Gantt chart: one row per block.

    Legend: ``f`` fetch/dispatch, ``x`` execute (fetch command to
    completion), ``c`` commit protocol.

    When the scale squeezes adjacent phases into the same column, the
    earlier pipeline phase keeps the cell (a commit glyph never hides
    execution); a phase whose entire span lands on already-claimed
    cells takes the first free column to its right instead, falling
    back to overwriting its own last column at the chart edge, so every
    phase stays visible and placement is deterministic.  ``width`` is
    clamped to at least 2 columns.
    """
    if not traces:
        return "(no blocks traced)"
    width = max(2, int(width))
    t0 = min(t.fetch_start for t in traces)
    t1 = max(t.committed for t in traces)
    span = max(1, t1 - t0)
    scale = (width - 1) / span

    def col(cycle: int) -> int:
        return int((cycle - t0) * scale)

    lines = [f"cycles {t0}..{t1}  ({span} total; "
             f"1 column ~ {max(1, round(span / width))} cycles)"]
    for trace in sorted(traces, key=lambda t: t.gseq):
        row = [" "] * width
        for start, end, char in (
                (trace.fetch_start, trace.fetch_cmd, "f"),
                (trace.fetch_cmd, trace.complete, "x"),
                (trace.commit_start, trace.committed, "c")):
            cells = [i for i in range(col(start), max(col(start) + 1, col(end)))
                     if 0 <= i < width]
            blank = [i for i in cells if row[i] == " "]
            for i in blank:
                row[i] = char
            if cells and not blank:
                spill = next((i for i in range(cells[-1] + 1, width)
                              if row[i] == " "), cells[-1])
                row[spill] = char
        lines.append(f"B{trace.gseq:<4} {trace.label:<12} {''.join(row)}")
    lines.append("legend: f fetch  x execute  c commit "
                 "(overlapping rows = pipelined blocks)")
    return "\n".join(lines)
