"""TFlex: the Composable Lightweight Processor microarchitecture.

The paper's primary contribution: 32 lightweight dual-issue EDGE cores
that aggregate dynamically — without binary changes — into logical
processors of 1 to 32 cores, using fully distributed protocols for
fetch, next-block prediction, operand routing, memory disambiguation,
and commit (no structure is physically shared between cores).
"""

from repro.tflex.config import CoreConfig, SystemConfig, TFLEX, tflex_config, trips_config
from repro.tflex.events import EventQueue
from repro.tflex.instance import BlockInstance, BlockState
from repro.tflex.placement import pack, rectangle
from repro.tflex.processor import ComposedProcessor
from repro.tflex.stats import ProcStats
from repro.tflex.system import SimulationDeadlock, TFlexSystem, run_program
from repro.tflex.trace import BlockTrace, render_timeline

__all__ = [
    "CoreConfig",
    "SystemConfig",
    "TFLEX",
    "tflex_config",
    "trips_config",
    "EventQueue",
    "BlockInstance",
    "BlockState",
    "pack",
    "rectangle",
    "ComposedProcessor",
    "ProcStats",
    "SimulationDeadlock",
    "TFlexSystem",
    "run_program",
]
