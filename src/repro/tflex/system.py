"""The TFlex chip: core array, networks, shared L2, DRAM, and the
composition interface.

A :class:`TFlexSystem` hosts any number of simultaneously running
composed processors on disjoint core subsets (paper figure 1); they
share the S-NUCA L2 and main memory, so multiprogrammed runs see real
cache and bandwidth contention.
"""

from __future__ import annotations

from typing import Optional

import repro.obs as obs_lib
from repro.isa.program import Program
from repro.mem.dram import Dram
from repro.mem.l2 import L2System
from repro.noc import Network, Topology
from repro.tflex.config import SystemConfig, TFLEX, tflex_config
from repro.tflex.core import Core
from repro.tflex.events import EventQueue
from repro.tflex.placement import rectangle
from repro.tflex.processor import ComposedProcessor


class SimulationDeadlock(Exception):
    """The event queue drained before every processor halted."""


class TFlexSystem:
    """One chip instance."""

    def __init__(self, cfg: SystemConfig = TFLEX,
                 obs: Optional[obs_lib.Observability] = None) -> None:
        cfg.validate()
        self.cfg = cfg
        #: Observability bundle (metrics + trace bus + profiler); the
        #: process-global one unless handed a scoped bundle explicitly.
        self.obs = obs if obs is not None else obs_lib.current()
        self.queue = EventQueue()
        self.topology = Topology(cfg.mesh_width, cfg.mesh_height)
        self.opn = Network(self.topology, channels=cfg.opn_channels,
                           hop_latency=cfg.hop_latency, name="opn",
                           profiler=self.obs.profiler)
        self.control = Network(self.topology, channels=cfg.control_channels,
                               hop_latency=cfg.hop_latency, name="control",
                               profiler=self.obs.profiler)
        self.cores = [Core(self, i) for i in range(cfg.num_cores)]
        self.dram = Dram(latency=cfg.dram_latency, issue_gap=cfg.dram_issue_gap)
        self.l2 = L2System(
            self.topology, num_banks=cfg.l2_banks, bank_bytes=cfg.l2_bank_bytes,
            assoc=cfg.l2_assoc, line_size=cfg.line_size,
            tag_latency=cfg.l2_tag_latency,
            l1_banks=lambda core_id: self.cores[core_id].dcache,
            dram=self.dram)
        self.procs: list[ComposedProcessor] = []
        #: Count of composed processors that have not halted.  Kept
        #: current by :meth:`compose` and :meth:`note_halted` so the
        #: event loop never polls per-processor state (skip-idle
        #: stepping: the queue stops itself when the count hits zero).
        self._unhalted = 0

    # ------------------------------------------------------------------
    # Composition management
    # ------------------------------------------------------------------

    def compose(self, core_ids: list[int], program: Program,
                name: Optional[str] = None, share_cores: bool = False,
                max_inflight: Optional[int] = None,
                ctx: Optional[int] = None) -> ComposedProcessor:
        """Aggregate cores into a logical processor running ``program``.

        ``ctx`` overrides the cache/LSQ context tag: a processor
        re-formed around a failed core passes its predecessor's tag so
        warm cache lines on surviving cores remain valid (the directory
        keys lines by ``(ctx, addr)``).
        """
        proc = ComposedProcessor(self, proc_id=len(self.procs),
                                 core_ids=core_ids, program=program, name=name,
                                 share_cores=share_cores,
                                 max_inflight=max_inflight, ctx=ctx)
        self.procs.append(proc)
        self._unhalted += 1
        # A composition arriving mid-run withdraws any pending stop.
        self.queue.clear_stop()
        return proc

    def compose_smt(self, core_ids: list[int], programs: list[Program],
                    names: Optional[list[str]] = None) -> list[ComposedProcessor]:
        """Run several threads on ONE composition, SMT-style.

        The threads share the cores' issue slots, caches, predictors,
        and LSQ capacity, and split the block-frame budget evenly —
        the paper's TRIPS SMT mode generalized to any composition size.
        """
        if not programs:
            raise ValueError("compose_smt needs at least one program")
        frames = max(1, len(core_ids) // len(programs))
        procs = []
        for index, program in enumerate(programs):
            name = names[index] if names else f"smt{index}"
            procs.append(self.compose(core_ids, program, name=name,
                                      share_cores=True, max_inflight=frames))
        return procs

    def compose_rect(self, size: int, program: Program,
                     origin: tuple[int, int] = (0, 0),
                     name: Optional[str] = None) -> ComposedProcessor:
        """Compose a contiguous ``size``-core rectangle at ``origin``."""
        return self.compose(rectangle(self.cfg, size, origin), program, name)

    def decompose(self, proc: ComposedProcessor) -> None:
        """Release a processor's cores (it must have halted).

        Core-private cache and predictor state is retained; the
        directory protocol resolves stale L1 lines when the cores are
        reused in a different composition (paper section 4.7).
        """
        if not proc.halted:
            raise RuntimeError(f"{proc.name} still running")
        proc.release_cores()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Run every composed processor to completion.

        Returns the final cycle.  Raises :class:`SimulationDeadlock` if
        forward progress stops, with a per-processor state dump.
        """
        for proc in self.procs:
            if not proc.halted and not proc.started:
                proc.start()

        # Event-driven completion: processors report halts through
        # :meth:`note_halted`, and the queue stops itself when the last
        # one halts — no per-event polling of processor state.
        self._unhalted = sum(1 for p in self.procs if not p.halted)
        finished = (self.queue.run(max_cycles=max_cycles)
                    if self._unhalted else True)
        if not finished:
            raise SimulationDeadlock(
                f"cycle budget ({max_cycles}) exhausted\n" + self._dump())
        if not all(p.halted for p in self.procs):
            raise SimulationDeadlock("event queue drained early\n" + self._dump())
        for proc in self.procs:
            if proc.stats.cycles == 0:
                proc.stats.cycles = self.queue.now - proc.start_cycle
        if self.obs.active:
            for net in (self.opn, self.control):
                net.stats.to_metrics(self.obs.metrics, net=net.name)
            self.obs.emit("sim.done", cycle=self.queue.now,
                          procs=[p.name for p in self.procs])
        return self.queue.now

    def note_halted(self) -> None:
        """A composed processor halted; stop the queue after the last."""
        self._unhalted -= 1
        if self._unhalted <= 0:
            self.queue.stop()

    def _dump(self) -> str:
        return "\n".join(p.debug_state() for p in self.procs)


def run_program(program: Program, num_cores: int = 8,
                cfg: Optional[SystemConfig] = None,
                max_cycles: int = 10_000_000) -> ComposedProcessor:
    """Convenience one-shot: run one program on an N-core composition.

    Builds a chip just large enough when no config is given.
    """
    if cfg is None:
        cfg = tflex_config(max(num_cores, 1))
    system = TFlexSystem(cfg)
    proc = system.compose_rect(num_cores, program)
    system.run(max_cycles=max_cycles)
    return proc
