"""Datapath behaviour of a composed processor: execution, operand
routing over the operand network, and the distributed memory path
(LSQ banks, D-cache banks, L2).

Mixed into :class:`repro.tflex.processor.ComposedProcessor`; every
method here assumes the state that class establishes.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction, OperandSlot, Target, TargetKind
from repro.isa.opcodes import OpClass, evaluate, memory_size
from repro.isa.program import HALT_ADDR
from repro.lsq.bank import LsqResult
from repro.mem.cache import LineState
from repro.tflex.instance import BlockInstance, BlockState

#: Hoisted enum member: squash checks guard every hot handler.
SQUASHED = BlockState.SQUASHED


class _NullValue:
    """Operand-network token that nullifies a register write."""

    def __repr__(self) -> str:
        return "NULL"


NULL_VALUE = _NullValue()


def _run_all(fns: list) -> None:
    """Run a batch of same-cycle delivery thunks in order."""
    for fn in fns:
        fn()


class DatapathMixin:
    """Execution-side behaviour of a composed processor."""

    # ------------------------------------------------------------------
    # Issue (called by Core at issue time)
    # ------------------------------------------------------------------

    def issue(self, instance: BlockInstance, inst: Instruction, core) -> None:
        """Execute one instruction; results appear after its latency."""
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("execute"):
                return self._do_issue(instance, inst, core)
        return self._do_issue(instance, inst, core)

    def _do_issue(self, instance: BlockInstance, inst: Instruction, core) -> None:
        now = self.queue.now
        opclass = inst.op.opclass
        self._events["fpu_op" if inst.op.is_fp else "alu_op"] += 1

        if opclass is OpClass.BRANCH:
            self._issue_branch(instance, inst, core, now)
        elif opclass is OpClass.NULL:
            self._issue_null(instance, inst, core, now)
        elif opclass is OpClass.LOAD:
            self._issue_load(instance, inst, core, now)
        elif opclass is OpClass.STORE:
            self._issue_store(instance, inst, core, now)
        else:
            ops = instance.operand_values(inst)
            imm = self.program.resolve_imm(inst.imm)
            value = evaluate(inst.op, ops, imm)
            done = now + inst.op.latency
            self.queue.at(done, lambda: self._route_result(instance, inst, value, core))

    def _issue_branch(self, instance: BlockInstance, inst: Instruction,
                      core, now: int) -> None:
        ops = instance.operand_values(inst)
        name = inst.op.name
        if name == "HALT":
            next_addr = HALT_ADDR
        elif name == "RET":
            next_addr = int(ops[0])
        else:
            next_addr = self.program.address_of(inst.branch_target)
        done = now + inst.op.latency
        arrive = self.control_delay(core.id, self.core_of_index(instance.owner_index), done)
        self.queue.at(arrive, lambda: self._on_branch_resolved(instance, inst, next_addr))

    def _issue_null(self, instance: BlockInstance, inst: Instruction,
                    core, now: int) -> None:
        done = now + inst.op.latency
        if inst.null_store:
            owner = self.core_of_index(instance.owner_index)
            arrive = self.control_delay(core.id, owner, done)
            lsq_id = inst.lsq_id
            self.queue.at(arrive, lambda: self._on_store_resolved(instance, lsq_id))
        if inst.targets:
            self.queue.at(done, lambda: self._route_result(
                instance, inst, NULL_VALUE, core, null=True))

    # ------------------------------------------------------------------
    # Operand routing
    # ------------------------------------------------------------------

    def _route_result(self, instance: BlockInstance, inst: Instruction,
                      value, core, null: bool = False) -> None:
        """Send a produced value to each encoded dataflow target.

        Deliveries landing on the same cycle are folded into one event
        (batched operand delivery): the per-target ``operand_delay``
        calls still run in target order — so link reservations and
        traffic stats are untouched — and within this handler the
        scheduled sequence numbers are consecutive, so no foreign event
        can interleave; folding preserves the global order exactly.
        """
        if instance.state is SQUASHED:
            return
        targets = inst.targets
        if len(targets) == 1:
            self._route_to_target(instance, targets[0], value, core.id, null)
            return
        from_core = core.id
        pending_cycle = -1
        pending: list = []
        for target in targets:
            arrive, fn = self._prepare_delivery(instance, target, value,
                                                from_core, null)
            if arrive == pending_cycle:
                pending.append(fn)
            else:
                pending = [fn]
                pending_cycle = arrive
                self.queue.at(arrive, lambda fns=pending: _run_all(fns))

    def _prepare_delivery(self, instance: BlockInstance, target: Target,
                          value, from_core: int, null: bool):
        """Arrival cycle + delivery thunk for one dataflow target."""
        now = self.queue.now
        if target.kind is TargetKind.WRITE:
            wslot = instance.block.writes[target.index]
            bank_index = self.rf_bank_of(wslot.reg)
            bank_core = self._rf_bank_core_ids[bank_index]
            arrive = self.operand_delay(from_core, bank_core, now)
            return arrive, lambda: self._on_write_arrive(
                instance, wslot.reg, value, null, bank_index)
        consumer = instance.block.insts[target.index]
        dest_core = self.core_ids[target.index % self.ncores]
        arrive = self.operand_delay(from_core, dest_core, now)
        return arrive, lambda: self._deliver_operand(
            instance, consumer, target.slot, value, dest_core)

    def _route_to_target(self, instance: BlockInstance, target: Target,
                         value, from_core: int, null: bool = False) -> None:
        now = self.queue.now
        if target.kind is TargetKind.WRITE:
            wslot = instance.block.writes[target.index]
            bank_index = self.rf_bank_of(wslot.reg)
            bank_core = self.rf_bank_core(bank_index)
            arrive = self.operand_delay(from_core, bank_core, now)
            self.queue.at(arrive, lambda: self._on_write_arrive(
                instance, wslot.reg, value, null, bank_index))
        else:
            consumer = instance.block.insts[target.index]
            dest_core = self.core_of_index(target.index % self.ncores)
            arrive = self.operand_delay(from_core, dest_core, now)
            self.queue.at(arrive, lambda: self._deliver_operand(
                instance, consumer, target.slot, value, dest_core))

    def _deliver_operand(self, instance: BlockInstance, consumer: Instruction,
                         slot: OperandSlot, value, dest_core: int) -> None:
        if instance.state is SQUASHED:
            return
        self._events["window_write"] += 1
        instance.buffer_operand(consumer.iid, slot, value)
        self.system.cores[dest_core].wake(instance, consumer)

    def _on_write_arrive(self, instance: BlockInstance, reg: int, value,
                         null: bool, bank_index: int) -> None:
        """A register write (or NULL) reached its register bank."""
        if instance.state is SQUASHED:
            return
        self._events["regfile_write"] += 1
        self.rf_banks[bank_index].produce(instance.gseq, reg, value, null=null)
        # The bank notifies the owner for completion counting.
        owner = self.core_of_index(instance.owner_index)
        bank_core = self._rf_bank_core_ids[bank_index]
        arrive = self.control_delay(bank_core, owner, self.queue.now)
        self.queue.at(arrive, lambda: self._on_write_resolved(instance))

    # ------------------------------------------------------------------
    # Register reads (dispatched at the register bank's core)
    # ------------------------------------------------------------------

    def dispatch_read(self, instance: BlockInstance, read_index: int) -> None:
        """Resolve one read slot against the bank's forwarding state."""
        if instance.state is SQUASHED:
            return
        read = instance.block.reads[read_index]
        bank_index = self.rf_bank_of(read.reg)
        bank_core = self._rf_bank_core_ids[bank_index]
        self._events["regfile_read"] += 1

        def deliver(value) -> None:
            if instance.state is SQUASHED:
                return
            for target in read.targets:
                self._route_to_target(instance, target, value, bank_core)

        self.rf_banks[bank_index].read(instance.gseq, read.reg, deliver)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def _issue_load(self, instance: BlockInstance, inst: Instruction,
                    core, now: int) -> None:
        ops = instance.operand_values(inst)
        addr = int(ops[0]) + int(inst.imm or 0)
        if addr < 0:
            self._bad_address(instance, inst, addr)
            return
        bank_core = self.dbank_core(self.dbank_of(addr))
        arrive = self.operand_delay(core.id, bank_core, now + inst.op.latency)
        self.queue.at(arrive, lambda: self._load_arrive(instance, inst, addr))

    def _load_must_wait(self, instance: BlockInstance, inst: Instruction) -> bool:
        """Dependence throttle for previously-violating loads: either
        the blunt all-older-stores rule or the store-set predictor."""
        key = (instance.block.label, inst.lsq_id)
        if self.store_sets is not None:
            return self.store_sets.must_wait(key, instance.gseq, inst.lsq_id,
                                             self.inflight)
        return key in self.dependence_set and not self.older_stores_resolved(
            instance.gseq, inst.lsq_id)

    def _record_conflict(self, load_key: tuple, store_gseq, store_lsq) -> None:
        """Remember a load/store dependence for future throttling."""
        self.dependence_set.add(load_key)
        if self.store_sets is not None and store_gseq is not None:
            store_instance = self.instances.get(store_gseq)
            if store_instance is not None:
                self.store_sets.record_violation(
                    load_key, (store_instance.block.label, store_lsq))

    def _load_arrive(self, instance: BlockInstance, inst: Instruction,
                     addr: int) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("lsq"):
                return self._do_load_arrive(instance, inst, addr)
        return self._do_load_arrive(instance, inst, addr)

    def _do_load_arrive(self, instance: BlockInstance, inst: Instruction,
                        addr: int) -> None:
        """A load reached its LSQ/D-cache bank."""
        if instance.state is SQUASHED:
            return
        key = (instance.block.label, inst.lsq_id)
        if self._load_must_wait(instance, inst):
            # Throttled after an earlier violation.
            self.deferred_loads.append((instance, inst, addr))
            return

        size = memory_size(inst.op)
        fp = inst.op.name.endswith("F")
        bank_index = self.dbank_of(addr)
        bank_core = self.dbank_core(bank_index)
        lsq = self.system.cores[bank_core].lsq
        self._events["lsq_search"] += 1
        outcome = lsq.load(instance.gseq, inst.lsq_id, addr, size, fp=fp,
                           ctx=self.ctx)

        if outcome.result is LsqResult.NACK:
            self._handle_nack(instance, lsq)
            self.queue.after(self.cfg.nack_retry,
                             lambda: self._load_arrive(instance, inst, addr))
            return
        if outcome.result is LsqResult.CONFLICT:
            # Inexact overlap with an older in-flight store.  The bank
            # refused the load before it read anything, so no flush is
            # needed: record the dependence and park until the store
            # drains at commit.
            self.stats.replays += 1
            self._record_conflict(key, outcome.conflict_gseq, outcome.conflict_lsq)
            self.deferred_loads.append((instance, inst, addr))
            return

        now = self.queue.now
        if outcome.result is LsqResult.FORWARD:
            done = now + self.cfg.core.lsq_search
            value = outcome.value
            self.queue.at(done, lambda: self._finish_load(
                instance, inst, value, bank_core))
            return

        # LsqResult.OK: go to the D-cache.
        self._load_dcache(instance, inst, addr, size, fp, bank_index, bank_core)

    def _load_dcache(self, instance: BlockInstance, inst: Instruction, addr: int,
                     size: int, fp: bool, bank_index: int, bank_core: int) -> None:
        now = self.queue.now
        dcache = self.system.cores[bank_core].dcache
        self._events["dcache_read"] += 1
        t_cache = now + self.cfg.core.lsq_search + self.cfg.core.dcache_hit
        if dcache.access(self.ctx, addr):
            self.queue.at(t_cache, lambda: self._finish_load_from_memory(
                instance, inst, addr, size, fp, bank_core))
            return
        # Miss: fetch the line from L2 (which may go to DRAM).
        self._events["l2_access"] += 1
        done, state = self.system.l2.read(self.ctx, addr, bank_core, t_cache)
        victim = dcache.fill(self.ctx, addr, state)
        if victim is not None:
            self.system.l2.l1_evicted(victim.ctx, victim.line_addr, bank_core)
        self.queue.at(done, lambda: self._finish_load_from_memory(
            instance, inst, addr, size, fp, bank_core))

    def _finish_load_from_memory(self, instance: BlockInstance, inst: Instruction,
                                 addr: int, size: int, fp: bool,
                                 bank_core: int) -> None:
        """Read the architectural value at reply time (committed state)."""
        if instance.state is SQUASHED:
            return
        value = self.memory.load(addr, size, fp=fp)
        self._finish_load(instance, inst, value, bank_core)

    def _finish_load(self, instance: BlockInstance, inst: Instruction,
                     value, bank_core: int) -> None:
        if instance.state is SQUASHED:
            return
        self.stats.loads_executed += 1
        core = self.system.cores[bank_core]
        self._route_result(instance, inst, value, core)

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def _issue_store(self, instance: BlockInstance, inst: Instruction,
                     core, now: int) -> None:
        ops = instance.operand_values(inst)
        addr = int(ops[0]) + int(inst.imm or 0)
        if addr < 0:
            self._bad_address(instance, inst, addr)
            return
        value = ops[1]
        bank_core = self.dbank_core(self.dbank_of(addr))
        arrive = self.operand_delay(core.id, bank_core, now + inst.op.latency)
        self.queue.at(arrive, lambda: self._store_arrive(instance, inst, addr, value))

    def _store_arrive(self, instance: BlockInstance, inst: Instruction,
                      addr: int, value) -> None:
        prof = self.obs.profiler
        if prof.enabled:
            with prof.phase("lsq"):
                return self._do_store_arrive(instance, inst, addr, value)
        return self._do_store_arrive(instance, inst, addr, value)

    def _do_store_arrive(self, instance: BlockInstance, inst: Instruction,
                         addr: int, value) -> None:
        if instance.state is SQUASHED:
            return
        size = memory_size(inst.op)
        fp = inst.op.name.endswith("F")
        bank_core = self.dbank_core(self.dbank_of(addr))
        lsq = self.system.cores[bank_core].lsq
        self._events["lsq_search"] += 1
        outcome = lsq.store(instance.gseq, inst.lsq_id, addr, size, value,
                            fp=fp, ctx=self.ctx)

        if outcome.result is LsqResult.NACK:
            self._handle_nack(instance, lsq)
            self.queue.after(self.cfg.nack_retry,
                             lambda: self._store_arrive(instance, inst, addr, value))
            return

        if outcome.result is LsqResult.CONFLICT:
            # Dependence violation: a younger load already executed.
            self.stats.violations += 1
            victim = self.instances.get(outcome.violation_gseq)
            if victim is not None and outcome.violation_lsq is not None:
                self._record_conflict(
                    (victim.block.label, outcome.violation_lsq),
                    instance.gseq, inst.lsq_id)
            self.flush_from(outcome.violation_gseq, reason="violation")
            if instance.state is SQUASHED:
                return   # the store's own block was the violator's block

        # Store accepted: notify the owner that this slot resolved.
        owner = self.core_of_index(instance.owner_index)
        done = self.queue.now + self.cfg.core.lsq_search
        arrive = self.control_delay(bank_core, owner, done)
        lsq_id = inst.lsq_id
        self.queue.at(arrive, lambda: self._on_store_resolved(instance, lsq_id))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _bad_address(self, instance: BlockInstance, inst: Instruction,
                     addr: int) -> None:
        """Drop an access to a garbage address (wrong-path speculation
        can compute anything).  The issuing block never completes; a
        correct-path occurrence therefore surfaces as a simulation
        deadlock diagnostic rather than silent corruption."""
        self.stats.count("bad_address")

    def _handle_nack(self, instance: BlockInstance, lsq) -> None:
        """LSQ overflow policy (paper section 4.5, NACK mechanism).

        A NACKed access retries after a delay.  If the bank is occupied
        by *younger* blocks than the requester, retrying alone livelocks
        — the younger blocks cannot commit before the requester — so the
        youngest occupant (and everything younger) is flushed to free
        entries; occupancy by older blocks drains naturally at commit.
        """
        self.stats.nacks += 1
        if not self.inflight or self.inflight[0] is not instance:
            return   # younger requesters wait: older blocks drain at commit
        youngest = lsq.youngest_gseq(ctx=self.ctx)
        if youngest is not None and youngest > instance.gseq:
            self.stats.count("lsq_overflow_flush")
            self.flush_from(youngest, reason="lsq-overflow")

    def older_stores_resolved(self, gseq: int, lsq_id: int) -> bool:
        """True when every store older than (gseq, lsq_id) has resolved
        (executed, nullified, or its block committed/squashed)."""
        for other in self.inflight:
            if other.state is SQUASHED or other.gseq > gseq:
                continue
            if other.gseq == gseq:
                if any(slot < lsq_id and slot not in other.resolved_store_slots
                       for slot in other.block.store_ids):
                    return False
            elif other.stores_done < other.stores_expected:
                return False
        return True

    def _wake_deferred_loads(self) -> None:
        if not self.deferred_loads:
            return
        pending, self.deferred_loads = self.deferred_loads, []
        for instance, inst, addr in pending:
            if instance.state is SQUASHED:
                continue
            if not self._load_must_wait(instance, inst):
                # Re-present to the bank (charging a fresh LSQ search).
                self._load_arrive_deferred(instance, inst, addr)
            else:
                self.deferred_loads.append((instance, inst, addr))

    def _load_arrive_deferred(self, instance: BlockInstance, inst: Instruction,
                              addr: int) -> None:
        """Re-attempt a throttled load without re-adding it to the
        dependence throttle (its key is already in the set)."""
        key = (instance.block.label, inst.lsq_id)
        size = memory_size(inst.op)
        fp = inst.op.name.endswith("F")
        bank_index = self.dbank_of(addr)
        bank_core = self.dbank_core(bank_index)
        lsq = self.system.cores[bank_core].lsq
        self._events["lsq_search"] += 1
        outcome = lsq.load(instance.gseq, inst.lsq_id, addr, size, fp=fp,
                           ctx=self.ctx)
        if outcome.result is LsqResult.NACK:
            self._handle_nack(instance, lsq)
            self.queue.after(self.cfg.nack_retry,
                             lambda: self._load_arrive_deferred(instance, inst, addr))
            return
        if outcome.result is LsqResult.CONFLICT:
            # The conflicting older store is still in the LSQ: keep waiting.
            self.deferred_loads.append((instance, inst, addr))
            return
        now = self.queue.now
        if outcome.result is LsqResult.FORWARD:
            value = outcome.value
            self.queue.at(now + self.cfg.core.lsq_search,
                          lambda: self._finish_load(instance, inst, value, bank_core))
            return
        self._load_dcache(instance, inst, addr, size, fp, bank_index, bank_core)
