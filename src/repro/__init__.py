"""repro — a reproduction of "Composable Lightweight Processors"
(MICRO-40, 2007).

Subpackages:

* :mod:`repro.isa` — the EDGE (TRIPS-like) block-atomic ISA and golden
  interpreter;
* :mod:`repro.compiler` — kernel DSL with EDGE and RISC backends;
* :mod:`repro.tflex` — the composable-core cycle-level simulator (the
  paper's contribution) and the TRIPS baseline configuration;
* :mod:`repro.predictor`, :mod:`repro.noc`, :mod:`repro.mem`,
  :mod:`repro.lsq` — microarchitectural substrates;
* :mod:`repro.risc` — the conventional out-of-order comparator;
* :mod:`repro.power`, :mod:`repro.sched` — area/energy models and the
  multiprogramming allocator;
* :mod:`repro.workloads` — the 26-benchmark suite;
* :mod:`repro.harness` — one experiment driver per table/figure.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"
