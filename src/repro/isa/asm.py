"""Textual EDGE assembly: a parser for the disassembly format.

``Program.disassemble()`` / ``Block.disassemble()`` emit a canonical
listing; this module parses it back, closing the loop for hand-written
assembly, golden files, and tooling.  Grammar (one item per line)::

    ; comment                              (anywhere)
    program NAME entry LABEL               (optional header)
    block LABEL:
      R0   read  r5   => I3.l, I7.r        (read slots, in order)
      W0   write r9                        (write slots, in order)
      I0   ADDI   #4 => I1.l               (instructions, in order)
      I1   TLEI   <p> #20 => W0            (predicates: <p> / <!p>)
      I2   BRO    [exit 0] -> loop         (branches)
      I3   STD    #0 [lsq 0]               (memory ops)

Data segments and register initialization are loader concerns and not
part of the assembly (as with the binary encoding).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.isa.block import Block, ReadSlot, WriteSlot
from repro.isa.instruction import Instruction, LabelRef, OperandSlot, Target, TargetKind
from repro.isa.opcodes import OPCODES
from repro.isa.program import Program


class AsmError(Exception):
    """Syntax or semantic error in an assembly listing."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_SLOT_NAMES = {"p": OperandSlot.PRED, "l": OperandSlot.OP0, "r": OperandSlot.OP1}
_SLOT_CHARS = {v: k for k, v in _SLOT_NAMES.items()}

_TARGET_RE = re.compile(r"^(?:I(\d+)\.([plr])|W(\d+))$")
_READ_RE = re.compile(r"^R(\d+)\s+read\s+r(\d+)(?:\s+=>\s*(.*))?$")
_WRITE_RE = re.compile(r"^W(\d+)\s+write\s+r(\d+)$")
_INST_RE = re.compile(r"^I(\d+)\s+(\S+)\s*(.*)$")
_BLOCK_RE = re.compile(r"^block\s+(\S+):")
_PROGRAM_RE = re.compile(r"^;\s*program\s+(\S+)\s+entry=(\S+)$")


def _parse_target(text: str, line_no: int) -> Target:
    match = _TARGET_RE.match(text.strip())
    if not match:
        raise AsmError(line_no, f"bad target {text!r}")
    if match.group(3) is not None:
        return Target(TargetKind.WRITE, int(match.group(3)))
    return Target(TargetKind.INST, int(match.group(1)),
                  _SLOT_NAMES[match.group(2)])


def _parse_imm(text: str):
    if text.startswith("&"):
        return LabelRef(text[1:])
    try:
        return int(text, 0)
    except ValueError:
        return float(text)


def parse_instruction(line: str, line_no: int) -> Instruction:
    """Parse one ``I<n> OPCODE ...`` line."""
    match = _INST_RE.match(line.strip())
    if not match:
        raise AsmError(line_no, f"expected instruction, got {line!r}")
    iid = int(match.group(1))
    opname = match.group(2)
    spec = OPCODES.get(opname)
    if spec is None:
        raise AsmError(line_no, f"unknown opcode {opname!r}")
    rest = match.group(3).strip()

    pred: Optional[bool] = None
    imm = None
    lsq_id = None
    exit_id = None
    branch_target = None
    null_store = False
    targets: tuple[Target, ...] = ()

    if "=>" in rest:
        rest, target_text = rest.split("=>", 1)
        targets = tuple(_parse_target(t, line_no)
                        for t in target_text.split(",") if t.strip())
        rest = rest.strip()
    if "->" in rest:
        rest, label = rest.split("->", 1)
        branch_target = label.strip()
        rest = rest.strip()

    lsq_match = re.search(r"\[lsq\s+(\d+)\]", rest)
    if lsq_match:
        lsq_id = int(lsq_match.group(1))
        rest = rest.replace(lsq_match.group(0), " ")
    exit_match = re.search(r"\[exit\s+(\d+)\]", rest)
    if exit_match:
        exit_id = int(exit_match.group(1))
        rest = rest.replace(exit_match.group(0), " ")

    for token in rest.split():
        if token == "<p>":
            pred = True
        elif token == "<!p>":
            pred = False
        elif token.startswith("#"):
            imm = _parse_imm(token[1:])
        elif token == "[null-store]":
            null_store = True
        else:
            raise AsmError(line_no, f"unexpected token {token!r}")

    if spec.name == "NULL" and lsq_id is not None:
        null_store = True
    return Instruction(iid=iid, op=spec, targets=targets, pred=pred, imm=imm,
                       lsq_id=lsq_id, exit_id=exit_id,
                       branch_target=branch_target, null_store=null_store)


def parse_block(lines: list[tuple[int, str]], label: str) -> Block:
    """Parse the body lines of one block."""
    reads: list[ReadSlot] = []
    writes: list[WriteSlot] = []
    insts: list[Instruction] = []
    for line_no, line in lines:
        text = line.strip()
        if not text or text.startswith(";"):
            continue
        read_match = _READ_RE.match(text)
        if read_match:
            index, reg, target_text = read_match.groups()
            targets = tuple(_parse_target(t, line_no)
                            for t in (target_text or "").split(",") if t.strip())
            reads.append(ReadSlot(index=int(index), reg=int(reg), targets=targets))
            continue
        write_match = _WRITE_RE.match(text)
        if write_match:
            writes.append(WriteSlot(index=int(write_match.group(1)),
                                    reg=int(write_match.group(2))))
            continue
        insts.append(parse_instruction(text, line_no))
    block = Block(label=label, insts=insts, reads=reads, writes=writes)
    return block


def assemble(text: str, entry: Optional[str] = None,
             validate: bool = True) -> Program:
    """Assemble a full listing into a :class:`Program`.

    The entry block defaults to the listing's ``; program ... entry=``
    header, else the first block."""
    blocks: list[tuple[str, list[tuple[int, str]]]] = []
    name = "asm"
    header_entry = None
    current: Optional[list[tuple[int, str]]] = None

    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        header = _PROGRAM_RE.match(stripped)
        if header:
            name, header_entry = header.groups()
            continue
        block_match = _BLOCK_RE.match(stripped)
        if block_match:
            current = []
            blocks.append((block_match.group(1), current))
            continue
        if stripped and current is None and not stripped.startswith(";"):
            raise AsmError(line_no, "content before first block")
        if current is not None:
            current.append((line_no, line))

    if not blocks:
        raise AsmError(0, "no blocks found")
    program = Program(entry=entry or header_entry or blocks[0][0], name=name)
    for label, body in blocks:
        program.add_block(parse_block(body, label))
    if validate:
        program.validate()
    return program
