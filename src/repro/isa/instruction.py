"""Instruction and dataflow-target representation for the EDGE ISA.

Each EDGE instruction explicitly encodes *where its result goes* instead of
writing a named register (paper section 3).  A target is nine bits in the
TRIPS encoding: two bits select the operand slot of the consumer
(left/right/predicate) and seven bits select one of the 128 instructions
in the block.  Register-write slots form a second, parallel target space
(the block's write queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Optional, Union

from repro.isa.opcodes import OpSpec, OpClass


class TargetKind(Enum):
    """What a dataflow target points at."""

    INST = "inst"    # an operand slot of another instruction in the block
    WRITE = "write"  # a register-write queue slot of the block


class OperandSlot(IntEnum):
    """Operand slot of a consuming instruction (2 bits of the target).

    An ``IntEnum`` so the hot operand-buffering path can use a member
    directly as a list index (slot ``s`` -> buffer position ``s``).
    """

    PRED = 0   # predicate operand
    OP0 = 1    # left operand
    OP1 = 2    # right operand


@dataclass(frozen=True, slots=True)
class Target:
    """One dataflow target: consumer coordinates within the block.

    For ``kind == INST``, ``index`` is the consumer instruction ID
    (0..127) and ``slot`` selects its operand.  For ``kind == WRITE``,
    ``index`` is the register-write queue slot (0..31) and ``slot`` is
    ignored.
    """

    kind: TargetKind
    index: int
    slot: OperandSlot = OperandSlot.OP0

    def encode(self) -> int:
        """Pack into the 9-bit TRIPS-style target encoding.

        The top two bits select the operand slot (0 = predicate,
        1 = left, 2 = right) with code 3 reserved for register-write
        queue targets; the low seven bits select the instruction ID or
        write-queue slot.
        """
        if self.kind is TargetKind.WRITE:
            return (3 << 7) | (self.index & 0x7F)
        return (self.slot.value << 7) | (self.index & 0x7F)

    @staticmethod
    def decode(bits: int) -> "Target":
        """Inverse of :meth:`encode`."""
        code = (bits >> 7) & 0x3
        index = bits & 0x7F
        if code == 3:
            return Target(TargetKind.WRITE, index)
        return Target(TargetKind.INST, index, OperandSlot(code))

    def __repr__(self) -> str:
        if self.kind is TargetKind.WRITE:
            return f"W{self.index}"
        slot = {OperandSlot.PRED: "p", OperandSlot.OP0: "l", OperandSlot.OP1: "r"}[self.slot]
        return f"I{self.index}.{slot}"


#: Immediate values may be plain numbers or (for MOVI of code addresses)
#: a symbolic label reference resolved at program link time.
@dataclass(frozen=True)
class LabelRef:
    """Symbolic reference to a block address, resolved at link time."""

    label: str

    def __repr__(self) -> str:
        return f"&{self.label}"


Immediate = Union[int, float, LabelRef, None]


@dataclass(slots=True)
class Instruction:
    """One EDGE instruction within a block.

    Attributes:
        iid: Instruction ID, 0..127; equals the instruction's index in
            the block's instruction list and determines which core
            executes it under the composition interleaving hash.
        op: Opcode spec.
        targets: Dataflow targets of the result (at most
            :data:`repro.isa.block.MAX_TARGETS`).
        pred: ``None`` for unpredicated, else the required predicate
            token value (``True`` fires on 1, ``False`` fires on 0).
        imm: Immediate field for ``*I`` forms and memory offsets.
        lsq_id: Load/store-queue sequence number (0..31) for memory
            operations and store-nullifying NULLs; program order within
            the block.
        exit_id: 3-bit exit identifier for branch opcodes; feeds the
            exit-history-based next-block predictor.
        branch_target: Static successor label for BRO/CALLO.
        null_store: True for NULL instructions that nullify an LSQ slot
            rather than register-write slots.
    """

    iid: int
    op: OpSpec
    targets: tuple[Target, ...] = ()
    pred: Optional[bool] = None
    imm: Immediate = None
    lsq_id: Optional[int] = None
    exit_id: Optional[int] = None
    branch_target: Optional[str] = None
    null_store: bool = False

    @property
    def is_branch(self) -> bool:
        return self.op.opclass is OpClass.BRANCH

    @property
    def is_load(self) -> bool:
        return self.op.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op.opclass is OpClass.STORE

    @property
    def is_null(self) -> bool:
        return self.op.opclass is OpClass.NULL

    @property
    def num_operands(self) -> int:
        """Number of non-predicate dataflow operands this instruction awaits."""
        return self.op.operands

    def describe(self) -> str:
        """Human-readable one-line disassembly."""
        parts = [f"I{self.iid:<3} {self.op.name:<6}"]
        if self.pred is not None:
            parts.append(f"<{'p' if self.pred else '!p'}>")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.lsq_id is not None:
            parts.append(f"[lsq {self.lsq_id}]")
        if self.exit_id is not None:
            parts.append(f"[exit {self.exit_id}]")
        if self.branch_target is not None:
            parts.append(f"-> {self.branch_target}")
        if self.targets:
            parts.append("=> " + ", ".join(repr(t) for t in self.targets))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<{self.describe()}>"
