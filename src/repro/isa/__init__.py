"""EDGE (TRIPS-like) instruction set architecture.

This package defines the block-atomic, dataflow-target ISA that the TFlex
composable microarchitecture executes (paper section 3):

* Programs are sequences of *blocks* of up to 128 instructions with atomic
  execution semantics (:mod:`repro.isa.block`).
* Each instruction explicitly encodes the consumers of its result as
  9-bit dataflow targets instead of writing named registers
  (:mod:`repro.isa.instruction`).
* Blocks communicate through up to 32 register reads, 32 register writes
  and 32 load/store-queue slots, plus exactly one taken exit branch.

The :mod:`repro.isa.interp` module provides a functional, sequential
"golden model" interpreter used to validate the cycle-level simulator.
"""

from repro.isa.opcodes import OpClass, OpSpec, OPCODES, evaluate
from repro.isa.instruction import Instruction, Target, TargetKind, OperandSlot
from repro.isa.block import (
    Block,
    ReadSlot,
    WriteSlot,
    BlockError,
    BLOCK_MAX_INSTS,
    MAX_READS,
    MAX_WRITES,
    MAX_LSQ_IDS,
    MAX_TARGETS,
    NUM_REGS,
    NUM_EXITS,
)
from repro.isa.program import Program, ProgramError, HALT_ADDR
from repro.isa.builder import BlockBuilder, Port, BlockTooLarge
from repro.isa.interp import Interpreter, InterpResult, InterpError
from repro.isa.encoding import encode_program, decode_program, EncodingError
from repro.isa.asm import assemble, AsmError

__all__ = [
    "OpClass",
    "OpSpec",
    "OPCODES",
    "evaluate",
    "Instruction",
    "Target",
    "TargetKind",
    "OperandSlot",
    "Block",
    "ReadSlot",
    "WriteSlot",
    "BlockError",
    "BLOCK_MAX_INSTS",
    "MAX_READS",
    "MAX_WRITES",
    "MAX_LSQ_IDS",
    "MAX_TARGETS",
    "NUM_REGS",
    "NUM_EXITS",
    "Program",
    "ProgramError",
    "HALT_ADDR",
    "BlockBuilder",
    "Port",
    "BlockTooLarge",
    "Interpreter",
    "InterpResult",
    "InterpError",
    "encode_program",
    "decode_program",
    "EncodingError",
    "assemble",
    "AsmError",
]
