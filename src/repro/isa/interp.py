"""Golden-model interpreter for EDGE programs.

Executes programs block-atomically and sequentially — the architectural
semantics the distributed TFlex microarchitecture must preserve.  The
cycle-level simulator is validated against this model: after any run,
registers, memory, and the dynamic block path must match.

Within a block, instructions fire in dataflow order.  Memory operations
respect LSQ sequence numbers: a load may fire only once every older
store slot in the block has *resolved* (a store or NULL token fired for
it), and it forwards from the youngest older matching in-block store.
Stores take architectural effect at block commit, in LSQ order.

The interpreter also enforces the dynamic half of the block contract:
exactly one branch fires, every declared write and store slot resolves,
and no slot resolves twice.  Violations raise :class:`InterpError` —
they indicate compiler or builder bugs.

Repeated blocks execute through a prepared form (:class:`PreparedBlock`,
the functional analogue of ``tflex/decode.DecodedBlock``): per static
instruction the dispatch decision, pre-bound evaluator, resolved
immediates, encoded target list and operand count are computed once and
cached on the interpreter, so the per-execution dataflow loop touches
only flat lists and ints.  This is what makes the interpreter usable as
the fast-forward engine for sampled simulation (``repro.sample``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.block import Block
from repro.isa.instruction import Instruction, OperandSlot, Target, TargetKind
from repro.isa.opcodes import OpClass, bind_evaluator, memory_size
from repro.isa.program import HALT_ADDR, Program
from repro.mem.flatmem import FlatMemory


class InterpError(Exception):
    """Dynamic violation of the block-atomic execution contract."""


class _NullToken:
    """Dataflow token that nullifies a block output."""

    def __repr__(self) -> str:
        return "NULL"


NULL_TOKEN = _NullToken()

#: Sentinel for an operand slot no value has been delivered to.  Distinct
#: from NULL_TOKEN (a real dataflow value) and from None (never used as a
#: dataflow value, but cheap to confuse with one).
_MISSING = object()

# Prepared-instruction dispatch codes (plain ints: the execution loop
# switches on these, and int compares beat enum identity checks).
_ALU = 0      # any value-producing opcode (INT/TEST/FP/MOVE/...)
_BRANCH = 1
_NULL = 2
_STORE = 3
_LOAD = 4


@dataclass
class BlockOutcome:
    """Architectural effects of one dynamic block execution."""

    label: str
    exit_id: int
    next_addr: int
    insts_fired: int
    writes: dict[int, object] = field(default_factory=dict)   # reg -> value
    stores: list[tuple[int, int, int, object, bool]] = field(default_factory=list)
    loads: int = 0
    branch_op: str = ""      # opcode name of the fired exit branch


@dataclass
class InterpResult:
    """Summary of a program run.

    ``halted`` is True only when the program reached HALT; a run stopped
    by the ``max_blocks`` budget instead comes back with ``truncated``
    set, so callers comparing against the golden model can fail loudly
    rather than silently diffing a partial execution.
    """

    blocks_executed: int
    insts_fired: int
    loads: int = 0
    stores: int = 0
    halted: bool = False
    truncated: bool = False
    path: Optional[list[tuple[str, int, int]]] = None   # (label, exit_id, next_addr)


class _PInst:
    """One instruction in prepared form (see :class:`PreparedBlock`)."""

    __slots__ = ("iid", "code", "needs", "pred", "targets", "evalf",
                 "lsq_id", "older_stores", "mem_size", "fp", "offset",
                 "exit_id", "branch_addr", "null_store", "op_name")

    def __init__(self, inst: Instruction, program: Program,
                 store_ids: frozenset) -> None:
        op = inst.op
        opclass = op.opclass
        self.iid = inst.iid
        self.pred = inst.pred
        self.needs = op.operands + (1 if inst.pred is not None else 0)
        self.targets = tuple(_encode_target(t) for t in inst.targets)
        self.evalf = None
        self.lsq_id = inst.lsq_id
        self.older_stores = ()
        self.mem_size = 0
        self.fp = False
        self.offset = 0
        self.exit_id = inst.exit_id
        self.branch_addr = None
        self.null_store = inst.null_store
        self.op_name = op.name

        if opclass is OpClass.BRANCH:
            self.code = _BRANCH
            name = op.name
            if name == "HALT":
                self.branch_addr = HALT_ADDR
            elif name != "RET":           # RET: target arrives as operand 0
                self.branch_addr = program.address_of(inst.branch_target)
        elif opclass is OpClass.NULL:
            self.code = _NULL
        elif opclass is OpClass.STORE or opclass is OpClass.LOAD:
            self.code = _STORE if opclass is OpClass.STORE else _LOAD
            self.mem_size = memory_size(op)
            self.fp = op.name.endswith("F")
            self.offset = int(inst.imm or 0)
            if self.code == _LOAD:
                self.older_stores = tuple(sorted(
                    s for s in store_ids if s < inst.lsq_id))
        else:
            self.code = _ALU
            self.evalf = bind_evaluator(op, program.resolve_imm(inst.imm))


def _encode_target(target: Target) -> int:
    """Pack a dataflow target into one int for the execution loop.

    Instruction targets encode as ``(iid << 2) | slot`` — an index into
    the flat operand buffer (OperandSlot is an IntEnum: PRED=0, OP0=1,
    OP1=2).  Register-write queue slots encode as ``-1 - slot_index``,
    so the sign distinguishes the two target spaces without a tuple.
    """
    if target.kind is TargetKind.WRITE:
        return -1 - target.index
    return (target.index << 2) | target.slot


class PreparedBlock:
    """Per-static-block execution structure, built once and reused.

    Analogous to the simulator's ``DecodedBlock``: everything derivable
    from the static block — dispatch codes, bound evaluators, encoded
    targets, operand counts, the seed set — is precomputed so the
    per-execution state is four flat lists and two dicts.
    """

    __slots__ = ("block", "label", "n", "pinsts", "needs", "seed_ready",
                 "reads", "writes", "store_ids")

    def __init__(self, block: Block, program: Program) -> None:
        store_ids = block.store_ids
        self.block = block
        self.label = block.label
        self.n = len(block.insts)
        self.pinsts = [_PInst(inst, program, store_ids)
                       for inst in block.insts]
        self.needs = [pi.needs for pi in self.pinsts]
        self.seed_ready = tuple(
            inst.iid for inst in block.insts
            if inst.num_operands == 0 and inst.pred is None)
        self.reads = tuple(
            (read.reg, tuple(_encode_target(t) for t in read.targets))
            for read in block.reads)
        self.writes = tuple((w.index, w.reg) for w in block.writes)
        self.store_ids = store_ids


class Interpreter:
    """Sequential block-atomic executor (the golden model)."""

    def __init__(self, program: Program, memory: Optional[FlatMemory] = None,
                 validate: bool = True) -> None:
        if validate:
            program.validate()
        self.program = program
        self.mem = memory if memory is not None else FlatMemory()
        self.mem.load_image(program.data)
        self.regs: list = [0] * 128
        for reg, value in program.reg_init.items():
            self.regs[reg] = value
        self._prepared: dict[str, PreparedBlock] = {}

    # ------------------------------------------------------------------
    # Whole-program execution
    # ------------------------------------------------------------------

    def run(self, max_blocks: int = 1_000_000, record_path: bool = False) -> InterpResult:
        """Execute from the entry block until HALT or the block budget.

        Exhausting ``max_blocks`` does not raise: the returned result has
        ``truncated=True`` (and ``halted=False``) so differential and
        oracle harnesses can reject the partial run explicitly.
        """
        result = InterpResult(blocks_executed=0, insts_fired=0,
                              path=[] if record_path else None)
        addr = self.program.address_of(self.program.entry)
        while addr != HALT_ADDR:
            if result.blocks_executed >= max_blocks:
                result.truncated = True
                return result
            block = self.program.block_at(addr)
            outcome = self.execute_block(block)
            self.commit(outcome)
            result.blocks_executed += 1
            result.insts_fired += outcome.insts_fired
            result.loads += outcome.loads
            result.stores += len(outcome.stores)
            if result.path is not None:
                result.path.append((block.label, outcome.exit_id, outcome.next_addr))
            addr = outcome.next_addr
        result.halted = True
        return result

    def commit(self, outcome: BlockOutcome) -> None:
        """Apply one block's architectural effects (writes, then stores
        in LSQ order) — the functional analogue of the commit phase."""
        for reg, value in outcome.writes.items():
            self.regs[reg] = value
        for __lsq_id, addr, size, value, fp in outcome.stores:
            self.mem.store(addr, size, value, fp=fp)

    # ------------------------------------------------------------------
    # Single-block dataflow execution
    # ------------------------------------------------------------------

    def prepare(self, block: Block) -> PreparedBlock:
        """The cached prepared form of ``block`` (built on first use)."""
        pb = self._prepared.get(block.label)
        if pb is not None and pb.block is block:
            return pb
        pb = PreparedBlock(block, self.program)
        self._prepared[block.label] = pb
        return pb

    def execute_block(self, block: Block) -> BlockOutcome:
        """Run one block to completion against current architectural state.

        Architectural state is *not* modified; the caller commits the
        returned outcome (mirroring the microarchitecture, where commit
        is a separate protocol phase).
        """
        pb = self.prepare(block)
        pinsts = pb.pinsts
        label = pb.label
        regs = self.regs

        # Per-execution state: a flat operand buffer (4 slots per
        # instruction, indexed by the encoded target), outstanding
        # delivery counts, and fired/squashed bitmaps.
        buf = [_MISSING] * (pb.n << 2)
        remaining = pb.needs.copy()
        fired = bytearray(pb.n)
        squashed = bytearray(pb.n)

        resolved: set[int] = set()
        # In-block store data for load forwarding: lsq_id -> (addr, size, value, fp)
        block_stores: dict[int, tuple[int, int, object, bool]] = {}
        write_values: dict[int, object] = {}
        branch_inst: Optional[_PInst] = None
        next_addr: Optional[int] = None
        fired_count = 0
        load_count = 0
        waiting_loads: list[int] = []
        ready: list[int] = []

        # Seed: deliver architectural register reads (the inline block
        # below is the same delivery logic as in the fire loop).
        for reg, targets in pb.reads:
            value = regs[reg]
            for enc in targets:
                if enc < 0:
                    windex = -1 - enc
                    if windex in write_values:
                        raise InterpError(
                            f"{label}: write slot {windex} produced twice")
                    write_values[windex] = value
                    continue
                if buf[enc] is not _MISSING:
                    raise InterpError(
                        f"{label}: I{enc >> 2} operand "
                        f"{OperandSlot(enc & 3).name} delivered twice")
                buf[enc] = value
                tid = enc >> 2
                rem = remaining[tid] - 1
                remaining[tid] = rem
                if fired[tid] or squashed[tid]:
                    continue
                ti = pinsts[tid]
                tpred = ti.pred
                if tpred is not None:
                    pv = buf[tid << 2]
                    if pv is _MISSING:
                        continue
                    if bool(pv) != tpred:
                        squashed[tid] = 1
                        continue
                if rem:
                    continue
                if ti.code == _LOAD:
                    older = ti.older_stores
                    if not older or all(s in resolved for s in older):
                        ready.append(tid)
                    else:
                        waiting_loads.append(tid)
                else:
                    ready.append(tid)
        # Seed: operand-free unpredicated instructions.
        ready.extend(pb.seed_ready)

        while ready:
            iid = ready.pop()
            if fired[iid]:
                continue
            fired[iid] = 1
            fired_count += 1
            pi = pinsts[iid]
            code = pi.code
            base = iid << 2

            if code == _ALU:
                value = pi.evalf(buf[base + 1], buf[base + 2])
                targets = pi.targets
            elif code == _BRANCH:
                if branch_inst is not None:
                    raise InterpError(
                        f"{label}: second branch I{iid} fired "
                        f"(first was I{branch_inst.iid})")
                branch_inst = pi
                next_addr = pi.branch_addr
                if next_addr is None:               # RET
                    next_addr = int(buf[base + 1])
                continue
            elif code == _STORE:
                lsq_id = pi.lsq_id
                block_stores[lsq_id] = (int(buf[base + 1]) + pi.offset,
                                        pi.mem_size, buf[base + 2], pi.fp)
                if lsq_id in resolved:
                    raise InterpError(
                        f"{label}: LSQ slot {lsq_id} resolved twice")
                resolved.add(lsq_id)
                if waiting_loads:
                    still = []
                    for lid in waiting_loads:
                        if fired[lid]:
                            continue
                        if all(s in resolved
                               for s in pinsts[lid].older_stores):
                            ready.append(lid)
                        else:
                            still.append(lid)
                    waiting_loads = still
                continue
            elif code == _LOAD:
                value = self._load_with_forwarding(
                    label, pi.lsq_id, block_stores,
                    int(buf[base + 1]) + pi.offset, pi.mem_size, pi.fp)
                load_count += 1
                targets = pi.targets
            else:                                   # _NULL
                if pi.null_store:
                    lsq_id = pi.lsq_id
                    if lsq_id in resolved:
                        raise InterpError(
                            f"{label}: LSQ slot {lsq_id} resolved twice")
                    resolved.add(lsq_id)
                    if waiting_loads:
                        still = []
                        for lid in waiting_loads:
                            if fired[lid]:
                                continue
                            if all(s in resolved
                                   for s in pinsts[lid].older_stores):
                                ready.append(lid)
                            else:
                                still.append(lid)
                        waiting_loads = still
                value = NULL_TOKEN
                targets = pi.targets

            # Deliver the produced value to every target (kept inline:
            # this loop runs ~1.5x per fired instruction and dominated
            # the old closure-per-block implementation's profile).
            for enc in targets:
                if enc < 0:
                    windex = -1 - enc
                    if windex in write_values:
                        raise InterpError(
                            f"{label}: write slot {windex} produced twice")
                    write_values[windex] = value
                    continue
                if buf[enc] is not _MISSING:
                    raise InterpError(
                        f"{label}: I{enc >> 2} operand "
                        f"{OperandSlot(enc & 3).name} delivered twice")
                buf[enc] = value
                tid = enc >> 2
                rem = remaining[tid] - 1
                remaining[tid] = rem
                if fired[tid] or squashed[tid]:
                    continue
                ti = pinsts[tid]
                tpred = ti.pred
                if tpred is not None:
                    pv = buf[tid << 2]
                    if pv is _MISSING:
                        continue
                    if bool(pv) != tpred:
                        squashed[tid] = 1
                        continue
                if rem:
                    continue
                if ti.code == _LOAD:
                    older = ti.older_stores
                    if not older or all(s in resolved for s in older):
                        ready.append(tid)
                    else:
                        waiting_loads.append(tid)
                else:
                    ready.append(tid)

        return self._check_outcome(pb, branch_inst, next_addr, write_values,
                                   block_stores, resolved, fired_count,
                                   load_count)

    def _load_with_forwarding(self, label: str, lsq_id: int,
                              block_stores: dict, addr: int, size: int, fp: bool):
        best = None
        for sid, (saddr, ssize, svalue, sfp) in block_stores.items():
            if sid >= lsq_id:
                continue
            if saddr == addr and ssize == size:
                if best is None or sid > best[0]:
                    best = (sid, svalue, sfp)
            elif saddr < addr + size and addr < saddr + ssize:
                raise InterpError(
                    f"{label}: load lsq {lsq_id} partially overlaps store lsq {sid} "
                    f"({addr:#x}/{size} vs {saddr:#x}/{ssize})")
        if best is not None:
            __, svalue, sfp = best
            if sfp != fp:
                raise InterpError(
                    f"{label}: load lsq {lsq_id} forwards across int/fp type change")
            return svalue
        return self.mem.load(addr, size, fp=fp)

    def _check_outcome(self, pb: PreparedBlock, branch_inst, next_addr,
                       write_values, block_stores, resolved,
                       fired_count, load_count) -> BlockOutcome:
        label = pb.label
        if branch_inst is None:
            raise InterpError(f"{label}: dataflow quiesced without a branch firing")
        missing_writes = [w for w, __ in pb.writes if w not in write_values]
        if missing_writes:
            raise InterpError(f"{label}: write slots {missing_writes} never resolved")
        missing_stores = sorted(pb.store_ids - resolved)
        if missing_stores:
            raise InterpError(f"{label}: store slots {missing_stores} never resolved")

        writes = {}
        for windex, reg in pb.writes:
            value = write_values[windex]
            if value is not NULL_TOKEN:
                writes[reg] = value
        stores = [
            (lsq_id, addr, size, value, fp)
            for lsq_id, (addr, size, value, fp) in sorted(block_stores.items())
        ]
        return BlockOutcome(
            label=label,
            exit_id=branch_inst.exit_id,
            next_addr=next_addr,
            insts_fired=fired_count,
            writes=writes,
            stores=stores,
            loads=load_count,
            branch_op=branch_inst.op_name,
        )
