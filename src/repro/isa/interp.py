"""Golden-model interpreter for EDGE programs.

Executes programs block-atomically and sequentially — the architectural
semantics the distributed TFlex microarchitecture must preserve.  The
cycle-level simulator is validated against this model: after any run,
registers, memory, and the dynamic block path must match.

Within a block, instructions fire in dataflow order.  Memory operations
respect LSQ sequence numbers: a load may fire only once every older
store slot in the block has *resolved* (a store or NULL token fired for
it), and it forwards from the youngest older matching in-block store.
Stores take architectural effect at block commit, in LSQ order.

The interpreter also enforces the dynamic half of the block contract:
exactly one branch fires, every declared write and store slot resolves,
and no slot resolves twice.  Violations raise :class:`InterpError` —
they indicate compiler or builder bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.block import Block
from repro.isa.instruction import Instruction, OperandSlot, Target, TargetKind
from repro.isa.opcodes import OpClass, evaluate, memory_size
from repro.isa.program import HALT_ADDR, Program
from repro.mem.flatmem import FlatMemory


class InterpError(Exception):
    """Dynamic violation of the block-atomic execution contract."""


class _NullToken:
    """Dataflow token that nullifies a block output."""

    def __repr__(self) -> str:
        return "NULL"


NULL_TOKEN = _NullToken()


@dataclass
class BlockOutcome:
    """Architectural effects of one dynamic block execution."""

    label: str
    exit_id: int
    next_addr: int
    insts_fired: int
    writes: dict[int, object] = field(default_factory=dict)   # reg -> value
    stores: list[tuple[int, int, int, object, bool]] = field(default_factory=list)
    loads: int = 0


@dataclass
class InterpResult:
    """Summary of a program run."""

    blocks_executed: int
    insts_fired: int
    loads: int = 0
    stores: int = 0
    halted: bool = False
    path: Optional[list[tuple[str, int, int]]] = None   # (label, exit_id, next_addr)


class Interpreter:
    """Sequential block-atomic executor (the golden model)."""

    def __init__(self, program: Program, memory: Optional[FlatMemory] = None,
                 validate: bool = True) -> None:
        if validate:
            program.validate()
        self.program = program
        self.mem = memory if memory is not None else FlatMemory()
        self.mem.load_image(program.data)
        self.regs: list = [0] * 128
        for reg, value in program.reg_init.items():
            self.regs[reg] = value

    # ------------------------------------------------------------------
    # Whole-program execution
    # ------------------------------------------------------------------

    def run(self, max_blocks: int = 1_000_000, record_path: bool = False) -> InterpResult:
        """Execute from the entry block until HALT or the block budget."""
        result = InterpResult(blocks_executed=0, insts_fired=0,
                              path=[] if record_path else None)
        addr = self.program.address_of(self.program.entry)
        while addr != HALT_ADDR:
            if result.blocks_executed >= max_blocks:
                raise InterpError(f"block budget exhausted ({max_blocks})")
            block = self.program.block_at(addr)
            outcome = self.execute_block(block)
            self._commit(outcome)
            result.blocks_executed += 1
            result.insts_fired += outcome.insts_fired
            result.loads += outcome.loads
            result.stores += sum(1 for s in outcome.stores)
            if result.path is not None:
                result.path.append((block.label, outcome.exit_id, outcome.next_addr))
            addr = outcome.next_addr
        result.halted = True
        return result

    def _commit(self, outcome: BlockOutcome) -> None:
        for reg, value in outcome.writes.items():
            self.regs[reg] = value
        for __lsq_id, addr, size, value, fp in outcome.stores:
            self.mem.store(addr, size, value, fp=fp)

    # ------------------------------------------------------------------
    # Single-block dataflow execution
    # ------------------------------------------------------------------

    def execute_block(self, block: Block) -> BlockOutcome:
        """Run one block to completion against current architectural state.

        Architectural state is *not* modified; the caller commits the
        returned outcome (mirroring the microarchitecture, where commit
        is a separate protocol phase).
        """
        insts = block.insts
        n = len(insts)
        operands: list[dict[OperandSlot, object]] = [dict() for __ in range(n)]
        fired = [False] * n
        squashed = [False] * n

        store_slots = block.store_ids
        resolved_slots: set[int] = set()
        # In-block store data for load forwarding: lsq_id -> (addr, size, value, fp)
        block_stores: dict[int, tuple[int, int, object, bool]] = {}
        write_values: dict[int, object] = {}
        branch_fired: Optional[Instruction] = None
        next_addr: Optional[int] = None
        counters = {"fired": 0, "loads": 0}

        waiting_loads: list[int] = []
        ready: list[int] = []

        def deliver(target: Target, value: object) -> None:
            if target.kind is TargetKind.WRITE:
                if target.index in write_values:
                    raise InterpError(
                        f"{block.label}: write slot {target.index} produced twice")
                write_values[target.index] = value
                return
            slot_map = operands[target.index]
            if target.slot in slot_map:
                raise InterpError(
                    f"{block.label}: I{target.index} operand {target.slot.name} delivered twice")
            slot_map[target.slot] = value
            consider(target.index)

        def consider(iid: int) -> None:
            if fired[iid] or squashed[iid]:
                return
            inst = insts[iid]
            slot_map = operands[iid]
            if inst.pred is not None:
                pred_value = slot_map.get(OperandSlot.PRED)
                if pred_value is None:
                    return
                if bool(pred_value) != inst.pred:
                    squashed[iid] = True
                    return
            for slot_no in range(inst.num_operands):
                slot = OperandSlot.OP0 if slot_no == 0 else OperandSlot.OP1
                if slot not in slot_map:
                    return
            if inst.is_load:
                waiting_loads.append(iid)
                try_loads()
            else:
                ready.append(iid)

        def older_stores_resolved(lsq_id: int) -> bool:
            return all(s in resolved_slots for s in store_slots if s < lsq_id)

        def try_loads() -> None:
            still = []
            for iid in waiting_loads:
                if fired[iid]:
                    continue
                if older_stores_resolved(insts[iid].lsq_id):
                    ready.append(iid)
                else:
                    still.append(iid)
            waiting_loads[:] = still

        def fire(iid: int) -> None:
            nonlocal branch_fired, next_addr
            inst = insts[iid]
            fired[iid] = True
            counters["fired"] += 1
            slot_map = operands[iid]
            ops = tuple(
                slot_map[OperandSlot.OP0 if i == 0 else OperandSlot.OP1]
                for i in range(inst.num_operands)
            )
            opclass = inst.op.opclass

            if opclass is OpClass.BRANCH:
                if branch_fired is not None:
                    raise InterpError(
                        f"{block.label}: second branch I{iid} fired (first was I{branch_fired.iid})")
                branch_fired = inst
                next_addr = self._branch_target(block, inst, ops)
                return

            if opclass is OpClass.NULL:
                if inst.null_store:
                    resolve_store(inst.lsq_id)
                for target in inst.targets:
                    deliver(target, NULL_TOKEN)
                return

            if opclass is OpClass.STORE:
                addr = int(ops[0]) + int(inst.imm or 0)
                size = memory_size(inst.op)
                fp = inst.op.name.endswith("F")
                block_stores[inst.lsq_id] = (addr, size, ops[1], fp)
                resolve_store(inst.lsq_id)
                return

            if opclass is OpClass.LOAD:
                addr = int(ops[0]) + int(inst.imm or 0)
                size = memory_size(inst.op)
                fp = inst.op.name.endswith("F")
                value = self._load_with_forwarding(
                    block, inst.lsq_id, block_stores, addr, size, fp)
                counters["loads"] += 1
                for target in inst.targets:
                    deliver(target, value)
                return

            imm = self.program.resolve_imm(inst.imm)
            value = evaluate(inst.op, ops, imm)
            for target in inst.targets:
                deliver(target, value)

        def resolve_store(lsq_id: int) -> None:
            if lsq_id in resolved_slots:
                raise InterpError(f"{block.label}: LSQ slot {lsq_id} resolved twice")
            resolved_slots.add(lsq_id)
            try_loads()

        # Seed: register reads and operand-free instructions.
        for read in block.reads:
            for target in read.targets:
                deliver(target, self.regs[read.reg])
        for inst in insts:
            if inst.num_operands == 0 and inst.pred is None:
                ready.append(inst.iid)

        while ready:
            iid = ready.pop()
            if not fired[iid]:
                fire(iid)

        return self._check_outcome(block, branch_fired, next_addr, write_values,
                                   block_stores, resolved_slots, counters)

    def _branch_target(self, block: Block, inst: Instruction, ops: tuple) -> int:
        name = inst.op.name
        if name == "HALT":
            return HALT_ADDR
        if name == "RET":
            return int(ops[0])
        return self.program.address_of(inst.branch_target)

    def _load_with_forwarding(self, block: Block, lsq_id: int,
                              block_stores: dict, addr: int, size: int, fp: bool):
        best = None
        for sid, (saddr, ssize, svalue, sfp) in block_stores.items():
            if sid >= lsq_id:
                continue
            if saddr == addr and ssize == size:
                if best is None or sid > best[0]:
                    best = (sid, svalue, sfp)
            elif saddr < addr + size and addr < saddr + ssize:
                raise InterpError(
                    f"{block.label}: load lsq {lsq_id} partially overlaps store lsq {sid} "
                    f"({addr:#x}/{size} vs {saddr:#x}/{ssize})")
        if best is not None:
            __, svalue, sfp = best
            if sfp != fp:
                raise InterpError(
                    f"{block.label}: load lsq {lsq_id} forwards across int/fp type change")
            return svalue
        return self.mem.load(addr, size, fp=fp)

    def _check_outcome(self, block: Block, branch_fired, next_addr, write_values,
                       block_stores, resolved_slots, counters) -> BlockOutcome:
        if branch_fired is None:
            raise InterpError(f"{block.label}: dataflow quiesced without a branch firing")
        missing_writes = [w.index for w in block.writes if w.index not in write_values]
        if missing_writes:
            raise InterpError(f"{block.label}: write slots {missing_writes} never resolved")
        missing_stores = sorted(block.store_ids - resolved_slots)
        if missing_stores:
            raise InterpError(f"{block.label}: store slots {missing_stores} never resolved")

        writes = {}
        for wslot in block.writes:
            value = write_values[wslot.index]
            if value is not NULL_TOKEN:
                writes[wslot.reg] = value
        stores = [
            (lsq_id, addr, size, value, fp)
            for lsq_id, (addr, size, value, fp) in sorted(block_stores.items())
        ]
        return BlockOutcome(
            label=block.label,
            exit_id=branch_fired.exit_id,
            next_addr=next_addr,
            insts_fired=counters["fired"],
            writes=writes,
            stores=stores,
            loads=counters["loads"],
        )
