"""EDGE blocks: the atomic unit of fetch, execution and commit.

A block (a TRIPS *hyperblock*) holds up to 128 dataflow instructions plus
a header declaring its architectural interface:

* up to 32 **register reads** that inject architectural register values
  into the dataflow graph,
* up to 32 **register write** slots that declare which registers the
  block may write, and
* up to 32 **load/store-queue slots** (shared sequence space for loads
  and stores, in program order).

The block-atomic contract that makes distributed completion detection
possible (paper section 4.6) is: on *every* dynamic predicate path,
exactly one branch fires, every declared write slot receives a value or
a NULL token, and every declared store slot receives store data or a
NULL token.  :meth:`Block.validate` checks the statically checkable part
of this contract; the interpreter enforces the dynamic part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.instruction import Instruction, Target, TargetKind, OperandSlot
from repro.isa.opcodes import OpClass


#: Maximum instructions per block (TRIPS ISA).
BLOCK_MAX_INSTS = 128
#: Maximum register reads per block.
MAX_READS = 32
#: Maximum register write slots per block.
MAX_WRITES = 32
#: Maximum load/store-queue slots per block.
MAX_LSQ_IDS = 32
#: Maximum dataflow targets one producer may encode (fan-out beyond this
#: uses MOV trees, inserted by the builder).
MAX_TARGETS = 2
#: Architectural register count.
NUM_REGS = 128
#: Number of distinct block exits (3 exit bits).
NUM_EXITS = 8


class BlockError(Exception):
    """A block violates a static ISA constraint."""


@dataclass
class ReadSlot:
    """A register read in the block header.

    Injects the architectural value of ``reg`` into the dataflow graph at
    the given targets when the block is dispatched.
    """

    index: int
    reg: int
    targets: tuple[Target, ...]


@dataclass
class WriteSlot:
    """A register write slot in the block header.

    Declares that the block produces a value (or NULL) for architectural
    register ``reg``; the value arrives via dataflow targets of kind
    :attr:`TargetKind.WRITE`.
    """

    index: int
    reg: int


@dataclass
class Block:
    """One EDGE block.

    Instruction IDs equal list indices (``insts[i].iid == i``); the
    composition interleaving hash (instruction ID modulo participating
    core count) relies on this.
    """

    label: str
    insts: list[Instruction] = field(default_factory=list)
    reads: list[ReadSlot] = field(default_factory=list)
    writes: list[WriteSlot] = field(default_factory=list)
    comment: str = ""
    # Memoized derived sets (blocks are immutable once built; the owner
    # core consults these on every output-completion check).
    _store_ids: Optional[frozenset] = field(
        default=None, init=False, repr=False, compare=False)
    _load_ids: Optional[frozenset] = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of instructions (affects fetch/dispatch time)."""
        return len(self.insts)

    @property
    def store_ids(self) -> frozenset[int]:
        """Declared LSQ slots that must resolve to a store or NULL."""
        cached = self._store_ids
        if cached is None:
            ids = set()
            for inst in self.insts:
                if inst.is_store or (inst.is_null and inst.null_store):
                    ids.add(inst.lsq_id)
            self._store_ids = cached = frozenset(ids)
        return cached

    @property
    def load_ids(self) -> frozenset[int]:
        cached = self._load_ids
        if cached is None:
            self._load_ids = cached = frozenset(
                i.lsq_id for i in self.insts if i.is_load)
        return cached

    @property
    def branches(self) -> list[Instruction]:
        return [i for i in self.insts if i.is_branch]

    @property
    def exit_labels(self) -> dict[int, Optional[str]]:
        """Map of exit ID to static successor label (None for RET/HALT)."""
        return {b.exit_id: b.branch_target for b in self.branches}

    def successors(self) -> set[str]:
        """Static successor labels (excludes dynamic RET targets)."""
        return {b.branch_target for b in self.branches if b.branch_target is not None}

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`BlockError` on any static contract violation."""
        if not (1 <= len(self.insts) <= BLOCK_MAX_INSTS):
            raise BlockError(f"{self.label}: {len(self.insts)} instructions (1..{BLOCK_MAX_INSTS})")
        if len(self.reads) > MAX_READS:
            raise BlockError(f"{self.label}: {len(self.reads)} reads (max {MAX_READS})")
        if len(self.writes) > MAX_WRITES:
            raise BlockError(f"{self.label}: {len(self.writes)} writes (max {MAX_WRITES})")

        for i, inst in enumerate(self.insts):
            if inst.iid != i:
                raise BlockError(f"{self.label}: instruction {i} has iid {inst.iid}")
            if len(inst.targets) > MAX_TARGETS:
                raise BlockError(f"{self.label}: I{i} has {len(inst.targets)} targets")
            if inst.is_branch and inst.targets:
                raise BlockError(f"{self.label}: branch I{i} must not have targets")

        self._validate_reads_writes()
        self._validate_memory_ids()
        self._validate_dataflow()
        self._validate_branches()

    def _validate_reads_writes(self) -> None:
        for i, read in enumerate(self.reads):
            if read.index != i:
                raise BlockError(f"{self.label}: read slot {i} mis-indexed")
            if not 0 <= read.reg < NUM_REGS:
                raise BlockError(f"{self.label}: read of register {read.reg}")
            if len(read.targets) > MAX_TARGETS:
                raise BlockError(f"{self.label}: read {i} has {len(read.targets)} targets")
        seen_regs = set()
        for i, write in enumerate(self.writes):
            if write.index != i:
                raise BlockError(f"{self.label}: write slot {i} mis-indexed")
            if not 0 <= write.reg < NUM_REGS:
                raise BlockError(f"{self.label}: write of register {write.reg}")
            if write.reg in seen_regs:
                raise BlockError(f"{self.label}: duplicate write of register {write.reg}")
            seen_regs.add(write.reg)

    def _validate_memory_ids(self) -> None:
        ids = [i.lsq_id for i in self.insts
               if i.is_load or i.is_store or (i.is_null and i.null_store)]
        for lsq_id in ids:
            if lsq_id is None or not 0 <= lsq_id < MAX_LSQ_IDS:
                raise BlockError(f"{self.label}: bad LSQ id {lsq_id}")
        if len(set(ids)) > MAX_LSQ_IDS:
            raise BlockError(f"{self.label}: more than {MAX_LSQ_IDS} LSQ slots")
        # A slot may have several producers only if they are predicated
        # alternatives; a load's slot must not be shared with stores.
        loads = self.load_ids
        stores = self.store_ids
        if loads & stores:
            raise BlockError(f"{self.label}: LSQ slots {sorted(loads & stores)} used by both loads and stores")

    def _validate_dataflow(self) -> None:
        n = len(self.insts)
        producers: dict[tuple[int, OperandSlot], int] = {}
        write_producers: dict[int, int] = {}

        def note_targets(targets: tuple[Target, ...], origin: str) -> None:
            for t in targets:
                if t.kind is TargetKind.WRITE:
                    if t.index >= len(self.writes):
                        raise BlockError(f"{self.label}: {origin} targets undeclared write slot {t.index}")
                    write_producers[t.index] = write_producers.get(t.index, 0) + 1
                else:
                    if not 0 <= t.index < n:
                        raise BlockError(f"{self.label}: {origin} targets missing I{t.index}")
                    consumer = self.insts[t.index]
                    if t.slot is OperandSlot.PRED:
                        if consumer.pred is None:
                            raise BlockError(
                                f"{self.label}: {origin} sends predicate to unpredicated I{t.index}")
                    else:
                        slot_no = 0 if t.slot is OperandSlot.OP0 else 1
                        if slot_no >= consumer.num_operands:
                            raise BlockError(
                                f"{self.label}: {origin} targets nonexistent operand "
                                f"{t.slot.name} of I{t.index} ({consumer.op.name})")
                    key = (t.index, t.slot)
                    producers[key] = producers.get(key, 0) + 1

        for read in self.reads:
            note_targets(read.targets, f"read {read.index}")
        for inst in self.insts:
            note_targets(inst.targets, f"I{inst.iid}")

        # Every awaited operand slot needs at least one static producer.
        for inst in self.insts:
            for slot_no in range(inst.num_operands):
                slot = OperandSlot.OP0 if slot_no == 0 else OperandSlot.OP1
                if (inst.iid, slot) not in producers:
                    raise BlockError(
                        f"{self.label}: I{inst.iid} ({inst.op.name}) operand {slot.name} has no producer")
            if inst.pred is not None and (inst.iid, OperandSlot.PRED) not in producers:
                raise BlockError(f"{self.label}: I{inst.iid} predicate has no producer")
        for wslot in self.writes:
            if wslot.index not in write_producers:
                raise BlockError(f"{self.label}: write slot {wslot.index} (r{wslot.reg}) has no producer")

    def _validate_branches(self) -> None:
        branches = self.branches
        if not branches:
            raise BlockError(f"{self.label}: no branch instruction")
        unpredicated = [b for b in branches if b.pred is None]
        if len(branches) > 1 and unpredicated:
            raise BlockError(f"{self.label}: multiple branches but I{unpredicated[0].iid} unpredicated")
        for b in branches:
            if b.exit_id is None or not 0 <= b.exit_id < NUM_EXITS:
                raise BlockError(f"{self.label}: branch I{b.iid} exit id {b.exit_id}")
            if b.op.name in ("BRO", "CALLO") and b.branch_target is None:
                raise BlockError(f"{self.label}: {b.op.name} I{b.iid} lacks target label")

    # ------------------------------------------------------------------
    # Composition helpers
    # ------------------------------------------------------------------

    def insts_for_core(self, core_index: int, num_cores: int) -> Iterator[Instruction]:
        """Instructions mapped to one participating core.

        TFlex interleaves instruction IDs across participating cores
        using the low-order target bits (paper section 4.4): with N
        cores, instruction *i* executes on core ``i mod N`` of the
        composed processor.
        """
        for inst in self.insts:
            if inst.iid % num_cores == core_index:
                yield inst

    def disassemble(self) -> str:
        """Multi-line human-readable listing of the block."""
        lines = [f"block {self.label}:  ({self.size} insts)"]
        if self.comment:
            lines.append(f"  ; {self.comment}")
        for read in self.reads:
            suffix = ""
            if read.targets:
                suffix = " => " + ", ".join(repr(t) for t in read.targets)
            lines.append(f"  R{read.index:<3} read  r{read.reg:<3}{suffix}")
        for wslot in self.writes:
            lines.append(f"  W{wslot.index:<3} write r{wslot.reg}")
        for inst in self.insts:
            lines.append("  " + inst.describe())
        return "\n".join(lines)
