"""Binary encoding of EDGE blocks (TRIPS-style instruction formats).

Instructions encode to 64 bits (the TRIPS prototype used 32-bit
instructions with compact immediate/target fields; this model widens
fields rather than splitting instructions so that 64-bit immediates
survive a round trip, keeping the *structure* — opcode, predicate,
two 9-bit dataflow targets, LSQ/exit metadata — faithful).

Layout (low to high bits):

=====  ==========================================================
0-8    opcode index (stable table order)
9-10   predicate: 0 = none, 1 = on true, 2 = on false
11-19  target 0 (9-bit :meth:`Target.encode`), 0x1FF = unused
20-28  target 1, 0x1FF = unused
29-33  LSQ id (0x1F = none)
34-36  exit id (branches; 7 = none)
37     null-store flag
38-63  branch-target block index + 1 (0 = none)
=====  ==========================================================

Immediates ride in a trailing 64-bit word when the immediate-present
bit of the header is set.  A block encodes as a header (label, counts,
read/write specs) plus its instruction stream; :func:`decode_block`
inverts :func:`encode_block` exactly, which the tests check by
structural round-trip over every workload in the suite.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.isa.block import Block, ReadSlot, WriteSlot
from repro.isa.instruction import Instruction, LabelRef, Target
from repro.isa.opcodes import OPCODES


#: Stable opcode numbering.
OPCODE_INDEX = {name: i for i, name in enumerate(sorted(OPCODES))}
INDEX_OPCODE = {i: name for name, i in OPCODE_INDEX.items()}

_NO_TARGET = 0x1FF
_NO_LSQ = 0x1F
_NO_EXIT = 0x7


class EncodingError(Exception):
    """Malformed binary block image."""


def _pack_target(target: Optional[Target]) -> int:
    return _NO_TARGET if target is None else target.encode()


def encode_instruction(inst: Instruction, block_index_of) -> bytes:
    """Encode one instruction (plus an immediate word when present)."""
    word = OPCODE_INDEX[inst.op.name]
    pred = 0 if inst.pred is None else (1 if inst.pred else 2)
    word |= pred << 9
    targets = list(inst.targets) + [None, None]
    word |= _pack_target(targets[0]) << 11
    word |= _pack_target(targets[1]) << 20
    word |= (inst.lsq_id if inst.lsq_id is not None else _NO_LSQ) << 29
    word |= (inst.exit_id if inst.exit_id is not None else _NO_EXIT) << 34
    word |= int(inst.null_store) << 37
    if inst.branch_target is not None:
        word |= (block_index_of(inst.branch_target) + 1) << 38

    has_imm = inst.imm is not None
    out = struct.pack("<QB", word, int(has_imm))
    if has_imm:
        out += _encode_imm(inst.imm, block_index_of)
    return out


def _encode_imm(imm, block_index_of) -> bytes:
    if isinstance(imm, LabelRef):
        return struct.pack("<Bq", 2, block_index_of(imm.label))
    if isinstance(imm, float):
        return struct.pack("<Bd", 1, imm)
    return struct.pack("<Bq", 0, int(imm))


def decode_instruction(raw: bytes, offset: int, iid: int,
                       label_of) -> tuple[Instruction, int]:
    """Decode one instruction; returns (instruction, next offset)."""
    word, has_imm = struct.unpack_from("<QB", raw, offset)
    offset += 9
    imm = None
    if has_imm:
        kind, = struct.unpack_from("<B", raw, offset)
        if kind == 1:
            imm, = struct.unpack_from("<d", raw, offset + 1)
        elif kind == 2:
            index, = struct.unpack_from("<q", raw, offset + 1)
            imm = LabelRef(label_of(index))
        else:
            imm, = struct.unpack_from("<q", raw, offset + 1)
        offset += 9

    opcode = INDEX_OPCODE.get(word & 0x1FF)
    if opcode is None:
        raise EncodingError(f"unknown opcode index {word & 0x1FF}")
    pred_bits = (word >> 9) & 0x3
    pred = None if pred_bits == 0 else (pred_bits == 1)
    targets = []
    for shift in (11, 20):
        bits = (word >> shift) & 0x1FF
        if bits != _NO_TARGET:
            targets.append(Target.decode(bits))
    lsq = (word >> 29) & 0x1F
    exit_id = (word >> 34) & 0x7
    branch_index = word >> 38

    return Instruction(
        iid=iid,
        op=OPCODES[opcode],
        targets=tuple(targets),
        pred=pred,
        imm=imm,
        lsq_id=None if lsq == _NO_LSQ else lsq,
        exit_id=None if exit_id == _NO_EXIT else exit_id,
        branch_target=None if branch_index == 0 else label_of(branch_index - 1),
        null_store=bool((word >> 37) & 1),
    ), offset


def encode_block(block: Block, block_index_of) -> bytes:
    """Encode a block: header (reads/writes) + instruction stream."""
    label_bytes = block.label.encode()
    out = struct.pack("<H", len(label_bytes)) + label_bytes
    out += struct.pack("<BBB", len(block.reads), len(block.writes),
                       len(block.insts))
    for read in block.reads:
        targets = list(read.targets) + [None, None]
        out += struct.pack("<BHH", read.reg,
                           _pack_target(targets[0]), _pack_target(targets[1]))
    for wslot in block.writes:
        out += struct.pack("<B", wslot.reg)
    for inst in block.insts:
        out += encode_instruction(inst, block_index_of)
    return out


def decode_block(raw: bytes, offset: int, label_of) -> tuple[Block, int]:
    """Inverse of :func:`encode_block`."""
    label_len, = struct.unpack_from("<H", raw, offset)
    offset += 2
    label = raw[offset:offset + label_len].decode()
    offset += label_len
    nreads, nwrites, ninsts, = struct.unpack_from("<BBB", raw, offset)
    offset += 3

    reads = []
    for index in range(nreads):
        reg, t0, t1 = struct.unpack_from("<BHH", raw, offset)
        offset += 5
        targets = tuple(Target.decode(t) for t in (t0, t1) if t != _NO_TARGET)
        reads.append(ReadSlot(index=index, reg=reg, targets=targets))
    writes = []
    for index in range(nwrites):
        reg, = struct.unpack_from("<B", raw, offset)
        offset += 1
        writes.append(WriteSlot(index=index, reg=reg))
    insts = []
    for iid in range(ninsts):
        inst, offset = decode_instruction(raw, offset, iid, label_of)
        insts.append(inst)
    return Block(label=label, insts=insts, reads=reads, writes=writes), offset


def encode_program(program) -> bytes:
    """Encode a whole program: magic, entry, block directory, blocks.

    The data segment and register initialization are not part of the
    code image (they belong to the loader), mirroring how TRIPS block
    binaries separate text from data.
    """
    index_of = {label: i for i, label in enumerate(program.order)}
    out = b"EDGE"
    entry = program.entry.encode()
    out += struct.pack("<H", len(entry)) + entry
    out += struct.pack("<I", len(program.order))
    for label in program.order:
        out += encode_block(program.blocks[label],
                            lambda lb: index_of[lb])
    return out


def decode_program(raw: bytes):
    """Inverse of :func:`encode_program` (labels resolved in two passes)."""
    from repro.isa.program import Program

    if raw[:4] != b"EDGE":
        raise EncodingError("bad magic")
    offset = 4
    entry_len, = struct.unpack_from("<H", raw, offset)
    offset += 2
    entry = raw[offset:offset + entry_len].decode()
    offset += entry_len
    nblocks, = struct.unpack_from("<I", raw, offset)
    offset += 4

    # First pass: block labels appear in order, so decode with an
    # index->label map built lazily from a pre-scan.
    labels = _scan_labels(raw, offset, nblocks)

    def label_of(index: int) -> str:
        try:
            return labels[index]
        except IndexError:
            raise EncodingError(f"block index {index} out of range") from None

    program = Program(entry=entry)
    for __ in range(nblocks):
        block, offset = decode_block(raw, offset, label_of)
        program.add_block(block)
    return program


def _scan_labels(raw: bytes, offset: int, nblocks: int) -> list[str]:
    """Pre-scan the image collecting block labels without full decode."""
    labels = []
    for __ in range(nblocks):
        label_len, = struct.unpack_from("<H", raw, offset)
        offset += 2
        labels.append(raw[offset:offset + label_len].decode())
        offset += label_len
        nreads, nwrites, ninsts = struct.unpack_from("<BBB", raw, offset)
        offset += 3 + nreads * 5 + nwrites
        for __i in range(ninsts):
            __word, has_imm = struct.unpack_from("<QB", raw, offset)
            offset += 9 + (9 if has_imm else 0)
    return labels
