"""Fluent construction of valid EDGE blocks.

The builder lets clients (hand-written examples, the mini-compiler, and
property-based tests) express dataflow directly — *this value feeds that
operand* — and takes care of the encoding obligations of the ISA:

* instruction IDs are assigned in creation order (program order, which
  also fixes LSQ sequence numbers for memory operations);
* fan-out beyond :data:`~repro.isa.block.MAX_TARGETS` consumers is
  legalized by inserting MOV trees;
* register reads are deduplicated into the 32-entry read queue;
* register writes are merged into write-queue slots so that predicated
  alternative producers share one slot;
* NULL producers for conditionally-executed writes and stores keep the
  block's completion contract satisfiable on every path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.block import (
    Block,
    BlockError,
    ReadSlot,
    WriteSlot,
    BLOCK_MAX_INSTS,
    MAX_LSQ_IDS,
    MAX_READS,
    MAX_WRITES,
    MAX_TARGETS,
    NUM_EXITS,
)
from repro.isa.instruction import (
    Instruction,
    LabelRef,
    OperandSlot,
    Target,
    TargetKind,
)
from repro.isa.opcodes import OPCODES, OpClass, OpSpec


class BlockTooLarge(BlockError):
    """The block exceeds an ISA capacity limit (instructions, reads,
    writes, or LSQ slots).  The compiler catches this and retries with a
    smaller unrolling factor."""


@dataclass(frozen=True)
class Port:
    """Handle to a value producer inside the block under construction.

    ``kind`` is ``"read"`` (read-queue slot), ``"inst"`` (instruction
    result), or ``"multi"`` (a predicate-merged value with several
    alternative producers, of which exactly one fires dynamically);
    ``index`` identifies the slot or instruction node.
    """

    kind: str
    index: int = -1
    parts: tuple["Port", ...] = ()


@dataclass(frozen=True)
class StoreHandle:
    """Handle to an issued store, used to pair a nullifying producer."""

    node: int
    lsq_id: int


Predicate = Optional[tuple[Port, bool]]


@dataclass
class _Node:
    """Mutable instruction under construction."""

    op: OpSpec
    pred: Optional[bool] = None
    imm: object = None
    lsq_id: Optional[int] = None
    exit_id: Optional[int] = None
    branch_target: Optional[str] = None
    null_store: bool = False
    edges: list[tuple[str, int, OperandSlot]] = field(default_factory=list)


class BlockBuilder:
    """Builds one valid :class:`~repro.isa.block.Block`."""

    def __init__(self, label: str, comment: str = "") -> None:
        self.label = label
        self.comment = comment
        self._nodes: list[_Node] = []
        self._read_slots: list[tuple[int, list]] = []   # (reg, edges)
        self._read_index: dict[int, int] = {}
        self._write_slots: list[int] = []               # slot -> reg
        self._write_index: dict[int, int] = {}
        self._next_lsq = 0
        self._used_exits: set[int] = set()

    # ------------------------------------------------------------------
    # Value producers
    # ------------------------------------------------------------------

    def read(self, reg: int) -> Port:
        """Inject architectural register ``reg``; deduplicated per register."""
        slot = self._read_index.get(reg)
        if slot is None:
            slot = len(self._read_slots)
            if slot >= MAX_READS:
                raise BlockTooLarge(f"{self.label}: more than {MAX_READS} register reads")
            self._read_slots.append((reg, []))
            self._read_index[reg] = slot
        return Port("read", slot)

    def movi(self, value: Union[int, float, LabelRef], pred: Predicate = None) -> Port:
        """Materialize an immediate (or a block address via LabelRef)."""
        return self.op("MOVI", imm=value, pred=pred)

    def label_address(self, label: str, pred: Predicate = None) -> Port:
        """Materialize the address of a block (for link registers)."""
        return self.movi(LabelRef(label), pred=pred)

    def op(self, name: str, *operands: Port, imm=None, pred: Predicate = None) -> Port:
        """Emit an ALU/move/test instruction and return its result port."""
        spec = OPCODES.get(name)
        if spec is None:
            raise BlockError(f"{self.label}: unknown opcode {name!r}")
        if spec.opclass in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.NULL):
            raise BlockError(f"{self.label}: use the dedicated helper for {name}")
        if len(operands) != spec.operands:
            raise BlockError(
                f"{self.label}: {name} takes {spec.operands} operands, got {len(operands)}")
        if spec.has_imm and imm is None:
            raise BlockError(f"{self.label}: {name} requires an immediate")
        if not spec.has_imm and imm is not None:
            raise BlockError(f"{self.label}: {name} does not take an immediate")
        node = self._emit(spec, pred=pred, imm=imm)
        self._connect_operands(node, operands)
        return Port("inst", node)

    def mov(self, source: Port, pred: Predicate = None) -> Port:
        """Explicit MOV (e.g. for predicate-merged values)."""
        return self.op("MOV", source, pred=pred)

    def phi(self, pred_port: Port, true_value: Port, false_value: Port) -> Port:
        """Predicate-merge two values: the TRIPS if-conversion idiom.

        Emits one MOV per path, predicated on opposite polarities of
        ``pred_port``; consumers of the returned multi-port receive the
        value from whichever MOV fires."""
        true_mov = self.op("MOV", true_value, pred=(pred_port, True))
        false_mov = self.op("MOV", false_value, pred=(pred_port, False))
        return Port("multi", parts=(true_mov, false_mov))

    def load(self, addr: Port, offset: int = 0, op: str = "LDD", pred: Predicate = None) -> Port:
        """Emit a load; assigns the next LSQ sequence number."""
        spec = self._memory_spec(op, OpClass.LOAD)
        node = self._emit(spec, pred=pred, imm=offset, lsq_id=self._take_lsq())
        self._connect_operands(node, (addr,))
        return Port("inst", node)

    def store(self, addr: Port, data: Port, offset: int = 0, op: str = "STD",
              pred: Predicate = None) -> StoreHandle:
        """Emit a store; assigns the next LSQ sequence number.

        A store issued under a predicate must be paired with a
        :meth:`null_store` on the complementary path so the block's
        completion contract holds.
        """
        spec = self._memory_spec(op, OpClass.STORE)
        lsq_id = self._take_lsq()
        node = self._emit(spec, pred=pred, imm=offset, lsq_id=lsq_id)
        self._connect_operands(node, (addr, data))
        return StoreHandle(node, lsq_id)

    def null_store(self, store: StoreHandle, pred: Predicate) -> None:
        """Resolve a store's LSQ slot with a NULL token on the path where
        the store does not fire."""
        if pred is None:
            raise BlockError(f"{self.label}: null_store must be predicated")
        node = self._emit(OPCODES["NULL"], pred=pred, lsq_id=store.lsq_id)
        self._nodes[node].null_store = True

    # ------------------------------------------------------------------
    # Block outputs
    # ------------------------------------------------------------------

    def write(self, reg: int, value: Port) -> int:
        """Route ``value`` to the write-queue slot for register ``reg``.

        Predicated alternative producers for the same register call this
        repeatedly; they share one slot and exactly one must fire
        dynamically.  Returns the slot index.
        """
        slot = self._write_slot(reg)
        self._add_edge(value, ("write", slot, OperandSlot.OP0))
        return slot

    def null_write(self, reg: int, pred: Predicate) -> int:
        """Resolve register ``reg``'s write slot with NULL on this path."""
        if pred is None:
            raise BlockError(f"{self.label}: null_write must be predicated")
        slot = self._write_slot(reg)
        node = self._emit(OPCODES["NULL"], pred=pred)
        self._nodes[node].edges.append(("write", slot, OperandSlot.OP0))
        return slot

    def branch(self, kind: str, target: Optional[str] = None, exit_id: int = 0,
               pred: Predicate = None, addr: Optional[Port] = None) -> None:
        """Emit a block exit.

        Args:
            kind: ``BRO`` (branch), ``CALLO`` (call), ``RET`` (return via
                ``addr`` operand) or ``HALT``.
            target: Static successor label (BRO/CALLO).
            exit_id: 3-bit exit identifier, unique within the block.
            pred: Predicate; required when the block has several exits.
            addr: Target-address port for RET.
        """
        spec = OPCODES.get(kind)
        if spec is None or spec.opclass is not OpClass.BRANCH:
            raise BlockError(f"{self.label}: {kind!r} is not a branch opcode")
        if not 0 <= exit_id < NUM_EXITS:
            raise BlockError(f"{self.label}: exit id {exit_id}")
        if exit_id in self._used_exits:
            raise BlockError(f"{self.label}: duplicate exit id {exit_id}")
        self._used_exits.add(exit_id)
        node = self._emit(spec, pred=pred)
        self._nodes[node].exit_id = exit_id
        self._nodes[node].branch_target = target
        if kind == "RET":
            if addr is None:
                raise BlockError(f"{self.label}: RET requires an address port")
            self._connect_operands(node, (addr,))
        elif addr is not None:
            raise BlockError(f"{self.label}: only RET takes an address port")

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def build(self, validate: bool = True) -> Block:
        """Legalize fan-out, number instructions, and return the block.

        A builder is single-use: legalization appends MOV nodes, so
        building twice would duplicate them.
        """
        if getattr(self, "_built", False):
            raise BlockError(f"{self.label}: build() called twice")
        self._built = True
        read_targets, node_targets = self._legalize_fanout()
        if len(self._nodes) > BLOCK_MAX_INSTS:
            raise BlockTooLarge(
                f"{self.label}: {len(self._nodes)} instructions after fan-out legalization")

        insts = []
        for iid, node in enumerate(self._nodes):
            insts.append(Instruction(
                iid=iid,
                op=node.op,
                targets=tuple(node_targets[iid]),
                pred=node.pred,
                imm=node.imm,
                lsq_id=node.lsq_id,
                exit_id=node.exit_id,
                branch_target=node.branch_target,
                null_store=node.null_store,
            ))
        reads = [
            ReadSlot(index=i, reg=reg, targets=tuple(read_targets[i]))
            for i, (reg, __) in enumerate(self._read_slots)
        ]
        writes = [WriteSlot(index=i, reg=reg) for i, reg in enumerate(self._write_slots)]
        block = Block(label=self.label, insts=insts, reads=reads, writes=writes,
                      comment=self.comment)
        if validate:
            block.validate()
        return block

    @property
    def size(self) -> int:
        """Instructions emitted so far (before MOV-tree legalization)."""
        return len(self._nodes)

    @property
    def legalized_size(self) -> int:
        """Projected instruction count after MOV-tree legalization.

        With MAX_TARGETS-ary trees every inserted MOV absorbs
        MAX_TARGETS edges and contributes one, so a producer with E
        consumers needs exactly ceil((E - MAX_TARGETS) /
        (MAX_TARGETS - 1)) MOVs.  Clients sizing a block against
        :data:`BLOCK_MAX_INSTS` must use this, not :attr:`size` — a
        heavily shared value can owe dozens of fan-out MOVs.
        """
        step = MAX_TARGETS - 1
        extra = 0
        for __, edges in self._read_slots:
            if len(edges) > MAX_TARGETS:
                extra += -(-(len(edges) - MAX_TARGETS) // step)
        for node in self._nodes:
            if len(node.edges) > MAX_TARGETS:
                extra += -(-(len(node.edges) - MAX_TARGETS) // step)
        return len(self._nodes) + extra

    @property
    def lsq_slots_used(self) -> int:
        return self._next_lsq

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _memory_spec(self, name: str, opclass: OpClass) -> OpSpec:
        spec = OPCODES.get(name)
        if spec is None or spec.opclass is not opclass:
            raise BlockError(f"{self.label}: {name!r} is not a {opclass.value} opcode")
        return spec

    def _take_lsq(self) -> int:
        if self._next_lsq >= MAX_LSQ_IDS:
            raise BlockTooLarge(f"{self.label}: more than {MAX_LSQ_IDS} memory operations")
        lsq_id = self._next_lsq
        self._next_lsq += 1
        return lsq_id

    def _write_slot(self, reg: int) -> int:
        slot = self._write_index.get(reg)
        if slot is None:
            slot = len(self._write_slots)
            if slot >= MAX_WRITES:
                raise BlockTooLarge(f"{self.label}: more than {MAX_WRITES} register writes")
            self._write_slots.append(reg)
            self._write_index[reg] = slot
        return slot

    def _emit(self, spec: OpSpec, pred: Predicate = None, imm=None,
              lsq_id: Optional[int] = None) -> int:
        node = _Node(op=spec, imm=imm, lsq_id=lsq_id)
        index = len(self._nodes)
        self._nodes.append(node)
        if pred is not None:
            port, polarity = pred
            node.pred = bool(polarity)
            self._add_edge(port, ("inst", index, OperandSlot.PRED))
        return index

    def _connect_operands(self, node: int, operands: tuple[Port, ...]) -> None:
        slots = (OperandSlot.OP0, OperandSlot.OP1)
        for i, port in enumerate(operands):
            self._add_edge(port, ("inst", node, slots[i]))

    def _add_edge(self, port: Port, edge: tuple[str, int, OperandSlot]) -> None:
        if port.kind == "read":
            self._read_slots[port.index][1].append(edge)
        elif port.kind == "inst":
            self._nodes[port.index].edges.append(edge)
        elif port.kind == "multi":
            # Every alternative producer targets the consumer; exactly
            # one fires dynamically, so the operand arrives once.
            for part in port.parts:
                self._add_edge(part, edge)
        else:
            raise BlockError(f"{self.label}: bad port {port!r}")

    def _legalize_fanout(self) -> tuple[list[list[Target]], list[list[Target]]]:
        """Replace >MAX_TARGETS fan-out with MOV trees.

        Returns ``(read_targets, node_targets)``: the final
        :class:`Target` lists for each read slot and each instruction
        node.  New MOV nodes may be appended to ``self._nodes``.
        """

        def reduce_edges(edges: list) -> list:
            """Return <= MAX_TARGETS edges, inserting MOVs as needed."""
            while len(edges) > MAX_TARGETS:
                # Chunks of MAX_TARGETS edges per MOV keep tree depth
                # logarithmic in the fan-out degree.
                groups = [edges[i:i + MAX_TARGETS] for i in range(0, len(edges), MAX_TARGETS)]
                edges = []
                for group in groups:
                    if len(group) == 1:
                        edges.append(group[0])
                    else:
                        mov = _Node(op=OPCODES["MOV"])
                        mov.edges = list(group)
                        self._nodes.append(mov)
                        edges.append(("inst", len(self._nodes) - 1, OperandSlot.OP0))
            return edges

        read_edges = [reduce_edges(list(edges)) for (__, edges) in self._read_slots]
        # New MOVs appended during iteration are visited too; a MOV
        # created by reduce_edges always has <= MAX_TARGETS edges already.
        index = 0
        while index < len(self._nodes):
            node = self._nodes[index]
            node.edges = reduce_edges(node.edges)
            index += 1

        def to_target(edge: tuple[str, int, OperandSlot]) -> Target:
            kind, target_index, slot = edge
            if kind == "write":
                return Target(TargetKind.WRITE, target_index)
            return Target(TargetKind.INST, target_index, slot)

        read_targets = [[to_target(e) for e in edges] for edges in read_edges]
        node_targets = [[to_target(e) for e in node.edges] for node in self._nodes]
        return read_targets, node_targets
