"""Opcode definitions and evaluation semantics for the EDGE ISA.

Opcode semantics live here, in one place, so that the golden-model
interpreter (:mod:`repro.isa.interp`) and the cycle-level simulator
(:mod:`repro.tflex`) are guaranteed to compute identical values.

Integer values are 64-bit two's complement; floating point values are
IEEE-754 doubles (Python floats).  The :func:`evaluate` function is the
single entry point for executing an opcode on operand values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.util import INT_MAX, INT_MIN, wrap64

_WRAP = 1 << 64


class OpClass(Enum):
    """Functional-unit class of an opcode.

    The class determines which issue slot an instruction competes for
    (TFlex cores issue up to two INT-class and one FP-class instruction
    per cycle) and which latency table applies.
    """

    INT = "int"          # single-cycle integer ALU
    IMUL = "imul"        # integer multiply
    IDIV = "idiv"        # integer divide / modulo
    FP = "fp"            # floating-point add/convert class
    FMUL = "fmul"        # floating-point multiply
    FDIV = "fdiv"        # floating-point divide / sqrt
    LOAD = "load"        # memory read (address generation)
    STORE = "store"      # memory write (address/data merge)
    BRANCH = "branch"    # block exit
    NULL = "null"        # output nullification token
    MOVE = "move"        # operand fan-out
    TEST = "test"        # predicate-producing comparison


# Classes that issue on the floating-point pipe of a core.
FP_CLASSES = frozenset({OpClass.FP, OpClass.FMUL, OpClass.FDIV})

# Branch kinds, stored in Instruction.imm-adjacent metadata.
BRANCH_KINDS = ("BRO", "CALLO", "RET", "HALT")


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    Attributes:
        name: Mnemonic, e.g. ``"ADDI"``.
        opclass: Functional-unit class.
        operands: Number of dataflow operands consumed (0, 1 or 2),
            excluding the optional predicate operand.
        has_imm: Whether the instruction carries an immediate field.
        latency: Execution latency in cycles (cache latency for memory
            operations is modelled separately by the memory system).
    """

    name: str
    opclass: OpClass
    operands: int
    has_imm: bool
    latency: int

    @property
    def is_fp(self) -> bool:
        return self.opclass in FP_CLASSES

    @property
    def is_memory(self) -> bool:
        return self.opclass in (OpClass.LOAD, OpClass.STORE)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"OpSpec({self.name})"


def _binops() -> dict[str, tuple[OpClass, int]]:
    """Two-operand integer opcodes: name -> (class, latency)."""
    table = {}
    for name in ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "SRA"):
        table[name] = (OpClass.INT, 1)
    table["MUL"] = (OpClass.IMUL, 3)
    table["DIV"] = (OpClass.IDIV, 12)
    table["MOD"] = (OpClass.IDIV, 12)
    return table


def _testops() -> tuple[str, ...]:
    return ("TEQ", "TNE", "TLT", "TLE", "TGT", "TGE")


def _build_opcodes() -> dict[str, OpSpec]:
    ops: dict[str, OpSpec] = {}

    def add(name: str, opclass: OpClass, operands: int, has_imm: bool, latency: int) -> None:
        ops[name] = OpSpec(name, opclass, operands, has_imm, latency)

    # Integer register-register and register-immediate arithmetic.
    for name, (opclass, lat) in _binops().items():
        add(name, opclass, 2, False, lat)
        add(name + "I", opclass, 1, True, lat)

    # One-operand integer ops.
    add("NOT", OpClass.INT, 1, False, 1)
    add("NEG", OpClass.INT, 1, False, 1)

    # Predicate-producing tests (result is 0/1, usable as data too).
    for name in _testops():
        add(name, OpClass.TEST, 2, False, 1)
        add(name + "I", OpClass.TEST, 1, True, 1)
    # Floating-point tests.
    for name in ("FTEQ", "FTLT", "FTLE"):
        add(name, OpClass.TEST, 2, False, 2)

    # Floating point.
    add("FADD", OpClass.FP, 2, False, 4)
    add("FSUB", OpClass.FP, 2, False, 4)
    add("FMUL", OpClass.FMUL, 2, False, 4)
    add("FDIV", OpClass.FDIV, 2, False, 16)
    add("FSQRT", OpClass.FDIV, 1, False, 16)
    add("FABS", OpClass.FP, 1, False, 2)
    add("FNEG", OpClass.FP, 1, False, 2)
    add("ITOF", OpClass.FP, 1, False, 2)
    add("FTOI", OpClass.FP, 1, False, 2)

    # Operand movement.
    add("MOV", OpClass.MOVE, 1, False, 1)
    add("MOVI", OpClass.MOVE, 0, True, 1)

    # Memory.  LD: operand 0 = base address, imm = offset.
    # ST: operand 0 = address, operand 1 = data, imm = offset.
    # Integer loads zero-extend (B/H/W) or are full signed 64-bit (D);
    # LDF/STF move IEEE-754 doubles.
    for suffix in ("B", "H", "W", "D", "F"):
        add("LD" + suffix, OpClass.LOAD, 1, True, 1)
        add("ST" + suffix, OpClass.STORE, 2, True, 1)

    # Branches.  BRO/CALLO carry a static target label; RET takes the
    # target address as operand 0; HALT ends the program.
    add("BRO", OpClass.BRANCH, 0, False, 1)
    add("CALLO", OpClass.BRANCH, 0, False, 1)
    add("RET", OpClass.BRANCH, 1, False, 1)
    add("HALT", OpClass.BRANCH, 0, False, 1)

    # Output nullification (paper section 4.6 completion contract):
    # produces a "null" token for a register-write slot or a store
    # LSQ slot on the predicate path where the real producer is squashed.
    add("NULL", OpClass.NULL, 0, False, 1)

    return ops


OPCODES: dict[str, OpSpec] = _build_opcodes()

#: Memory access size in bytes for LD*/ST* opcodes.
MEMORY_SIZES = {"B": 1, "H": 2, "W": 4, "D": 8, "F": 8}


def memory_size(op: OpSpec) -> int:
    """Access size in bytes of a load/store opcode."""
    if not op.is_memory:
        raise ValueError(f"{op.name} is not a memory opcode")
    return MEMORY_SIZES[op.name[-1]]


def _shift_amount(value: int) -> int:
    return value & 63


def _to_unsigned(value: int) -> int:
    return value % _WRAP


_INT_FUNCS = {
    "ADD": lambda a, b: wrap64(a + b),
    "SUB": lambda a, b: wrap64(a - b),
    "MUL": lambda a, b: wrap64(a * b),
    "DIV": lambda a, b: 0 if b == 0 else wrap64(int(a / b)),
    "MOD": lambda a, b: 0 if b == 0 else wrap64(a - int(a / b) * b),
    "AND": lambda a, b: wrap64(a & b),
    "OR": lambda a, b: wrap64(a | b),
    "XOR": lambda a, b: wrap64(a ^ b),
    "SHL": lambda a, b: wrap64(a << _shift_amount(b)),
    "SHR": lambda a, b: wrap64(_to_unsigned(a) >> _shift_amount(b)),
    "SRA": lambda a, b: wrap64(a >> _shift_amount(b)),
}

_TEST_FUNCS = {
    "TEQ": lambda a, b: int(a == b),
    "TNE": lambda a, b: int(a != b),
    "TLT": lambda a, b: int(a < b),
    "TLE": lambda a, b: int(a <= b),
    "TGT": lambda a, b: int(a > b),
    "TGE": lambda a, b: int(a >= b),
    "FTEQ": lambda a, b: int(float(a) == float(b)),
    "FTLT": lambda a, b: int(float(a) < float(b)),
    "FTLE": lambda a, b: int(float(a) <= float(b)),
}

_FP_FUNCS = {
    "FADD": lambda a, b: float(a) + float(b),
    "FSUB": lambda a, b: float(a) - float(b),
    "FMUL": lambda a, b: float(a) * float(b),
    "FDIV": lambda a, b: math.inf if float(b) == 0.0 else float(a) / float(b),
}

_FP_UNARY = {
    "FSQRT": lambda a: math.sqrt(float(a)) if float(a) >= 0.0 else math.nan,
    "FABS": lambda a: abs(float(a)),
    "FNEG": lambda a: -float(a),
    "ITOF": lambda a: float(int(a)),
}


def bind_evaluator(op: OpSpec, imm=None):
    """Pre-bind :func:`evaluate` for one opcode + resolved immediate.

    Returns a closure ``f(a, b)`` taking the (up to two) operand values
    positionally and computing exactly what ``evaluate(op, ops, imm)``
    would — the dispatch, immediate resolution and int-coercion decisions
    are made once, at bind time, instead of on every dynamic execution.
    Unused operand positions may be passed any value (they are ignored).

    The interpreter's prepared-block cache binds one evaluator per static
    instruction; ``tests/isa/test_opcodes.py`` cross-checks the pair.
    """
    name = op.name
    if op.has_imm and name != "MOVI":
        base = name[:-1]
        if base in _INT_FUNCS:
            func, const = _INT_FUNCS[base], int(imm)
            return lambda a, b: func(int(a), const)
        if base in _TEST_FUNCS:
            func, const = _TEST_FUNCS[base], int(imm)
            return lambda a, b: func(int(a), const)
    if name in _INT_FUNCS:
        func = _INT_FUNCS[name]
        return lambda a, b: func(int(a), int(b))
    if name in _TEST_FUNCS:
        func = _TEST_FUNCS[name]
        if name.startswith("F"):
            return func
        return lambda a, b: func(int(a), int(b))
    if name in _FP_FUNCS:
        return _FP_FUNCS[name]
    if name in _FP_UNARY:
        func = _FP_UNARY[name]
        return lambda a, b: func(a)
    if name == "FTOI":
        def ftoi(a, b):
            value = float(a)
            if math.isnan(value):
                return 0
            return wrap64(int(value))
        return ftoi
    if name == "NOT":
        return lambda a, b: wrap64(~int(a))
    if name == "NEG":
        return lambda a, b: wrap64(-int(a))
    if name == "MOV":
        return lambda a, b: a
    if name == "MOVI":
        const = imm
        return lambda a, b: const
    raise ValueError(f"bind_evaluator() does not implement opcode {name}")


def evaluate(op: OpSpec, operands: tuple, imm=None):
    """Execute one opcode on resolved operand values.

    Memory, branch and NULL opcodes are *not* handled here: their effects
    depend on machine state and are implemented by the interpreter and
    the simulator.  ``evaluate`` covers every value-producing ALU opcode.

    Args:
        op: The opcode spec.
        operands: Tuple of operand values, length ``op.operands``.
        imm: Immediate value for ``*I``/``MOVI`` forms.

    Returns:
        The result value (int for integer/test ops, float for FP ops).
    """
    name = op.name
    if op.has_imm and name != "MOVI":
        base = name[:-1]
        a = operands[0]
        b = imm
    else:
        base = name
        a = operands[0] if op.operands >= 1 else None
        b = operands[1] if op.operands >= 2 else None

    if base in _INT_FUNCS:
        return _INT_FUNCS[base](int(a), int(b))
    if base in _TEST_FUNCS:
        if base.startswith("F"):
            return _TEST_FUNCS[base](a, b)
        return _TEST_FUNCS[base](int(a), int(b))
    if base in _FP_FUNCS:
        return _FP_FUNCS[base](a, b)
    if base in _FP_UNARY:
        return _FP_UNARY[base](a)
    if name == "FTOI":
        value = float(a)
        if math.isnan(value):
            return 0
        return wrap64(int(value))
    if name == "NOT":
        return wrap64(~int(a))
    if name == "NEG":
        return wrap64(-int(a))
    if name == "MOV":
        return a
    if name == "MOVI":
        return imm
    raise ValueError(f"evaluate() does not implement opcode {name}")
