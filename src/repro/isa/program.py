"""Programs: ordered collections of EDGE blocks plus initial state.

A program fixes the memory layout of its blocks (block addresses drive
the block-ownership hash and all predictor indexing), the initial data
segment, and initial architectural register values.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.isa.block import Block, BlockError, NUM_REGS
from repro.isa.instruction import LabelRef


#: Sentinel "next block address" produced by HALT.
HALT_ADDR = 0

#: Default base address of the code segment.
CODE_BASE = 0x1_0000
#: Address stride between consecutive blocks (128 insts x 4 B + header,
#: rounded to a power of two so address hashes stay simple).
BLOCK_STRIDE = 0x400
#: Default base address of the data segment.
DATA_BASE = 0x10_0000


class ProgramError(Exception):
    """A program violates a whole-program constraint."""


@dataclass
class Program:
    """A linked EDGE program.

    Attributes:
        blocks: Label -> block map.
        order: Memory layout order of blocks.  The address of a block is
            ``CODE_BASE + order.index(label) * BLOCK_STRIDE``; the block
            after a CALLO block in this order is its return continuation
            (the RAS pushes the sequential next-block address).
        entry: Label of the first block executed.
        data: Initial data segment: address -> bytes.
        reg_init: Initial architectural register values.
        name: Human-readable program name (benchmark id).
    """

    entry: str
    blocks: dict[str, Block] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    data: dict[int, bytes] = field(default_factory=dict)
    reg_init: dict[int, int | float] = field(default_factory=dict)
    name: str = "program"
    _next_data: int = DATA_BASE
    #: Memoized label -> code address map; rebuilt whenever ``order``
    #: grows (``address_of`` is on the branch-resolution hot path).
    _addr_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_block(self, block: Block) -> None:
        """Append a block to the program layout."""
        if block.label in self.blocks:
            raise ProgramError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        self.order.append(block.label)

    def alloc_data(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` in the data segment, returning the address."""
        addr = (self._next_data + align - 1) // align * align
        self._next_data = addr + nbytes
        return addr

    def add_words(self, values: Iterable[int], signed: bool = True) -> int:
        """Place 64-bit integers in the data segment, returning the base address."""
        values = list(values)
        raw = b"".join(struct.pack("<q" if signed else "<Q", v) for v in values)
        addr = self.alloc_data(len(raw))
        self.data[addr] = raw
        return addr

    def add_doubles(self, values: Iterable[float]) -> int:
        """Place IEEE-754 doubles in the data segment, returning the base address."""
        raw = b"".join(struct.pack("<d", v) for v in values)
        addr = self.alloc_data(len(raw))
        self.data[addr] = raw
        return addr

    def add_bytes(self, raw: bytes) -> int:
        """Place raw bytes in the data segment, returning the base address."""
        addr = self.alloc_data(len(raw))
        self.data[addr] = bytes(raw)
        return addr

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def address_of(self, label: str) -> int:
        """Code address of a block."""
        cache = self._addr_cache
        if len(cache) != len(self.order):
            cache.clear()
            for index, name in enumerate(self.order):
                cache[name] = CODE_BASE + index * BLOCK_STRIDE
        try:
            return cache[label]
        except KeyError:
            raise ProgramError(f"unknown block label {label!r}") from None

    def label_at(self, addr: int) -> str:
        """Block label at a code address."""
        index, rem = divmod(addr - CODE_BASE, BLOCK_STRIDE)
        if rem != 0 or not 0 <= index < len(self.order):
            raise ProgramError(f"address {addr:#x} is not a block address")
        return self.order[index]

    def sequential_next(self, label: str) -> Optional[str]:
        """Block laid out immediately after ``label`` (call-return continuation)."""
        index = self.order.index(label)
        if index + 1 < len(self.order):
            return self.order[index + 1]
        return None

    def block_at(self, addr: int) -> Block:
        return self.blocks[self.label_at(addr)]

    # ------------------------------------------------------------------
    # Linking and validation
    # ------------------------------------------------------------------

    def resolve_imm(self, imm):
        """Resolve a possibly-symbolic immediate to a concrete value."""
        if isinstance(imm, LabelRef):
            return self.address_of(imm.label)
        return imm

    def validate(self) -> None:
        """Validate every block and whole-program label integrity."""
        if self.entry not in self.blocks:
            raise ProgramError(f"entry block {self.entry!r} not defined")
        if set(self.order) != set(self.blocks):
            raise ProgramError("block order and block map disagree")
        for label, block in self.blocks.items():
            if label != block.label:
                raise ProgramError(f"block map key {label!r} != block label {block.label!r}")
            try:
                block.validate()
            except BlockError as exc:
                raise ProgramError(str(exc)) from exc
            for succ in block.successors():
                if succ not in self.blocks:
                    raise ProgramError(f"{label}: branch to unknown block {succ!r}")
            for inst in block.insts:
                if isinstance(inst.imm, LabelRef) and inst.imm.label not in self.blocks:
                    raise ProgramError(f"{label}: immediate references unknown block {inst.imm.label!r}")
        for reg in self.reg_init:
            if not 0 <= reg < NUM_REGS:
                raise ProgramError(f"initial value for nonexistent register r{reg}")

    @property
    def total_instructions(self) -> int:
        """Static instruction count across all blocks."""
        return sum(b.size for b in self.blocks.values())

    def disassemble(self) -> str:
        """Full program listing."""
        parts = [f"; program {self.name}  entry={self.entry}"]
        for label in self.order:
            parts.append(self.blocks[label].disassemble())
        return "\n\n".join(parts)
