"""Byte-addressable flat memory backing both the interpreter and the simulator.

Pages are allocated lazily so sparse address spaces (separate code, data,
and stack regions) stay cheap.  Values cross the memory interface as raw
little-endian bytes; typed helpers convert to/from the EDGE value model
(64-bit two's-complement integers and IEEE-754 doubles).
"""

from __future__ import annotations

import struct

from repro.util import wrap64


PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class FlatMemory:
    """Sparse, paged, byte-addressable memory."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        number = addr >> 12
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``addr``."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        out = bytearray()
        while size > 0:
            offset = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - offset)
            out += self._page(addr)[offset:offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, raw: bytes) -> None:
        """Write raw bytes starting at ``addr``."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        pos = 0
        while pos < len(raw):
            offset = addr & PAGE_MASK
            chunk = min(len(raw) - pos, PAGE_SIZE - offset)
            self._page(addr)[offset:offset + chunk] = raw[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # ------------------------------------------------------------------
    # Typed access used by LD*/ST* opcodes
    # ------------------------------------------------------------------

    def load(self, addr: int, size: int, fp: bool = False):
        """Load a value: zero-extended for sizes < 8, signed 64-bit for
        size 8, IEEE double when ``fp``."""
        raw = self.read_bytes(addr, size)
        if fp:
            return struct.unpack("<d", raw)[0]
        value = int.from_bytes(raw, "little", signed=False)
        if size == 8:
            return wrap64(value)
        return value

    def store(self, addr: int, size: int, value, fp: bool = False) -> None:
        """Store a value, truncating integers to ``size`` bytes."""
        if fp:
            self.write_bytes(addr, struct.pack("<d", float(value)))
            return
        mask = (1 << (size * 8)) - 1
        self.write_bytes(addr, (int(value) & mask).to_bytes(size, "little"))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def load_image(self, data: dict[int, bytes]) -> None:
        """Install an initial data segment (Program.data)."""
        for addr, raw in data.items():
            self.write_bytes(addr, raw)

    def read_words(self, addr: int, count: int, fp: bool = False) -> list:
        """Read ``count`` consecutive 8-byte values."""
        return [self.load(addr + 8 * i, 8, fp=fp) for i in range(count)]

    def footprint_pages(self) -> int:
        """Number of pages touched (for tests and stats)."""
        return len(self._pages)

    # ------------------------------------------------------------------
    # Checkpointing (sampled simulation)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe page snapshot: page number (as str) -> base64 data."""
        import base64

        return {str(number): base64.b64encode(bytes(page)).decode("ascii")
                for number, page in self._pages.items()}

    def restore(self, snapshot: dict) -> None:
        """Replace all contents with a :meth:`snapshot` payload."""
        import base64

        self._pages = {int(number): bytearray(base64.b64decode(data))
                       for number, data in snapshot.items()}
