"""Shared S-NUCA L2 cache with directory-based L1 coherence.

The chip's L2 (paper sections 4.7 and 5, Table 1) is a 4 MB cache split
into 32 banks connected by a switched mesh; hit latency varies with the
distance between the requesting core and the bank holding the line
(5..27 cycles unloaded).  Coherence among the private L1 data caches
uses an on-chip directory: sharing vectors stored alongside the L2 tags,
treating every L1 bank as an independent coherence unit — which is what
lets compositions change without flushing L1s (the directory forwards or
invalidates stale lines on demand).

Timing here is computed transactionally: a request arriving at cycle
*now* returns its completion cycle, with directory side effects (L1
invalidations, ownership transfers) applied immediately and their cost
added to the returned latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mem.cache import CacheBank, LineState
from repro.mem.dram import Dram
from repro.noc.mesh import Topology


@dataclass
class DirectoryEntry:
    """Sharing state for one (ctx, line): which L1s hold it, who owns it."""

    sharers: set[int] = field(default_factory=set)
    owner: Optional[int] = None   # core id holding the line MODIFIED


@dataclass
class L2Stats:
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    forwards: int = 0          # dirty data forwarded from a remote L1
    invalidation_msgs: int = 0
    recalls: int = 0           # L1 invalidations due to L2 eviction

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class L2System:
    """NUCA L2 array + directory + DRAM behind it.

    Args:
        core_topology: Mesh of the cores (bank distance is measured from
            the requesting core to the bank's position in the adjacent
            L2 array).
        num_banks: L2 bank count (32 in the paper's floorplan).
        bank_bytes: Capacity per bank.
        assoc: L2 associativity.
        tag_latency: Bank access time excluding network hops.
        l1_banks: Callback ``core_id -> CacheBank`` giving the private L1
            D-cache of a core, for directory-initiated invalidations.
        dram: Backing memory model.
    """

    def __init__(self, core_topology: Topology, num_banks: int = 32,
                 bank_bytes: int = 128 * 1024, assoc: int = 8,
                 line_size: int = 64, tag_latency: int = 3,
                 l1_banks: Optional[Callable[[int], CacheBank]] = None,
                 dram: Optional[Dram] = None) -> None:
        self.core_topology = core_topology
        self.num_banks = num_banks
        self.line_size = line_size
        self.tag_latency = tag_latency
        self.l1_banks = l1_banks
        self.dram = dram if dram is not None else Dram()
        self.stats = L2Stats()
        self.banks = [
            CacheBank(bank_bytes, assoc, line_size, name=f"l2b{i}")
            for i in range(num_banks)
        ]
        # Bank grid sits beside the core array (paper figure 1): bank i
        # occupies column (i % 4) of a 4-wide array at the core mesh's
        # right edge, row i // 4.
        self._bank_cols = 4
        self.directory: dict[tuple[int, int], DirectoryEntry] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def bank_of(self, addr: int) -> int:
        return (addr // self.line_size) % self.num_banks

    def bank_distance(self, core: int, bank: int) -> int:
        """Hop count from a core to an L2 bank."""
        cx, cy = self.core_topology.coord(core)
        bx = bank % self._bank_cols
        by = bank // self._bank_cols
        # Cross the core array to its right edge, then into the L2 array.
        to_edge = self.core_topology.width - 1 - cx
        return to_edge + 1 + bx + abs(by - cy)

    def unloaded_latency(self, core: int, addr: int) -> int:
        """Round-trip L2 hit latency from a core (paper: 5..27 cycles)."""
        return self.tag_latency + 2 * self.bank_distance(core, self.bank_of(addr))

    # ------------------------------------------------------------------
    # L1 request interface
    # ------------------------------------------------------------------

    def read(self, ctx: int, addr: int, core: int, now: int) -> tuple[int, LineState]:
        """L1 read miss: fetch a line for sharing.

        Returns ``(done_cycle, fill_state)``; the caller fills its L1
        with the returned state.
        """
        self.stats.reads += 1
        done = now + self.unloaded_latency(core, addr)
        line_addr = addr & ~(self.line_size - 1)
        entry = self._dir_entry(ctx, line_addr)

        if entry.owner is not None and entry.owner != core:
            # Dirty in a remote L1: forward the line, downgrading the owner.
            self.stats.forwards += 1
            done += self.core_topology.distance(entry.owner, core) + self.tag_latency
            owner_bank = self._l1(entry.owner)
            if owner_bank is not None:
                line = owner_bank.probe(ctx, line_addr)
                if line is not None:
                    line.state = LineState.SHARED
            entry.sharers.add(entry.owner)
            entry.owner = None

        done = self._touch_l2(ctx, line_addr, core, now, done)
        entry.sharers.add(core)
        return done, LineState.SHARED

    def write(self, ctx: int, addr: int, core: int, now: int) -> tuple[int, LineState]:
        """L1 write miss or upgrade: obtain the line exclusively."""
        self.stats.writes += 1
        done = now + self.unloaded_latency(core, addr)
        line_addr = addr & ~(self.line_size - 1)
        entry = self._dir_entry(ctx, line_addr)

        others = (entry.sharers | ({entry.owner} if entry.owner is not None else set())) - {core}
        if others:
            # Invalidate every other copy; latency is the farthest
            # invalidation round trip from the home bank.
            bank = self.bank_of(addr)
            worst = 0
            for sharer in sorted(others):
                self.stats.invalidation_msgs += 1
                l1 = self._l1(sharer)
                if l1 is not None:
                    l1.invalidate(ctx, line_addr)
                worst = max(worst, 2 * self.bank_distance(sharer, bank))
            done += worst
        entry.sharers = set()
        entry.owner = core

        done = self._touch_l2(ctx, line_addr, core, now, done)
        return done, LineState.MODIFIED

    def warm_read(self, ctx: int, line_addr: int, core: int) -> None:
        """State-only :meth:`read` for cache warming (``line_addr`` must
        be line-aligned).

        Identical directory/L1/L2-array transitions to a read at cycle
        0, with everything a warming pass ignores dropped: latency
        arithmetic, DRAM timing, and stats.  The sampled-simulation
        shadow (:mod:`repro.sample.shadow`) drives this once per
        fast-forwarded block reference, so the saved work is the
        difference between warming and simulating.
        """
        entry = self._dir_entry(ctx, line_addr)
        owner = entry.owner
        if owner is not None and owner != core:
            owner_bank = self._l1(owner)
            if owner_bank is not None:
                line = owner_bank.probe(ctx, line_addr)
                if line is not None:
                    line.state = LineState.SHARED
            entry.sharers.add(owner)
            entry.owner = None
        self._warm_touch(ctx, line_addr)
        entry.sharers.add(core)

    def warm_write(self, ctx: int, line_addr: int, core: int) -> None:
        """State-only :meth:`write` for cache warming (``line_addr``
        must be line-aligned); see :meth:`warm_read`."""
        entry = self._dir_entry(ctx, line_addr)
        owner = entry.owner
        if entry.sharers or (owner is not None and owner != core):
            for sharer in sorted(entry.sharers):
                if sharer != core:
                    l1 = self._l1(sharer)
                    if l1 is not None:
                        l1.invalidate(ctx, line_addr)
            if owner is not None and owner != core:
                l1 = self._l1(owner)
                if l1 is not None:
                    l1.invalidate(ctx, line_addr)
            entry.sharers = set()
        entry.owner = core
        self._warm_touch(ctx, line_addr)

    def l1_evicted(self, ctx: int, line_addr: int, core: int) -> None:
        """An L1 silently dropped (or wrote back) a line."""
        key = (ctx, line_addr)
        entry = self.directory.get(key)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers and entry.owner is None:
            del self.directory[key]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dir_entry(self, ctx: int, line_addr: int) -> DirectoryEntry:
        key = (ctx, line_addr)
        entry = self.directory.get(key)
        if entry is None:
            entry = DirectoryEntry()
            self.directory[key] = entry
        return entry

    def _l1(self, core: int) -> Optional[CacheBank]:
        return self.l1_banks(core) if self.l1_banks is not None else None

    def _warm_touch(self, ctx: int, line_addr: int) -> None:
        """:meth:`_touch_l2` minus DRAM, latency, and stats — the L2
        array transitions (LRU touch, fill, eviction recall) only."""
        bank = self.banks[(line_addr // self.line_size) % self.num_banks]
        try:
            bank._sets[(line_addr // bank.line_size) % bank.num_sets] \
                .move_to_end((ctx, line_addr))
        except KeyError:
            victim = bank.fill(ctx, line_addr)
            if victim is not None:
                self._recall(victim)

    def _touch_l2(self, ctx: int, line_addr: int, core: int, now: int, done: int) -> int:
        """Reference the L2 bank; on a miss, go to DRAM and fill."""
        bank = self.banks[self.bank_of(line_addr)]
        if bank.access(ctx, line_addr):
            self.stats.hits += 1
            return done
        self.stats.misses += 1
        dram_done = self.dram.request(done)
        victim = bank.fill(ctx, line_addr)
        if victim is not None:
            self._recall(victim)
        return dram_done

    def _recall(self, victim) -> None:
        """L2 eviction: recall the line from any L1s holding it."""
        key = (victim.ctx, victim.line_addr)
        entry = self.directory.pop(key, None)
        if entry is None:
            return
        holders = set(entry.sharers)
        if entry.owner is not None:
            holders.add(entry.owner)
        for core in sorted(holders):
            self.stats.recalls += 1
            l1 = self._l1(core)
            if l1 is not None:
                l1.invalidate(victim.ctx, victim.line_addr)
