"""Generic set-associative cache bank (timing/state only).

Caches in this simulator track *presence and coherence state*, not data:
architectural data lives in the per-thread flat memory and moves through
the LSQ/commit path, which keeps functional correctness independent of
timing-model details.  Lines are keyed by ``(ctx, line_address)`` so
multiple programs (address-space contexts) can share the physical
hierarchy, as in the multiprogramming experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class LineState(Enum):
    """MSI coherence state of a cached line."""

    SHARED = "S"
    MODIFIED = "M"


@dataclass(slots=True)
class Line:
    """One resident cache line."""

    ctx: int
    line_addr: int
    state: LineState = LineState.SHARED


@dataclass
class CacheStats:
    reads: int = 0
    read_misses: int = 0
    writes: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheBank:
    """One set-associative, LRU, write-back cache bank.

    Args:
        size_bytes: Total capacity of this bank.
        assoc: Set associativity.
        line_size: Line size in bytes (power of two).
        name: For diagnostics.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int = 64,
                 name: str = "cache") -> None:
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        num_lines = size_bytes // line_size
        if num_lines < assoc or num_lines % assoc:
            raise ValueError(f"{name}: {size_bytes}B / {assoc}-way / {line_size}B is not a valid geometry")
        self.name = name
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self.stats = CacheStats()  # lint: ok(REP101) history, not warm state — stats stay with their owner across swaps
        # set index -> OrderedDict[(ctx, line_addr) -> Line], LRU first.
        self._sets: list[OrderedDict] = [OrderedDict() for __ in range(self.num_sets)]

    def line_addr(self, addr: int) -> int:
        return addr & ~(self.line_size - 1)

    def _set_of(self, line_addr: int) -> OrderedDict:
        index = (line_addr // self.line_size) % self.num_sets
        return self._sets[index]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def probe(self, ctx: int, addr: int) -> Optional[Line]:
        """Non-allocating lookup; does not update LRU or stats."""
        line_addr = self.line_addr(addr)
        return self._set_of(line_addr).get((ctx, line_addr))

    def access(self, ctx: int, addr: int, write: bool = False) -> bool:
        """Reference a line, updating LRU and hit/miss stats.

        Returns True on hit.  A write hit on a SHARED line still counts
        as a hit here; the caller consults the directory for upgrades.
        """
        line_addr = addr & ~(self.line_size - 1)
        cache_set = self._sets[(line_addr // self.line_size) % self.num_sets]
        key = (ctx, line_addr)
        # Hit fast path: one hashed lookup doubling as the LRU touch.
        try:
            cache_set.move_to_end(key)
            hit = True
        except KeyError:
            hit = False
        stats = self.stats
        if write:
            stats.writes += 1
            if not hit:
                stats.write_misses += 1
        else:
            stats.reads += 1
            if not hit:
                stats.read_misses += 1
        return hit

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def fill(self, ctx: int, addr: int, state: LineState = LineState.SHARED) -> Optional[Line]:
        """Install a line, evicting the LRU line of the set if needed.

        Returns the evicted line (for directory notification /
        writeback) or None.
        """
        line_addr = self.line_addr(addr)
        cache_set = self._set_of(line_addr)
        key = (ctx, line_addr)
        existing = cache_set.get(key)
        if existing is not None:
            existing.state = state
            cache_set.move_to_end(key)
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            __, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.state is LineState.MODIFIED:
                self.stats.writebacks += 1
        cache_set[key] = Line(ctx=ctx, line_addr=line_addr, state=state)
        return victim

    def upgrade(self, ctx: int, addr: int) -> None:
        """Transition a resident line to MODIFIED."""
        line = self.probe(ctx, addr)
        if line is None:
            raise KeyError(f"{self.name}: upgrade of absent line {addr:#x}")
        line.state = LineState.MODIFIED

    def invalidate(self, ctx: int, addr: int) -> Optional[Line]:
        """Remove a line (directory-initiated). Returns it if present."""
        line_addr = self.line_addr(addr)
        cache_set = self._set_of(line_addr)
        line = cache_set.pop((ctx, line_addr), None)
        if line is not None:
            self.stats.invalidations += 1
        return line

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def iter_lines(self):
        """Iterate all resident lines (set order, LRU-first within a set)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    # ------------------------------------------------------------------
    # State transfer (sampled-simulation warm-up injection, checkpoints)
    # ------------------------------------------------------------------

    def swap_lines(self, other: "CacheBank") -> None:
        """Exchange resident lines with a same-geometry bank in O(1).

        Observably identical to an ``export_lines``/``import_lines``
        round trip in each direction (set order, LRU order, and line
        state all move by reference); stats stay with their owner.  The
        sampled engine uses this to move warm state to and from
        per-window systems without materializing snapshots.
        """
        if other.num_sets != self.num_sets \
                or other.line_size != self.line_size \
                or other.assoc != self.assoc:
            raise ValueError(f"{self.name}: swap geometry mismatch "
                             f"with {other.name}")
        self._sets, other._sets = other._sets, self._sets

    def export_lines(self) -> list:
        """JSON-safe snapshot of the resident lines, one list per set in
        LRU-first order (so a round trip preserves eviction order)."""
        return [[[line.ctx, line.line_addr, line.state.value]
                 for line in cache_set.values()]
                for cache_set in self._sets]

    def import_lines(self, sets: list) -> None:
        """Replace resident state with an :meth:`export_lines` snapshot.

        The snapshot must come from a bank of the same geometry (set
        count is checked; lines land in their stored set, keeping the
        set hash consistent).  Stats are untouched — this transfers warm
        state, not history.
        """
        if len(sets) != self.num_sets:
            raise ValueError(
                f"{self.name}: snapshot has {len(sets)} sets, "
                f"bank has {self.num_sets}")
        self._sets = [
            OrderedDict(((ctx, line_addr),
                         Line(ctx=ctx, line_addr=line_addr,
                              state=LineState(state)))
                        for ctx, line_addr, state in entries)
            for entries in sets
        ]
