"""Main-memory model: fixed unloaded latency plus a bandwidth gate.

The paper's configuration (Table 1) specifies an average unloaded main
memory latency of 150 cycles.  Bandwidth is modelled as a minimum gap
between request issues on the single memory channel; queued requests see
the queuing delay on top of the access latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    requests: int = 0
    busy_cycles: int = 0
    queue_cycles: int = 0


class Dram:
    """Single-channel DRAM with fixed latency and issue-gap bandwidth."""

    def __init__(self, latency: int = 150, issue_gap: int = 4) -> None:
        self.latency = latency
        self.issue_gap = issue_gap
        self.stats = DramStats()
        self._next_free = 0

    def request(self, now: int) -> int:
        """Issue a request at ``now``; returns its completion cycle."""
        start = now if self._next_free <= now else self._next_free
        self.stats.queue_cycles += start - now
        self._next_free = start + self.issue_gap
        self.stats.busy_cycles += self.issue_gap
        self.stats.requests += 1
        return start + self.latency
