"""Memory system substrates: flat memory, cache banks, NUCA L2, directory, DRAM."""

from repro.mem.flatmem import FlatMemory

__all__ = ["FlatMemory"]
