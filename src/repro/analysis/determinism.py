"""REP2xx — bit-determinism lint.

The exec engine fans simulations out across processes and trusts that
the same :class:`JobSpec` always produces the same result (content-
addressed caching, trace replay, successive-halving comparisons all
assume it).  Anything that lets host state leak into simulated state
breaks that:

* REP201 — wall-clock reads (``time.time``, ``datetime.now``, ...)
* REP202 — entropy (``os.urandom``, unseeded ``random``, ``uuid``,
  ``secrets``)
* REP203 — builtin ``hash()``/``id()`` (process-salted / address-based)
* REP204 — iterating a ``set``/``frozenset`` in an order-sensitive
  position (iteration order varies with PYTHONHASHSEED)

REP201–203 apply only to modules inside the simulation/hashing scope
(``ctx.sim_paths`` prefixes); exec scheduling, obs, and the CLI
legitimately read wall clocks.  REP204 applies everywhere scanned:
consuming a set through an order-insensitive reducer (``sorted``,
``sum``, ``any``, ``min``, ``set``, ...) is fine and not flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule, dotted_name

RULE_WALLCLOCK = "REP201"
RULE_ENTROPY = "REP202"
RULE_HASH_ID = "REP203"
RULE_SET_ITER = "REP204"

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})

_ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.choice",
})

#: Reducers whose result does not depend on iteration order (or that
#: impose one), so feeding them a set is safe.
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "sum", "len", "min", "max", "any", "all",
    "set", "frozenset", "Counter",
})

_SET_ANNOTATIONS = ("set[", "set", "frozenset[", "frozenset",
                    "Set[", "AbstractSet[", "FrozenSet[")


def _annotation_is_set(node) -> bool:
    if node is None:
        return False
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return False
    text = text.strip().strip("'\"")
    if text.startswith("Optional[") and text.endswith("]"):
        text = text[len("Optional["):-1]
    return any(text == a or text.startswith(a) for a in _SET_ANNOTATIONS)


class _SetTypes:
    """Names/attributes statically known to hold sets in one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.attrs: set = set()       # attribute names annotated as sets
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                target = node.target
                if isinstance(target, ast.Attribute):
                    self.attrs.add(target.attr)
                elif isinstance(target, ast.Name):
                    # class-body field annotation (dataclass field) —
                    # readable later as self.<name>.
                    self.attrs.add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_is_set(node.returns):
                    # property/method returning a set: self.x or x()
                    self.attrs.add(node.name)


def _is_set_expr(node, local_sets, set_types) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Attribute):
        return node.attr in set_types.attrs
    if isinstance(node, ast.Call):
        name = dotted_name(node.func).rsplit(".", 1)[-1]
        if name in ("set", "frozenset"):
            return True
        if name in set_types.attrs:  # method with set return annotation
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("union", "intersection", "difference",
                                       "symmetric_difference") \
                and _is_set_expr(node.func.value, local_sets, set_types):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, local_sets, set_types)
                or _is_set_expr(node.right, local_sets, set_types))
    return False


def _collect_local_sets(func, set_types) -> set:
    """One forward pass over a function body: names bound to set exprs."""
    local_sets: set = set()
    for arg in list(getattr(func.args, "args", ())) \
            + list(getattr(func.args, "kwonlyargs", ())):
        if _annotation_is_set(arg.annotation):
            local_sets.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            if _is_set_expr(node.value, local_sets, set_types):
                local_sets.add(node.targets[0].id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) \
                    or _is_set_expr(node.value, local_sets, set_types):
                local_sets.add(node.target.id)
    return local_sets


def _order_free_parents(tree) -> set:
    """ids of GeneratorExp/comprehension nodes consumed by order-free
    reducers (``sorted(x for x in s)``), which are safe over sets."""
    safe = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func).rsplit(".", 1)[-1]
            if name in _ORDER_FREE_CONSUMERS:
                for arg in node.args:
                    safe.add(id(arg))
    return safe


def check_determinism(modules, ctx):
    findings = []
    for mod in modules:
        in_sim = ctx.in_sim_scope(mod.relpath)
        if in_sim:
            findings.extend(_check_calls(mod))
        findings.extend(_check_set_iteration(mod))
    return findings


def _check_calls(mod: SourceModule):
    findings = []
    # Map from-imported names back to their dotted origin so that
    # ``from time import perf_counter`` is still caught.
    aliases: dict = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module in ("time", "datetime", "os", "uuid", "secrets"):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
            if node.module == "random" and not mod.suppressed(
                    RULE_ENTROPY, node.lineno):
                findings.append(Finding(
                    rule=RULE_ENTROPY, severity="P1", file=mod.relpath,
                    line=node.lineno,
                    message="import from `random` in a deterministic module",
                    hint="thread an explicitly seeded random.Random through "
                         "the spec instead of ambient process randomness"))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" and not mod.suppressed(
                        RULE_ENTROPY, node.lineno):
                    findings.append(Finding(
                        rule=RULE_ENTROPY, severity="P1", file=mod.relpath,
                        line=node.lineno,
                        message="import of `random` in a deterministic module",
                        hint="thread an explicitly seeded random.Random "
                             "through the spec"))
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        name = aliases.get(name, name)
        rule = None
        if name in _WALLCLOCK_CALLS:
            rule, msg, hint = RULE_WALLCLOCK, \
                f"wall-clock read `{name}()` in a deterministic module", \
                "derive timing from simulated cycles; wall clocks belong " \
                "in repro.exec / repro.obs"
        elif name in _ENTROPY_CALLS or name.startswith("random."):
            rule, msg, hint = RULE_ENTROPY, \
                f"entropy source `{name}()` in a deterministic module", \
                "all randomness must come from a spec-seeded generator"
        elif isinstance(node.func, ast.Name) and node.func.id in ("hash", "id"):
            rule, msg, hint = RULE_HASH_ID, \
                f"builtin `{node.func.id}()` is process-dependent " \
                "(PYTHONHASHSEED / object address)", \
                "use hashlib over canonical bytes, or a stable key function"
        if rule and not mod.suppressed(rule, node.lineno):
            severity = "P2" if rule == RULE_HASH_ID else "P1"
            findings.append(Finding(rule=rule, severity=severity,
                                    file=mod.relpath, line=node.lineno,
                                    message=msg, hint=hint))
    return findings


def _check_set_iteration(mod: SourceModule):
    findings = []
    set_types = _SetTypes(mod.tree)
    safe_parents = _order_free_parents(mod.tree)

    def flag(node, what):
        if mod.suppressed(RULE_SET_ITER, node.lineno):
            return
        findings.append(Finding(
            rule=RULE_SET_ITER, severity="P1", file=mod.relpath,
            line=node.lineno,
            message=f"iteration over a set in {what} — order varies "
                    "with PYTHONHASHSEED",
            hint="wrap the iterable in sorted(...), or consume it with an "
                 "order-free reducer (sum/any/min/set/...)"))

    funcs = [n for n in ast.walk(mod.tree)
             if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    scopes = [(mod.tree, set())] + [
        (f, _collect_local_sets(f, set_types)) for f in funcs]
    seen: set = set()
    for scope, local_sets in scopes:
        for node in ast.walk(scope):
            if id(node) in seen or node is scope:
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, local_sets, set_types):
                    seen.add(id(node))
                    flag(node, "a for statement")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if id(node) in safe_parents:
                    continue
                for gen in node.generators:
                    if _is_set_expr(gen.iter, local_sets, set_types):
                        seen.add(id(node))
                        flag(node, "an order-sensitive comprehension")
                        break
    return findings
