"""Baseline (grandfathering) support for ``repro lint``.

A baseline file records findings that existed before the gate went up,
so CI fails only on *new* violations.  Entries match on
``(rule, file, message)`` — line-insensitive, so edits elsewhere in a
file do not resurrect grandfathered findings — and carry a mandatory
``reason`` explaining why the finding is tolerated.

Prefer inline ``# lint: ok(RULE) reason`` markers for individual,
intentional exceptions; the baseline is for bulk adoption.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.source import LintError

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict:
    """Parse a baseline file into ``key -> entry`` (see Finding.key)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise LintError(f"baseline {path} must be an object with 'findings'")
    entries = {}
    for entry in data["findings"]:
        missing = {"rule", "file", "message"} - set(entry)
        if missing:
            raise LintError(
                f"baseline {path}: entry missing {sorted(missing)}: {entry}")
        entries[(entry["rule"], entry["file"], entry["message"])] = entry
    return entries


def write_baseline(path: Path, findings) -> None:
    """Write the current findings as a fresh baseline (reasons stubbed
    for the author to fill in)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "file": f.file, "message": f.message,
             "reason": "grandfathered: TODO justify or fix"}
            for f in findings
        ],
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def apply_baseline(findings, entries):
    """Split findings into (new, grandfathered, stale_entries)."""
    new, grandfathered = [], []
    seen = set()
    for finding in findings:
        key = finding.key()
        if key in entries:
            seen.add(key)
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [entries[key] for key in entries if key not in seen]
    return new, grandfathered, stale
