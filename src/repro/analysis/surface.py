"""REP1xx — transfer-surface completeness.

Replay/checkpoint fidelity (sampled simulation, recomposition) assumes
that every *mutable* attribute of a warm structure moves with its
transfer surface: ``state_dict``/``load_state`` for predictors,
``swap_lines``/``export_lines``/``import_lines`` for caches,
``swap_state`` for anything swap-based.  A mutable attribute the
surface never reads is warm state that silently stays behind — exactly
the drift that breaks the paper's "identical architectural state
regardless of composition" invariant.

For every class defining at least one surface method this pass:

1. collects every ``self.<attr>`` assignment/mutation across all
   methods (including ``object.__setattr__(self, "x", ...)``, subscript
   stores, ``+=``, and in-place mutator calls such as ``.append``);
2. decides whether the attribute is *state* (assigned outside
   ``__init__``, or initialised to a mutable value) or *config*
   (scalar/param-derived, assigned once in ``__init__``);
3. flags state attributes that no surface method ever reads (REP101).

Suppress intentional exclusions at the assignment site::

    self.stats = CacheStats()  # lint: ok(REP101) history, not warm state
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule, dotted_name

RULE_UNCOVERED = "REP101"

#: Defining any of these makes a class a transfer-surface owner.
SURFACE_DEF_METHODS = frozenset(
    {"state_dict", "swap_state", "swap_lines", "export_lines"})
#: Reads in any of these count as surface coverage.
SURFACE_READ_METHODS = SURFACE_DEF_METHODS | {"load_state", "import_lines"}

#: Calls (last dotted segment) whose result is mutable state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "OrderedDict", "deque", "defaultdict",
     "Counter", "bytearray"})

#: Method calls on an attribute that mutate it in place.
_MUTATOR_METHODS = frozenset(
    {"append", "appendleft", "add", "update", "pop", "popitem", "clear",
     "extend", "insert", "discard", "remove", "setdefault", "move_to_end"})

_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def _is_mutable_value(node) -> bool:
    """Heuristic: does this initialiser expression produce mutable state?

    Containers, comprehensions, and constructor calls count; constants,
    parameters, and arithmetic over them read as config.
    """
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp):  # e.g. [0] * n
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    if isinstance(node, ast.IfExp):
        return _is_mutable_value(node.body) or _is_mutable_value(node.orelse)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func).rsplit(".", 1)[-1]
        if name in _MUTABLE_FACTORIES:
            return True
        # Class instantiation (CapWords convention): nested structures
        # like PredictorBank(...) or ExitStats() carry their own state.
        return bool(name) and name[0].isupper()
    return False


class _ClassSurface:
    """Accumulated facts about one surface-owning class."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.name = node.name
        self.defined: list = []          # surface methods present
        #: attr -> list of (line, method_name, value_node_or_None, is_mutation)
        self.assignments: dict = {}
        self.surface_reads: set = set()

    def record(self, attr: str, line: int, method: str, value, mutation: bool) -> None:
        self.assignments.setdefault(attr, []).append(
            (line, method, value, mutation))


def _self_attr(node, selves=("self",)):
    """'x' if node is ``self.x`` (or ``other.x`` when allowed), else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id in selves:
        return node.attr
    return None


def _target_attrs(node, direct=True):
    """Yield ``(node, attr, direct)`` for every self-attribute stored to
    by an assignment target.  Only the store chain is walked — subscript
    *indices* are reads, not stores (``self._t[self._index(k)] = v``
    mutates ``_t``, it does not make ``_index`` state)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_attrs(elt, direct)
    elif isinstance(node, ast.Starred):
        yield from _target_attrs(node.value, direct)
    elif isinstance(node, ast.Subscript):
        yield from _target_attrs(node.value, False)
    elif isinstance(node, ast.Attribute):
        attr = _self_attr(node)
        if attr is not None:
            yield node, attr, direct
        else:
            # self.a.b = ... stores through a: a is mutated state.
            yield from _target_attrs(node.value, False)


def _collect_assignments(cls: _ClassSurface, method: ast.FunctionDef) -> None:
    in_surface = method.name in SURFACE_READ_METHODS
    for node in ast.walk(method):
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            # object.__setattr__(self, "x", value) — frozen dataclasses.
            if dotted_name(func).endswith("__setattr__") and len(node.args) >= 3 \
                    and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == "self" \
                    and isinstance(node.args[1], ast.Constant) \
                    and isinstance(node.args[1].value, str):
                cls.record(node.args[1].value, node.lineno, method.name,
                           node.args[2], mutation=False)
                continue
            # self.x.append(...) and friends — in-place mutation.
            if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
                attr = _self_attr(func.value)
                if attr and not in_surface:
                    cls.record(attr, node.lineno, method.name, None,
                               mutation=True)
            continue
        else:
            continue
        for target in targets:
            for leaf, attr, direct in _target_attrs(target):
                mutation = not direct or isinstance(node, ast.AugAssign)
                val = value if direct and not isinstance(
                    target, (ast.Tuple, ast.List)) else None
                cls.record(attr, leaf.lineno, method.name, val, mutation)


def _collect_surface_reads(cls: _ClassSurface, method: ast.FunctionDef) -> None:
    for node in ast.walk(method):
        attr = _self_attr(node, selves=("self", "other"))
        if attr:
            cls.surface_reads.add(attr)


def _needs_coverage(records) -> bool:
    """State vs config decision for one attribute."""
    for line, method_name, value, mutation in records:
        if method_name in SURFACE_READ_METHODS:
            continue  # the surface's own writes restore state
        if method_name not in _INIT_METHODS:
            return True  # written during simulation → warm state
        if mutation or _is_mutable_value(value):
            return True  # mutable container / nested structure
    return False


def check_surfaces(modules, ctx=None):
    """Run the transfer-surface pass over parsed modules."""
    findings = []
    for mod in modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = _ClassSurface(node)
            methods = [n for n in node.body
                       if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
            for method in methods:
                if method.name in SURFACE_DEF_METHODS:
                    cls.defined.append(method.name)
            if not cls.defined:
                continue
            for method in methods:
                _collect_assignments(cls, method)
                if method.name in SURFACE_READ_METHODS:
                    _collect_surface_reads(cls, method)
            for attr in sorted(cls.assignments):
                if attr in cls.surface_reads:
                    continue
                records = cls.assignments[attr]
                if not _needs_coverage(records):
                    continue
                if any(mod.suppressed(RULE_UNCOVERED, line)
                       for line, *_ in records):
                    continue
                line = min(line for line, *_ in records)
                surface = "/".join(sorted(cls.defined))
                findings.append(Finding(
                    rule=RULE_UNCOVERED, severity="P1",
                    file=mod.relpath, line=line,
                    message=(f"{cls.name}.{attr} looks like mutable state "
                             f"but is never read by the transfer surface "
                             f"({surface})"),
                    hint=("cover it in the state_dict/swap surface, or mark "
                          "the assignment `# lint: ok(REP101) <why>` if it "
                          "is config, derived, or stats")))
    return findings
