"""REP4xx — observability schema lint.

Dashboards, trace consumers, and the drift tests all key on literal
event/metric names.  A name emitted but absent from
:mod:`repro.obs.schema` is invisible to all of them; a registered name
absent from docs/OBSERVABILITY.md is schema nobody can discover.

* REP401 — ``<obs|bus>.emit("name", ...)`` with an unregistered event
* REP402 — ``<...>metrics.inc/observe/set_gauge("name", ...)`` with an
  unregistered metric
* REP403 — a registry entry missing from docs/OBSERVABILITY.md

Detection is deliberately conservative: only calls whose receiver's
dotted chain ends in ``obs``/``bus`` (events) or ``metrics`` (metrics)
and whose first argument is a string literal are checked.  Dynamically
formatted names (f-strings) are left to the runtime drift test in
``tests/obs/test_schema.py``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import const_str, dotted_name

RULE_EVENT_UNKNOWN = "REP401"
RULE_METRIC_UNKNOWN = "REP402"
RULE_UNDOCUMENTED = "REP403"

_METRIC_METHODS = frozenset({"inc", "observe", "set_gauge"})
_SCHEMA_RELPATH = "repro/obs/schema.py"


def _receiver_tail(func: ast.Attribute) -> str:
    """Last segment of the receiver chain: 'obs' for self.obs.emit."""
    dotted = dotted_name(func.value)
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def check_obs_names(modules, ctx):
    events = ctx.events
    metrics = ctx.metrics
    findings = []
    for mod in modules:
        if mod.relpath.startswith(("repro/obs/", "repro/analysis/")):
            # The bus/registry plumbing forwards caller-supplied names;
            # the analysis package quotes names in rule text.
            if mod.relpath != "repro/obs/__init__.py":
                continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            tail = _receiver_tail(node.func)
            name = const_str(node.args[0]) if node.args else None
            if name is None:
                continue
            if node.func.attr == "emit" and tail in ("obs", "bus", "_obs"):
                if name not in events and not mod.suppressed(
                        RULE_EVENT_UNKNOWN, node.lineno):
                    findings.append(Finding(
                        rule=RULE_EVENT_UNKNOWN, severity="P1",
                        file=mod.relpath, line=node.lineno,
                        message=f"event kind {name!r} is not in "
                                "repro.obs.schema.EVENTS",
                        hint="register it (and document it in "
                             "docs/OBSERVABILITY.md) or fix the typo"))
            elif node.func.attr in _METRIC_METHODS and tail.endswith("metrics"):
                if name not in metrics and not mod.suppressed(
                        RULE_METRIC_UNKNOWN, node.lineno):
                    findings.append(Finding(
                        rule=RULE_METRIC_UNKNOWN, severity="P1",
                        file=mod.relpath, line=node.lineno,
                        message=f"metric name {name!r} is not in "
                                "repro.obs.schema.METRICS",
                        hint="register it (and document it in "
                             "docs/OBSERVABILITY.md) or fix the typo"))
    # Registry <-> docs cross-check.
    if ctx.doc_text is not None:
        schema_mod = next((m for m in modules
                           if m.relpath == _SCHEMA_RELPATH), None)
        for kind, names in (("event", sorted(events)),
                            ("metric", sorted(metrics))):
            for name in names:
                if name in ctx.doc_text:
                    continue
                line = 0
                if schema_mod is not None:
                    # Generated names (tflex.<field>) appear in the
                    # registry source only as their last segment.
                    line = (schema_mod.line_of(f'"{name}"')
                            or schema_mod.line_of(
                                f'"{name.rsplit(".", 1)[-1]}"'))
                findings.append(Finding(
                    rule=RULE_UNDOCUMENTED, severity="P2",
                    file=_SCHEMA_RELPATH, line=max(line, 1),
                    message=f"registered {kind} {name!r} is not mentioned "
                            "in docs/OBSERVABILITY.md",
                    hint="document the name (tables or prose) in "
                         "docs/OBSERVABILITY.md"))
    return findings
