"""Lint orchestration: scan a tree, run the passes, apply a baseline.

The entry point is :func:`run_lint`, which `repro lint` and the tests
share.  Exit-code contract (``LintReport.exit_code``):

* ``0`` — clean (no findings outside the baseline)
* ``1`` — at least one non-baseline finding
* ``3`` — internal analysis error (:class:`LintError`) — raised, and
  mapped to 3 by the CLI

``2`` is reserved for argparse usage errors (argparse's own exit code).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import SEVERITIES, Finding, sort_findings
from repro.analysis.hashaxes import DEFAULT_HASH_SURFACES, check_hash_axes
from repro.analysis.obsnames import check_obs_names
from repro.analysis.source import LintError, iter_modules
from repro.analysis.surface import check_surfaces

#: Path prefixes (relative, ``repro/...``) subject to the strict
#: determinism rules REP201–203.  Everything else may read wall clocks
#: (exec scheduling, obs, harness timing, the CLI).
DEFAULT_SIM_PATHS = (
    "repro/tflex/", "repro/isa/", "repro/risc/", "repro/mem/",
    "repro/noc/", "repro/lsq/", "repro/predictor/", "repro/sample/",
    "repro/search/", "repro/resil/", "repro/workloads/",
    "repro/compiler/", "repro/power/", "repro/sched/",
    "repro/exec/spec.py",
)

#: All pass ids, in report order.
PASSES = ("surface", "determinism", "hashaxes", "obsnames")


@dataclass
class LintContext:
    """Configuration shared by the passes (tests override freely)."""

    sim_paths: tuple = DEFAULT_SIM_PATHS
    hash_surfaces: dict = field(
        default_factory=lambda: dict(DEFAULT_HASH_SURFACES))
    events: frozenset = None
    metrics: frozenset = None
    doc_text: Optional[str] = None

    def __post_init__(self):
        if self.events is None or self.metrics is None:
            from repro.obs import schema
            if self.events is None:
                self.events = schema.EVENT_NAMES
            if self.metrics is None:
                self.metrics = schema.METRIC_NAMES

    def in_sim_scope(self, relpath: str) -> bool:
        return any(relpath == p or relpath.startswith(p)
                   for p in self.sim_paths)


@dataclass
class LintReport:
    """Everything a caller needs to render or gate on."""

    root: str
    findings: list            # non-baseline findings (what fails CI)
    grandfathered: list       # matched a baseline entry
    stale_baseline: list      # baseline entries no finding matched
    rules_run: tuple

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> dict:
        out = {sev: 0 for sev in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        counts = self.counts()
        total = len(self.findings)
        summary = ", ".join(f"{counts[s]} {s}" for s in SEVERITIES
                            if counts.get(s))
        lines.append(f"repro lint: {total} finding(s)"
                     + (f" ({summary})" if summary else "")
                     + (f", {len(self.grandfathered)} grandfathered"
                        if self.grandfathered else ""))
        if self.stale_baseline:
            lines.append(f"warning: {len(self.stale_baseline)} stale "
                         "baseline entr(y/ies) no longer match — prune them:")
            for entry in self.stale_baseline:
                lines.append(f"    {entry['rule']} {entry['file']}: "
                             f"{entry['message']}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "root": self.root,
            "rules_run": list(self.rules_run),
            "summary": {"total": len(self.findings), **self.counts(),
                        "grandfathered": len(self.grandfathered),
                        "stale_baseline": len(self.stale_baseline)},
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
            "stale_baseline": self.stale_baseline,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _run_passes(modules, ctx: LintContext, rules) -> list:
    findings: list = []
    if _selected("REP1", rules):
        findings.extend(check_surfaces(modules, ctx))
    if _selected("REP2", rules):
        findings.extend(check_determinism(modules, ctx))
    if _selected("REP3", rules):
        findings.extend(check_hash_axes(modules, ctx))
    if _selected("REP4", rules):
        findings.extend(check_obs_names(modules, ctx))
    if rules:
        findings = [f for f in findings
                    if any(f.rule.startswith(r) for r in rules)]
    return findings


def _selected(prefix: str, rules) -> bool:
    if not rules:
        return True
    return any(r.startswith(prefix) or prefix.startswith(r) for r in rules)


def run_lint(root, ctx: Optional[LintContext] = None,
             baseline_path=None, rules=None) -> LintReport:
    """Scan ``root`` and return a :class:`LintReport`.

    Args:
        root: Directory to scan (normally ``src/repro``).
        ctx: Pass configuration; defaults to the repo configuration.
        baseline_path: Optional grandfathering file.
        rules: Optional iterable of rule-id prefixes to restrict to.
    """
    root = Path(root)
    if ctx is None:
        ctx = LintContext()
        # A scan of src/repro sits two levels below the repo root; pick
        # up docs/OBSERVABILITY.md for the REP403 cross-check if it is
        # where the repo keeps it.
        doc = root.parent.parent / "docs" / "OBSERVABILITY.md"
        if doc.is_file():
            ctx.doc_text = doc.read_text(encoding="utf-8")
    modules = iter_modules(root)
    rules = tuple(rules) if rules else ()
    findings = sort_findings(_run_passes(modules, ctx, rules))
    grandfathered: list = []
    stale: list = []
    if baseline_path is not None:
        entries = baseline_mod.load_baseline(baseline_path)
        findings, grandfathered, stale = baseline_mod.apply_baseline(
            findings, entries)
    return LintReport(root=str(root), findings=findings,
                      grandfathered=grandfathered, stale_baseline=stale,
                      rules_run=rules or ("REP1", "REP2", "REP3", "REP4"))
