"""Finding model shared by every lint pass.

A finding is one violation of a repo invariant, anchored to a file and
line, carrying a stable rule id, a severity, and a fix hint.  Baseline
matching deliberately ignores the line number so that unrelated edits
above a grandfathered finding do not resurrect it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Severity ranks, most severe first (used for ordering and summaries).
SEVERITIES = ("P1", "P2", "P3")


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint violation.

    Attributes:
        rule: Stable rule id, e.g. ``REP204``.
        severity: ``P1`` (must fix), ``P2`` (should fix), ``P3`` (doc
            hygiene).
        file: Path relative to the scan root's parent (``repro/...``),
            posix separators — stable across checkouts for baselines.
        line: 1-based line number of the violating construct.
        message: What is wrong, with enough context to act on.
        hint: How to fix or suppress it.
    """

    rule: str
    severity: str
    file: str
    line: int
    message: str
    hint: str = ""

    def key(self) -> tuple:
        """Baseline identity: line-insensitive so grandfathered findings
        survive unrelated edits elsewhere in the file."""
        return (self.rule, self.file, self.message)

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        text = f"{self.file}:{self.line}: {self.severity} {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_findings(findings) -> list:
    """Deterministic report order: severity, then location, then rule."""
    rank = {sev: i for i, sev in enumerate(SEVERITIES)}
    return sorted(findings,
                  key=lambda f: (rank.get(f.severity, len(SEVERITIES)),
                                 f.file, f.line, f.rule, f.message))
