"""``repro.analysis`` — AST invariant linter for the reproduction.

Four passes guard the conventions the rest of the repo silently relies
on (see docs/ANALYSIS.md for the rule catalog and workflow):

* :mod:`repro.analysis.surface` — REP1xx: every mutable attribute of a
  warm structure must be covered by its ``state_dict``/``swap`` surface
  (replay/checkpoint fidelity, PR 4/8).
* :mod:`repro.analysis.determinism` — REP2xx: no wall clocks, entropy,
  builtin ``hash()``/``id()``, or unsorted set iteration in simulator /
  sample / hashing modules (bit-identical results across worker
  fan-out).
* :mod:`repro.analysis.hashaxes` — REP3xx: every ``JobSpec``/
  ``SamplingConfig``/``FaultSchedule`` field must reach the content
  hash (cache soundness, PR 1/7).
* :mod:`repro.analysis.obsnames` — REP4xx: every literal event/metric
  name must be registered in :mod:`repro.obs.schema` and documented.

Run it via ``repro lint``; CI gates on a clean report modulo
``analysis/baseline.json``.
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    DEFAULT_SIM_PATHS,
    PASSES,
    LintContext,
    LintReport,
    run_lint,
)
from repro.analysis.findings import SEVERITIES, Finding, sort_findings
from repro.analysis.source import (
    LintError,
    SourceModule,
    iter_modules,
    load_module,
)

__all__ = [
    "DEFAULT_SIM_PATHS",
    "Finding",
    "LintContext",
    "LintError",
    "LintReport",
    "PASSES",
    "SEVERITIES",
    "SourceModule",
    "apply_baseline",
    "iter_modules",
    "load_baseline",
    "load_module",
    "run_lint",
    "sort_findings",
    "write_baseline",
]
