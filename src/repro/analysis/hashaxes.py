"""REP3xx — content-hash axis coverage.

The result store keys every simulation by a content hash over
``JobSpec.canonical()`` (salted with ``SCHEMA_VERSION``).  A dataclass
field that never reaches the canonical form is an axis the cache
cannot see: two specs differing only in that field collide, and the
second silently reuses the first's result — the worst kind of stale
hit, because nothing crashes.

This pass takes a table of *hash surfaces* — ``(module, class)`` →
methods that build the canonical form — and checks that every
annotated dataclass field is read (as ``self.<field>``) somewhere in
those methods:

* REP301 — a field the hash surface never reads
* REP302 — a configured module/class/method is missing entirely (so a
  rename cannot silently disable the pass)
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

RULE_FIELD_UNCOVERED = "REP301"
RULE_SURFACE_MISSING = "REP302"

#: Default hash surfaces for this repo: (relpath, class) -> methods
#: whose self-reads count as hash coverage.
DEFAULT_HASH_SURFACES = {
    ("repro/exec/spec.py", "JobSpec"): ("canonical",),
    ("repro/sample/config.py", "SamplingConfig"): ("to_dict",),
    ("repro/resil/faults.py", "FaultEvent"): ("to_dict",),
    ("repro/resil/faults.py", "FaultSchedule"): ("to_dict", "spec_items"),
}


def _class_fields(node: ast.ClassDef) -> list:
    """Annotated dataclass fields declared in the class body."""
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if name.startswith("_"):
                continue
            try:
                ann = ast.unparse(stmt.annotation)
            except Exception:  # pragma: no cover - defensive
                ann = ""
            if "ClassVar" in ann:
                continue
            fields.append((name, stmt.lineno))
    return fields


def _self_reads(method: ast.FunctionDef) -> set:
    reads = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            reads.add(node.attr)
    return reads


def check_hash_axes(modules, ctx):
    surfaces = ctx.hash_surfaces
    findings = []
    by_rel = {mod.relpath: mod for mod in modules}
    for (relpath, clsname), methods in sorted(surfaces.items()):
        mod = by_rel.get(relpath)
        if mod is None:
            # The whole tree may be a partial fixture scan; only complain
            # when the scan root plausibly should contain the module.
            findings.append(Finding(
                rule=RULE_SURFACE_MISSING, severity="P1", file=relpath,
                line=1,
                message=f"hash-surface module {relpath} not found in scan",
                hint="update DEFAULT_HASH_SURFACES in repro/analysis/"
                     "hashaxes.py if the module moved"))
            continue
        cls = None
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef) and node.name == clsname:
                cls = node
                break
        if cls is None:
            findings.append(Finding(
                rule=RULE_SURFACE_MISSING, severity="P1", file=relpath,
                line=1,
                message=f"hash-surface class {clsname} not found in {relpath}",
                hint="update DEFAULT_HASH_SURFACES if the class was renamed"))
            continue
        reads: set = set()
        found_methods = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name in methods:
                found_methods.append(stmt.name)
                reads |= _self_reads(stmt)
        for method in methods:
            if method not in found_methods:
                findings.append(Finding(
                    rule=RULE_SURFACE_MISSING, severity="P1", file=relpath,
                    line=cls.lineno,
                    message=f"{clsname}.{method} (hash surface) is missing",
                    hint="restore the method or update "
                         "DEFAULT_HASH_SURFACES"))
        if not found_methods:
            continue
        for name, lineno in _class_fields(cls):
            if name in reads:
                continue
            if mod.suppressed(RULE_FIELD_UNCOVERED, lineno):
                continue
            findings.append(Finding(
                rule=RULE_FIELD_UNCOVERED, severity="P1", file=relpath,
                line=lineno,
                message=(f"{clsname}.{name} never reaches the content hash "
                         f"({clsname}.{'/'.join(methods)}) — two specs "
                         "differing only here would collide in the cache"),
                hint=f"read self.{name} in the canonical form, or mark the "
                     "field `# lint: ok(REP301) <why>` if it is genuinely "
                     "identity-free"))
    return findings
