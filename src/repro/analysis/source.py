"""Source loading for the lint passes: parsed modules + suppressions.

Every pass consumes :class:`SourceModule` objects — a parsed AST plus
the raw source lines and the inline suppression map.  Suppressions use
the grammar::

    some_statement  # lint: ok(REP101) stats stay with their owner

i.e. ``# lint: ok(<RULE>[, <RULE>...]) <justification>``.  A marker
silences the named rules on that physical line only, and the
justification is mandatory by convention (the marker is the allow-list
entry; the baseline file is for bulk grandfathering instead).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok\(([A-Za-z0-9_,\s]+)\)")


class LintError(Exception):
    """Internal analysis failure (unreadable tree, syntax error, ...)."""


@dataclass
class SourceModule:
    """One parsed Python module under analysis."""

    path: Path                     # absolute path on disk
    relpath: str                   # e.g. "repro/mem/l2.py" (posix)
    tree: ast.Module
    lines: list = field(default_factory=list, repr=False)
    #: line number -> set of rule ids suppressed on that line
    suppressions: dict = field(default_factory=dict, repr=False)

    def suppressed(self, rule: str, line: int) -> bool:
        """A marker suppresses on its own line, or — when it is a
        standalone comment — on the statement directly below it."""
        if rule in self.suppressions.get(line, ()):
            return True
        above = self.suppressions.get(line - 1)
        if above and rule in above:
            text = self.lines[line - 2].lstrip() if line >= 2 else ""
            return text.startswith("#")
        return False

    def line_of(self, needle: str) -> int:
        """1-based line of the first occurrence of ``needle`` (0 if absent).
        Used to anchor registry/doc findings to a useful location."""
        for i, text in enumerate(self.lines, start=1):
            if needle in text:
                return i
        return 0


def parse_suppressions(lines) -> dict:
    out: dict = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            out[lineno] = frozenset(rules)
    return out


def load_module(path: Path, root: Path) -> SourceModule:
    """Parse one file.  ``relpath`` is rooted at ``root``'s name so a
    scan of ``src/repro`` reports ``repro/...`` paths regardless of
    where the checkout lives."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:  # pragma: no cover - filesystem failure
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    rel = path.relative_to(root).as_posix()
    relpath = f"{root.name}/{rel}" if root.name else rel
    lines = text.splitlines()
    return SourceModule(path=path, relpath=relpath, tree=tree,
                        lines=lines, suppressions=parse_suppressions(lines))


def iter_modules(root: Path) -> list:
    """Every ``*.py`` under ``root`` in sorted order, parsed."""
    root = Path(root)
    if not root.is_dir():
        raise LintError(f"lint root is not a directory: {root}")
    modules = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        modules.append(load_module(path, root))
    return modules


# ----------------------------------------------------------------------
# Small AST helpers shared by the passes
# ----------------------------------------------------------------------

def dotted_name(node) -> str:
    """Render ``a.b.c`` for Name/Attribute chains; '' for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def const_str(node):
    """The value of a string-constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
