"""Append-only benchmark trajectory records (``BENCH_sim.json``).

The perf smoke suite used to overwrite ``BENCH_sim.json`` with the last
run's numbers, so the file never accumulated a trajectory.  This module
appends one *run record* per pytest session instead::

    {"runs": [{"session": "...", "timestamp": "...", "machine": "...",
               "python": "3.12.3", "sha": "1a2b3c4", "calibration": 0.06,
               "jobs": {"fig6_subset": 5.33, "step_loop": 0.06}}, ...]}

Jobs measured within one process share a session token, so they land in
the same record.  A legacy flat-dict file (the old overwrite format) is
migrated into a single backdated record on first append.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import subprocess
import time
from typing import Union

#: One token per process: jobs recorded by the same pytest session
#: append into the same run record.
_SESSION_TOKEN = f"{os.getpid():d}-{time.time():.0f}"


def machine_id() -> str:
    """A short host identifier for telling trajectories apart."""
    return platform.node() or "unknown"


def git_sha(root: Union[str, pathlib.Path]) -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root), capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def load_records(path: Union[str, pathlib.Path]) -> dict:
    """The record file as ``{"runs": [...]}``, migrating the legacy
    flat ``{job: seconds}`` layout into one synthetic record."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"runs": []}
    data = json.loads(path.read_text())
    if "runs" in data:
        return data
    jobs = {k: v for k, v in data.items()
            if not k.endswith("_calibration") and k != "calibration"}
    calibrations = [v for k, v in data.items() if k.endswith("_calibration")]
    return {"runs": [{
        "session": "legacy",
        "timestamp": None,
        "machine": "unknown",
        "python": None,
        "sha": "unknown",
        "calibration": calibrations[0] if calibrations else None,
        "jobs": jobs,
    }]}


def record_job(path: Union[str, pathlib.Path], root: Union[str, pathlib.Path],
               job: str, seconds: float, calibration: float) -> dict:
    """Append one job measurement to this session's run record.

    Returns the record the job landed in (mainly for tests)."""
    path = pathlib.Path(path)
    data = load_records(path)
    record = next((r for r in data["runs"]
                   if r.get("session") == _SESSION_TOKEN), None)
    if record is None:
        record = {
            "session": _SESSION_TOKEN,
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "machine": machine_id(),
            "python": platform.python_version(),
            "sha": git_sha(root),
            "calibration": round(calibration, 4),
            "jobs": {},
        }
        data["runs"].append(record)
    record["jobs"][job] = round(seconds, 4)
    path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    return record
