"""Experiment harness: one driver per table/figure of the paper.

See DESIGN.md's experiment index.  Results cache within a process so
that figure 7 (area), figure 8 (power), and figure 10 (multiprogramming)
reuse the figure 6 performance sweep, as in the paper's methodology;
with ``configure_cache`` they also persist to the on-disk result store,
and the sweep drivers take ``jobs=N`` to fan cold points out over the
``repro.exec`` worker pool (docs/EXECUTION.md).
"""

from repro.harness.runner import (
    RunResult,
    RiscResult,
    run_edge_benchmark,
    run_risc_benchmark,
    cached_program,
    clear_cache,
    configure_cache,
    configure_exec,
    get_store,
    prewarm_specs,
    resolve_cache_dir,
    simulation_count,
)
from repro.harness.experiments import (
    FigBestResult,
    fig5_baseline,
    fig6_performance,
    fig6_specs,
    fig7_area,
    fig8_power,
    fig9_protocols,
    fig10_multiprogramming,
    fig_best,
    figR_degradation,
    figR_specs,
    table2_area_power,
)
from repro.harness.reporting import format_table, geomean

__all__ = [
    "RunResult",
    "RiscResult",
    "run_edge_benchmark",
    "run_risc_benchmark",
    "cached_program",
    "clear_cache",
    "configure_cache",
    "configure_exec",
    "get_store",
    "prewarm_specs",
    "resolve_cache_dir",
    "simulation_count",
    "FigBestResult",
    "fig5_baseline",
    "fig6_performance",
    "fig6_specs",
    "fig_best",
    "fig7_area",
    "fig8_power",
    "fig9_protocols",
    "fig10_multiprogramming",
    "figR_degradation",
    "figR_specs",
    "table2_area_power",
    "format_table",
    "geomean",
]
