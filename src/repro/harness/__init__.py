"""Experiment harness: one driver per table/figure of the paper.

See DESIGN.md's experiment index.  Results cache within a process so
that figure 7 (area), figure 8 (power), and figure 10 (multiprogramming)
reuse the figure 6 performance sweep, as in the paper's methodology.
"""

from repro.harness.runner import (
    RunResult,
    RiscResult,
    run_edge_benchmark,
    run_risc_benchmark,
    clear_cache,
)
from repro.harness.experiments import (
    fig5_baseline,
    fig6_performance,
    fig7_area,
    fig8_power,
    fig9_protocols,
    fig10_multiprogramming,
    table2_area_power,
)
from repro.harness.reporting import format_table, geomean

__all__ = [
    "RunResult",
    "RiscResult",
    "run_edge_benchmark",
    "run_risc_benchmark",
    "clear_cache",
    "fig5_baseline",
    "fig6_performance",
    "fig7_area",
    "fig8_power",
    "fig9_protocols",
    "fig10_multiprogramming",
    "table2_area_power",
    "format_table",
    "geomean",
]
