"""Plain-text rendering of experiment results."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean of non-positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    table = [list(map(str, headers))] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(sep)
    for row in table[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
