"""Golden-result fixtures: frozen per-figure summaries of the evaluation.

The simulator's hot path is aggressively optimized (see
docs/PERFORMANCE.md), and every optimization must be *semantics- and
timing-preserving*: cycle counts, speedups, and stat breakdowns may not
move by even one unit.  This module pins that invariant.  It runs every
figure driver at ``scale=1`` over a category-spanning benchmark subset
and reduces each result object to a deterministic, JSON-exact payload;
``tests/harness/test_golden.py`` re-runs the drivers and asserts exact
equality against the committed fixtures under ``tests/golden/``.

Regenerate fixtures (only when an *intentional* semantic change lands)
with::

    PYTHONPATH=src python -m repro.harness.golden tests/golden

Fixture values are written with full float precision (``json`` round-
trips Python floats exactly), so equality checks are bit-exact.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Optional, Sequence

from repro.harness import experiments
from repro.harness.experiments import (
    fig5_baseline,
    fig6_performance,
    fig7_area,
    fig8_power,
    fig9_protocols,
    fig10_multiprogramming,
    table2_area_power,
)

#: Category- and ILP-spanning subset the golden suite runs (three hand-
#: optimized, two SPEC-int, two SPEC-fp; high- and low-ILP in each
#: group).  A subset keeps the suite fast enough for tier-1 while still
#: exercising every simulator path the full sweep does.
GOLDEN_BENCHMARKS = ("a2time", "ammp", "bzip2", "conv", "dither", "equake",
                     "gzip")

#: All fixtures are generated at this scale (the acceptance scale).
GOLDEN_SCALE = 1

#: Fixture file stems, in generation order.
FIXTURE_NAMES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2")


def _fig6_payload(fig6) -> dict:
    labels = fig6.tflex_labels() + (["trips"] if fig6.has_trips() else [])
    return {
        "scale": fig6.scale,
        "core_counts": list(fig6.core_counts),
        "benchmarks": list(fig6.benchmarks),
        "cycles": {b: {lb: fig6.cycles(b, lb) for lb in labels}
                   for b in fig6.benchmarks},
        "speedups": {b: {lb: fig6.speedup(b, lb) for lb in labels}
                     for b in fig6.benchmarks},
        "mean_speedups": {lb: fig6.mean_speedup(lb) for lb in labels},
        "stats": {b: {lb: fig6.runs[b][lb].stats.to_dict() for lb in labels}
                  for b in fig6.benchmarks},
        "power_total": {b: {lb: fig6.runs[b][lb].power.total for lb in labels}
                        for b in fig6.benchmarks},
        "insts_committed": {b: {lb: fig6.runs[b][lb].insts_committed
                                for lb in labels}
                            for b in fig6.benchmarks},
        "dram_requests": {b: {lb: fig6.runs[b][lb].dram_requests
                              for lb in labels}
                          for b in fig6.benchmarks},
    }


def _fig7_payload(fig7) -> dict:
    fig6 = fig7.fig6
    labels = fig6.tflex_labels() + (["trips"] if fig6.has_trips() else [])
    return {
        "normalized": {b: {lb: fig7.normalized(b, lb) for lb in labels}
                       for b in fig6.benchmarks},
        "mean_normalized": {lb: fig7.mean_normalized(lb) for lb in labels},
    }


def _fig8_payload(fig8) -> dict:
    fig6 = fig8.fig6
    labels = fig6.tflex_labels() + (["trips"] if fig6.has_trips() else [])
    return {
        "normalized": {b: {lb: fig8.normalized(b, lb) for lb in labels}
                       for b in fig6.benchmarks},
        "mean_normalized": {lb: fig8.mean_normalized(lb) for lb in labels},
    }


def _fig9_payload(fig9) -> dict:
    return {
        "core_counts": list(fig9.core_counts),
        "fetch": {str(n): dict(sorted(fig9.fetch[n].items()))
                  for n in fig9.core_counts},
        "commit": {str(n): dict(sorted(fig9.commit[n].items()))
                   for n in fig9.core_counts},
        "ablation": dict(sorted(fig9.ablation.items())),
    }


def _fig10_payload(fig10) -> dict:
    return {
        "sizes": list(fig10.sizes),
        "granularities": list(fig10.granularities),
        "ws": {str(m): dict(sorted(fig10.ws[m].items())) for m in fig10.sizes},
        "allocation": {str(m): {str(g): v
                                for g, v in sorted(fig10.allocation[m].items())}
                       for m in fig10.sizes},
    }


def collect_fixtures(scale: int = GOLDEN_SCALE,
                     benchmarks: Sequence[str] = GOLDEN_BENCHMARKS,
                     core_counts: Optional[Sequence[int]] = None) -> dict[str, dict]:
    """Run every figure driver and reduce each to its fixture payload.

    One shared in-process result cache serves all drivers (figures 7, 8,
    10, and table 2 reuse the figure-6 sweep; figure 9 shares its
    composition points), so each simulation point runs exactly once.
    """
    names = list(benchmarks)
    counts = tuple(core_counts) if core_counts else experiments.CORE_COUNTS
    fig6 = fig6_performance(scale=scale, core_counts=counts, benchmarks=names)
    fig5 = fig5_baseline(scale=scale, benchmarks=names)
    fig9 = fig9_protocols(scale=scale, core_counts=counts, benchmarks=names)
    fig7 = fig7_area(fig6)
    fig8 = fig8_power(fig6)
    fig10 = fig10_multiprogramming(fig6)
    table2 = table2_area_power(fig6)
    return {
        "fig5": {"ratios": dict(sorted(fig5.ratios.items()))},
        "fig6": _fig6_payload(fig6),
        "fig7": _fig7_payload(fig7),
        "fig8": _fig8_payload(fig8),
        "fig9": _fig9_payload(fig9),
        "fig10": _fig10_payload(fig10),
        "table2": {"tflex_power": dict(sorted(table2.tflex_power.items())),
                   "trips_power": dict(sorted(table2.trips_power.items()))},
    }


def write_fixtures(out_dir: pathlib.Path,
                   fixtures: Optional[dict[str, dict]] = None) -> list[pathlib.Path]:
    """Write one ``<name>.json`` per figure under ``out_dir``."""
    if fixtures is None:
        fixtures = collect_fixtures()
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in FIXTURE_NAMES:
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(fixtures[name], indent=1, sort_keys=True)
                        + "\n")
        written.append(path)
    return written


def load_fixture(fixtures_dir: pathlib.Path, name: str) -> dict:
    """Read one committed fixture payload."""
    return json.loads((pathlib.Path(fixtures_dir) / f"{name}.json").read_text())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the golden-result fixtures")
    parser.add_argument("out_dir", type=pathlib.Path,
                        help="fixture directory (normally tests/golden)")
    parser.add_argument("--scale", type=int, default=GOLDEN_SCALE)
    args = parser.parse_args(argv)
    for path in write_fixtures(args.out_dir,
                               collect_fixtures(scale=args.scale)):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
