"""Benchmark execution on top of the ``repro.exec`` engine.

Three cache layers, consulted in order:

1. an in-process dict keyed by the job spec's content hash (so figure
   7/8/10 reuse figure 6's sweep within one process, as before);
2. the persistent :class:`~repro.exec.store.ResultStore` under
   ``--cache-dir`` (default off for library use; the CLI enables it, or
   set ``REPRO_CACHE_DIR``), giving warm-cache instant replay across
   processes;
3. the simulator itself (:func:`simulate_spec`), which is what
   ``repro.exec`` workers execute in parallel sweeps.

Cache keys are *content hashes of the resolved spec* (sorted, typed
override items — see :mod:`repro.exec.spec`), never the human-readable
label, so two overrides that merely format identically cannot collide.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import repro.obs as obs_lib
from repro.exec import JobSpec, ResultStore, run_specs, spec_hash
from repro.power import EnergyModel, EnergyParams, PowerBreakdown
from repro.tflex import TFlexSystem, tflex_config, trips_config
from repro.tflex.placement import rectangle
from repro.tflex.stats import ProcStats
from repro.risc import OoOCore
from repro.workloads import BENCHMARKS, verify_edge_run

#: Environment variable that switches the persistent store on for
#: library (non-CLI) use.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default store location, used by the CLI unless ``--cache-dir`` says
#: otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"


def resolve_cache_dir() -> pathlib.Path:
    """Default persistent-store location, hermetic under pytest.

    Resolution order:

    1. ``$REPRO_CACHE_DIR`` — explicit override, always wins;
    2. under pytest (``PYTEST_CURRENT_TEST`` set): a per-process
       directory beneath ``$XDG_CACHE_HOME`` (or the system temp dir),
       so test runs can exercise the store without ever leaking
       ``.repro-cache/`` into the working tree;
    3. :data:`DEFAULT_CACHE_DIR` in the current working directory.
    """
    env_dir = os.environ.get(CACHE_DIR_ENV)
    if env_dir:
        return pathlib.Path(env_dir)
    if "PYTEST_CURRENT_TEST" in os.environ:
        base = os.environ.get("XDG_CACHE_HOME") or tempfile.gettempdir()
        return pathlib.Path(base) / f"repro-cache-pytest-{os.getpid()}"
    return pathlib.Path(DEFAULT_CACHE_DIR)


@dataclass
class RunResult:
    """One benchmark run on one TFlex/TRIPS configuration."""

    bench: str
    label: str                 # "tflex-8", "trips", "tflex-32-ideal", ...
    num_cores: int
    cycles: int
    insts_committed: int
    stats: ProcStats
    power: PowerBreakdown
    dram_requests: int
    #: Sampled-run metadata (window counts, IPC estimate, error bound);
    #: None for full-detail runs.  See :mod:`repro.sample.engine`.
    sampling: Optional[dict] = None
    #: Fault-injection metadata (schedule, injected events, recovery
    #: reports, per-segment stats); None for fault-free runs.  See
    #: :mod:`repro.resil.run`.
    resil: Optional[dict] = None

    @property
    def performance(self) -> float:
        """1/cycles, or 0.0 for a degenerate run that retired nothing."""
        return 1.0 / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        data = {
            "bench": self.bench,
            "label": self.label,
            "num_cores": self.num_cores,
            "cycles": self.cycles,
            "insts_committed": self.insts_committed,
            "stats": self.stats.to_dict(),
            "power": self.power.to_dict(),
            "dram_requests": self.dram_requests,
        }
        # Only sampled/fault-injected runs carry these keys, keeping
        # full-detail payloads (and the golden fixtures built from
        # them) unchanged.
        if self.sampling is not None:
            data["sampling"] = self.sampling
        if self.resil is not None:
            data["resil"] = self.resil
        return data

    @staticmethod
    def from_dict(data: dict) -> "RunResult":
        return RunResult(
            bench=data["bench"], label=data["label"],
            num_cores=data["num_cores"], cycles=data["cycles"],
            insts_committed=data["insts_committed"],
            stats=ProcStats.from_dict(data["stats"]),
            power=PowerBreakdown.from_dict(data["power"]),
            dram_requests=data["dram_requests"],
            sampling=data.get("sampling"),
            resil=data.get("resil"))


@dataclass
class RiscResult:
    """One benchmark run on the out-of-order RISC baseline."""

    bench: str
    cycles: int
    insts: int
    mispredictions: int

    def to_dict(self) -> dict:
        return {"bench": self.bench, "cycles": self.cycles,
                "insts": self.insts, "mispredictions": self.mispredictions}

    @staticmethod
    def from_dict(data: dict) -> "RiscResult":
        return RiscResult(bench=data["bench"], cycles=data["cycles"],
                          insts=data["insts"],
                          mispredictions=data["mispredictions"])


# ----------------------------------------------------------------------
# Cache layers
# ----------------------------------------------------------------------

_CACHE: dict[str, object] = {}          # spec hash -> result object
_STORE_UNSET = object()
_STORE: object = _STORE_UNSET           # lazily resolved ResultStore|None
_SIM_COUNT = 0                          # simulations run in this process

#: (kind, bench, scale) -> built (program, expected, kernel).  Programs
#: are read-only during simulation (the simulator copies the data image
#: into its own memory and decodes blocks into per-composition caches),
#: so one build serves every configuration of a benchmark — this is the
#: cache that keeps warm pool workers fast across jobs.
_PROGRAMS: dict[tuple, tuple] = {}
_PROGRAM_CAP = 32                       # builds are cheap; bound the rss

#: Executor defaults the CLI configures once per invocation
#: (``--pool/--no-pool``, ``--schedule``); drivers and
#: :func:`prewarm_specs` pick them up so the flags reach every sweep
#: without threading two extra parameters through each figure driver.
_EXEC_OPTIONS = {"pool": True, "schedule": "ljf"}


def configure_exec(pool: Optional[bool] = None,
                   schedule: Optional[str] = None) -> dict:
    """Set process-wide executor defaults; returns the active options."""
    if pool is not None:
        _EXEC_OPTIONS["pool"] = bool(pool)
    if schedule is not None:
        from repro.exec.sched import POLICIES

        if schedule not in POLICIES:
            raise ValueError(f"unknown schedule policy {schedule!r}; "
                             f"expected one of {POLICIES}")
        _EXEC_OPTIONS["schedule"] = schedule
    return dict(_EXEC_OPTIONS)


def cached_program(kind: str, bench: str, scale: int) -> tuple:
    """The built ``(program, expected, kernel)`` for one benchmark,
    memoized per process — in a warm pool worker this is what keeps
    decoded workload programs hot across jobs."""
    key = (kind, bench, scale)
    entry = _PROGRAMS.get(key)
    if entry is None:
        benchmark = BENCHMARKS[bench]
        entry = (benchmark.edge_program(scale) if kind == "edge"
                 else benchmark.risc_program(scale))
        while len(_PROGRAMS) >= _PROGRAM_CAP:
            _PROGRAMS.pop(next(iter(_PROGRAMS)))
        _PROGRAMS[key] = entry
    return entry


def clear_cache() -> None:
    """Drop the in-process result and program caches (the disk store is
    untouched)."""
    _CACHE.clear()
    _PROGRAMS.clear()


def configure_cache(cache_dir: Union[str, pathlib.Path, None] = None,
                    enabled: bool = True) -> Optional[ResultStore]:
    """Point the persistent store at ``cache_dir`` (or disable it).

    ``configure_cache(enabled=False)`` turns persistence off;
    ``configure_cache()`` enables it at the :func:`resolve_cache_dir`
    default (``.repro-cache``, or a temp-dir path under pytest).
    Returns the active store, if any.
    """
    global _STORE
    if not enabled:
        _STORE = None
    else:
        root = (pathlib.Path(cache_dir) if cache_dir is not None
                else resolve_cache_dir())
        if root.exists() and not root.is_dir():
            raise NotADirectoryError(
                f"cache dir exists and is not a directory: {root}")
        _STORE = ResultStore(root)
    return _STORE


def get_store() -> Optional[ResultStore]:
    """The active persistent store, resolving ``REPRO_CACHE_DIR`` on
    first use; ``None`` when persistence is off."""
    global _STORE
    if _STORE is _STORE_UNSET:
        env_dir = os.environ.get(CACHE_DIR_ENV)
        _STORE = ResultStore(env_dir) if env_dir else None
    return _STORE


def simulation_count() -> int:
    """Simulations actually executed in this process (cache misses)."""
    return _SIM_COUNT


# ----------------------------------------------------------------------
# Simulation (the cache-miss path; also the repro.exec worker body)
# ----------------------------------------------------------------------

def simulate_spec(spec: JobSpec):
    """Run one job spec on the simulator, bypassing every cache."""
    global _SIM_COUNT
    _SIM_COUNT += 1
    if spec.kind == "risc":
        return _simulate_risc(spec)
    if spec.kind == "edge":
        return _simulate_edge(spec)
    raise ValueError(f"unknown job kind: {spec.kind!r}")


def build_edge_config(spec: JobSpec):
    """Resolve a spec into ``(SystemConfig, ncores)`` — shared by the
    full-detail path below and the sampled engine (:mod:`repro.sample`)."""
    from dataclasses import replace

    if spec.trips:
        cfg = trips_config()
        ncores = cfg.num_cores
    else:
        cfg = tflex_config(spec.ncores)
        ncores = spec.ncores
    if spec.ideal_handshake:
        cfg = replace(cfg, ideal_handshake=True)
    if spec.core_overrides:
        cfg = replace(cfg, core=replace(cfg.core,
                                        **spec.core_overrides_dict()))
    if spec.overrides:
        cfg = replace(cfg, **spec.overrides_dict())
    return cfg, ncores


def _simulate_edge(spec: JobSpec) -> RunResult:
    # Fault-injected specs route to the resilience driver (lazy import:
    # repro.resil imports this module for RunResult).
    if spec.faults:
        from repro.resil import run_resilient

        return run_resilient(spec)
    # Sampled specs route to the fast-forward engine.  The TRIPS
    # baseline always runs in full detail: its runs are short and its
    # centralized structures make sampling gains marginal.
    if spec.sampling and not spec.trips:
        from repro.sample import run_sampled

        return run_sampled(spec)

    program, expected, kernel = cached_program("edge", spec.bench,
                                               spec.scale)
    cfg, ncores = build_edge_config(spec)

    system = TFlexSystem(cfg)
    proc = system.compose(rectangle(cfg, ncores), program, name=spec.bench)
    system.run(max_cycles=30_000_000)
    if spec.verify:
        verify_edge_run(kernel, proc.memory, expected)

    params = EnergyParams.trips() if spec.trips else None
    power = EnergyModel(params).breakdown(
        proc.stats.energy_events, proc.stats.cycles, proc.ncores,
        dram_requests=system.dram.stats.requests)

    return RunResult(
        bench=spec.bench, label=spec.label(), num_cores=ncores,
        cycles=proc.stats.cycles, insts_committed=proc.stats.insts_committed,
        stats=proc.stats, power=power,
        dram_requests=system.dram.stats.requests)


def _simulate_risc(spec: JobSpec) -> RiscResult:
    program, expected, kernel = cached_program("risc", spec.bench,
                                               spec.scale)
    stats, interp = OoOCore().run(program)
    if spec.verify:
        verify_edge_run(kernel, interp.mem, expected)
    return RiscResult(bench=spec.bench, cycles=stats.cycles,
                      insts=stats.insts,
                      mispredictions=stats.mispredictions)


def _result_from_payload(payload: dict):
    cls = RiscResult if payload["kind"] == "risc" else RunResult
    return cls.from_dict(payload["result"])


# ----------------------------------------------------------------------
# Cached execution
# ----------------------------------------------------------------------

def _note_cache_hit(spec: JobSpec, source: str) -> None:
    obs = obs_lib.current()
    if obs.active:
        obs.emit("run.cache_hit", bench=spec.bench, label=spec.label(),
                 source=source)
        obs.metrics.inc("run.cache_hits", source=source)


def run_spec(spec: JobSpec):
    """One simulation point through all cache layers."""
    key = spec_hash(spec)
    cached = _CACHE.get(key)
    if cached is not None:
        _note_cache_hit(spec, "memory")
        return cached

    store = get_store()
    if store is not None:
        payload = store.load(spec)
        if payload is not None:
            _note_cache_hit(spec, "store")
            result = _result_from_payload(payload)
            _CACHE[key] = result
            return result

    result = simulate_spec(spec)
    if store is not None:
        store.store(spec, {"kind": spec.kind, "result": result.to_dict()})
    _CACHE[key] = result
    return result


def prewarm_specs(specs: Sequence[JobSpec], jobs: int = 1,
                  timeout: Optional[float] = None,
                  progress: bool = False,
                  pool: Optional[bool] = None,
                  schedule: Optional[str] = None) -> list:
    """Fan a batch of specs out over worker processes, loading every
    success into the in-process cache (and the store, if enabled).

    ``pool``/``schedule`` default to the process-wide options set by
    :func:`configure_exec` (warm pool, longest-job-first).

    Failed jobs are reported in the returned
    :class:`~repro.exec.executor.JobResult` list but do not raise —
    a later :func:`run_spec` for that point falls back to in-process
    simulation.
    """
    if pool is None:
        pool = _EXEC_OPTIONS["pool"]
    if schedule is None:
        schedule = _EXEC_OPTIONS["schedule"]
    cold = [s for s in specs if spec_hash(s) not in _CACHE]

    # Shared fast-forward traces: run one recorder per (program, scale,
    # schedule) group *before* the fan-out, so N compositions of one
    # benchmark interpret the fast-forward trajectory once and replay
    # it N-1 times instead of racing N redundant recorders
    # (docs/PERFORMANCE.md).  Recorders of different groups still run
    # in parallel with each other.
    recorders: list = []
    if len(cold) > 1:
        from repro.sample.trace import prewarm_partition

        recorders, rest = prewarm_partition(cold)
        if recorders:
            cold = rest

    outcomes = []
    if recorders:
        outcomes.extend(run_specs(recorders, jobs=jobs, timeout=timeout,
                                  store=get_store(), progress=progress,
                                  pool=pool, schedule=schedule))
    outcomes.extend(run_specs(cold, jobs=jobs, timeout=timeout,
                              store=get_store(), progress=progress,
                              pool=pool, schedule=schedule))
    for outcome in outcomes:
        if outcome.ok and outcome.payload is not None:
            _CACHE[spec_hash(outcome.spec)] = _result_from_payload(
                outcome.payload)
    return outcomes


# ----------------------------------------------------------------------
# Public runners (call-site API unchanged)
# ----------------------------------------------------------------------

def run_edge_benchmark(name: str, ncores: int = 8, trips: bool = False,
                       scale: int = 1, ideal_handshake: bool = False,
                       overrides: Optional[dict] = None,
                       core_overrides: Optional[dict] = None,
                       verify: bool = True,
                       sampling: Optional[dict] = None,
                       faults: Optional[tuple] = None) -> RunResult:
    """Run one benchmark on a TFlex composition (or the TRIPS baseline).

    Results are cached per resolved job spec (in-process, then the
    persistent store when enabled); architectural output is verified
    against the Python reference unless disabled.
    ``overrides``/``core_overrides`` replace :class:`SystemConfig` /
    :class:`CoreConfig` fields for ablation studies.  ``sampling``
    (``{"ff_blocks", "window_blocks", "warmup_blocks"}``) switches the
    point to the sampled engine — cycles become an extrapolated
    estimate, architectural results stay exact.  ``faults`` (the
    ``spec_items()`` of a :class:`repro.resil.FaultSchedule`) routes
    the point through the fault-injection driver.
    """
    spec = JobSpec.edge(name, ncores=ncores, trips=trips, scale=scale,
                        ideal_handshake=ideal_handshake,
                        overrides=overrides, core_overrides=core_overrides,
                        verify=verify, sampling=sampling, faults=faults)
    return run_spec(spec)


def run_risc_benchmark(name: str, scale: int = 1,
                       verify: bool = True) -> RiscResult:
    """Run one benchmark on the OoO superscalar baseline (figure 5)."""
    return run_spec(JobSpec.risc(name, scale=scale, verify=verify))
