"""Benchmark execution with in-process result caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.power import EnergyModel, EnergyParams, PowerBreakdown
from repro.tflex import TFlexSystem, tflex_config, trips_config
from repro.tflex.placement import rectangle
from repro.tflex.stats import ProcStats
from repro.risc import OoOCore
from repro.workloads import BENCHMARKS, verify_edge_run


@dataclass
class RunResult:
    """One benchmark run on one TFlex/TRIPS configuration."""

    bench: str
    label: str                 # "tflex-8", "trips", "tflex-32-ideal", ...
    num_cores: int
    cycles: int
    insts_committed: int
    stats: ProcStats
    power: PowerBreakdown
    dram_requests: int

    @property
    def performance(self) -> float:
        return 1.0 / self.cycles


@dataclass
class RiscResult:
    """One benchmark run on the out-of-order RISC baseline."""

    bench: str
    cycles: int
    insts: int
    mispredictions: int


_CACHE: dict[tuple, object] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_edge_benchmark(name: str, ncores: int = 8, trips: bool = False,
                       scale: int = 1, ideal_handshake: bool = False,
                       overrides: Optional[dict] = None,
                       core_overrides: Optional[dict] = None,
                       verify: bool = True) -> RunResult:
    """Run one benchmark on a TFlex composition (or the TRIPS baseline).

    Results are cached per (name, configuration, scale); architectural
    output is verified against the Python reference unless disabled.
    ``overrides``/``core_overrides`` replace :class:`SystemConfig` /
    :class:`CoreConfig` fields for ablation studies.
    """
    label = "trips" if trips else f"tflex-{ncores}"
    if ideal_handshake:
        label += "-ideal"
    for source in (overrides, core_overrides):
        for field_name, value in sorted((source or {}).items()):
            label += f"+{field_name}={value}"
    key = ("edge", name, label, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    benchmark = BENCHMARKS[name]
    program, expected, kernel = benchmark.edge_program(scale)
    if trips:
        cfg = trips_config()
        ncores = cfg.num_cores
    else:
        cfg = tflex_config(ncores)
    from dataclasses import replace
    if ideal_handshake:
        cfg = replace(cfg, ideal_handshake=True)
    if core_overrides:
        cfg = replace(cfg, core=replace(cfg.core, **core_overrides))
    if overrides:
        cfg = replace(cfg, **overrides)

    system = TFlexSystem(cfg)
    proc = system.compose(rectangle(cfg, ncores), program, name=name)
    system.run(max_cycles=30_000_000)
    if verify:
        verify_edge_run(kernel, proc.memory, expected)

    params = EnergyParams.trips() if trips else None
    power = EnergyModel(params).breakdown(
        proc.stats.energy_events, proc.stats.cycles, proc.ncores,
        dram_requests=system.dram.stats.requests)

    result = RunResult(
        bench=name, label=label, num_cores=ncores,
        cycles=proc.stats.cycles, insts_committed=proc.stats.insts_committed,
        stats=proc.stats, power=power,
        dram_requests=system.dram.stats.requests)
    _CACHE[key] = result
    return result


def run_risc_benchmark(name: str, scale: int = 1,
                       verify: bool = True) -> RiscResult:
    """Run one benchmark on the OoO superscalar baseline (figure 5)."""
    key = ("risc", name, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    benchmark = BENCHMARKS[name]
    program, expected, kernel = benchmark.risc_program(scale)
    stats, interp = OoOCore().run(program)
    if verify:
        verify_edge_run(kernel, interp.mem, expected)
    result = RiscResult(bench=name, cycles=stats.cycles, insts=stats.insts,
                        mispredictions=stats.mispredictions)
    _CACHE[key] = result
    return result
