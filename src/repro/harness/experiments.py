"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver returns a result object with the raw series plus a
``render()`` that prints rows comparable to the paper's plot, and the
benchmark harness asserts the qualitative claims (who wins, roughly by
how much, where the peaks fall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exec import JobSpec
from repro.harness.reporting import format_table, geomean
from repro.harness.runner import (
    RunResult,
    prewarm_specs,
    run_edge_benchmark,
    run_risc_benchmark,
)
from repro.power import AreaModel, EnergyModel
from repro.sched import (
    SpeedupTable,
    degraded_assignment,
    fixed_cmp_assignment,
    optimal_assignment,
    surviving_processors,
    symmetric_best_assignment,
)
from repro.workloads import BENCHMARKS, hand_optimized
from repro.workloads.data import Lcg


CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def _suite(benchmarks: Optional[Sequence[str]]) -> list[str]:
    if benchmarks is None:
        return sorted(BENCHMARKS)
    return list(benchmarks)


def _fan_out(specs: Sequence[JobSpec], jobs: int, progress: bool) -> None:
    """Pre-warm the runner caches over a worker pool when ``jobs > 1``.

    The serial assembly loops below then find every point already
    cached, so drivers keep their exact call-site semantics; a failed
    worker job simply falls back to in-process simulation there.
    """
    if jobs > 1 and len(specs) > 1:
        prewarm_specs(specs, jobs=jobs, progress=progress)


# ----------------------------------------------------------------------
# Figure 6: performance versus composition size
# ----------------------------------------------------------------------

@dataclass
class Fig6Result:
    """Cycles for every benchmark on every configuration."""

    scale: int
    core_counts: tuple[int, ...]
    benchmarks: list[str]
    runs: dict[str, dict[str, RunResult]]   # bench -> label -> result

    def cycles(self, bench: str, label: str) -> int:
        return self.runs[bench][label].cycles

    def speedup(self, bench: str, label: str) -> float:
        """Speedup over a single TFlex core (the paper's baseline)."""
        return self.cycles(bench, "tflex-1") / self.cycles(bench, label)

    def tflex_labels(self) -> list[str]:
        return [f"tflex-{n}" for n in self.core_counts]

    def best_label(self, bench: str) -> str:
        return max(self.tflex_labels(), key=lambda lb: self.speedup(bench, lb))

    def best_speedup(self, bench: str) -> float:
        return self.speedup(bench, self.best_label(bench))

    def mean_speedup(self, label: str) -> float:
        return geomean([self.speedup(b, label) for b in self.benchmarks])

    def mean_best_speedup(self) -> float:
        return geomean([self.best_speedup(b) for b in self.benchmarks])

    def has_trips(self) -> bool:
        return all("trips" in self.runs[b] for b in self.benchmarks)

    def speedup_table(self, benchmarks: Optional[Sequence[str]] = None) -> SpeedupTable:
        """Per-benchmark cores -> performance functions for figure 10."""
        names = list(benchmarks) if benchmarks is not None else self.benchmarks
        return SpeedupTable(perf={
            b: {n: 1.0 / self.cycles(b, f"tflex-{n}") for n in self.core_counts}
            for b in names
        })

    def render(self) -> str:
        labels = self.tflex_labels() + (["trips"] if self.has_trips() else [])
        headers = ["benchmark", "ilp"] + labels + ["BEST", "best@"]
        rows = []
        ordered = sorted(self.benchmarks,
                         key=lambda b: (BENCHMARKS[b].ilp != "low", b))
        for bench in ordered:
            row = [bench, BENCHMARKS[bench].ilp]
            row += [round(self.speedup(bench, lb), 2) for lb in labels]
            row += [round(self.best_speedup(bench), 2),
                    self.best_label(bench).replace("tflex-", "")]
            rows.append(row)
        mean_row = ["GEOMEAN", ""]
        mean_row += [round(self.mean_speedup(lb), 2) for lb in labels]
        mean_row += [round(self.mean_best_speedup(), 2), ""]
        rows.append(mean_row)
        return format_table(headers, rows,
                            title="Figure 6: speedup over one TFlex core")


def fig6_specs(scale: int = 1,
               core_counts: Sequence[int] = CORE_COUNTS,
               benchmarks: Optional[Sequence[str]] = None,
               include_trips: bool = True,
               sampling: Optional[dict] = None) -> list[JobSpec]:
    """Every simulation point of the figure-6 sweep, as job specs.

    ``sampling`` applies to the TFlex composition points only; the
    TRIPS baseline always runs in full detail (it anchors the paper's
    normalization and is a single fixed configuration anyway).
    """
    specs = []
    for name in _suite(benchmarks):
        for n in core_counts:
            specs.append(JobSpec.edge(name, ncores=n, scale=scale,
                                      sampling=sampling))
        if include_trips:
            specs.append(JobSpec.edge(name, trips=True, scale=scale))
    return specs


def fig6_performance(scale: int = 1,
                     core_counts: Sequence[int] = CORE_COUNTS,
                     benchmarks: Optional[Sequence[str]] = None,
                     include_trips: bool = True,
                     jobs: int = 1, progress: bool = False,
                     sampling: Optional[dict] = None) -> Fig6Result:
    names = _suite(benchmarks)
    _fan_out(fig6_specs(scale, core_counts, names, include_trips, sampling),
             jobs, progress)
    runs: dict[str, dict[str, RunResult]] = {}
    for name in names:
        per_config: dict[str, RunResult] = {}
        for n in core_counts:
            per_config[f"tflex-{n}"] = run_edge_benchmark(
                name, ncores=n, scale=scale, sampling=sampling)
        if include_trips:
            per_config["trips"] = run_edge_benchmark(name, trips=True, scale=scale)
        runs[name] = per_config
    return Fig6Result(scale=scale, core_counts=tuple(core_counts),
                      benchmarks=names, runs=runs)


# ----------------------------------------------------------------------
# Figure 5: TRIPS versus a conventional OoO superscalar
# ----------------------------------------------------------------------

@dataclass
class Fig5Result:
    """Relative performance (1/cycle count) of TRIPS normalized to the
    conventional out-of-order baseline."""

    ratios: dict[str, float]       # bench -> risc_cycles / trips_cycles

    def category_mean(self, category: str) -> float:
        names = [b for b in self.ratios if BENCHMARKS[b].category == category]
        return geomean([self.ratios[b] for b in names])

    def render(self) -> str:
        rows = [[b, BENCHMARKS[b].category, round(r, 2)]
                for b, r in sorted(self.ratios.items())]
        rows.append(["GEOMEAN hand", "", round(self.category_mean("hand"), 2)])
        rows.append(["GEOMEAN spec_int", "", round(self.category_mean("spec_int"), 2)])
        rows.append(["GEOMEAN spec_fp", "", round(self.category_mean("spec_fp"), 2)])
        return format_table(
            ["benchmark", "category", "TRIPS speedup vs OoO"], rows,
            title="Figure 5: TRIPS relative performance vs conventional OoO")


def fig5_baseline(scale: int = 1,
                  benchmarks: Optional[Sequence[str]] = None,
                  jobs: int = 1, progress: bool = False) -> Fig5Result:
    names = _suite(benchmarks)
    specs = [JobSpec.edge(name, trips=True, scale=scale) for name in names]
    specs += [JobSpec.risc(name, scale=scale) for name in names]
    _fan_out(specs, jobs, progress)
    ratios = {}
    for name in names:
        trips = run_edge_benchmark(name, trips=True, scale=scale)
        risc = run_risc_benchmark(name, scale=scale)
        ratios[name] = risc.cycles / trips.cycles
    return Fig5Result(ratios=ratios)


# ----------------------------------------------------------------------
# Figure 7: performance per area
# ----------------------------------------------------------------------

@dataclass
class Fig7Result:
    fig6: Fig6Result
    area: AreaModel = field(default_factory=AreaModel)

    def perf_per_area(self, bench: str, label: str) -> float:
        run = self.fig6.runs[bench][label]
        mm2 = (self.area.trips_mm2 if label == "trips"
               else self.area.processor_mm2(run.num_cores))
        return 1.0 / (run.cycles * mm2)

    def normalized(self, bench: str, label: str) -> float:
        return self.perf_per_area(bench, label) / self.perf_per_area(bench, "tflex-1")

    def mean_normalized(self, label: str) -> float:
        return geomean([self.normalized(b, label) for b in self.fig6.benchmarks])

    def best_label(self, bench: str) -> str:
        return max(self.fig6.tflex_labels(), key=lambda lb: self.normalized(bench, lb))

    def mean_best(self) -> float:
        return geomean([self.normalized(b, self.best_label(b))
                        for b in self.fig6.benchmarks])

    def render(self) -> str:
        labels = self.fig6.tflex_labels() + (["trips"] if self.fig6.has_trips() else [])
        headers = ["benchmark"] + labels + ["BEST@"]
        rows = []
        for bench in self.fig6.benchmarks:
            row = [bench] + [round(self.normalized(bench, lb), 3) for lb in labels]
            row.append(self.best_label(bench).replace("tflex-", ""))
            rows.append(row)
        rows.append(["GEOMEAN"] + [round(self.mean_normalized(lb), 3) for lb in labels]
                    + [""])
        return format_table(headers, rows,
                            title="Figure 7: performance/area (1/(cycles*mm^2)), "
                                  "normalized to one TFlex core")


def fig7_area(fig6: Fig6Result) -> Fig7Result:
    return Fig7Result(fig6=fig6)


# ----------------------------------------------------------------------
# Figure 8: power efficiency (performance^2 / W)
# ----------------------------------------------------------------------

@dataclass
class Fig8Result:
    fig6: Fig6Result

    def efficiency(self, bench: str, label: str) -> float:
        run = self.fig6.runs[bench][label]
        return EnergyModel.perf2_per_watt(run.cycles, run.power.total)

    def normalized(self, bench: str, label: str) -> float:
        return self.efficiency(bench, label) / self.efficiency(bench, "tflex-1")

    def mean_normalized(self, label: str) -> float:
        return geomean([self.normalized(b, label) for b in self.fig6.benchmarks])

    def best_label(self, bench: str) -> str:
        return max(self.fig6.tflex_labels(), key=lambda lb: self.normalized(bench, lb))

    def mean_best(self) -> float:
        return geomean([self.normalized(b, self.best_label(b))
                        for b in self.fig6.benchmarks])

    def best_fixed_label(self) -> str:
        return max(self.fig6.tflex_labels(), key=self.mean_normalized)

    def render(self) -> str:
        labels = self.fig6.tflex_labels() + (["trips"] if self.fig6.has_trips() else [])
        headers = ["benchmark"] + labels + ["BEST@"]
        rows = []
        for bench in self.fig6.benchmarks:
            row = [bench] + [round(self.normalized(bench, lb), 3) for lb in labels]
            row.append(self.best_label(bench).replace("tflex-", ""))
            rows.append(row)
        rows.append(["GEOMEAN"] + [round(self.mean_normalized(lb), 3) for lb in labels]
                    + [""])
        return format_table(headers, rows,
                            title="Figure 8: performance^2/W, normalized to one TFlex core")


def fig8_power(fig6: Fig6Result) -> Fig8Result:
    return Fig8Result(fig6=fig6)


# ----------------------------------------------------------------------
# Figure 9: distributed fetch/commit overheads + ideal-handshake ablation
# ----------------------------------------------------------------------

@dataclass
class Fig9Result:
    core_counts: tuple[int, ...]
    fetch: dict[int, dict[str, float]]      # cores -> component -> mean cycles
    commit: dict[int, dict[str, float]]
    ablation: dict[str, float]              # bench -> relative slowdown of real
                                            # handshakes at the largest composition

    FETCH_ORDER = ("prediction", "handoff", "tag", "pipeline", "distribution",
                   "dispatch")

    def fetch_total(self, cores: int) -> float:
        return sum(self.fetch[cores].values())

    def commit_total(self, cores: int) -> float:
        return sum(self.commit[cores].values())

    def mean_ablation_impact(self) -> float:
        values = list(self.ablation.values())
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        rows = []
        for n in self.core_counts:
            row = [n] + [round(self.fetch[n].get(c, 0.0), 1) for c in self.FETCH_ORDER]
            row.append(round(self.fetch_total(n), 1))
            rows.append(row)
        fetch_tbl = format_table(
            ["cores"] + list(self.FETCH_ORDER) + ["total"], rows,
            title="Figure 9a: distributed fetch latency breakdown (cycles/block)")
        rows = []
        for n in self.core_counts:
            row = [n,
                   round(self.commit[n].get("state_update", 0.0), 1),
                   round(self.commit[n].get("handshake", 0.0), 1),
                   round(self.commit_total(n), 1)]
            rows.append(row)
        commit_tbl = format_table(
            ["cores", "state_update", "handshake", "total"], rows,
            title="Figure 9b: distributed commit latency breakdown (cycles/block)")
        abl = (f"Section 6.4 ablation: instantaneous handshakes speed up the "
               f"largest composition by {self.mean_ablation_impact():.1%} on average "
               f"(paper: < 2%)")
        return "\n\n".join([fetch_tbl, commit_tbl, abl])


def fig9_protocols(scale: int = 1,
                   core_counts: Sequence[int] = CORE_COUNTS,
                   benchmarks: Optional[Sequence[str]] = None,
                   jobs: int = 1, progress: bool = False) -> Fig9Result:
    names = _suite(benchmarks)
    specs = [JobSpec.edge(name, ncores=n, scale=scale)
             for name in names for n in core_counts]
    specs += [JobSpec.edge(name, ncores=max(core_counts), scale=scale,
                           ideal_handshake=True) for name in names]
    _fan_out(specs, jobs, progress)
    fetch: dict[int, dict[str, float]] = {}
    commit: dict[int, dict[str, float]] = {}
    for n in core_counts:
        fetch_acc: dict[str, float] = {}
        commit_acc: dict[str, float] = {}
        for name in names:
            run = run_edge_benchmark(name, ncores=n, scale=scale)
            for component, value in run.stats.fetch_latency.means().items():
                fetch_acc[component] = fetch_acc.get(component, 0.0) + value
            for component, value in run.stats.commit_latency.means().items():
                commit_acc[component] = commit_acc.get(component, 0.0) + value
        fetch[n] = {c: v / len(names) for c, v in fetch_acc.items()}
        commit[n] = {c: v / len(names) for c, v in commit_acc.items()}

    largest = max(core_counts)
    ablation = {}
    for name in names:
        real = run_edge_benchmark(name, ncores=largest, scale=scale)
        ideal = run_edge_benchmark(name, ncores=largest, scale=scale,
                                   ideal_handshake=True)
        ablation[name] = (real.cycles - ideal.cycles) / real.cycles
    return Fig9Result(core_counts=tuple(core_counts), fetch=fetch,
                      commit=commit, ablation=ablation)


# ----------------------------------------------------------------------
# Figure 10: multiprogrammed weighted speedup
# ----------------------------------------------------------------------

@dataclass
class Fig10Result:
    sizes: tuple[int, ...]
    granularities: tuple[int, ...]
    #: workload size -> scheme label -> average WS over sampled workloads.
    ws: dict[int, dict[str, float]]
    #: workload size -> {granularity: fraction of threads} under TFlex.
    allocation: dict[int, dict[int, float]]
    #: Cores dead at boot (0 = the paper's pristine chip).
    dead_cores: int = 0

    def average(self, label: str) -> float:
        return sum(self.ws[m][label] for m in self.sizes) / len(self.sizes)

    def best_fixed_label(self) -> str:
        labels = [f"CMP-{g}" for g in self.granularities]
        return max(labels, key=self.average)

    def tflex_gain_over_best_fixed(self) -> float:
        return self.average("TFlex") / self.average(self.best_fixed_label()) - 1.0

    def tflex_max_gain(self) -> float:
        best = self.best_fixed_label()
        return max(self.ws[m]["TFlex"] / self.ws[m][best] - 1.0
                   for m in self.sizes)

    def tflex_gain_over_vb(self) -> float:
        return self.average("TFlex") / self.average("VB-CMP") - 1.0

    def render(self) -> str:
        labels = [f"CMP-{g}" for g in self.granularities] + ["VB-CMP", "TFlex"]
        rows = []
        for m in self.sizes:
            rows.append([m] + [round(self.ws[m][lb], 2) for lb in labels])
        rows.append(["AVG"] + [round(self.average(lb), 2) for lb in labels])
        ws_tbl = format_table(["threads"] + labels, rows,
                              title="Figure 10: average weighted speedup")
        rows = []
        sizes_cols = sorted({g for m in self.sizes for g in self.allocation[m]})
        for m in self.sizes:
            rows.append([m] + [f"{self.allocation[m].get(g, 0.0):.0%}"
                               for g in sizes_cols])
        alloc_tbl = format_table(["threads"] + [f"{g}c" for g in sizes_cols], rows,
                                 title="TFlex allocation: fraction of threads per granularity")
        summary = (f"TFlex vs best fixed CMP ({self.best_fixed_label()}): "
                   f"avg +{self.tflex_gain_over_best_fixed():.0%}, "
                   f"max +{self.tflex_max_gain():.0%}; "
                   f"vs symmetric VB-CMP: +{self.tflex_gain_over_vb():.0%}")
        return "\n\n".join([ws_tbl, alloc_tbl, summary])


def fig10_multiprogramming(fig6: Fig6Result,
                           sizes: Sequence[int] = (2, 4, 6, 8, 12, 16),
                           granularities: Sequence[int] = (1, 2, 4, 8, 16),
                           workloads_per_size: int = 8,
                           seed: int = 2007,
                           dead_cores: int = 0) -> Fig10Result:
    """Paper methodology: WS computed analytically from the figure-6
    cores->speedup functions of the 12 hand-optimized benchmarks, with
    an optimal DP allocator for TFlex.

    ``dead_cores`` kills that many cores at boot (seeded, nested draw —
    independent of the workload stream so the pristine figure is
    untouched).  The TFlex allocator packs around the dead cores at a
    one-core-per-fault cost; a fixed CMP loses every processor tile a
    dead core lands in, which is the asymmetry the resilience
    experiment quantifies.
    """
    from repro.tflex import tflex_config

    apps_pool = [b.name for b in hand_optimized() if b.name in fig6.benchmarks]
    if not apps_pool:
        apps_pool = fig6.benchmarks
    table = fig6.speedup_table(apps_pool)
    allowed = tuple(fig6.core_counts)   # only measured composition sizes
    granularities = tuple(g for g in granularities if g in allowed)
    rng = Lcg(seed)

    cfg = tflex_config(32)
    dead: set[int] = set()
    if dead_cores:
        # Separate stream: the workload draw below must not shift.
        from repro.resil.faults import FaultSchedule

        dead = set(FaultSchedule.boot_dead(dead_cores, cfg.num_cores,
                                           seed=seed + 999331)
                   .boot_dead_cores())

    def degraded_fixed(workload: list[str], g: int) -> float:
        processors = surviving_processors(cfg, g, dead)
        if not processors:
            return 0.0
        return fixed_cmp_assignment(workload, table, g,
                                    total_cores=processors * g)[0]

    ws: dict[int, dict[str, float]] = {}
    allocation: dict[int, dict[int, float]] = {}
    for m in sizes:
        totals = {f"CMP-{g}": 0.0 for g in granularities}
        totals["VB-CMP"] = 0.0
        totals["TFlex"] = 0.0
        size_counts: dict[int, int] = {}
        for __ in range(workloads_per_size):
            workload = [apps_pool[rng.next() % len(apps_pool)] for __ in range(m)]
            if dead:
                for g in granularities:
                    totals[f"CMP-{g}"] += degraded_fixed(workload, g)
                totals["VB-CMP"] += max(degraded_fixed(workload, g)
                                        for g in allowed)
                tflex_ws, assigned, __ = degraded_assignment(
                    workload, table, cfg, dead, allowed)
            else:
                for g in granularities:
                    totals[f"CMP-{g}"] += fixed_cmp_assignment(workload, table, g)[0]
                totals["VB-CMP"] += symmetric_best_assignment(
                    workload, table, allowed=allowed)[0]
                tflex_ws, assigned = optimal_assignment(workload, table,
                                                        allowed=allowed)
            totals["TFlex"] += tflex_ws
            for k in assigned:
                size_counts[k] = size_counts.get(k, 0) + 1
        ws[m] = {label: total / workloads_per_size for label, total in totals.items()}
        assigned_total = sum(size_counts.values())
        allocation[m] = {k: c / assigned_total for k, c in sorted(size_counts.items())}
    return Fig10Result(sizes=tuple(sizes), granularities=tuple(granularities),
                       ws=ws, allocation=allocation, dead_cores=dead_cores)


# ----------------------------------------------------------------------
# Figure BEST: per-application BEST composition via halving search
# ----------------------------------------------------------------------

@dataclass
class FigBestResult:
    """The BEST lines of figures 6-8, found by successive-halving search
    instead of the exhaustive detailed sweep (see docs/SEARCH.md)."""

    scale: int
    core_counts: tuple[int, ...]
    benchmarks: list[str]
    #: objective name -> the search trail that found its BEST line.
    searches: dict[str, "object"]

    def objectives(self) -> list[str]:
        return list(self.searches)

    def best_labels(self, objective: str) -> dict[str, str]:
        return self.searches[objective].best_labels()

    def best_ncores(self, objective: str) -> dict[str, int]:
        return self.searches[objective].best_ncores()

    def detailed_jobs(self, objective: Optional[str] = None) -> int:
        """Detailed-simulation jobs one search needed (or all, summed —
        cross-objective cache sharing makes the *executed* number lower
        still, but the per-search count is the honest accounting)."""
        if objective is not None:
            return self.searches[objective].detailed_jobs()
        return sum(s.detailed_jobs() for s in self.searches.values())

    def exhaustive_detailed_jobs(self) -> int:
        """Detailed jobs the exhaustive sweep runs for the same BEST
        line: every composition of every benchmark."""
        return len(self.benchmarks) * len(self.core_counts)

    def detail_reduction(self, objective: str) -> float:
        return self.searches[objective].detail_reduction()

    def payload(self) -> dict:
        """JSON form (the CLI's ``--out`` artifact)."""
        return {
            "scale": self.scale,
            "core_counts": list(self.core_counts),
            "benchmarks": list(self.benchmarks),
            "exhaustive_detailed_jobs": self.exhaustive_detailed_jobs(),
            "objectives": {
                name: {
                    "best": {b: r.best.ncores
                             for b, r in search.per_bench.items()},
                    "detailed_jobs": search.detailed_jobs(),
                    "detail_reduction_x": search.detail_reduction(),
                    "evaluations": search.total_evaluations(),
                }
                for name, search in self.searches.items()
            },
        }

    def render(self) -> str:
        headers = ["benchmark"] + [f"BEST@{o}" for o in self.searches]
        rows = []
        for bench in self.benchmarks:
            rows.append([bench] + [
                self.searches[o].per_bench[bench].best.ncores
                for o in self.searches])
        table = format_table(
            headers, rows,
            title="Figure BEST: per-application best composition "
                  "(cores) by objective")
        lines = [table, ""]
        for name, search in self.searches.items():
            lines.append(f"{name}: {search.detailed_jobs()} detailed jobs "
                         f"vs {search.exhaustive_detailed_jobs()} exhaustive "
                         f"({search.detail_reduction():.1f}x fewer)")
        return "\n".join(lines)


def fig_best(objectives: Optional[Sequence[str]] = None,
             scale: int = 1,
             core_counts: Sequence[int] = CORE_COUNTS,
             benchmarks: Optional[Sequence[str]] = None,
             jobs: int = 1, progress: bool = False,
             config=None) -> FigBestResult:
    """Find the per-application BEST composition for each objective by
    successive halving (``repro search`` on the CLI).

    All objectives share one result cache: a candidate two searches
    both evaluate at the same fidelity simulates once.
    """
    from repro.search import OBJECTIVE_NAMES, default_space, search_best

    names = _suite(benchmarks)
    wanted = list(objectives) if objectives else list(OBJECTIVE_NAMES)
    space = default_space(names, core_counts=core_counts, scale=scale)
    searches = {
        objective: search_best(space, objective, config=config,
                               jobs=jobs, progress=progress)
        for objective in wanted
    }
    return FigBestResult(scale=scale, core_counts=tuple(core_counts),
                         benchmarks=names, searches=searches)


# ----------------------------------------------------------------------
# Table 2: area and average power breakdown
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    area: AreaModel
    tflex_power: dict[str, float]    # category -> mean W over the suite
    trips_power: dict[str, float]

    def render(self) -> str:
        area_tbl = self.area.table()
        categories = sorted(set(self.tflex_power) | set(self.trips_power))
        rows = [[c, round(self.trips_power.get(c, 0.0), 3),
                 round(self.tflex_power.get(c, 0.0), 3)]
                for c in categories]
        rows.append(["total", round(sum(self.trips_power.values()), 3),
                     round(sum(self.tflex_power.values()), 3)])
        power_tbl = format_table(["category", "TRIPS (W)", "8-core TFlex (W)"],
                                 rows, title="Table 2: average power breakdown")
        return area_tbl + "\n\n" + power_tbl


def table2_area_power(fig6: Fig6Result) -> Table2Result:
    def mean_power(label: str) -> dict[str, float]:
        acc: dict[str, float] = {}
        for bench in fig6.benchmarks:
            run = fig6.runs[bench][label]
            for category, watts in run.power.watts.items():
                acc[category] = acc.get(category, 0.0) + watts
        return {c: v / len(fig6.benchmarks) for c, v in acc.items()}

    return Table2Result(area=AreaModel(),
                        tflex_power=mean_power("tflex-8"),
                        trips_power=mean_power("trips"))


# ----------------------------------------------------------------------
# Figure R: performance degradation versus dead cores (repro.resil)
# ----------------------------------------------------------------------

#: Benchmarks the degradation sweep runs by default.  These three have
#: monotone cores->performance curves up to 16 cores (figure 6), so
#: shrinking the composition can only cost performance and the curve
#: cleanly isolates the fault cost.  Benchmarks that peak at small
#: compositions (gzip, dither) can *gain* from losing cores — real
#: machine behaviour, but it muddies a degradation plot.
FIGR_BENCHMARKS = ("ammp", "conv", "equake")


@dataclass
class FigRResult:
    """Performance versus dead-core count on one chip (the composable
    graceful-degradation curve the fault model exists to plot)."""

    target_cores: int
    seed: int
    scale: int
    dead_counts: tuple[int, ...]
    benchmarks: list[str]
    runs: dict[str, dict[int, RunResult]]   # bench -> dead count -> result
    dead_sets: dict[int, list[int]]         # dead count -> core ids

    def performance(self, bench: str, dead: int) -> float:
        return self.runs[bench][dead].performance

    def relative(self, bench: str, dead: int) -> float:
        """Performance with ``dead`` cores out, relative to pristine."""
        return self.performance(bench, dead) / self.performance(bench, 0)

    def mean_relative(self, dead: int) -> float:
        return geomean([self.relative(b, dead) for b in self.benchmarks])

    def granted_cores(self, dead: int) -> int:
        """Composition size the survivors supported at this point."""
        return self.runs[self.benchmarks[0]][dead].num_cores

    def monotone_trend(self, tolerance: float = 0.02) -> bool:
        """More dead cores never *helps*: the mean curve may only fall
        (within ``tolerance``, for the flat plateaus where the dead
        set grows without crossing a composition-size boundary)."""
        means = [self.mean_relative(k) for k in self.dead_counts]
        return all(b <= a * (1.0 + tolerance)
                   for a, b in zip(means, means[1:]))

    def payload(self) -> dict:
        """JSON form of the curve (the CI artifact)."""
        return {
            "target_cores": self.target_cores,
            "seed": self.seed,
            "scale": self.scale,
            "dead_counts": list(self.dead_counts),
            "benchmarks": list(self.benchmarks),
            "dead_sets": {str(k): v for k, v in self.dead_sets.items()},
            "curve": [
                {"dead": k,
                 "granted_cores": self.granted_cores(k),
                 "mean_relative": self.mean_relative(k),
                 "relative": {b: self.relative(b, k)
                              for b in self.benchmarks},
                 "cycles": {b: self.runs[b][k].cycles
                            for b in self.benchmarks}}
                for k in self.dead_counts
            ],
            "monotone": self.monotone_trend(),
        }

    def render(self) -> str:
        headers = (["dead", "cores"]
                   + list(self.benchmarks) + ["GEOMEAN"])
        rows = []
        for k in self.dead_counts:
            rows.append([k, self.granted_cores(k)]
                        + [round(self.relative(b, k), 3)
                           for b in self.benchmarks]
                        + [round(self.mean_relative(k), 3)])
        return format_table(
            headers, rows,
            title=f"Figure R: relative performance vs dead cores "
                  f"({self.target_cores}-core chip, seed {self.seed})")


def figR_specs(target_cores: int = 16, max_dead: int = 6,
               benchmarks: Optional[Sequence[str]] = None,
               seed: int = 2007, scale: int = 1) -> list[JobSpec]:
    """Every point of the degradation sweep, as job specs.

    One seeded nested permutation supplies the dead sets: the cores
    dead at k are a subset of those dead at k+1, so the curve can only
    degrade as k grows (no lucky re-rolls).
    """
    from repro.resil.faults import FaultSchedule

    if not 0 < max_dead < target_cores:
        raise ValueError(f"max_dead must be in [1, {target_cores - 1}], "
                         f"got {max_dead}")
    names = list(benchmarks) if benchmarks is not None else list(FIGR_BENCHMARKS)
    specs = []
    for k in range(max_dead + 1):
        schedule = FaultSchedule.boot_dead(k, target_cores, seed)
        for name in names:
            specs.append(JobSpec.edge(name, ncores=target_cores, scale=scale,
                                      faults=schedule.spec_items()))
    return specs


def figR_degradation(target_cores: int = 16, max_dead: int = 6,
                     benchmarks: Optional[Sequence[str]] = None,
                     seed: int = 2007, scale: int = 1,
                     jobs: int = 1, progress: bool = False) -> FigRResult:
    """Run the dead-core sweep and assemble the degradation curve."""
    from repro.resil.faults import FaultSchedule

    names = list(benchmarks) if benchmarks is not None else list(FIGR_BENCHMARKS)
    _fan_out(figR_specs(target_cores, max_dead, names, seed, scale),
             jobs, progress)
    runs: dict[str, dict[int, RunResult]] = {b: {} for b in names}
    dead_sets: dict[int, list[int]] = {}
    for k in range(max_dead + 1):
        schedule = FaultSchedule.boot_dead(k, target_cores, seed)
        dead_sets[k] = schedule.boot_dead_cores()
        for name in names:
            runs[name][k] = run_edge_benchmark(
                name, ncores=target_cores, scale=scale,
                faults=schedule.spec_items())
    return FigRResult(target_cores=target_cores, seed=seed, scale=scale,
                      dead_counts=tuple(range(max_dead + 1)),
                      benchmarks=names, runs=runs, dead_sets=dead_sets)
