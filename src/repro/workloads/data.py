"""Deterministic pseudo-random input generation for workloads.

A fixed-seed LCG keeps every benchmark's inputs — and therefore every
simulated cycle count — reproducible across runs and machines.
"""

from __future__ import annotations


class Lcg:
    """Numerical Recipes 64-bit LCG."""

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2862933555777941757 + 3037000493) % (1 << 64)

    def next(self) -> int:
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return self.state >> 16

    def ints(self, count: int, low: int, high: int) -> list[int]:
        """``count`` integers in [low, high]."""
        span = high - low + 1
        return [low + self.next() % span for __ in range(count)]

    def floats(self, count: int, low: float = -1.0, high: float = 1.0) -> list[float]:
        span = high - low
        return [low + (self.next() % 10_000) / 10_000.0 * span for __ in range(count)]
