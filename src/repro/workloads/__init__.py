"""The 26-benchmark suite (paper Table 1).

The paper evaluates 12 hand-optimized programs (3 kernels, 7 EEMBC, 2
Versabench) and 14 compiled SPEC CPU programs.  Those binaries require
the proprietary TRIPS toolchain; this package substitutes DSL kernels
*matched in character* — the hand-optimized set is high-ILP, unrolled,
dataflow-dense; the SPEC set is branchy, pointer/table-driven, or
memory-bound — under the paper's benchmark names.  Every kernel has a
Python reference implementation used to verify simulator output.
"""

from repro.workloads.suite import (
    Benchmark,
    BENCHMARKS,
    hand_optimized,
    spec_fp,
    spec_int,
    compiled_suite,
    verify_edge_run,
    read_array_values,
)

__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "hand_optimized",
    "spec_fp",
    "spec_int",
    "compiled_suite",
    "verify_edge_run",
    "read_array_values",
]
