"""The 14 compiled SPEC CPU stand-ins (8 integer, 6 floating point).

Matched in *character* to the paper's compiled suite: branchy,
table-driven, pointer/index-chasing integer codes with modest ILP, and
memory-bound stencil/gather floating-point codes.  Unrolling hints are
low — these model compiler-generated (not hand-scheduled) code.
"""

from __future__ import annotations

from repro.compiler import (
    Array, Assign, Bin, Cmp, Const, For, Function, If, ItoF, KernelProgram,
    Load, Store, Un, Var,
)
from repro.util import wrap64
from repro.workloads.data import Lcg


# ----------------------------------------------------------------------
# SPEC INT stand-ins
# ----------------------------------------------------------------------

def bzip2(scale: int = 1):
    """Run-length encoding pass (branchy byte scanning)."""
    n = 96 * scale
    rng = Lcg(101)
    raw = []
    while len(raw) < n:
        value = rng.next() % 6
        raw += [value] * (1 + rng.next() % 5)
    data = raw[:n]
    kernel = KernelProgram(
        name="bzip2",
        arrays=[Array("inp", "int", n, data), Array("vals", "int", n),
                Array("lens", "int", n), Array("count", "int", 1)],
        functions=[Function("main", body=[
            Assign("runs", Const(0)),
            Assign("cur", Load("inp", Const(0))),
            Assign("runlen", Const(1)),
            For("i", Const(1), Const(n), body=[
                Assign("v", Load("inp", Var("i"))),
                If(Cmp("==", Var("v"), Var("cur")), then=[
                    Assign("runlen", Bin("+", Var("runlen"), Const(1))),
                ], else_=[
                    Store("vals", Var("runs"), Var("cur")),
                    Store("lens", Var("runs"), Var("runlen")),
                    Assign("runs", Bin("+", Var("runs"), Const(1))),
                    Assign("cur", Var("v")),
                    Assign("runlen", Const(1)),
                ]),
            ]),
            Store("vals", Var("runs"), Var("cur")),
            Store("lens", Var("runs"), Var("runlen")),
            Store("count", Const(0), Bin("+", Var("runs"), Const(1))),
        ])])
    vals, lens = [], []
    cur, runlen = data[0], 1
    for v in data[1:]:
        if v == cur:
            runlen += 1
        else:
            vals.append(cur)
            lens.append(runlen)
            cur, runlen = v, 1
    vals.append(cur)
    lens.append(runlen)
    return kernel, {"vals": vals, "lens": lens, "count": [len(vals)]}


def gzip(scale: int = 1):
    """Hash-chain match search (LZ77 core; data-dependent loads)."""
    n = 80 * scale
    hbits = 5
    rng = Lcg(103)
    data = rng.ints(n, 0, 7)
    kernel = KernelProgram(
        name="gzip",
        arrays=[Array("inp", "int", n, data),
                Array("head", "int", 1 << hbits),
                Array("matches", "int", n), Array("total", "int", 1)],
        functions=[Function("main", body=[
            Assign("found", Const(0)),
            For("i", Const(1), Const(n), body=[
                Assign("h", Bin("&", Bin("^", Load("inp", Var("i")),
                                         Bin("<<", Load("inp", Bin("-", Var("i"), Const(1))),
                                             Const(2))),
                                Const((1 << hbits) - 1))),
                Assign("prev", Load("head", Var("h"))),
                Assign("m", Const(0)),
                If(Cmp(">", Var("prev"), Const(0)), then=[
                    If(Cmp("==", Load("inp", Var("prev")), Load("inp", Var("i"))), then=[
                        Assign("m", Const(1)),
                        Assign("found", Bin("+", Var("found"), Const(1))),
                    ]),
                ]),
                Store("matches", Var("i"), Var("m")),
                Store("head", Var("h"), Var("i")),
            ]),
            Store("total", Const(0), Var("found")),
        ])])
    head = [0] * (1 << hbits)
    matches, found = [0], 0
    for i in range(1, n):
        h = (data[i] ^ (data[i - 1] << 2)) & ((1 << hbits) - 1)
        prev = head[h]
        m = 0
        if prev > 0 and data[prev] == data[i]:
            m = 1
            found += 1
        matches.append(m)
        head[h] = i
    return kernel, {"matches": matches, "total": [found]}


def mcf(scale: int = 1):
    """Single-source relaxation sweep over an edge list (gather+branch)."""
    nodes = 24 * scale
    edges = 64 * scale
    rng = Lcg(107)
    src = rng.ints(edges, 0, nodes - 1)
    dst = rng.ints(edges, 0, nodes - 1)
    cost = rng.ints(edges, 1, 9)
    dist0 = [0] + [10_000] * (nodes - 1)
    kernel = KernelProgram(
        name="mcf",
        arrays=[Array("src", "int", edges, src), Array("dst", "int", edges, dst),
                Array("cost", "int", edges, cost),
                Array("dist", "int", nodes, dist0),
                Array("relaxed", "int", 1)],
        functions=[Function("main", body=[
            Assign("changes", Const(0)),
            For("sweep", Const(0), Const(3), body=[
                For("e", Const(0), Const(edges), body=[
                    Assign("u", Load("src", Var("e"))),
                    Assign("v", Load("dst", Var("e"))),
                    Assign("nd", Bin("+", Load("dist", Var("u")), Load("cost", Var("e")))),
                    If(Cmp("<", Var("nd"), Load("dist", Var("v"))), then=[
                        Store("dist", Var("v"), Var("nd")),
                        Assign("changes", Bin("+", Var("changes"), Const(1))),
                    ]),
                ]),
            ]),
            Store("relaxed", Const(0), Var("changes")),
        ])])
    dist = list(dist0)
    changes = 0
    for __ in range(3):
        for e in range(edges):
            nd = dist[src[e]] + cost[e]
            if nd < dist[dst[e]]:
                dist[dst[e]] = nd
                changes += 1
    return kernel, {"dist": dist, "relaxed": [changes]}


def parser(scale: int = 1):
    """Table-driven finite-state machine over a token stream."""
    n = 96 * scale
    states = 8
    symbols = 4
    rng = Lcg(109)
    trans = rng.ints(states * symbols, 0, states - 1)
    tokens = rng.ints(n, 0, symbols - 1)
    kernel = KernelProgram(
        name="parser",
        arrays=[Array("trans", "int", states * symbols, trans),
                Array("tok", "int", n, tokens),
                Array("visits", "int", states),
                Array("final", "int", 1)],
        functions=[Function("main", body=[
            Assign("state", Const(0)),
            For("i", Const(0), Const(n), body=[
                Assign("state", Load("trans",
                                     Bin("+", Bin("*", Var("state"), Const(symbols)),
                                         Load("tok", Var("i"))))),
                Store("visits", Var("state"),
                      Bin("+", Load("visits", Var("state")), Const(1))),
            ]),
            Store("final", Const(0), Var("state")),
        ])])
    visits = [0] * states
    state = 0
    for t in tokens:
        state = trans[state * symbols + t]
        visits[state] += 1
    return kernel, {"visits": visits, "final": [state]}


def twolf(scale: int = 1):
    """Placement-swap cost deltas with accept/reject (annealing core)."""
    cells = 32 * scale
    swaps = 48 * scale
    rng = Lcg(113)
    xs = rng.ints(cells, 0, 63)
    ys = rng.ints(cells, 0, 63)
    a_idx = rng.ints(swaps, 0, cells - 1)
    b_idx = rng.ints(swaps, 0, cells - 1)
    kernel = KernelProgram(
        name="twolf",
        arrays=[Array("x", "int", cells, xs), Array("y", "int", cells, ys),
                Array("ai", "int", swaps, a_idx), Array("bi", "int", swaps, b_idx),
                Array("accepted", "int", 1), Array("costsum", "int", 1)],
        functions=[Function("main", body=[
            Assign("acc", Const(0)),
            Assign("total", Const(0)),
            For("s", Const(0), Const(swaps), body=[
                Assign("a", Load("ai", Var("s"))),
                Assign("b", Load("bi", Var("s"))),
                Assign("dx", Un("abs", Bin("-", Load("x", Var("a")), Load("x", Var("b"))))),
                Assign("dy", Un("abs", Bin("-", Load("y", Var("a")), Load("y", Var("b"))))),
                Assign("delta", Bin("-", Var("dx"), Var("dy"))),
                If(Cmp("<", Var("delta"), Const(0)), then=[
                    Assign("acc", Bin("+", Var("acc"), Const(1))),
                    Store("x", Var("a"), Load("x", Var("b"))),
                ]),
                Assign("total", Bin("+", Var("total"), Var("delta"))),
            ]),
            Store("accepted", Const(0), Var("acc")),
            Store("costsum", Const(0), Var("total")),
        ])])
    x = list(xs)
    acc = total = 0
    for s in range(swaps):
        a, b = a_idx[s], b_idx[s]
        dx = abs(x[a] - x[b])
        dy = abs(ys[a] - ys[b])
        delta = dx - dy
        if delta < 0:
            acc += 1
            x[a] = x[b]
        total += delta
    return kernel, {"accepted": [acc], "costsum": [total], "x": x}


def vpr(scale: int = 1):
    """Routing-cost evaluation: bounding-box updates with minima."""
    nets = 48 * scale
    rng = Lcg(127)
    x1 = rng.ints(nets, 0, 99)
    y1 = rng.ints(nets, 0, 99)
    x2 = rng.ints(nets, 0, 99)
    y2 = rng.ints(nets, 0, 99)
    kernel = KernelProgram(
        name="vpr",
        arrays=[Array("x1", "int", nets, x1), Array("y1", "int", nets, y1),
                Array("x2", "int", nets, x2), Array("y2", "int", nets, y2),
                Array("cost", "int", nets), Array("worst", "int", 1)],
        functions=[Function("main", body=[
            Assign("wmax", Const(0)),
            For("i", Const(0), Const(nets), unroll=2, body=[
                Assign("c", Bin("+",
                                Un("abs", Bin("-", Load("x1", Var("i")), Load("x2", Var("i")))),
                                Un("abs", Bin("-", Load("y1", Var("i")), Load("y2", Var("i")))))),
                Store("cost", Var("i"), Var("c")),
                If(Cmp(">", Var("c"), Var("wmax")), then=[
                    Assign("wmax", Var("c")),
                ]),
            ]),
            Store("worst", Const(0), Var("wmax")),
        ])])
    cost = [abs(a - b) + abs(c - d) for a, b, c, d in zip(x1, x2, y1, y2)]
    return kernel, {"cost": cost, "worst": [max([0] + cost)]}


def gcc(scale: int = 1):
    """Symbol-table hashing with chained buckets (pointer-ish code)."""
    n = 64 * scale
    buckets = 16
    rng = Lcg(131)
    symbols = rng.ints(n, 1, 500)
    kernel = KernelProgram(
        name="gcc",
        arrays=[Array("sym", "int", n, symbols),
                Array("bucket", "int", buckets),
                Array("chain_len", "int", n),
                Array("maxlen", "int", 1)],
        functions=[Function("main", body=[
            Assign("worst", Const(0)),
            For("i", Const(0), Const(n), body=[
                Assign("s", Load("sym", Var("i"))),
                Assign("h", Bin("%", Bin("*", Var("s"), Const(2654435761)), Const(buckets))),
                Assign("depth", Bin("+", Load("bucket", Var("h")), Const(1))),
                Store("bucket", Var("h"), Var("depth")),
                Store("chain_len", Var("i"), Var("depth")),
                If(Cmp(">", Var("depth"), Var("worst")), then=[
                    Assign("worst", Var("depth")),
                ]),
            ]),
            Store("maxlen", Const(0), Var("worst")),
        ])])
    bucket = [0] * buckets
    chain_len = []
    for s in symbols:
        h = (s * 2654435761) % buckets
        bucket[h] += 1
        chain_len.append(bucket[h])
    return kernel, {"bucket": bucket, "chain_len": chain_len,
                    "maxlen": [max(bucket)]}


def perlbmk(scale: int = 1):
    """String hashing and pattern counting (byte loops)."""
    n = 96 * scale
    rng = Lcg(137)
    text = rng.ints(n, 97, 104)          # 'a'..'h'
    needle = [97, 98]                    # "ab"
    kernel = KernelProgram(
        name="perlbmk",
        arrays=[Array("text", "int", n, text),
                Array("hashes", "int", n), Array("hits", "int", 1)],
        functions=[Function("main", body=[
            Assign("h", Const(5381)),
            Assign("count", Const(0)),
            For("i", Const(0), Const(n - 1), body=[
                Assign("c", Load("text", Var("i"))),
                Assign("h", Bin("&", Bin("+", Bin("*", Var("h"), Const(33)), Var("c")),
                                Const(0xFFFFFF))),
                Store("hashes", Var("i"), Var("h")),
                If(Cmp("==", Var("c"), Const(needle[0])), then=[
                    If(Cmp("==", Load("text", Bin("+", Var("i"), Const(1))),
                           Const(needle[1])), then=[
                        Assign("count", Bin("+", Var("count"), Const(1))),
                    ]),
                ]),
            ]),
            Store("hits", Const(0), Var("count")),
        ])])
    hashes, h, count = [], 5381, 0
    for i in range(n - 1):
        c = text[i]
        h = (h * 33 + c) & 0xFFFFFF
        hashes.append(h)
        if c == needle[0] and text[i + 1] == needle[1]:
            count += 1
    return kernel, {"hashes": hashes, "hits": [count]}


# ----------------------------------------------------------------------
# SPEC FP stand-ins
# ----------------------------------------------------------------------

def mgrid(scale: int = 1):
    """Three-point smoothing sweeps (multigrid relaxation, stencil)."""
    n = 64 * scale
    rng = Lcg(139)
    grid0 = rng.floats(n, -1.0, 1.0)
    kernel = KernelProgram(
        name="mgrid",
        arrays=[Array("g", "float", n, grid0), Array("tmp", "float", n)],
        functions=[Function("main", body=[
            For("sweep", Const(0), Const(2), body=[
                For("i", Const(1), Const(n - 1), unroll=4, body=[
                    Store("tmp", Var("i"),
                          Bin("*", Const(0.25),
                              Bin("+", Bin("+", Load("g", Bin("-", Var("i"), Const(1))),
                                           Bin("*", Const(2.0), Load("g", Var("i")))),
                                  Load("g", Bin("+", Var("i"), Const(1)))))),
                ]),
                For("i", Const(1), Const(n - 1), unroll=4, body=[
                    Store("g", Var("i"), Load("tmp", Var("i"))),
                ]),
            ]),
        ])])
    g = list(grid0)
    for __ in range(2):
        tmp = list(g)
        for i in range(1, n - 1):
            tmp[i] = 0.25 * (g[i - 1] + 2.0 * g[i] + g[i + 1])
        g = tmp[:]
        # Reference matches kernel: tmp[0]/tmp[-1] keep stale values; the
        # copy loop writes only 1..n-2, so boundaries stay from grid0.
        g[0], g[-1] = grid0[0], grid0[-1]
    return kernel, {"g": g}


def applu(scale: int = 1):
    """Lower-triangular SOR sweep (loop-carried float recurrence)."""
    n = 64 * scale
    rng = Lcg(149)
    rhs = rng.floats(n, -1.0, 1.0)
    kernel = KernelProgram(
        name="applu",
        arrays=[Array("rhs", "float", n, rhs), Array("u", "float", n)],
        functions=[Function("main", body=[
            Assign("prev", Const(0.0)),
            For("i", Const(0), Const(n), unroll=2, body=[
                Assign("v", Bin("+", Load("rhs", Var("i")),
                                Bin("*", Const(0.5), Var("prev")))),
                Store("u", Var("i"), Var("v")),
                Assign("prev", Var("v")),
            ]),
        ])])
    u, prev = [], 0.0
    for r in rhs:
        v = r + 0.5 * prev
        u.append(v)
        prev = v
    return kernel, {"u": u}


def swim(scale: int = 1):
    """Shallow-water 2-D stencil on a flattened grid."""
    w = 10 * scale
    h = 8 * scale
    rng = Lcg(151)
    p0 = rng.floats(w * h, 0.0, 2.0)
    kernel = KernelProgram(
        name="swim",
        arrays=[Array("p", "float", w * h, p0), Array("pn", "float", w * h)],
        functions=[Function("main", body=[
            For("y", Const(1), Const(h - 1), body=[
                For("x", Const(1), Const(w - 1), unroll=2, body=[
                    Assign("idx", Bin("+", Bin("*", Var("y"), Const(w)), Var("x"))),
                    Store("pn", Var("idx"),
                          Bin("*", Const(0.25),
                              Bin("+",
                                  Bin("+", Load("p", Bin("-", Var("idx"), Const(1))),
                                      Load("p", Bin("+", Var("idx"), Const(1)))),
                                  Bin("+", Load("p", Bin("-", Var("idx"), Const(w))),
                                      Load("p", Bin("+", Var("idx"), Const(w))))))),
                ]),
            ]),
        ])])
    pn = [0.0] * (w * h)
    for y in range(1, h - 1):
        for x in range(1, w - 1):
            idx = y * w + x
            pn[idx] = 0.25 * (p0[idx - 1] + p0[idx + 1] + p0[idx - w] + p0[idx + w])
    return kernel, {"pn": pn}


def art(scale: int = 1):
    """Adaptive-resonance F1 matching: dot products + winner search."""
    patterns = 12 * scale
    dims = 8
    rng = Lcg(157)
    weights = rng.floats(patterns * dims, 0.0, 1.0)
    inp = rng.floats(dims, 0.0, 1.0)
    kernel = KernelProgram(
        name="art",
        arrays=[Array("w", "float", patterns * dims, weights),
                Array("inp", "float", dims, inp),
                Array("act", "float", patterns),
                Array("winner", "int", 1)],
        functions=[Function("main", body=[
            Assign("besti", Const(0)),
            Assign("bestv", Const(-1.0e9)),
            For("p", Const(0), Const(patterns), body=[
                Assign("acc", Const(0.0)),
                For("d", Const(0), Const(dims), unroll=dims, body=[
                    Assign("acc", Bin("+", Var("acc"),
                                      Bin("*", Load("w", Bin("+", Bin("*", Var("p"), Const(dims)),
                                                             Var("d"))),
                                          Load("inp", Var("d"))))),
                ]),
                Store("act", Var("p"), Var("acc")),
                If(Cmp(">", Var("acc"), Var("bestv")), then=[
                    Assign("bestv", Var("acc")),
                    Assign("besti", Var("p")),
                ]),
            ]),
            Store("winner", Const(0), Var("besti")),
        ])])
    act = [sum(weights[p * dims + d] * inp[d] for d in range(dims))
           for p in range(patterns)]
    winner = max(range(patterns), key=lambda p: (act[p], -p))
    return kernel, {"act": act, "winner": [winner]}


def equake(scale: int = 1):
    """Sparse matrix-vector product in CSR form (irregular gather)."""
    rows = 24 * scale
    nnz_per_row = 4
    rng = Lcg(163)
    cols = rng.ints(rows * nnz_per_row, 0, rows - 1)
    vals = rng.floats(rows * nnz_per_row, -1.0, 1.0)
    vec = rng.floats(rows, -1.0, 1.0)
    kernel = KernelProgram(
        name="equake",
        arrays=[Array("cols", "int", rows * nnz_per_row, cols),
                Array("vals", "float", rows * nnz_per_row, vals),
                Array("vec", "float", rows, vec),
                Array("out", "float", rows)],
        functions=[Function("main", body=[
            For("r", Const(0), Const(rows), body=[
                Assign("acc", Const(0.0)),
                Assign("base", Bin("*", Var("r"), Const(nnz_per_row))),
                For("k", Const(0), Const(nnz_per_row), unroll=nnz_per_row, body=[
                    Assign("j", Bin("+", Var("base"), Var("k"))),
                    Assign("acc", Bin("+", Var("acc"),
                                      Bin("*", Load("vals", Var("j")),
                                          Load("vec", Load("cols", Var("j")))))),
                ]),
                Store("out", Var("r"), Var("acc")),
            ]),
        ])])
    out = []
    for r in range(rows):
        acc = 0.0
        for k in range(nnz_per_row):
            j = r * nnz_per_row + k
            acc += vals[j] * vec[cols[j]]
        out.append(acc)
    return kernel, {"out": out}


def ammp(scale: int = 1):
    """Pairwise force magnitudes with a cutoff (molecular dynamics)."""
    atoms = 16 * scale
    rng = Lcg(167)
    xs = rng.floats(atoms, 0.0, 10.0)
    ys = rng.floats(atoms, 0.0, 10.0)
    cutoff_sq = 9.0
    kernel = KernelProgram(
        name="ammp",
        arrays=[Array("x", "float", atoms, xs), Array("y", "float", atoms, ys),
                Array("force", "float", atoms)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(atoms), body=[
                Assign("fi", Const(0.0)),
                Assign("xi", Load("x", Var("i"))),
                Assign("yi", Load("y", Var("i"))),
                For("j", Const(0), Const(atoms), unroll=2, body=[
                    Assign("dx", Bin("-", Var("xi"), Load("x", Var("j")))),
                    Assign("dy", Bin("-", Var("yi"), Load("y", Var("j")))),
                    Assign("r2", Bin("+", Bin("*", Var("dx"), Var("dx")),
                                     Bin("*", Var("dy"), Var("dy")))),
                    If(Cmp("<", Var("r2"), Const(cutoff_sq)), then=[
                        Assign("fi", Bin("+", Var("fi"),
                                         Bin("/", Const(1.0),
                                             Bin("+", Var("r2"), Const(0.5))))),
                    ]),
                ]),
                Store("force", Var("i"), Var("fi")),
            ]),
        ])])
    force = []
    for i in range(atoms):
        fi = 0.0
        for j in range(atoms):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            r2 = dx * dx + dy * dy
            if r2 < cutoff_sq:
                fi += 1.0 / (r2 + 0.5)
        force.append(fi)
    return kernel, {"force": force}


SPEC_INT = {
    "bzip2": bzip2,
    "gzip": gzip,
    "mcf": mcf,
    "parser": parser,
    "twolf": twolf,
    "vpr": vpr,
    "gcc": gcc,
    "perlbmk": perlbmk,
}

SPEC_FP = {
    "mgrid": mgrid,
    "applu": applu,
    "swim": swim,
    "art": art,
    "equake": equake,
    "ammp": ammp,
}
