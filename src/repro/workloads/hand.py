"""The 12 hand-optimized benchmarks (3 kernels, 7 EEMBC, 2 Versabench).

High-ILP, aggressively unrolled kernels, as the paper's hand-optimized
programs were scheduled by hand for the TRIPS substrate.  Each factory
returns ``(KernelProgram, expected)`` where ``expected`` maps output
array names to reference values computed in Python.
"""

from __future__ import annotations

import math

from repro.compiler import (
    Array, Assign, Bin, Cmp, Const, For, Function, If, ItoF, KernelProgram,
    Load, Store, Un, Var,
)
from repro.util import wrap64
from repro.workloads.data import Lcg


def conv(scale: int = 1):
    """1-D convolution with an 8-tap filter (kernel; high ILP)."""
    n = 64 * scale
    taps = 8
    rng = Lcg(11)
    xs = rng.ints(n + taps, -30, 30)
    hs = rng.ints(taps, -4, 4)
    kernel = KernelProgram(
        name="conv",
        arrays=[Array("x", "int", n + taps, xs), Array("h", "int", taps, hs),
                Array("y", "int", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("acc", Const(0)),
                For("k", Const(0), Const(taps), unroll=taps, body=[
                    Assign("acc", Bin("+", Var("acc"),
                                      Bin("*", Load("x", Bin("+", Var("i"), Var("k"))),
                                          Load("h", Var("k"))))),
                ]),
                Store("y", Var("i"), Var("acc")),
            ]),
        ])])
    expected = {"y": [sum(xs[i + k] * hs[k] for k in range(taps)) for i in range(n)]}
    return kernel, expected


def ct(scale: int = 1):
    """Blocked 4-point butterfly transform (kernel; float, high ILP)."""
    blocks = 16 * scale
    n = blocks * 4
    rng = Lcg(23)
    xs = rng.floats(n, -2.0, 2.0)
    kernel = KernelProgram(
        name="ct",
        arrays=[Array("x", "float", n, xs), Array("y", "float", n)],
        functions=[Function("main", body=[
            For("b", Const(0), Const(blocks), unroll=2, body=[
                Assign("base", Bin("*", Var("b"), Const(4))),
                Assign("a0", Load("x", Var("base"))),
                Assign("a1", Load("x", Bin("+", Var("base"), Const(1)))),
                Assign("a2", Load("x", Bin("+", Var("base"), Const(2)))),
                Assign("a3", Load("x", Bin("+", Var("base"), Const(3)))),
                Assign("s0", Bin("+", Var("a0"), Var("a2"))),
                Assign("s1", Bin("-", Var("a0"), Var("a2"))),
                Assign("s2", Bin("+", Var("a1"), Var("a3"))),
                Assign("s3", Bin("-", Var("a1"), Var("a3"))),
                Store("y", Var("base"), Bin("+", Var("s0"), Var("s2"))),
                Store("y", Bin("+", Var("base"), Const(1)), Bin("+", Var("s1"), Var("s3"))),
                Store("y", Bin("+", Var("base"), Const(2)), Bin("-", Var("s0"), Var("s2"))),
                Store("y", Bin("+", Var("base"), Const(3)), Bin("-", Var("s1"), Var("s3"))),
            ]),
        ])])
    out = []
    for b in range(blocks):
        a0, a1, a2, a3 = xs[4 * b:4 * b + 4]
        s0, s1, s2, s3 = a0 + a2, a0 - a2, a1 + a3, a1 - a3
        out += [s0 + s2, s1 + s3, s0 - s2, s1 - s3]
    return kernel, {"y": out}


def genalg(scale: int = 1):
    """Genetic-algorithm fitness + tournament selection step (kernel)."""
    pop = 32 * scale
    genes = 4
    rng = Lcg(37)
    chrom = rng.ints(pop * genes, 0, 15)
    weights = rng.ints(genes, 1, 5)
    kernel = KernelProgram(
        name="genalg",
        arrays=[Array("chrom", "int", pop * genes, chrom),
                Array("w", "int", genes, weights),
                Array("fit", "int", pop),
                Array("best", "int", 2)],
        functions=[Function("main", body=[
            Assign("bestf", Const(-1)),
            Assign("besti", Const(0)),
            For("p", Const(0), Const(pop), unroll=2, body=[
                Assign("f", Const(0)),
                For("g", Const(0), Const(genes), unroll=genes, body=[
                    Assign("f", Bin("+", Var("f"),
                                    Bin("*", Load("chrom",
                                                  Bin("+", Bin("*", Var("p"), Const(genes)),
                                                      Var("g"))),
                                        Load("w", Var("g"))))),
                ]),
                Store("fit", Var("p"), Var("f")),
                If(Cmp(">", Var("f"), Var("bestf")), then=[
                    Assign("bestf", Var("f")),
                    Assign("besti", Var("p")),
                ]),
            ]),
            Store("best", Const(0), Var("bestf")),
            Store("best", Const(1), Var("besti")),
        ])])
    fit = [sum(chrom[p * genes + g] * weights[g] for g in range(genes))
           for p in range(pop)]
    besti = max(range(pop), key=lambda p: (fit[p], -p))
    return kernel, {"fit": fit, "best": [fit[besti], besti]}


def a2time(scale: int = 1):
    """EEMBC automotive angle-to-time: division-heavy with clamping."""
    n = 48 * scale
    rng = Lcg(41)
    angles = rng.ints(n, 1, 3599)
    rpm = rng.ints(n, 600, 6000)
    kernel = KernelProgram(
        name="a2time",
        arrays=[Array("angle", "int", n, angles), Array("rpm", "int", n, rpm),
                Array("tim", "int", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("a", Load("angle", Var("i"))),
                Assign("r", Load("rpm", Var("i"))),
                # time = angle * 60_000_00 / (rpm * 3600), clamped.
                Assign("t", Bin("/", Bin("*", Var("a"), Const(6_000_000)),
                                Bin("*", Var("r"), Const(3600)))),
                If(Cmp(">", Var("t"), Const(500)), then=[
                    Assign("t", Const(500)),
                ]),
                Store("tim", Var("i"), Var("t")),
            ]),
        ])])
    expected = {"tim": [min(500, (a * 6_000_000) // (r * 3600))
                        for a, r in zip(angles, rpm)]}
    return kernel, expected


def autocor(scale: int = 1):
    """EEMBC autocorrelation (high ILP reduction)."""
    n = 64 * scale
    lags = 8
    rng = Lcg(53)
    xs = rng.ints(n + lags, -20, 20)
    kernel = KernelProgram(
        name="autocor",
        arrays=[Array("x", "int", n + lags, xs), Array("r", "int", lags)],
        functions=[Function("main", body=[
            For("lag", Const(0), Const(lags), body=[
                Assign("acc", Const(0)),
                For("i", Const(0), Const(n), unroll=8, body=[
                    Assign("acc", Bin("+", Var("acc"),
                                      Bin("*", Load("x", Var("i")),
                                          Load("x", Bin("+", Var("i"), Var("lag")))))),
                ]),
                Store("r", Var("lag"), Var("acc")),
            ]),
        ])])
    expected = {"r": [sum(xs[i] * xs[i + lag] for i in range(n))
                      for lag in range(lags)]}
    return kernel, expected


def basefp(scale: int = 1):
    """EEMBC basic floating point: Horner polynomial over an array."""
    n = 64 * scale
    rng = Lcg(59)
    xs = rng.floats(n, -1.5, 1.5)
    coeffs = [0.5, -1.25, 0.75, 2.0, -0.3]
    kernel = KernelProgram(
        name="basefp",
        arrays=[Array("x", "float", n, xs), Array("y", "float", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("v", Load("x", Var("i"))),
                Assign("acc", Const(coeffs[0])),
                Assign("acc", Bin("+", Bin("*", Var("acc"), Var("v")), Const(coeffs[1]))),
                Assign("acc", Bin("+", Bin("*", Var("acc"), Var("v")), Const(coeffs[2]))),
                Assign("acc", Bin("+", Bin("*", Var("acc"), Var("v")), Const(coeffs[3]))),
                Assign("acc", Bin("+", Bin("*", Var("acc"), Var("v")), Const(coeffs[4]))),
                Store("y", Var("i"), Var("acc")),
            ]),
        ])])

    def horner(v: float) -> float:
        acc = coeffs[0]
        for c in coeffs[1:]:
            acc = acc * v + c
        return acc

    return kernel, {"y": [horner(v) for v in xs]}


def bezier(scale: int = 1):
    """EEMBC cubic Bezier evaluation at n parameter samples (float)."""
    n = 48 * scale
    p0, p1, p2, p3 = 0.0, 1.5, -0.5, 2.0
    kernel = KernelProgram(
        name="bezier",
        arrays=[Array("y", "float", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("t", Bin("/", ItoF(Var("i")), Const(float(n)))),
                Assign("u", Bin("-", Const(1.0), Var("t"))),
                Assign("uu", Bin("*", Var("u"), Var("u"))),
                Assign("tt", Bin("*", Var("t"), Var("t"))),
                Assign("b0", Bin("*", Var("uu"), Var("u"))),
                Assign("b1", Bin("*", Bin("*", Const(3.0), Var("uu")), Var("t"))),
                Assign("b2", Bin("*", Bin("*", Const(3.0), Var("u")), Var("tt"))),
                Assign("b3", Bin("*", Var("tt"), Var("t"))),
                Store("y", Var("i"),
                      Bin("+",
                          Bin("+", Bin("*", Var("b0"), Const(p0)),
                              Bin("*", Var("b1"), Const(p1))),
                          Bin("+", Bin("*", Var("b2"), Const(p2)),
                              Bin("*", Var("b3"), Const(p3))))),
            ]),
        ])])
    out = []
    for i in range(n):
        t = i / float(n)
        u = 1.0 - t
        out.append((u * u * u) * p0 + 3 * u * u * t * p1
                   + 3 * u * t * t * p2 + t * t * t * p3)
    return kernel, {"y": out}


def dither(scale: int = 1):
    """EEMBC dithering: threshold with error diffusion (loop-carried)."""
    n = 96 * scale
    rng = Lcg(61)
    pixels = rng.ints(n, 0, 255)
    kernel = KernelProgram(
        name="dither",
        arrays=[Array("pix", "int", n, pixels), Array("out", "int", n)],
        functions=[Function("main", body=[
            Assign("err", Const(0)),
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("v", Bin("+", Load("pix", Var("i")), Var("err"))),
                Assign("o", Const(0)),
                If(Cmp(">=", Var("v"), Const(128)), then=[
                    Assign("o", Const(255)),
                ]),
                Assign("err", Bin("-", Var("v"), Var("o"))),
                Store("out", Var("i"), Var("o")),
            ]),
        ])])
    out, err = [], 0
    for p in pixels:
        v = p + err
        o = 255 if v >= 128 else 0
        err = v - o
        out.append(o)
    return kernel, {"out": out}


def rspeed(scale: int = 1):
    """EEMBC road speed: pulse-interval to speed with hysteresis."""
    n = 48 * scale
    rng = Lcg(67)
    intervals = rng.ints(n, 50, 4000)
    kernel = KernelProgram(
        name="rspeed",
        arrays=[Array("pulse", "int", n, intervals), Array("speed", "int", n)],
        functions=[Function("main", body=[
            Assign("prev", Const(0)),
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("p", Load("pulse", Var("i"))),
                Assign("s", Bin("/", Const(360_000), Var("p"))),
                # Hysteresis: ignore changes of less than 3 units.
                Assign("d", Un("abs", Bin("-", Var("s"), Var("prev")))),
                If(Cmp("<", Var("d"), Const(3)), then=[
                    Assign("s", Var("prev")),
                ]),
                Assign("prev", Var("s")),
                Store("speed", Var("i"), Var("s")),
            ]),
        ])])
    out, prev = [], 0
    for p in intervals:
        s = 360_000 // p
        if abs(s - prev) < 3:
            s = prev
        prev = s
        out.append(s)
    return kernel, {"speed": out}


def tblook(scale: int = 1):
    """EEMBC table lookup with linear interpolation (gather)."""
    n = 48 * scale
    table_size = 17
    rng = Lcg(71)
    table = sorted(rng.ints(table_size, 0, 1000))
    queries = rng.ints(n, 0, 15 * 64 - 1)
    kernel = KernelProgram(
        name="tblook",
        arrays=[Array("tab", "int", table_size, table),
                Array("q", "int", n, queries),
                Array("out", "int", n)],
        functions=[Function("main", body=[
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("x", Load("q", Var("i"))),
                Assign("idx", Bin(">>", Var("x"), Const(6))),
                Assign("frac", Bin("&", Var("x"), Const(63))),
                Assign("lo", Load("tab", Var("idx"))),
                Assign("hi", Load("tab", Bin("+", Var("idx"), Const(1)))),
                Store("out", Var("i"),
                      Bin("+", Var("lo"),
                          Bin(">>", Bin("*", Bin("-", Var("hi"), Var("lo")),
                                        Var("frac")), Const(6)))),
            ]),
        ])])
    out = []
    for x in queries:
        idx, frac = x >> 6, x & 63
        lo, hi = table[idx], table[idx + 1]
        value = lo + (((hi - lo) * frac) >> 6)
        out.append(wrap64(value))
    return kernel, {"out": out}


def b802_11b(scale: int = 1):
    """Versabench 802.11b scrambler (bit-serial LFSR over words)."""
    n = 64 * scale
    rng = Lcg(73)
    data = rng.ints(n, 0, 255)
    kernel = KernelProgram(
        name="802.11b",
        arrays=[Array("inp", "int", n, data), Array("out", "int", n),
                Array("state_out", "int", 1)],
        functions=[Function("main", body=[
            Assign("state", Const(0x5B)),
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("b", Load("inp", Var("i"))),
                # Scrambler feedback: x^7 + x^4 + 1 approximated per byte.
                Assign("fb", Bin("^", Bin(">>", Var("state"), Const(3)),
                                 Bin(">>", Var("state"), Const(6)))),
                Assign("state", Bin("&", Bin("|", Bin("<<", Var("state"), Const(1)),
                                             Bin("&", Var("fb"), Const(1))),
                                    Const(0x7F))),
                Store("out", Var("i"), Bin("^", Var("b"), Var("state"))),
            ]),
            Store("state_out", Const(0), Var("state")),
        ])])
    out, state = [], 0x5B
    for b in data:
        fb = (state >> 3) ^ (state >> 6)
        state = ((state << 1) | (fb & 1)) & 0x7F
        out.append(b ^ state)
    return kernel, {"out": out, "state_out": [state]}


def b8b10b(scale: int = 1):
    """Versabench 8b/10b encoder: table lookup + running disparity."""
    n = 64 * scale
    rng = Lcg(79)
    data = rng.ints(n, 0, 31)
    # 5b/6b code table (simplified): value -> (code, disparity).
    codes = [(v * 2 + 1) & 0x3F for v in range(32)]
    disp = [(bin(c).count("1") * 2 - 6) for c in codes]
    kernel = KernelProgram(
        name="8b10b",
        arrays=[Array("inp", "int", n, data),
                Array("codes", "int", 32, codes),
                Array("disp", "int", 32, disp),
                Array("out", "int", n),
                Array("rd_out", "int", 1)],
        functions=[Function("main", body=[
            Assign("rd", Const(-1)),
            For("i", Const(0), Const(n), unroll=4, body=[
                Assign("v", Load("inp", Var("i"))),
                Assign("c", Load("codes", Var("v"))),
                Assign("d", Load("disp", Var("v"))),
                # Invert the code when the running disparity and the
                # code's disparity have the same sign.
                If(Cmp(">", Bin("*", Var("rd"), Var("d")), Const(0)), then=[
                    Assign("c", Bin("&", Un("~", Var("c")), Const(0x3F))),
                    Assign("d", Un("-", Var("d"))),
                ]),
                If(Cmp("!=", Var("d"), Const(0)), then=[
                    Assign("rd", Var("d")),
                ]),
                Store("out", Var("i"), Var("c")),
            ]),
            Store("rd_out", Const(0), Var("rd")),
        ])])
    out, rd = [], -1
    for v in data:
        c, d = codes[v], disp[v]
        if rd * d > 0:
            c = (~c) & 0x3F
            d = -d
        if d != 0:
            rd = d
        out.append(c)
    return kernel, {"out": out, "rd_out": [rd]}


HAND_OPTIMIZED = {
    "conv": conv,
    "ct": ct,
    "genalg": genalg,
    "a2time": a2time,
    "autocor": autocor,
    "basefp": basefp,
    "bezier": bezier,
    "dither": dither,
    "rspeed": rspeed,
    "tblook": tblook,
    "802.11b": b802_11b,
    "8b10b": b8b10b,
}
