"""Benchmark registry, categories, and output verification."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.compiler import KernelProgram, compile_edge, compile_risc
from repro.isa.program import Program
from repro.risc.isa import RiscProgram
from repro.workloads.hand import HAND_OPTIMIZED
from repro.workloads.spec import SPEC_FP, SPEC_INT


@dataclass(frozen=True)
class Benchmark:
    """One suite entry.

    ``category`` is ``hand``/``spec_int``/``spec_fp`` (paper Table 1);
    ``ilp`` is the coarse high/low classification the paper uses to
    order figure 6's x-axis.
    """

    name: str
    category: str
    ilp: str
    factory: Callable[..., tuple[KernelProgram, dict]]

    def build(self, scale: int = 1) -> tuple[KernelProgram, dict]:
        """(kernel, expected-output map) at a given data scale."""
        return self.factory(scale)

    def edge_program(self, scale: int = 1) -> tuple[Program, dict, KernelProgram]:
        kernel, expected = self.build(scale)
        return compile_edge(kernel), expected, kernel

    def risc_program(self, scale: int = 1) -> tuple[RiscProgram, dict, KernelProgram]:
        kernel, expected = self.build(scale)
        return compile_risc(kernel), expected, kernel


_HIGH_ILP = {
    "conv", "ct", "genalg", "autocor", "basefp", "bezier", "tblook",
    "802.11b", "8b10b", "a2time", "mgrid", "swim", "art", "equake",
}


def _registry() -> dict[str, Benchmark]:
    table: dict[str, Benchmark] = {}
    for name, factory in HAND_OPTIMIZED.items():
        table[name] = Benchmark(name, "hand",
                                "high" if name in _HIGH_ILP else "low", factory)
    for name, factory in SPEC_INT.items():
        table[name] = Benchmark(name, "spec_int",
                                "high" if name in _HIGH_ILP else "low", factory)
    for name, factory in SPEC_FP.items():
        table[name] = Benchmark(name, "spec_fp",
                                "high" if name in _HIGH_ILP else "low", factory)
    return table


#: All 26 benchmarks by name.
BENCHMARKS: dict[str, Benchmark] = _registry()


def hand_optimized() -> list[Benchmark]:
    return [b for b in BENCHMARKS.values() if b.category == "hand"]


def spec_int() -> list[Benchmark]:
    return [b for b in BENCHMARKS.values() if b.category == "spec_int"]


def spec_fp() -> list[Benchmark]:
    return [b for b in BENCHMARKS.values() if b.category == "spec_fp"]


def compiled_suite() -> list[Benchmark]:
    return spec_int() + spec_fp()


# ----------------------------------------------------------------------
# Output verification
# ----------------------------------------------------------------------

DATA_BASE = 0x10_0000


def _array_slot(kernel: KernelProgram, array_name: str) -> tuple:
    """``(base_address, array)`` for one array in the deterministic
    layout both backends use: arrays are placed consecutively from the
    data base in declaration order."""
    offset = DATA_BASE
    for arr in kernel.arrays:
        if arr.name == array_name:
            return offset, arr
        offset += arr.size * arr.elem_size
    raise KeyError(f"{kernel.name}: no array {array_name!r}")


def read_array_values(kernel: KernelProgram, load, array_name: str) -> list:
    """Read one array back given ``load(addr, size, fp) -> value``."""
    offset, arr = _array_slot(kernel, array_name)
    return [load(offset + 8 * i, 8, arr.elem == "float")
            for i in range(arr.size)]


def verify_edge_run(kernel: KernelProgram, memory, expected: dict,
                    rel_tol: float = 1e-9) -> None:
    """Assert that a simulator/interpreter memory matches the reference.

    ``expected`` maps array names to value prefixes (shorter lists check
    only the written prefix)."""
    read_bytes = getattr(memory, "read_bytes", None)
    for array_name, values in expected.items():
        n = len(values)
        if read_bytes is not None:
            # Bulk path: one ranged read + one unpack covering exactly
            # the checked prefix.  ``<q`` matches ``FlatMemory.load``'s
            # size-8 semantics (two's-complement signed 64-bit) and
            # ``<d`` its IEEE-double decode, so the values compared are
            # identical to the per-element path below.
            offset, arr = _array_slot(kernel, array_name)
            got = struct.unpack(
                ("<%dd" if arr.elem == "float" else "<%dq") % n,
                read_bytes(offset, 8 * n))
        else:
            got = read_array_values(
                kernel, lambda a, s, fp: memory.load(a, s, fp=fp), array_name)
        for i, reference in enumerate(values):
            actual = got[i]
            if isinstance(reference, float):
                tol = max(abs(reference) * rel_tol, 1e-12)
                if abs(actual - reference) > tol:
                    raise AssertionError(
                        f"{kernel.name}.{array_name}[{i}]: {actual!r} != {reference!r}")
            elif actual != reference:
                raise AssertionError(
                    f"{kernel.name}.{array_name}[{i}]: {actual!r} != {reference!r}")
